//! Quickstart: Byzantine consensus on the paper's Figure 1(a) graph.
//!
//! The 5-cycle has minimum degree 2 = 2f and vertex connectivity 2 = ⌊3f/2⌋+1
//! for f = 1, so under the local broadcast model it tolerates one Byzantine
//! node — even though the classical point-to-point model would require a
//! 3-connected graph on at least 4 nodes.
//!
//! Run with: `cargo run --example quickstart`

use local_broadcast_consensus::prelude::*;

fn main() {
    let graph = generators::paper_fig1a();
    let f = 1;

    println!("graph: 5-cycle (Figure 1a)");
    println!(
        "  min degree = {}, vertex connectivity = {}",
        graph.min_degree(),
        connectivity::vertex_connectivity(&graph)
    );
    println!(
        "  local broadcast feasible for f={f}: {}",
        conditions::local_broadcast_feasible(&graph, f)
    );
    println!(
        "  point-to-point feasible for f={f}:  {}",
        conditions::point_to_point_feasible(&graph, f)
    );
    println!();

    // Node 3 is Byzantine and tampers every message it relays.
    let inputs = InputAssignment::from_bits(5, 0b01101);
    let faulty = NodeSet::singleton(NodeId::new(3));
    println!("inputs (node 0..4): {inputs}");
    println!("faulty node: {faulty}, strategy: tamper-relays");
    println!();

    for (name, run) in [
        ("Algorithm 1 (exponential phases)", true),
        ("Algorithm 2 (3n rounds, 2f-connected)", false),
    ] {
        let mut adversary = Strategy::TamperRelays.into_adversary();
        let (outcome, trace) = if run {
            runner::run_algorithm1(&graph, f, &inputs, &faulty, &mut adversary)
        } else {
            runner::run_algorithm2(&graph, f, &inputs, &faulty, &mut adversary)
        };
        println!("{name}:");
        println!("  rounds        = {}", trace.rounds());
        println!("  transmissions = {}", trace.total_transmissions());
        println!("  outcome       = {outcome}");
        println!(
            "  consensus     = {}",
            if outcome.verdict().is_correct() {
                "reached"
            } else {
                "FAILED"
            }
        );
        println!();
    }
}
