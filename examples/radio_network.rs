//! A wireless-style scenario: the local broadcast model is the natural model
//! for radio networks, where every transmission is overheard by all nodes in
//! range. This example runs the efficient algorithm on circulant "ring of
//! radios" topologies with two Byzantine radios.
//!
//! Run with: `cargo run --release --example radio_network`

use local_broadcast_consensus::prelude::*;

fn main() {
    // Radios arranged on a ring, each hearing its two nearest neighbors on
    // both sides (the octahedron C6(1,2) and the paper's C9(1,2) class).
    let topologies = [
        (
            "C6(1,2) - 6 radios, range 2",
            generators::circulant(6, &[1, 2]),
            2usize,
        ),
        (
            "K5 - 5 radios, all in range",
            generators::complete(5),
            2usize,
        ),
    ];

    for (name, graph, f) in topologies {
        let n = graph.node_count();
        println!("== {name} ==");
        println!(
            "  min degree = {}, connectivity = {}, feasible for f={f}: {}",
            graph.min_degree(),
            connectivity::vertex_connectivity(&graph),
            conditions::local_broadcast_feasible(&graph, f)
        );

        // Two Byzantine radios equivocate (attempt to, at least: under local
        // broadcast every neighbor overhears both copies).
        let faulty: NodeSet = [NodeId::new(0), NodeId::new(2)].into_iter().collect();
        let inputs = InputAssignment::from_bits(n, 0b011010 & ((1 << n) - 1));
        let mut adversary = Strategy::Equivocate.into_adversary();
        let (outcome, trace) = runner::run_algorithm2(&graph, f, &inputs, &faulty, &mut adversary);
        println!("  inputs  = {inputs}, faulty = {faulty}");
        println!(
            "  Algorithm 2: rounds = {}, transmissions = {}, agreement on {:?}",
            trace.rounds(),
            trace.total_transmissions(),
            outcome.agreed_value()
        );
        println!(
            "  consensus {}",
            if outcome.verdict().is_correct() {
                "reached"
            } else {
                "FAILED"
            }
        );
        println!();
    }

    // The paper's Figure 1(b)-class graph: conditions check only (Algorithm 1
    // on 9 nodes with f = 2 runs 46 phases — try it in release mode if you
    // are curious).
    let c9 = generators::paper_fig1b();
    println!("== C9(1,2) - 9 radios, range 2 (Figure 1b class) ==");
    println!(
        "  min degree = {}, connectivity = {}, feasible for f=2: {}",
        c9.min_degree(),
        connectivity::vertex_connectivity(&c9),
        conditions::local_broadcast_feasible(&c9, 2)
    );
    println!(
        "  point-to-point would tolerate only f = {}",
        conditions::max_f_point_to_point(&c9)
    );
}
