//! The hybrid model (Section 6): how much connectivity does consensus need
//! when `t` of the `f` faulty nodes can equivocate?
//!
//! Sweeps `t = 0..=f`, prints the required connectivity from Theorem 6.1, and
//! runs Algorithm 3 on K5 for the feasible points with an actually
//! equivocating adversary.
//!
//! Run with: `cargo run --release --example hybrid_tradeoff`

use local_broadcast_consensus::prelude::*;

fn main() {
    println!("Theorem 6.1: required vertex connectivity = ⌊3(f−t)/2⌋ + 2t + 1");
    println!();
    println!("  f \\ t |  0   1   2   3   4");
    println!("  ------+--------------------");
    for f in 0..=4usize {
        let mut row = format!("   {f}    |");
        for t in 0..=4usize {
            if t <= f {
                row.push_str(&format!(
                    " {:3}",
                    conditions::hybrid_connectivity_requirement(f, t)
                ));
            } else {
                row.push_str("   -");
            }
        }
        println!("{row}");
    }
    println!();
    println!("t = 0 is the local broadcast bound, t = f the point-to-point bound (2f+1).");
    println!();

    // Execute Algorithm 3 on K5 for f = 1 with and without equivocation.
    let graph = generators::complete(5);
    let inputs = InputAssignment::from_bits(5, 0b00110);
    let faulty = NodeSet::singleton(NodeId::new(4));
    for t in 0..=1usize {
        let feasible = conditions::hybrid_feasible(&graph, 1, t);
        let equivocators = if t > 0 {
            faulty.clone()
        } else {
            NodeSet::new()
        };
        let mut adversary = Strategy::Equivocate.into_adversary();
        let (outcome, trace) = runner::run_algorithm3(
            &graph,
            1,
            t,
            &equivocators,
            &inputs,
            &faulty,
            &mut adversary,
        );
        println!(
            "K5, f=1, t={t}: feasible={feasible}, phases×rounds={}, consensus {} (agreed on {:?})",
            trace.rounds(),
            if outcome.verdict().is_correct() {
                "reached"
            } else {
                "FAILED"
            },
            outcome.agreed_value(),
        );
    }
}
