//! An adversary-strategy tour: run Algorithm 1 on the 5-cycle against every
//! built-in Byzantine strategy and every fault placement, and tabulate the
//! results (they must all reach consensus — the cycle satisfies the f = 1
//! conditions).
//!
//! Run with: `cargo run --release --example fault_injection`

use local_broadcast_consensus::prelude::*;

fn main() {
    let graph = generators::paper_fig1a();
    let f = 1;
    let inputs = InputAssignment::from_bits(5, 0b10011);

    println!("Algorithm 1 on the 5-cycle, f = 1, inputs = {inputs}");
    println!();
    println!(
        "{:<10} {:<16} {:<10} {:<8} {:<14}",
        "faulty", "strategy", "correct", "rounds", "transmissions"
    );

    let mut all_correct = true;
    for faulty_node in 0..5 {
        let faulty = NodeSet::singleton(NodeId::new(faulty_node));
        for strategy in Strategy::all(2024) {
            let mut adversary = strategy.clone().into_adversary();
            let (outcome, trace) =
                runner::run_algorithm1(&graph, f, &inputs, &faulty, &mut adversary);
            let ok = outcome.verdict().is_correct();
            all_correct &= ok;
            println!(
                "{:<10} {:<16} {:<10} {:<8} {:<14}",
                faulty.to_string(),
                strategy.name(),
                if ok { "yes" } else { "NO" },
                trace.rounds(),
                trace.total_transmissions()
            );
        }
    }
    println!();
    println!(
        "all executions reached consensus: {}",
        if all_correct { "yes" } else { "NO" }
    );
}
