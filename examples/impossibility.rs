//! The other half of the paper: *necessity*. On a graph that violates the
//! conditions of Theorem 4.1, no algorithm can achieve consensus. This example
//! rebuilds the doubled-network constructions of Figures 2 and 3 and shows
//! the resulting agreement violations concretely, using Algorithm 1 itself as
//! the "any algorithm" being defeated.
//!
//! Run with: `cargo run --release --example impossibility`

use local_broadcast_consensus::prelude::*;

fn main() {
    // Figure 2 (Lemma A.1): a node of degree < 2f.
    // The 4-cycle has minimum degree 2 < 4 = 2f for f = 2.
    let graph = generators::cycle(4);
    let f = 2;
    println!("== Figure 2: degree lower bound ==");
    let construction = degree_construction(&graph, f).expect("C4 has degree 2 < 2f = 4");
    println!("{}", construction.description());
    let rounds = Algorithm1Node::round_count(graph.node_count(), f) + 4;
    let report = construction.demonstrate(|_id, input| Algorithm1Node::new(input), rounds);
    for execution in &report.executions {
        println!(
            "  {}: faulty = {}, verdict = {}",
            execution.label,
            execution.faulty,
            execution.verdict()
        );
    }
    println!(
        "  violation exhibited: {} (in {:?})",
        report.exhibits_violation(),
        report.violated_executions()
    );
    println!();

    // Figure 3 (Lemma A.2): connectivity < ⌊3f/2⌋ + 1.
    // Two complete blobs joined through a 3-node cut: connectivity 3 < 4.
    let graph = generators::deficient_connectivity(2, 3);
    println!("== Figure 3: connectivity lower bound ==");
    let construction =
        connectivity_construction(&graph, 2).expect("cut of size 3 < ⌊3f/2⌋ + 1 = 4");
    println!("{}", construction.description());
    let rounds = Algorithm1Node::round_count(graph.node_count(), 2) + 4;
    let report = construction.demonstrate(|_id, input| Algorithm1Node::new(input), rounds);
    for execution in &report.executions {
        println!(
            "  {}: faulty = {}, verdict = {}",
            execution.label,
            execution.faulty,
            execution.verdict()
        );
    }
    println!(
        "  violation exhibited: {} (in {:?})",
        report.exhibits_violation(),
        report.violated_executions()
    );
}
