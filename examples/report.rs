//! Regenerates every experiment table (E1–E8) and prints them — the same rows
//! recorded in `EXPERIMENTS.md`.
//!
//! Run with: `cargo run --release --example report`

fn main() {
    for result in local_broadcast_consensus::experiments::all_experiments() {
        println!("{}", result.render_table());
        println!();
    }
}
