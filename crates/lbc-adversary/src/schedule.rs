//! Adversarial scheduler knobs for the asynchronous and partially
//! synchronous regimes.
//!
//! Under the asynchronous regime the adversary controls two things: what
//! faulty nodes transmit (a [`crate::Strategy`]) and *when* every
//! transmission is delivered (an [`AsyncRegime`] schedule, subject to
//! eventual fairness). This module is the schedule half of the adversary
//! surface: a deterministic catalogue, a mutation neighborhood, and a
//! simplification order — the exact counterparts of
//! [`crate::Strategy::all`], [`crate::Strategy::mutations`] and
//! [`crate::Strategy::simplifications`], consumed by the worst-case search
//! when it explores the joint strategy × schedule space of an asynchronous
//! cell.
//!
//! Under **partial synchrony** the schedule surface grows a third axis: a
//! [`GstAttack`] picks the Global Stabilization Time and the set of senders
//! whose pre-GST transmissions are withheld entirely (bursting at GST). The
//! same catalogue/mutation/simplification triple exists for timing attacks,
//! so the search can co-mutate `gst` and the hold-set toward the violation
//! boundary and minimization can shrink toward the earliest GST and the
//! smallest hold-set that still violate.

use lbc_model::{AdversarialSchedule, AsyncRegime, Regime, SchedulerKind};

/// The maximum fairness bound the knobs will dial up to. Larger delays only
/// stretch executions linearly without adding new delivery *orders* beyond
/// what mid-size bounds already express.
pub const MAX_DELAY: u32 = 8;

/// Representative schedules seeded from `seed`, one per scheduler kind plus
/// a lag-1 baseline — the async counterpart of the strategy catalogue.
#[must_use]
pub fn catalogue(seed: u64) -> Vec<AsyncRegime> {
    let mut schedules = vec![AsyncRegime {
        scheduler: SchedulerKind::Fifo,
        delay: 1,
        seed,
    }];
    for scheduler in [SchedulerKind::DelayMax, SchedulerKind::EdgeLag] {
        schedules.push(AsyncRegime {
            scheduler,
            delay: 3,
            seed,
        });
    }
    schedules
}

/// The local mutation neighborhood of a schedule: delay ±1 (clamped to
/// `1..=MAX_DELAY`), a scheduler-kind rotation, and a reseed. Deterministic
/// for a given `(schedule, seed)`; `seed` feeds only the reseeded variant.
#[must_use]
pub fn mutations(schedule: &AsyncRegime, seed: u64) -> Vec<AsyncRegime> {
    let mut out = Vec::new();
    if schedule.delay < MAX_DELAY {
        out.push(AsyncRegime {
            delay: schedule.delay + 1,
            ..*schedule
        });
    }
    if schedule.delay > 1 {
        out.push(AsyncRegime {
            delay: schedule.delay - 1,
            ..*schedule
        });
    }
    let rotated = match schedule.scheduler {
        SchedulerKind::Fifo => SchedulerKind::DelayMax,
        SchedulerKind::DelayMax => SchedulerKind::EdgeLag,
        SchedulerKind::EdgeLag => SchedulerKind::Fifo,
    };
    out.push(AsyncRegime {
        scheduler: rotated,
        // A kind switch at delay 1 is a no-op (every scheduler is lag-1
        // uniform there); give the rotated kind room to differ.
        delay: schedule.delay.max(2),
        ..*schedule
    });
    out.push(AsyncRegime {
        seed: schedule.seed.rotate_left(23) ^ seed,
        ..*schedule
    });
    out.retain(|mutated| mutated != schedule);
    out
}

/// A coarse complexity rank for minimization: lag-1 FIFO is the simplest
/// explanation of a failure, uniform victim lag next, per-edge skew last,
/// with the fairness bound as the tie-break.
#[must_use]
pub fn complexity_rank(schedule: &AsyncRegime) -> u32 {
    let kind = match schedule.scheduler {
        SchedulerKind::Fifo => 0,
        SchedulerKind::DelayMax => 1,
        SchedulerKind::EdgeLag => 2,
    };
    kind * (MAX_DELAY + 1) + schedule.delay.min(MAX_DELAY)
}

/// Strictly simpler schedules worth trying when shrinking a counterexample,
/// most aggressive first. Every entry has a lower [`complexity_rank`], so
/// minimization terminates; a violation that survives the lag-1 FIFO
/// schedule is schedule-independent — the strongest possible finding.
#[must_use]
pub fn simplifications(schedule: &AsyncRegime) -> Vec<AsyncRegime> {
    let rank = complexity_rank(schedule);
    let mut out = vec![
        AsyncRegime {
            scheduler: SchedulerKind::Fifo,
            delay: 1,
            seed: schedule.seed,
        },
        AsyncRegime {
            scheduler: SchedulerKind::DelayMax,
            delay: 2,
            seed: schedule.seed,
        },
        AsyncRegime {
            delay: 1.max(schedule.delay / 2),
            ..*schedule
        },
    ];
    out.retain(|candidate| complexity_rank(candidate) < rank);
    out.dedup();
    out
}

/// Wraps a schedule into the regime value the runner consumes.
#[must_use]
pub fn as_regime(schedule: &AsyncRegime) -> Regime {
    Regime::Asynchronous(*schedule)
}

/// The largest GST the timing knobs dial up to. Pushing GST further only
/// delays the burst without changing *which* transmissions straddle the
/// boundary, and every protocol horizon in the workspace is well below it.
pub const MAX_GST_KNOB: u32 = 64;

/// A partial-synchrony timing attack: the adversary's choice of the Global
/// Stabilization Time and of the senders whose pre-GST transmissions are
/// withheld until then (bitmask over node indices `< 64`, the searchable
/// range).
///
/// The three GST attack primitives are all instances of this one shape:
///
/// * **Hold-until-GST** ([`GstAttack::hold_until_gst`]): withhold every
///   pre-GST transmission of a sender set, burst-releasing them exactly at
///   `gst` — the maximal exercise of pre-GST scheduler freedom.
/// * **Boundary-straddling late initiation**
///   ([`GstAttack::late_initiation`]): hold a *single* node, so its step-0
///   initiation lands at `gst` — after its neighbors have substituted the
///   default for it when `gst` straddles their default-substitution
///   deadline.
/// * **Schedule-coupled equivocation** ([`GstAttack::coupled`]): the same
///   hold paired with a scheduler-aware strategy
///   ([`crate::Strategy::gst_aware`]) that switches behaviour at the same
///   boundary, so conflicting copies released on opposite sides of GST land
///   in the same burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GstAttack {
    /// The Global Stabilization Time (step index), `>= 1`.
    pub gst: u32,
    /// Bitmask of held senders (bit `i` set ⇒ node `i`'s pre-GST
    /// transmissions are withheld until `gst`).
    pub hold: u64,
}

impl GstAttack {
    /// Hold-until-GST over an explicit sender set; indices `>= 64` are
    /// ignored (the simulator never holds them).
    #[must_use]
    pub fn hold_until_gst(gst: u32, held: &[usize]) -> GstAttack {
        GstAttack {
            gst: gst.clamp(1, MAX_GST_KNOB),
            hold: AdversarialSchedule::holding(held).hold,
        }
    }

    /// Boundary-straddling late initiation of a single node.
    #[must_use]
    pub fn late_initiation(gst: u32, initiator: usize) -> GstAttack {
        GstAttack::hold_until_gst(gst, &[initiator])
    }

    /// A hold-set timed to couple with a scheduler-aware strategy switching
    /// at the same GST (straddle-tamper / gst-equivocate).
    #[must_use]
    pub fn coupled(gst: u32, held: &[usize]) -> GstAttack {
        GstAttack::hold_until_gst(gst, held)
    }

    /// The hold-set as the model-layer schedule value.
    #[must_use]
    pub fn schedule(&self) -> AdversarialSchedule {
        AdversarialSchedule { hold: self.hold }
    }
}

/// Representative timing attacks derived from a cell's declared base attack:
/// the base itself, its single-node late-initiation cut, and the base hold
/// bursting one fairness window later. Deterministic in `base`.
#[must_use]
pub fn gst_catalogue(base: &GstAttack) -> Vec<GstAttack> {
    let mut out = vec![*base];
    if base.hold.count_ones() > 1 {
        let lowest = base.hold & base.hold.wrapping_neg();
        out.push(GstAttack {
            hold: lowest,
            ..*base
        });
    }
    if base.gst < MAX_GST_KNOB {
        out.push(GstAttack {
            gst: (base.gst + 1).min(MAX_GST_KNOB),
            ..*base
        });
    }
    out.dedup();
    out
}

/// The local mutation neighborhood of a timing attack: GST ±1 and
/// halved/doubled (clamped to `1..=MAX_GST_KNOB`), plus a seeded hold-bit
/// flip over the first `n` nodes — the co-mutation operator that moves
/// `gst` and the hold-set toward the violation boundary together.
/// Deterministic for a given `(attack, n, seed)`.
#[must_use]
pub fn gst_mutations(attack: &GstAttack, n: usize, seed: u64) -> Vec<GstAttack> {
    let mut out = Vec::new();
    if attack.gst < MAX_GST_KNOB {
        out.push(GstAttack {
            gst: attack.gst + 1,
            ..*attack
        });
    }
    if attack.gst > 1 {
        out.push(GstAttack {
            gst: attack.gst - 1,
            ..*attack
        });
        out.push(GstAttack {
            gst: 1.max(attack.gst / 2),
            ..*attack
        });
    }
    out.push(GstAttack {
        gst: (attack.gst.saturating_mul(2)).min(MAX_GST_KNOB),
        ..*attack
    });
    let holdable = n.min(64) as u64;
    if holdable > 0 {
        let flip = 1u64 << (seed % holdable);
        out.push(GstAttack {
            hold: attack.hold ^ flip,
            ..*attack
        });
    }
    out.retain(|mutated| mutated != attack);
    out.dedup();
    out
}

/// A coarse complexity rank for minimization: earlier GSTs first, then
/// smaller hold-sets. The rank is strictly monotone in both, so shrinking
/// toward the earliest GST and the smallest hold-set that still violate
/// terminates.
#[must_use]
pub fn gst_complexity_rank(attack: &GstAttack) -> u64 {
    u64::from(attack.gst) * 65 + u64::from(attack.hold.count_ones())
}

/// Strictly simpler timing attacks worth trying when shrinking a
/// counterexample, most aggressive first: halve/decrement GST, drop the
/// highest held sender, collapse to the single lowest held sender. Every
/// entry has a lower [`gst_complexity_rank`].
#[must_use]
pub fn gst_simplifications(attack: &GstAttack) -> Vec<GstAttack> {
    let rank = gst_complexity_rank(attack);
    let mut out = Vec::new();
    if attack.gst > 1 {
        out.push(GstAttack {
            gst: 1.max(attack.gst / 2),
            ..*attack
        });
        out.push(GstAttack {
            gst: attack.gst - 1,
            ..*attack
        });
    }
    if attack.hold != 0 {
        let highest = 1u64 << (63 - attack.hold.leading_zeros());
        out.push(GstAttack {
            hold: attack.hold & !highest,
            ..*attack
        });
        let lowest = attack.hold & attack.hold.wrapping_neg();
        out.push(GstAttack {
            hold: lowest,
            ..*attack
        });
    }
    out.retain(|candidate| gst_complexity_rank(candidate) < rank);
    out.dedup();
    out
}

/// Combines a timing attack with the post-GST schedule into the
/// partial-synchrony regime value the runner consumes.
#[must_use]
pub fn gst_as_regime(attack: &GstAttack, post: &AsyncRegime) -> Regime {
    Regime::PartialSync {
        gst: attack.gst,
        pre: attack.schedule(),
        post: *post,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AsyncRegime {
        AsyncRegime {
            scheduler: SchedulerKind::EdgeLag,
            delay: 3,
            seed: 11,
        }
    }

    #[test]
    fn catalogue_covers_every_kind() {
        let schedules = catalogue(5);
        for kind in SchedulerKind::all() {
            assert!(
                schedules.iter().any(|s| s.scheduler == kind),
                "missing {}",
                kind.name()
            );
        }
        assert_eq!(schedules, catalogue(5));
    }

    #[test]
    fn mutations_are_deterministic_self_free_and_bounded() {
        for schedule in catalogue(7) {
            let a = mutations(&schedule, 99);
            assert_eq!(a, mutations(&schedule, 99));
            assert!(!a.is_empty());
            for mutated in &a {
                assert_ne!(mutated, &schedule);
                assert!((1..=MAX_DELAY).contains(&mutated.delay));
            }
        }
        // The delay ceiling is respected.
        let maxed = AsyncRegime {
            delay: MAX_DELAY,
            ..base()
        };
        assert!(mutations(&maxed, 1).iter().all(|m| m.delay <= MAX_DELAY));
    }

    #[test]
    fn simplifications_strictly_descend_in_rank() {
        for schedule in catalogue(3).into_iter().chain([base()]) {
            for simpler in simplifications(&schedule) {
                assert!(
                    complexity_rank(&simpler) < complexity_rank(&schedule),
                    "{simpler:?} is not simpler than {schedule:?}"
                );
            }
        }
        // The simplest schedule has nothing below it.
        let fifo1 = AsyncRegime {
            scheduler: SchedulerKind::Fifo,
            delay: 1,
            seed: 0,
        };
        assert!(simplifications(&fifo1).is_empty());
    }

    #[test]
    fn regime_wrapping() {
        let schedule = base();
        assert_eq!(as_regime(&schedule), Regime::Asynchronous(schedule));
    }

    fn attack() -> GstAttack {
        GstAttack::hold_until_gst(12, &[0, 2, 5])
    }

    #[test]
    fn gst_constructors_clamp_and_mask() {
        assert_eq!(
            attack(),
            GstAttack {
                gst: 12,
                hold: 0b100101
            }
        );
        // gst 0 is the asynchronous regime; constructors clamp to 1.
        assert_eq!(GstAttack::hold_until_gst(0, &[1]).gst, 1);
        assert_eq!(GstAttack::hold_until_gst(10_000, &[1]).gst, MAX_GST_KNOB);
        // Indices >= 64 are ignored, matching the simulator.
        assert_eq!(GstAttack::hold_until_gst(3, &[70]).hold, 0);
        assert_eq!(
            GstAttack::late_initiation(4, 3),
            GstAttack {
                gst: 4,
                hold: 0b1000
            }
        );
        assert_eq!(
            GstAttack::coupled(4, &[1, 3]),
            GstAttack {
                gst: 4,
                hold: 0b1010
            }
        );
    }

    #[test]
    fn gst_catalogue_is_deterministic_and_contains_the_base() {
        let base = attack();
        let entries = gst_catalogue(&base);
        assert_eq!(entries, gst_catalogue(&base));
        assert_eq!(entries[0], base);
        // The late-initiation cut keeps only the lowest held sender.
        assert!(entries.contains(&GstAttack { gst: 12, hold: 0b1 }));
    }

    #[test]
    fn gst_mutations_are_deterministic_self_free_and_bounded() {
        for seed in [0, 7, 63] {
            let muts = gst_mutations(&attack(), 7, seed);
            assert_eq!(muts, gst_mutations(&attack(), 7, seed));
            assert!(!muts.is_empty());
            for mutated in &muts {
                assert_ne!(mutated, &attack());
                assert!((1..=MAX_GST_KNOB).contains(&mutated.gst));
                // Hold-bit flips stay inside the cell's node range.
                assert_eq!(mutated.hold >> 7, 0);
            }
        }
        // The co-mutation operator flips exactly one hold bit.
        let flipped = gst_mutations(&attack(), 7, 1)
            .into_iter()
            .find(|m| m.hold != attack().hold)
            .expect("a hold-bit flip");
        assert_eq!((flipped.hold ^ attack().hold).count_ones(), 1);
        // The GST ceiling is respected.
        let maxed = GstAttack {
            gst: MAX_GST_KNOB,
            hold: 1,
        };
        assert!(gst_mutations(&maxed, 5, 0)
            .iter()
            .all(|m| m.gst <= MAX_GST_KNOB));
    }

    #[test]
    fn gst_simplifications_strictly_descend_in_rank() {
        for candidate in [
            attack(),
            GstAttack { gst: 1, hold: 0b11 },
            GstAttack { gst: 5, hold: 0 },
        ] {
            for simpler in gst_simplifications(&candidate) {
                assert!(
                    gst_complexity_rank(&simpler) < gst_complexity_rank(&candidate),
                    "{simpler:?} is not simpler than {candidate:?}"
                );
            }
        }
        // Earliest GST and a single held sender: nothing below it that still
        // holds anything.
        let minimal = GstAttack { gst: 1, hold: 0b1 };
        assert_eq!(
            gst_simplifications(&minimal),
            vec![GstAttack { gst: 1, hold: 0 }]
        );
    }

    #[test]
    fn gst_regime_wrapping() {
        let post = base();
        assert_eq!(
            gst_as_regime(&attack(), &post),
            Regime::PartialSync {
                gst: 12,
                pre: AdversarialSchedule { hold: 0b100101 },
                post,
            }
        );
    }
}
