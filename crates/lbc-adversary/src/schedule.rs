//! Adversarial scheduler knobs for the asynchronous regime.
//!
//! Under the asynchronous regime the adversary controls two things: what
//! faulty nodes transmit (a [`crate::Strategy`]) and *when* every
//! transmission is delivered (an [`AsyncRegime`] schedule, subject to
//! eventual fairness). This module is the schedule half of the adversary
//! surface: a deterministic catalogue, a mutation neighborhood, and a
//! simplification order — the exact counterparts of
//! [`crate::Strategy::all`], [`crate::Strategy::mutations`] and
//! [`crate::Strategy::simplifications`], consumed by the worst-case search
//! when it explores the joint strategy × schedule space of an asynchronous
//! cell.

use lbc_model::{AsyncRegime, Regime, SchedulerKind};

/// The maximum fairness bound the knobs will dial up to. Larger delays only
/// stretch executions linearly without adding new delivery *orders* beyond
/// what mid-size bounds already express.
pub const MAX_DELAY: u32 = 8;

/// Representative schedules seeded from `seed`, one per scheduler kind plus
/// a lag-1 baseline — the async counterpart of the strategy catalogue.
#[must_use]
pub fn catalogue(seed: u64) -> Vec<AsyncRegime> {
    let mut schedules = vec![AsyncRegime {
        scheduler: SchedulerKind::Fifo,
        delay: 1,
        seed,
    }];
    for scheduler in [SchedulerKind::DelayMax, SchedulerKind::EdgeLag] {
        schedules.push(AsyncRegime {
            scheduler,
            delay: 3,
            seed,
        });
    }
    schedules
}

/// The local mutation neighborhood of a schedule: delay ±1 (clamped to
/// `1..=MAX_DELAY`), a scheduler-kind rotation, and a reseed. Deterministic
/// for a given `(schedule, seed)`; `seed` feeds only the reseeded variant.
#[must_use]
pub fn mutations(schedule: &AsyncRegime, seed: u64) -> Vec<AsyncRegime> {
    let mut out = Vec::new();
    if schedule.delay < MAX_DELAY {
        out.push(AsyncRegime {
            delay: schedule.delay + 1,
            ..*schedule
        });
    }
    if schedule.delay > 1 {
        out.push(AsyncRegime {
            delay: schedule.delay - 1,
            ..*schedule
        });
    }
    let rotated = match schedule.scheduler {
        SchedulerKind::Fifo => SchedulerKind::DelayMax,
        SchedulerKind::DelayMax => SchedulerKind::EdgeLag,
        SchedulerKind::EdgeLag => SchedulerKind::Fifo,
    };
    out.push(AsyncRegime {
        scheduler: rotated,
        // A kind switch at delay 1 is a no-op (every scheduler is lag-1
        // uniform there); give the rotated kind room to differ.
        delay: schedule.delay.max(2),
        ..*schedule
    });
    out.push(AsyncRegime {
        seed: schedule.seed.rotate_left(23) ^ seed,
        ..*schedule
    });
    out.retain(|mutated| mutated != schedule);
    out
}

/// A coarse complexity rank for minimization: lag-1 FIFO is the simplest
/// explanation of a failure, uniform victim lag next, per-edge skew last,
/// with the fairness bound as the tie-break.
#[must_use]
pub fn complexity_rank(schedule: &AsyncRegime) -> u32 {
    let kind = match schedule.scheduler {
        SchedulerKind::Fifo => 0,
        SchedulerKind::DelayMax => 1,
        SchedulerKind::EdgeLag => 2,
    };
    kind * (MAX_DELAY + 1) + schedule.delay.min(MAX_DELAY)
}

/// Strictly simpler schedules worth trying when shrinking a counterexample,
/// most aggressive first. Every entry has a lower [`complexity_rank`], so
/// minimization terminates; a violation that survives the lag-1 FIFO
/// schedule is schedule-independent — the strongest possible finding.
#[must_use]
pub fn simplifications(schedule: &AsyncRegime) -> Vec<AsyncRegime> {
    let rank = complexity_rank(schedule);
    let mut out = vec![
        AsyncRegime {
            scheduler: SchedulerKind::Fifo,
            delay: 1,
            seed: schedule.seed,
        },
        AsyncRegime {
            scheduler: SchedulerKind::DelayMax,
            delay: 2,
            seed: schedule.seed,
        },
        AsyncRegime {
            delay: 1.max(schedule.delay / 2),
            ..*schedule
        },
    ];
    out.retain(|candidate| complexity_rank(candidate) < rank);
    out.dedup();
    out
}

/// Wraps a schedule into the regime value the runner consumes.
#[must_use]
pub fn as_regime(schedule: &AsyncRegime) -> Regime {
    Regime::Asynchronous(*schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AsyncRegime {
        AsyncRegime {
            scheduler: SchedulerKind::EdgeLag,
            delay: 3,
            seed: 11,
        }
    }

    #[test]
    fn catalogue_covers_every_kind() {
        let schedules = catalogue(5);
        for kind in SchedulerKind::all() {
            assert!(
                schedules.iter().any(|s| s.scheduler == kind),
                "missing {}",
                kind.name()
            );
        }
        assert_eq!(schedules, catalogue(5));
    }

    #[test]
    fn mutations_are_deterministic_self_free_and_bounded() {
        for schedule in catalogue(7) {
            let a = mutations(&schedule, 99);
            assert_eq!(a, mutations(&schedule, 99));
            assert!(!a.is_empty());
            for mutated in &a {
                assert_ne!(mutated, &schedule);
                assert!((1..=MAX_DELAY).contains(&mutated.delay));
            }
        }
        // The delay ceiling is respected.
        let maxed = AsyncRegime {
            delay: MAX_DELAY,
            ..base()
        };
        assert!(mutations(&maxed, 1).iter().all(|m| m.delay <= MAX_DELAY));
    }

    #[test]
    fn simplifications_strictly_descend_in_rank() {
        for schedule in catalogue(3).into_iter().chain([base()]) {
            for simpler in simplifications(&schedule) {
                assert!(
                    complexity_rank(&simpler) < complexity_rank(&schedule),
                    "{simpler:?} is not simpler than {schedule:?}"
                );
            }
        }
        // The simplest schedule has nothing below it.
        let fifo1 = AsyncRegime {
            scheduler: SchedulerKind::Fifo,
            delay: 1,
            seed: 0,
        };
        assert!(simplifications(&fifo1).is_empty());
    }

    #[test]
    fn regime_wrapping() {
        let schedule = base();
        assert_eq!(as_regime(&schedule), Regime::Asynchronous(schedule));
    }
}
