//! # lbc-adversary
//!
//! A library of Byzantine adversary strategies for the local-broadcast
//! consensus simulator.
//!
//! Strategies are written against the [`lbc_sim::ByzantineMessage`] trait, so
//! one strategy value works against every protocol in the workspace
//! (Algorithm 1/2/3, the asynchronous algorithm, the point-to-point
//! baseline, and test probes). The communication model is enforced by the
//! *network*, not the adversary: a strategy may attempt to equivocate under
//! any model, and the simulator delivers the attempt according to the model
//! (overheard by everyone under local broadcast, private under
//! point-to-point).
//!
//! Under asynchronous regimes the adversary additionally controls the
//! delivery schedule; the [`schedule`] module is that half of the surface
//! (catalogue, mutations, simplifications over
//! [`lbc_model::AsyncRegime`]). Under partial synchrony the same module
//! adds the timing axis ([`schedule::GstAttack`]): the choice of GST and of
//! the pre-GST hold-set, co-mutated by the search and coupled to the
//! scheduler-aware strategies ([`Strategy::gst_aware`]).
//!
//! # Example
//!
//! ```
//! use lbc_adversary::Strategy;
//! use lbc_graph::generators;
//! use lbc_model::{CommModel, NodeId, NodeSet, Value};
//! use lbc_sim::{EchoOnce, Network};
//!
//! // One silent (crashed) node on the 5-cycle: its neighbors hear nothing.
//! let graph = generators::paper_fig1a();
//! let nodes: Vec<EchoOnce> = graph.nodes().map(|_| EchoOnce::new(Value::One)).collect();
//! let faulty = NodeSet::singleton(NodeId::new(2));
//! let mut network = Network::new(graph, CommModel::LocalBroadcast, faulty, nodes);
//! let mut adversary = Strategy::Silent.into_adversary();
//! let report = network.run(&mut adversary, 10);
//! assert!(report.all_non_faulty_terminated);
//! assert_eq!(network.node(NodeId::new(1)).heard().len(), 1); // only node 0 was heard
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod schedule;
mod strategy;

pub use strategy::{Strategy, StrategyAdversary};
