//! Concrete Byzantine strategies.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use lbc_model::json::{u64_from_number_or_string, FromJson, Json, JsonError, ToJson};
use lbc_model::Round;
use lbc_sim::{Adversary, ByzantineMessage, Inbox, NodeContext, Outgoing};

/// A declarative description of how faulty nodes misbehave.
///
/// Convert a `Strategy` into an executable adversary with
/// [`Strategy::into_adversary`]; the same strategy value can then drive any
/// protocol whose messages implement [`ByzantineMessage`].
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Faulty nodes follow the protocol (fail-free baseline).
    Honest,
    /// Faulty nodes never transmit anything (crash from the start).
    Silent,
    /// Faulty nodes stop transmitting from the given round onwards
    /// (crash mid-execution; the start-of-execution transmissions happen when
    /// the round is `> 0`).
    CrashAfter(u64),
    /// Faulty nodes tamper every message they would have sent (value flip via
    /// [`ByzantineMessage::tampered`]).
    TamperAll,
    /// Faulty nodes tamper only messages they *relay* (everything sent after
    /// the start-of-execution step), leaving their own initiations intact.
    /// This is the "node 3 tampers the message received from node 2" behaviour
    /// of the paper's Section 4 walk-through.
    TamperRelays,
    /// Faulty nodes attempt to equivocate: each outgoing broadcast is turned
    /// into per-neighbor unicasts, sending the original message to the first
    /// half of the neighbors and a tampered copy to the second half. Under
    /// local broadcast the network makes every neighbor overhear both copies
    /// (the attempt is futile); under point-to-point or for hybrid
    /// equivocators it succeeds.
    Equivocate,
    /// Faulty nodes flip a coin (seeded, per message) between forwarding the
    /// honest message, a tampered copy, or nothing.
    Random {
        /// RNG seed making the execution reproducible.
        seed: u64,
    },
    /// Faulty nodes stay honest for the first `honest_rounds` rounds and then
    /// switch to tampering everything — exercises state built on earlier
    /// correct behaviour.
    SleeperTamper {
        /// Number of initial rounds of honest behaviour.
        honest_rounds: u64,
    },
    /// **Scheduler-aware**: faulty nodes behave honestly strictly before the
    /// regime's stabilization time and tamper everything from GST onwards
    /// (read from [`lbc_sim::NodeContext::regime`]). A hold-until-GST
    /// schedule then bursts the *honest* pre-GST copies into the exact step
    /// where the node has started tampering its relays — the
    /// boundary-straddling attack a fixed-round sleeper can only hit by
    /// luck. Under the synchronous and asynchronous regimes GST is 0 and
    /// this degenerates to [`Strategy::TamperAll`].
    StraddleTamper,
    /// **Scheduler-aware**: honest strictly before the stabilization time,
    /// equivocating (per-neighbor split unicasts, as [`Strategy::Equivocate`])
    /// from GST onwards — schedule-coupled equivocation, releasing
    /// conflicting copies on opposite sides of the boundary so they land in
    /// the same burst. Degenerates to [`Strategy::Equivocate`] when GST is 0.
    GstEquivocate,
    /// Faulty nodes crash for a bounded window and then come back: silent
    /// while `down_from <= round < down_from + down_for`, honest relaying
    /// otherwise. Unlike [`Strategy::CrashAfter`] the node *recovers*, so
    /// protocols that wrote the node off as dead see it rejoin mid-run with
    /// stale state — the crash-recovery fault class.
    CrashRecover {
        /// First round of the outage window.
        down_from: u64,
        /// Length of the outage window in rounds.
        down_for: u64,
    },
}

impl Strategy {
    /// Builds the executable adversary for this strategy.
    #[must_use]
    pub fn into_adversary(self) -> StrategyAdversary {
        let rng = match &self {
            Strategy::Random { seed } => Some(ChaCha8Rng::seed_from_u64(*seed)),
            _ => None,
        };
        StrategyAdversary {
            strategy: self,
            rng,
        }
    }

    /// All built-in **regime-oblivious** strategies (with fixed parameters),
    /// useful for strategy tournaments in tests and experiments. The
    /// scheduler-aware GST strategies ([`Strategy::gst_aware`]) are kept out
    /// of this list on purpose: they are no-op duplicates of
    /// [`Strategy::TamperAll`]/[`Strategy::Equivocate`] whenever the regime's
    /// stabilization time is 0, and keeping the catalogue fixed preserves the
    /// seeded frontiers (and thus the byte-identical reports) of every
    /// synchronous and asynchronous search.
    #[must_use]
    pub fn all(seed: u64) -> Vec<Strategy> {
        vec![
            Strategy::Honest,
            Strategy::Silent,
            Strategy::CrashAfter(2),
            Strategy::TamperAll,
            Strategy::TamperRelays,
            Strategy::Equivocate,
            Strategy::Random { seed },
            Strategy::SleeperTamper { honest_rounds: 3 },
        ]
    }

    /// The scheduler-aware strategies that read the regime's stabilization
    /// time: the GST attack catalogue, seeded into partial-synchrony search
    /// cells on top of [`Strategy::all`].
    #[must_use]
    pub fn gst_aware() -> Vec<Strategy> {
        vec![Strategy::StraddleTamper, Strategy::GstEquivocate]
    }

    /// A short, stable name for tables and bench labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Honest => "honest",
            Strategy::Silent => "silent",
            Strategy::CrashAfter(_) => "crash-after",
            Strategy::TamperAll => "tamper-all",
            Strategy::TamperRelays => "tamper-relays",
            Strategy::Equivocate => "equivocate",
            Strategy::Random { .. } => "random",
            Strategy::SleeperTamper { .. } => "sleeper-tamper",
            Strategy::StraddleTamper => "straddle-tamper",
            Strategy::GstEquivocate => "gst-equivocate",
            Strategy::CrashRecover { .. } => "crash-recover",
        }
    }

    /// A coarse complexity rank used by minimization: lower ranks are
    /// "simpler" explanations of a failure. Shrinking a counterexample only
    /// ever replaces a strategy with one of strictly lower rank, so the
    /// minimized strategy is the least contrived misbehaviour that still
    /// breaks the run.
    #[must_use]
    pub fn complexity_rank(&self) -> u8 {
        match self {
            Strategy::Honest => 0,
            Strategy::Silent => 1,
            Strategy::TamperAll => 2,
            Strategy::TamperRelays => 3,
            Strategy::CrashAfter(_) => 4,
            Strategy::Equivocate => 5,
            Strategy::SleeperTamper { .. } => 6,
            Strategy::Random { .. } => 7,
            // The scheduler-aware strategies are the most contrived
            // explanations: minimization prefers any fixed-round strategy
            // that still violates over a GST-coupled one.
            Strategy::StraddleTamper => 8,
            Strategy::GstEquivocate => 9,
            // Recovery adds a second parameter on top of a plain crash, and
            // a transient outage is a more contrived explanation than a
            // permanent one — rank it above even the GST pair so shrinking
            // always prefers a non-recovering crash when one suffices.
            Strategy::CrashRecover { .. } => 10,
        }
    }

    /// The local mutation neighborhood of this strategy: parameter tweaks
    /// (crash round ±1, sleeper prefix ±1, RNG reseed) plus a few kind
    /// switches. The list is deterministic for a given `(self, seed)`, so a
    /// seeded search exploring it stays reproducible; `seed` feeds the
    /// reseeded/random variants only.
    #[must_use]
    pub fn mutations(&self, seed: u64) -> Vec<Strategy> {
        match self {
            Strategy::Honest => vec![
                Strategy::Silent,
                Strategy::TamperAll,
                Strategy::Equivocate,
                Strategy::Random { seed },
            ],
            Strategy::Silent => vec![
                Strategy::CrashAfter(1),
                Strategy::CrashAfter(2),
                Strategy::TamperAll,
                Strategy::Random { seed },
            ],
            Strategy::CrashAfter(round) => vec![
                Strategy::CrashAfter(round + 1),
                Strategy::CrashAfter(round.saturating_sub(1)),
                Strategy::Silent,
                Strategy::SleeperTamper {
                    honest_rounds: *round,
                },
            ],
            Strategy::TamperAll => vec![
                Strategy::TamperRelays,
                Strategy::Equivocate,
                Strategy::SleeperTamper { honest_rounds: 2 },
                Strategy::Random { seed },
            ],
            Strategy::TamperRelays => vec![
                Strategy::TamperAll,
                Strategy::Equivocate,
                Strategy::Silent,
                Strategy::Random { seed },
            ],
            Strategy::Equivocate => vec![
                Strategy::TamperAll,
                Strategy::TamperRelays,
                Strategy::Silent,
                Strategy::Random { seed },
            ],
            Strategy::Random { seed: current } => vec![
                Strategy::Random {
                    seed: current.rotate_left(17) ^ seed,
                },
                Strategy::TamperAll,
                Strategy::Silent,
                Strategy::Equivocate,
            ],
            Strategy::SleeperTamper { honest_rounds } => vec![
                Strategy::SleeperTamper {
                    honest_rounds: honest_rounds + 1,
                },
                Strategy::SleeperTamper {
                    honest_rounds: honest_rounds.saturating_sub(1),
                },
                Strategy::TamperAll,
                Strategy::CrashAfter(*honest_rounds),
            ],
            Strategy::StraddleTamper => vec![
                Strategy::GstEquivocate,
                Strategy::TamperAll,
                Strategy::SleeperTamper { honest_rounds: 2 },
                Strategy::Random { seed },
            ],
            Strategy::GstEquivocate => vec![
                Strategy::StraddleTamper,
                Strategy::Equivocate,
                Strategy::TamperAll,
                Strategy::Random { seed },
            ],
            Strategy::CrashRecover {
                down_from,
                down_for,
            } => [
                Strategy::CrashRecover {
                    down_from: down_from + 1,
                    down_for: *down_for,
                },
                Strategy::CrashRecover {
                    down_from: down_from.saturating_sub(1),
                    down_for: *down_for,
                },
                Strategy::CrashRecover {
                    down_from: *down_from,
                    down_for: down_for + 1,
                },
                Strategy::CrashRecover {
                    down_from: *down_from,
                    down_for: down_for.saturating_sub(1).max(1),
                },
                Strategy::CrashAfter(*down_from),
                Strategy::Silent,
            ]
            .into_iter()
            .filter(|m| m != self)
            .collect(),
        }
    }

    /// Strictly simpler strategies worth trying when shrinking a
    /// counterexample, most aggressive simplification first. Every entry has
    /// a lower [`Strategy::complexity_rank`] than `self` (so minimization
    /// terminates), and [`Strategy::Honest`] is excluded — an honest
    /// "adversary" cannot witness a violation.
    #[must_use]
    pub fn simplifications(&self) -> Vec<Strategy> {
        let rank = self.complexity_rank();
        [
            Strategy::Silent,
            Strategy::TamperAll,
            Strategy::TamperRelays,
            Strategy::CrashAfter(2),
            Strategy::Equivocate,
        ]
        .into_iter()
        .filter(|candidate| candidate.complexity_rank() < rank)
        .collect()
    }
}

impl ToJson for Strategy {
    /// Serializes to the same schema campaign specs use for strategies, so a
    /// concrete strategy can be embedded verbatim in a replayable spec
    /// fragment. Random seeds are emitted as **strings**: derived seeds use
    /// all 64 bits, which a JSON `f64` number would silently round.
    fn to_json(&self) -> Json {
        match self {
            Strategy::CrashAfter(round) => Json::object([
                ("kind", Json::Str("crash-after".to_string())),
                ("round", round.to_json()),
            ]),
            Strategy::Random { seed } => Json::object([
                ("kind", Json::Str("random".to_string())),
                ("seed", Json::Str(seed.to_string())),
            ]),
            Strategy::SleeperTamper { honest_rounds } => Json::object([
                ("kind", Json::Str("sleeper".to_string())),
                ("honest-rounds", honest_rounds.to_json()),
            ]),
            Strategy::CrashRecover {
                down_from,
                down_for,
            } => Json::object([
                ("kind", Json::Str("crash-recover".to_string())),
                ("down-from", down_from.to_json()),
                ("down-for", down_for.to_json()),
            ]),
            plain => Json::Str(plain.name().to_string()),
        }
    }
}

impl FromJson for Strategy {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = value
            .as_str()
            .or_else(|| value.get("kind").and_then(Json::as_str))
            .ok_or_else(|| JsonError {
                message: "strategy must be a name or an object with 'kind'".to_string(),
            })?;
        Ok(match kind {
            "honest" => Strategy::Honest,
            "silent" => Strategy::Silent,
            "tamper-all" => Strategy::TamperAll,
            "tamper-relays" => Strategy::TamperRelays,
            "equivocate" => Strategy::Equivocate,
            "crash-after" => Strategy::CrashAfter(
                value
                    .get("round")
                    .map_or(Ok(2), u64_from_number_or_string)?,
            ),
            "random" => Strategy::Random {
                seed: u64_from_number_or_string(value.get("seed").ok_or_else(|| JsonError {
                    message: "a concrete random strategy requires 'seed'".to_string(),
                })?)?,
            },
            "sleeper" | "sleeper-tamper" => Strategy::SleeperTamper {
                honest_rounds: value
                    .get("honest-rounds")
                    .map_or(Ok(3), u64_from_number_or_string)?,
            },
            "straddle-tamper" => Strategy::StraddleTamper,
            "gst-equivocate" => Strategy::GstEquivocate,
            "crash-recover" => Strategy::CrashRecover {
                down_from: value
                    .get("down-from")
                    .map_or(Ok(2), u64_from_number_or_string)?,
                down_for: value
                    .get("down-for")
                    .map_or(Ok(2), u64_from_number_or_string)?,
            },
            other => {
                return Err(JsonError {
                    message: format!("unknown strategy '{other}'"),
                })
            }
        })
    }
}

/// The executable adversary produced by [`Strategy::into_adversary`].
#[derive(Debug, Clone)]
pub struct StrategyAdversary {
    strategy: Strategy,
    rng: Option<ChaCha8Rng>,
}

impl StrategyAdversary {
    /// The strategy this adversary executes.
    #[must_use]
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }
}

impl<M> Adversary<M> for StrategyAdversary
where
    M: ByzantineMessage,
{
    fn intercept(
        &mut self,
        ctx: &NodeContext<'_>,
        round: Option<Round>,
        honest_outgoing: Vec<Outgoing<M>>,
        _inbox: Inbox<'_, M>,
    ) -> Vec<Outgoing<M>> {
        match &self.strategy {
            Strategy::Honest => honest_outgoing,
            Strategy::Silent => Vec::new(),
            Strategy::CrashAfter(limit) => {
                let current = round.map_or(0, Round::value);
                if current >= *limit {
                    Vec::new()
                } else {
                    honest_outgoing
                }
            }
            Strategy::TamperAll => honest_outgoing
                .into_iter()
                .map(|o| map_message(o, |m| m.tampered()))
                .collect(),
            Strategy::TamperRelays => {
                if round.is_none() {
                    honest_outgoing
                } else {
                    honest_outgoing
                        .into_iter()
                        .map(|o| map_message(o, |m| m.tampered()))
                        .collect()
                }
            }
            Strategy::Equivocate => equivocate_split(ctx, honest_outgoing),
            Strategy::Random { .. } => {
                let rng = self.rng.as_mut().expect("random strategy carries an RNG");
                honest_outgoing
                    .into_iter()
                    .filter_map(|o| match rng.gen_range(0..3) {
                        0 => Some(o),
                        1 => Some(map_message(o, |m| m.tampered())),
                        _ => None,
                    })
                    .collect()
            }
            Strategy::SleeperTamper { honest_rounds } => {
                let current = round.map_or(0, Round::value);
                if current < *honest_rounds {
                    honest_outgoing
                } else {
                    honest_outgoing
                        .into_iter()
                        .map(|o| map_message(o, |m| m.tampered()))
                        .collect()
                }
            }
            // The scheduler-aware pair: both read the wake-up round from the
            // regime instead of a fixed parameter, so the same strategy value
            // straddles whatever GST the schedule half of the adversary is
            // currently trying.
            Strategy::StraddleTamper => {
                let gst = ctx.regime.stabilization_time();
                if round.map_or(0, Round::value) < gst {
                    honest_outgoing
                } else {
                    honest_outgoing
                        .into_iter()
                        .map(|o| map_message(o, |m| m.tampered()))
                        .collect()
                }
            }
            Strategy::GstEquivocate => {
                let gst = ctx.regime.stabilization_time();
                if round.map_or(0, Round::value) < gst {
                    honest_outgoing
                } else {
                    equivocate_split(ctx, honest_outgoing)
                }
            }
            Strategy::CrashRecover {
                down_from,
                down_for,
            } => {
                let current = round.map_or(0, Round::value);
                if *down_from <= current && current < down_from + down_for {
                    Vec::new()
                } else {
                    honest_outgoing
                }
            }
        }
    }
}

/// Turns each outgoing transmission into per-neighbor unicasts: the original
/// copy to the first half of the neighbors, a tampered copy to the second
/// half (the [`Strategy::Equivocate`] behaviour, shared with
/// [`Strategy::GstEquivocate`]).
fn equivocate_split<M>(ctx: &NodeContext<'_>, honest_outgoing: Vec<Outgoing<M>>) -> Vec<Outgoing<M>>
where
    M: ByzantineMessage,
{
    let neighbors: Vec<_> = ctx.neighbors().iter().collect();
    let half = neighbors.len() / 2;
    let mut out = Vec::new();
    for outgoing in honest_outgoing {
        let message = outgoing.message().clone();
        let tampered = message.tampered();
        for (index, neighbor) in neighbors.iter().enumerate() {
            let payload = if index < half {
                message.clone()
            } else {
                tampered.clone()
            };
            out.push(Outgoing::Unicast(*neighbor, payload));
        }
    }
    out
}

fn map_message<M>(outgoing: Outgoing<M>, f: impl Fn(M) -> M) -> Outgoing<M> {
    match outgoing {
        Outgoing::Broadcast(m) => Outgoing::Broadcast(f(m)),
        Outgoing::Unicast(to, m) => Outgoing::Unicast(to, f(m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;
    use lbc_model::{NodeId, Value};

    fn ctx<'a>(
        graph: &'a lbc_graph::Graph,
        arena: &'a lbc_model::SharedPathArena,
        ledger: &'a lbc_model::SharedFloodLedger,
    ) -> NodeContext<'a> {
        NodeContext {
            id: NodeId::new(0),
            graph,
            f: 1,
            regime: &lbc_model::Regime::Synchronous,
            step: None,
            arena,
            ledger,
            observer: Box::leak(Box::new(lbc_sim::ObserverHandle::disabled())),
        }
    }

    fn honest_out() -> Vec<Outgoing<Value>> {
        vec![Outgoing::Broadcast(Value::One)]
    }

    #[test]
    fn silent_drops_everything() {
        let graph = generators::complete(4);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let mut adv = Strategy::Silent.into_adversary();
        let out: Vec<Outgoing<Value>> = adv.intercept(
            &ctx(&graph, &arena, &ledger),
            None,
            honest_out(),
            Inbox::direct(&[]),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn honest_passes_through() {
        let graph = generators::complete(4);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let mut adv = Strategy::Honest.into_adversary();
        let out = adv.intercept(
            &ctx(&graph, &arena, &ledger),
            None,
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(out, honest_out());
    }

    #[test]
    fn crash_after_respects_the_round_limit() {
        let graph = generators::complete(4);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let mut adv = Strategy::CrashAfter(2).into_adversary();
        let before: Vec<Outgoing<Value>> = adv.intercept(
            &ctx(&graph, &arena, &ledger),
            Some(Round::new(1)),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(before.len(), 1);
        let after: Vec<Outgoing<Value>> = adv.intercept(
            &ctx(&graph, &arena, &ledger),
            Some(Round::new(2)),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert!(after.is_empty());
    }

    #[test]
    fn tamper_all_flips_values() {
        let graph = generators::complete(4);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let mut adv = Strategy::TamperAll.into_adversary();
        let out = adv.intercept(
            &ctx(&graph, &arena, &ledger),
            None,
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(out, vec![Outgoing::Broadcast(Value::Zero)]);
    }

    #[test]
    fn tamper_relays_leaves_the_start_step_alone() {
        let graph = generators::complete(4);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let mut adv = Strategy::TamperRelays.into_adversary();
        let start = adv.intercept(
            &ctx(&graph, &arena, &ledger),
            None,
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(start, honest_out());
        let later = adv.intercept(
            &ctx(&graph, &arena, &ledger),
            Some(Round::ZERO),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(later, vec![Outgoing::Broadcast(Value::Zero)]);
    }

    #[test]
    fn equivocate_splits_neighbors() {
        let graph = generators::complete(5);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let mut adv = Strategy::Equivocate.into_adversary();
        let out = adv.intercept(
            &ctx(&graph, &arena, &ledger),
            None,
            honest_out(),
            Inbox::direct(&[]),
        );
        // 4 neighbors, one unicast each.
        assert_eq!(out.len(), 4);
        let originals = out.iter().filter(|o| *o.message() == Value::One).count();
        let tampered = out.iter().filter(|o| *o.message() == Value::Zero).count();
        assert_eq!(originals, 2);
        assert_eq!(tampered, 2);
        assert!(out.iter().all(|o| matches!(o, Outgoing::Unicast(_, _))));
    }

    #[test]
    fn random_is_reproducible_per_seed() {
        let graph = generators::complete(4);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let many: Vec<Outgoing<Value>> = (0..10).map(|_| Outgoing::Broadcast(Value::One)).collect();
        let mut a = Strategy::Random { seed: 9 }.into_adversary();
        let mut b = Strategy::Random { seed: 9 }.into_adversary();
        let out_a = a.intercept(
            &ctx(&graph, &arena, &ledger),
            Some(Round::ZERO),
            many.clone(),
            Inbox::direct(&[]),
        );
        let out_b = b.intercept(
            &ctx(&graph, &arena, &ledger),
            Some(Round::ZERO),
            many,
            Inbox::direct(&[]),
        );
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn sleeper_switches_behaviour() {
        let graph = generators::complete(4);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let mut adv = Strategy::SleeperTamper { honest_rounds: 3 }.into_adversary();
        let early = adv.intercept(
            &ctx(&graph, &arena, &ledger),
            Some(Round::new(1)),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(early, honest_out());
        let late = adv.intercept(
            &ctx(&graph, &arena, &ledger),
            Some(Round::new(5)),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(late, vec![Outgoing::Broadcast(Value::Zero)]);
    }

    #[test]
    fn gst_strategies_straddle_the_stabilization_time() {
        let graph = generators::complete(5);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let regime = lbc_model::Regime::PartialSync {
            gst: 4,
            pre: lbc_model::AdversarialSchedule::holding(&[0]),
            post: lbc_model::AsyncRegime {
                scheduler: lbc_model::SchedulerKind::Fifo,
                delay: 1,
                seed: 0,
            },
        };
        let observer = lbc_sim::ObserverHandle::disabled();
        let psync_ctx = NodeContext {
            id: NodeId::new(0),
            graph: &graph,
            f: 1,
            regime: &regime,
            step: Some(Round::new(3)),
            arena: &arena,
            ledger: &ledger,
            observer: &observer,
        };
        // Strictly before GST: honest.
        let mut straddle = Strategy::StraddleTamper.into_adversary();
        let before = straddle.intercept(
            &psync_ctx,
            Some(Round::new(3)),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(before, honest_out());
        // From GST on: tamper-all.
        let at = straddle.intercept(
            &psync_ctx,
            Some(Round::new(4)),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(at, vec![Outgoing::Broadcast(Value::Zero)]);
        // The equivocating variant splits neighbors from GST on.
        let mut gst_eq = Strategy::GstEquivocate.into_adversary();
        let early = gst_eq.intercept(
            &psync_ctx,
            Some(Round::new(2)),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(early, honest_out());
        let late = gst_eq.intercept(
            &psync_ctx,
            Some(Round::new(7)),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(late.len(), 4);
        assert!(late.iter().all(|o| matches!(o, Outgoing::Unicast(_, _))));
        // Under a GST-0 regime (sync) the pair degenerates to the
        // fixed-round originals from the start.
        let sync = ctx(&graph, &arena, &ledger);
        let mut degenerate = Strategy::StraddleTamper.into_adversary();
        let out = degenerate.intercept(&sync, None, honest_out(), Inbox::direct(&[]));
        assert_eq!(out, vec![Outgoing::Broadcast(Value::Zero)]);
    }

    #[test]
    fn crash_recover_is_silent_only_in_the_window() {
        let graph = generators::complete(4);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let mut adv = Strategy::CrashRecover {
            down_from: 2,
            down_for: 2,
        }
        .into_adversary();
        let context = ctx(&graph, &arena, &ledger);
        // Honest before the outage (including the start-of-execution step).
        let start: Vec<Outgoing<Value>> =
            adv.intercept(&context, None, honest_out(), Inbox::direct(&[]));
        assert_eq!(start, honest_out());
        let before = adv.intercept(
            &context,
            Some(Round::new(1)),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(before, honest_out());
        // Silent for rounds 2 and 3.
        for down in [2, 3] {
            let out = adv.intercept(
                &context,
                Some(Round::new(down)),
                honest_out(),
                Inbox::direct(&[]),
            );
            assert!(out.is_empty(), "round {down} should be inside the outage");
        }
        // Recovered: honest relaying resumes from round 4 on.
        let after = adv.intercept(
            &context,
            Some(Round::new(4)),
            honest_out(),
            Inbox::direct(&[]),
        );
        assert_eq!(after, honest_out());
    }

    #[test]
    fn mutations_are_deterministic_and_self_free() {
        let crash_recover = Strategy::CrashRecover {
            down_from: 2,
            down_for: 2,
        };
        for strategy in Strategy::all(7)
            .into_iter()
            .chain(Strategy::gst_aware())
            .chain([crash_recover])
        {
            let a = strategy.mutations(99);
            let b = strategy.mutations(99);
            assert_eq!(a, b, "mutations of {strategy:?} must be deterministic");
            assert!(!a.is_empty());
            assert!(
                a.iter().all(|m| m != &strategy),
                "{strategy:?} mutated into itself"
            );
        }
        // Different seeds reseed the random variants.
        let reseeded_a = Strategy::Random { seed: 5 }.mutations(1);
        let reseeded_b = Strategy::Random { seed: 5 }.mutations(2);
        assert_ne!(reseeded_a[0], reseeded_b[0]);
    }

    #[test]
    fn simplifications_strictly_descend_in_rank() {
        let crash_recover = Strategy::CrashRecover {
            down_from: 1,
            down_for: 3,
        };
        for strategy in Strategy::all(7)
            .into_iter()
            .chain(Strategy::gst_aware())
            .chain([crash_recover.clone()])
        {
            for simpler in strategy.simplifications() {
                assert!(
                    simpler.complexity_rank() < strategy.complexity_rank(),
                    "{simpler:?} is not simpler than {strategy:?}"
                );
                assert_ne!(simpler, Strategy::Honest);
            }
        }
        assert!(Strategy::Silent.simplifications().is_empty());
        assert!(!Strategy::Random { seed: 3 }.simplifications().is_empty());
        // The recovering crash shrinks to plain crashes among others.
        assert!(crash_recover
            .simplifications()
            .contains(&Strategy::CrashAfter(2)));
    }

    #[test]
    fn strategy_json_roundtrips_with_full_seed_fidelity() {
        // A seed above 2^53 would be rounded by a JSON f64 number; the
        // string form must carry it exactly.
        let mut catalogue = Strategy::all(u64::MAX - 12345);
        catalogue.push(Strategy::CrashAfter(9));
        catalogue.push(Strategy::SleeperTamper { honest_rounds: 0 });
        catalogue.push(Strategy::CrashRecover {
            down_from: 3,
            down_for: 5,
        });
        catalogue.extend(Strategy::gst_aware());
        for strategy in catalogue {
            let text = strategy.to_json().to_string();
            let back = Strategy::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, strategy, "round-trip failed for {text}");
        }
        // Numeric seeds are still accepted on input.
        let numeric = Json::parse(r#"{"kind": "random", "seed": 7}"#).unwrap();
        assert_eq!(
            Strategy::from_json(&numeric).unwrap(),
            Strategy::Random { seed: 7 }
        );
    }

    #[test]
    fn strategy_catalogue_has_stable_names() {
        let all = Strategy::all(1);
        assert_eq!(all.len(), 8);
        let names: Vec<&str> = all.iter().map(Strategy::name).collect();
        assert!(names.contains(&"tamper-relays"));
        assert!(names.contains(&"equivocate"));
        // The scheduler-aware pair lives in its own catalogue, never in
        // `all` (which seeds sync/async searches).
        assert!(!names.contains(&"straddle-tamper"));
        let gst_names: Vec<&str> = Strategy::gst_aware().iter().map(Strategy::name).collect();
        assert_eq!(gst_names, vec!["straddle-tamper", "gst-equivocate"]);
        let adv = Strategy::TamperAll.into_adversary();
        assert_eq!(adv.strategy(), &Strategy::TamperAll);
    }
}
