//! Property-based tests: consensus correctness on randomly generated
//! satisfying graphs with random fault placements, inputs, and adversary
//! strategies; plus structural properties of the feasibility conditions.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use lbc_adversary::Strategy;
use lbc_consensus::{conditions, runner};
use lbc_graph::{generators, Graph};
use lbc_model::{InputAssignment, NodeId, NodeSet};

/// A random graph satisfying the paper's f = 1 conditions (minimum degree 2,
/// 2-connected), on 5–8 nodes.
fn satisfying_graph_f1(n: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generators::random_satisfying(n, 1, 0.25, &mut rng)
}

fn strategy_from_index(index: usize) -> Strategy {
    let all = Strategy::all(17);
    all[index % all.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// **Sufficiency, randomized** (Theorem 5.1): Algorithm 1 reaches
    /// consensus on random satisfying graphs with a random Byzantine node, a
    /// random strategy, and random inputs.
    #[test]
    fn algorithm1_correct_on_random_satisfying_graphs(
        n in 5usize..8,
        seed in 0u64..10_000,
        faulty_index in 0usize..8,
        strategy_index in 0usize..8,
        bits in 0u64..256,
    ) {
        let graph = satisfying_graph_f1(n, seed);
        prop_assume!(conditions::local_broadcast_feasible(&graph, 1));
        let faulty = NodeSet::singleton(NodeId::new(faulty_index % n));
        let inputs = InputAssignment::from_bits(n, bits);
        let strategy = strategy_from_index(strategy_index);
        let mut adversary = strategy.clone().into_adversary();
        let (outcome, _) = runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary);
        prop_assert!(
            outcome.verdict().is_correct(),
            "n={n} seed={seed} faulty={faulty} strategy={} inputs={inputs}: {outcome}",
            strategy.name()
        );
    }

    /// **Validity under unanimity, randomized**: when every non-faulty node
    /// holds the same input, that value is the only possible output,
    /// whatever the (single) faulty node does.
    #[test]
    fn unanimous_inputs_decide_that_value(
        n in 5usize..8,
        seed in 0u64..10_000,
        faulty_index in 0usize..8,
        strategy_index in 0usize..8,
        unanimous in any::<bool>(),
    ) {
        let graph = satisfying_graph_f1(n, seed);
        prop_assume!(conditions::local_broadcast_feasible(&graph, 1));
        let faulty = NodeSet::singleton(NodeId::new(faulty_index % n));
        let value = lbc_model::Value::from(unanimous);
        let mut inputs = InputAssignment::uniform(n, value);
        // The faulty node's own input may be anything.
        inputs.set(NodeId::new(faulty_index % n), value.flipped());
        let strategy = strategy_from_index(strategy_index);
        let mut adversary = strategy.into_adversary();
        let (outcome, _) = runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary);
        prop_assert!(outcome.verdict().is_correct(), "{outcome}");
        prop_assert_eq!(outcome.agreed_value(), Some(value));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feasibility is antitone in `f`: a graph feasible for `f + 1` is
    /// feasible for `f`, under all three characterizations.
    #[test]
    fn feasibility_is_antitone_in_f(n in 4usize..10, p in 0.3f64..0.9, seed in 0u64..1000, f in 0usize..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = generators::random_gnp(n, p, &mut rng);
        if conditions::local_broadcast_feasible(&graph, f + 1) {
            prop_assert!(conditions::local_broadcast_feasible(&graph, f));
        }
        if conditions::point_to_point_feasible(&graph, f + 1) {
            prop_assert!(conditions::point_to_point_feasible(&graph, f));
        }
        if conditions::hybrid_feasible(&graph, f + 1, 0) {
            prop_assert!(conditions::hybrid_feasible(&graph, f, 0));
        }
    }

    /// The hybrid requirement is monotone in `t` and interpolates between the
    /// two pure models.
    #[test]
    fn hybrid_requirement_is_monotone(f in 0usize..8) {
        let mut previous = 0;
        for t in 0..=f {
            let req = conditions::hybrid_connectivity_requirement(f, t);
            prop_assert!(req >= previous);
            previous = req;
        }
        prop_assert_eq!(
            conditions::hybrid_connectivity_requirement(f, 0),
            conditions::local_broadcast_connectivity_requirement(f)
        );
        prop_assert_eq!(
            conditions::hybrid_connectivity_requirement(f, f),
            conditions::point_to_point_connectivity_requirement(f)
        );
    }

    /// Point-to-point feasibility implies local broadcast feasibility
    /// (equivocation only makes the adversary stronger), for every graph.
    #[test]
    fn p2p_feasible_implies_local_broadcast_feasible(n in 4usize..10, p in 0.3f64..0.9, seed in 0u64..1000, f in 0usize..3) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = generators::random_gnp(n, p, &mut rng);
        if conditions::point_to_point_feasible(&graph, f) {
            prop_assert!(conditions::local_broadcast_feasible(&graph, f));
            prop_assert!(conditions::hybrid_feasible(&graph, f, f.min(1)));
        }
    }
}
