//! Byte-level equivalence of the path-interning flood engine against the
//! naive pre-refactor engine.
//!
//! Both engines run the same whole-graph flood scripts — every node floods
//! its input for `n` rounds under local-broadcast delivery — and the tests
//! assert that per-round transcripts (every broadcast's value and resolved
//! path, in emission order), the final received maps, and the overheard sets
//! are identical. Scripts cover the fault-free case, relay tampering,
//! attempted equivocation (suppressed by rule (ii)), and silent nodes
//! (default injection).

use lbc_consensus::flooding::{Flooder, NaiveFloodMsg, NaiveFlooder};
use lbc_consensus::FloodMsg;
use lbc_graph::{generators, Graph};
use lbc_model::{NodeId, NodeSet, Path, SharedPathArena, Value};
use lbc_sim::{Delivery, Outgoing};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// How a faulty node misbehaves in a script.
#[derive(Clone, Copy, PartialEq)]
enum Fault {
    None,
    /// The node never transmits.
    Silent(NodeId),
    /// The node flips the value of everything it sends after round 0.
    TamperRelays(NodeId),
    /// The node sends each of its transmissions twice with conflicting
    /// values (an equivocation attempt; under local broadcast both copies
    /// reach every neighbor and rule (ii) keeps only the first).
    Equivocate(NodeId),
}

/// An engine-independent transcript: per round, every node's broadcasts as
/// `(sender, value, resolved path)` in emission order; then the final state.
#[derive(Debug, PartialEq)]
struct Transcript {
    rounds: Vec<Vec<(NodeId, Value, Vec<NodeId>)>>,
    received_from: Vec<Vec<(Vec<NodeId>, Value)>>,
    overheard: Vec<Vec<(NodeId, Vec<NodeId>, Value)>>,
    received_counts: Vec<usize>,
}

fn apply_fault(
    fault: Fault,
    sender: NodeId,
    round: usize,
    msgs: Vec<(Value, Vec<NodeId>)>,
) -> Vec<(Value, Vec<NodeId>)> {
    match fault {
        Fault::None => msgs,
        Fault::Silent(bad) if sender == bad => Vec::new(),
        Fault::TamperRelays(bad) if sender == bad && round > 0 => {
            msgs.into_iter().map(|(v, p)| (v.flipped(), p)).collect()
        }
        Fault::Equivocate(bad) if sender == bad => msgs
            .into_iter()
            .flat_map(|(v, p)| [(v, p.clone()), (v.flipped(), p)])
            .collect(),
        _ => msgs,
    }
}

/// Runs the interned engine over the script and records the transcript.
fn run_interned(graph: &Graph, inputs: &[Value], rounds: usize, fault: Fault) -> Transcript {
    let arena = SharedPathArena::new();
    let node_count = graph.node_count();
    let mut flooders = Vec::new();
    // pending[v] = the abstract messages v transmits before the next round.
    let mut pending: Vec<Vec<(Value, Vec<NodeId>)>> = Vec::new();
    for (v, &input) in inputs.iter().enumerate().take(node_count) {
        let (flooder, out) = Flooder::start(arena.clone(), n(v), input);
        let msgs = out
            .iter()
            .map(|o| match o {
                Outgoing::Broadcast(m) => (m.value, arena.resolve(m.path).nodes().to_vec()),
                Outgoing::Unicast(..) => unreachable!("flooding never unicasts"),
            })
            .collect();
        flooders.push(flooder);
        pending.push(apply_fault(fault, n(v), 0, msgs));
    }

    let mut transcript_rounds = Vec::new();
    for round in 0..rounds {
        // Record this round's (faulted) transmissions.
        let mut record = Vec::new();
        for (v, msgs) in pending.iter().enumerate() {
            for (value, path) in msgs {
                record.push((n(v), *value, path.clone()));
            }
        }
        transcript_rounds.push(record);

        // Deliver to all neighbors, in sender order.
        let mut inboxes: Vec<Vec<Delivery<FloodMsg>>> = vec![Vec::new(); node_count];
        for (sender, msgs) in pending.iter().enumerate() {
            for (value, path) in msgs {
                let id = arena.intern(&Path::from_nodes(path.iter().copied()));
                for neighbor in graph.neighbors(n(sender)) {
                    inboxes[neighbor.index()].push(Delivery {
                        from: n(sender),
                        message: FloodMsg {
                            value: *value,
                            path: id,
                        },
                    });
                }
            }
        }

        let mut next_pending = Vec::with_capacity(node_count);
        for (v, flooder) in flooders.iter_mut().enumerate() {
            let out = flooder.on_round(graph, round == 0, &inboxes[v]);
            let msgs: Vec<(Value, Vec<NodeId>)> = out
                .iter()
                .map(|o| match o {
                    Outgoing::Broadcast(m) => (m.value, arena.resolve(m.path).nodes().to_vec()),
                    Outgoing::Unicast(..) => unreachable!("flooding never unicasts"),
                })
                .collect();
            next_pending.push(apply_fault(fault, n(v), round + 1, msgs));
        }
        pending = next_pending;
    }

    Transcript {
        rounds: transcript_rounds,
        received_from: flooders
            .iter()
            .map(|f| {
                (0..node_count)
                    .flat_map(|origin| {
                        f.received_from(n(origin))
                            .into_iter()
                            .map(|(p, v)| (p.nodes().to_vec(), v))
                    })
                    .collect()
            })
            .collect(),
        overheard: flooders
            .iter()
            .map(|f| {
                f.overheard()
                    .into_iter()
                    .map(|(from, p, v)| (from, p.nodes().to_vec(), v))
                    .collect()
            })
            .collect(),
        received_counts: flooders.iter().map(Flooder::received_count).collect(),
    }
}

/// Runs the naive engine over the same script.
fn run_naive(graph: &Graph, inputs: &[Value], rounds: usize, fault: Fault) -> Transcript {
    let node_count = graph.node_count();
    let mut flooders = Vec::new();
    let mut pending: Vec<Vec<(Value, Vec<NodeId>)>> = Vec::new();
    for (v, &input) in inputs.iter().enumerate().take(node_count) {
        let (flooder, out) = NaiveFlooder::start(n(v), input);
        let msgs = out
            .iter()
            .map(|o| match o {
                Outgoing::Broadcast(m) => (m.value, m.path.nodes().to_vec()),
                Outgoing::Unicast(..) => unreachable!("flooding never unicasts"),
            })
            .collect();
        flooders.push(flooder);
        pending.push(apply_fault(fault, n(v), 0, msgs));
    }

    let mut transcript_rounds = Vec::new();
    for round in 0..rounds {
        let mut record = Vec::new();
        for (v, msgs) in pending.iter().enumerate() {
            for (value, path) in msgs {
                record.push((n(v), *value, path.clone()));
            }
        }
        transcript_rounds.push(record);

        let mut inboxes: Vec<Vec<Delivery<NaiveFloodMsg>>> = vec![Vec::new(); node_count];
        for (sender, msgs) in pending.iter().enumerate() {
            for (value, path) in msgs {
                for neighbor in graph.neighbors(n(sender)) {
                    inboxes[neighbor.index()].push(Delivery {
                        from: n(sender),
                        message: NaiveFloodMsg {
                            value: *value,
                            path: Path::from_nodes(path.iter().copied()),
                        },
                    });
                }
            }
        }

        let mut next_pending = Vec::with_capacity(node_count);
        for (v, flooder) in flooders.iter_mut().enumerate() {
            let out = flooder.on_round(graph, round == 0, &inboxes[v]);
            let msgs: Vec<(Value, Vec<NodeId>)> = out
                .iter()
                .map(|o| match o {
                    Outgoing::Broadcast(m) => (m.value, m.path.nodes().to_vec()),
                    Outgoing::Unicast(..) => unreachable!("flooding never unicasts"),
                })
                .collect();
            next_pending.push(apply_fault(fault, n(v), round + 1, msgs));
        }
        pending = next_pending;
    }

    Transcript {
        rounds: transcript_rounds,
        received_from: flooders
            .iter()
            .map(|f| {
                (0..node_count)
                    .flat_map(|origin| {
                        f.received_from(n(origin))
                            .into_iter()
                            .map(|(p, v)| (p.nodes().to_vec(), v))
                    })
                    .collect()
            })
            .collect(),
        overheard: flooders
            .iter()
            .map(|f| {
                f.overheard()
                    .into_iter()
                    .map(|(from, p, v)| (from, p.nodes().to_vec(), v))
                    .collect()
            })
            .collect(),
        received_counts: flooders.iter().map(NaiveFlooder::received_count).collect(),
    }
}

fn assert_equivalent(graph: &Graph, inputs: &[Value], fault: Fault, label: &str) {
    let rounds = graph.node_count() + 1;
    let interned = run_interned(graph, inputs, rounds, fault);
    let naive = run_naive(graph, inputs, rounds, fault);
    assert_eq!(
        interned.rounds, naive.rounds,
        "{label}: per-round transcripts diverge"
    );
    assert_eq!(
        interned.received_from, naive.received_from,
        "{label}: received maps diverge"
    );
    assert_eq!(
        interned.overheard, naive.overheard,
        "{label}: overheard sets diverge"
    );
    assert_eq!(
        interned.received_counts, naive.received_counts,
        "{label}: received counts diverge"
    );
}

fn alternating_inputs(count: usize) -> Vec<Value> {
    (0..count).map(|i| Value::from(i % 2 == 0)).collect()
}

#[test]
fn fault_free_flood_is_identical_on_the_5_cycle() {
    let graph = generators::cycle(5);
    assert_equivalent(&graph, &alternating_inputs(5), Fault::None, "cycle5/honest");
}

#[test]
fn fault_free_flood_is_identical_on_the_clique() {
    let graph = generators::complete(5);
    assert_equivalent(&graph, &alternating_inputs(5), Fault::None, "k5/honest");
}

#[test]
fn tampered_relays_are_identical_on_cycle_and_clique() {
    for (label, graph) in [
        ("cycle6/tamper", generators::cycle(6)),
        ("k5/tamper", generators::complete(5)),
    ] {
        assert_equivalent(
            &graph,
            &alternating_inputs(graph.node_count()),
            Fault::TamperRelays(n(1)),
            label,
        );
    }
}

#[test]
fn equivocation_suppression_is_identical() {
    // The equivocating node's second, conflicting copy must be dropped by
    // rule (ii) in both engines, leaving identical state.
    for (label, graph) in [
        ("cycle5/equivocate", generators::cycle(5)),
        ("k4/equivocate", generators::complete(4)),
    ] {
        assert_equivalent(
            &graph,
            &alternating_inputs(graph.node_count()),
            Fault::Equivocate(n(0)),
            label,
        );
    }
}

#[test]
fn default_injection_for_silent_nodes_is_identical() {
    for (label, graph) in [
        ("cycle5/silent", generators::cycle(5)),
        ("k5/silent", generators::complete(5)),
    ] {
        assert_equivalent(
            &graph,
            &alternating_inputs(graph.node_count()),
            Fault::Silent(n(2)),
            label,
        );
    }
}

#[test]
fn wheel_and_circulant_floods_are_identical() {
    for (label, graph) in [
        ("wheel8/honest", generators::wheel(8)),
        ("circulant8/tamper", generators::circulant(8, &[1, 2])),
    ] {
        assert_equivalent(
            &graph,
            &alternating_inputs(graph.node_count()),
            Fault::TamperRelays(n(3)),
            label,
        );
    }
}

#[test]
fn query_accessors_agree_value_by_value() {
    // Beyond transcript equality: spot-check the query APIs (value_along,
    // paths_with_value_excluding) on the clique where many paths exist.
    let graph = generators::complete(5);
    let inputs = alternating_inputs(5);
    let arena = SharedPathArena::new();
    let mut interned: Vec<Flooder> = Vec::new();
    let mut naive: Vec<NaiveFlooder> = Vec::new();
    let mut pending_i = Vec::new();
    let mut pending_n = Vec::new();
    for (v, &input) in inputs.iter().enumerate() {
        let (f, out) = Flooder::start(arena.clone(), n(v), input);
        interned.push(f);
        pending_i.push(out);
        let (f, out) = NaiveFlooder::start(n(v), input);
        naive.push(f);
        pending_n.push(out);
    }
    for round in 0..5 {
        let mut inboxes_i: Vec<Vec<Delivery<FloodMsg>>> = vec![Vec::new(); 5];
        let mut inboxes_n: Vec<Vec<Delivery<NaiveFloodMsg>>> = vec![Vec::new(); 5];
        for sender in 0..5 {
            for o in &pending_i[sender] {
                if let Outgoing::Broadcast(m) = o {
                    for neighbor in graph.neighbors(n(sender)) {
                        inboxes_i[neighbor.index()].push(Delivery {
                            from: n(sender),
                            message: *m,
                        });
                    }
                }
            }
            for o in &pending_n[sender] {
                if let Outgoing::Broadcast(m) = o {
                    for neighbor in graph.neighbors(n(sender)) {
                        inboxes_n[neighbor.index()].push(Delivery {
                            from: n(sender),
                            message: m.clone(),
                        });
                    }
                }
            }
        }
        for v in 0..5 {
            pending_i[v] = interned[v].on_round(&graph, round == 0, &inboxes_i[v]);
            pending_n[v] = naive[v].on_round(&graph, round == 0, &inboxes_n[v]);
        }
    }
    let exclude: NodeSet = [n(1), n(3)].into_iter().collect();
    for v in 0..5 {
        for origin in 0..5 {
            for value in [Value::Zero, Value::One] {
                assert_eq!(
                    interned[v].paths_with_value(n(origin), value),
                    naive[v].paths_with_value(n(origin), value),
                    "paths_with_value(v{v}, origin v{origin}, {value})"
                );
                assert_eq!(
                    interned[v].paths_with_value_excluding(n(origin), value, &exclude),
                    naive[v].paths_with_value_excluding(n(origin), value, &exclude),
                    "paths_with_value_excluding(v{v}, origin v{origin}, {value})"
                );
            }
            for (path, _) in naive[v].received_from(n(origin)) {
                assert_eq!(
                    interned[v].value_along(&path),
                    naive[v].value_along(&path),
                    "value_along(v{v}, {path})"
                );
            }
        }
    }
}
