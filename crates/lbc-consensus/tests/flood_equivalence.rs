//! Byte-level equivalence of the three flood engines — the verification
//! ladder of the flood fabric.
//!
//! All engines run the same whole-graph flood scripts — every node floods
//! its input for `n` rounds under local-broadcast delivery — and the tests
//! assert that per-round transcripts (every broadcast's value and resolved
//! path, in emission order), the final received maps, and the overheard sets
//! are identical across:
//!
//! * [`LedgerFlooder`] — the production shared-fabric engine,
//! * [`Flooder`] — the per-node path-interning control,
//! * [`NaiveFlooder`] — the pre-interning reference.
//!
//! Scripts cover the fault-free case, relay tampering, attempted
//! equivocation (suppressed by rule (ii)), omission (silent nodes and
//! default injection), and divergent per-receiver deliveries (the situation
//! where the ledger's per-node overrides must carry the engine).

use lbc_consensus::flooding::{Flooder, LedgerFlooder, NaiveFloodMsg, NaiveFlooder};
use lbc_consensus::{conditions, runner, FloodMsg};
use lbc_graph::{generators, Graph};
use lbc_model::{
    AsyncRegime, InputAssignment, NodeId, NodeSet, Path, Regime, SchedulerKind, SharedFloodLedger,
    SharedPathArena, Value,
};
use lbc_sim::{Delivery, Inbox, Outgoing};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// How a faulty node misbehaves in a script.
#[derive(Clone, Copy, PartialEq)]
enum Fault {
    None,
    /// The node never transmits (omission from the start).
    Silent(NodeId),
    /// The node flips the value of everything it sends after round 0.
    TamperRelays(NodeId),
    /// The node sends each of its transmissions twice with conflicting
    /// values (an equivocation attempt; under local broadcast both copies
    /// reach every neighbor and rule (ii) keeps only the first).
    Equivocate(NodeId),
}

/// An engine-independent transcript: per round, every node's broadcasts as
/// `(sender, value, resolved path)` in emission order; then the final state.
#[derive(Debug, PartialEq)]
struct Transcript {
    rounds: Vec<Vec<(NodeId, Value, Vec<NodeId>)>>,
    received_from: Vec<Vec<(Vec<NodeId>, Value)>>,
    overheard: Vec<Vec<(NodeId, Vec<NodeId>, Value)>>,
    received_counts: Vec<usize>,
}

fn apply_fault(
    fault: Fault,
    sender: NodeId,
    round: usize,
    msgs: Vec<(Value, Vec<NodeId>)>,
) -> Vec<(Value, Vec<NodeId>)> {
    match fault {
        Fault::None => msgs,
        Fault::Silent(bad) if sender == bad => Vec::new(),
        Fault::TamperRelays(bad) if sender == bad && round > 0 => {
            msgs.into_iter().map(|(v, p)| (v.flipped(), p)).collect()
        }
        Fault::Equivocate(bad) if sender == bad => msgs
            .into_iter()
            .flat_map(|(v, p)| [(v, p.clone()), (v.flipped(), p)])
            .collect(),
        _ => msgs,
    }
}

/// The minimal engine interface the generic script runner needs. Abstract
/// messages are `(value, path-as-nodes)` pairs so every engine's wire format
/// maps onto the same transcript.
trait Engine: Sized {
    type Msg: Clone;
    fn start(graph_nodes: usize, me: NodeId, input: Value) -> (Self, Vec<(Value, Vec<NodeId>)>);
    fn make_msg(&self, value: Value, path: &[NodeId]) -> Self::Msg;
    fn run_round(
        &mut self,
        graph: &Graph,
        first: bool,
        inbox: &[Delivery<Self::Msg>],
    ) -> Vec<(Value, Vec<NodeId>)>;
    fn received_from(&self, origin: NodeId) -> Vec<(Path, Value)>;
    fn overheard(&self) -> Vec<(NodeId, Path, Value)>;
    fn received_count(&self) -> usize;
}

thread_local! {
    static ARENA: std::cell::RefCell<Option<(SharedPathArena, SharedFloodLedger)>> =
        const { std::cell::RefCell::new(None) };
}

/// The per-script shared state (arena + ledger) interned engines resolve
/// against; reset before every script so ids never leak across scripts.
fn fresh_shared() -> (SharedPathArena, SharedFloodLedger) {
    let pair = (SharedPathArena::new(), SharedFloodLedger::new());
    ARENA.with(|slot| *slot.borrow_mut() = Some(pair.clone()));
    pair
}

fn shared() -> (SharedPathArena, SharedFloodLedger) {
    ARENA.with(|slot| slot.borrow().clone().expect("script started"))
}

impl Engine for LedgerFlooder {
    type Msg = FloodMsg;

    fn start(_nodes: usize, me: NodeId, input: Value) -> (Self, Vec<(Value, Vec<NodeId>)>) {
        let (arena, ledger) = shared();
        let (flooder, out) = LedgerFlooder::start(arena.clone(), ledger, me, input);
        (flooder, resolve_out(&arena, &out))
    }

    fn make_msg(&self, value: Value, path: &[NodeId]) -> FloodMsg {
        let (arena, _) = shared();
        FloodMsg {
            value,
            path: arena.intern(&Path::from_nodes(path.iter().copied())),
        }
    }

    fn run_round(
        &mut self,
        graph: &Graph,
        first: bool,
        inbox: &[Delivery<FloodMsg>],
    ) -> Vec<(Value, Vec<NodeId>)> {
        let out = self.on_round(graph, first, Inbox::direct(inbox));
        let (arena, _) = shared();
        resolve_out(&arena, &out)
    }

    fn received_from(&self, origin: NodeId) -> Vec<(Path, Value)> {
        LedgerFlooder::received_from(self, origin)
    }

    fn overheard(&self) -> Vec<(NodeId, Path, Value)> {
        LedgerFlooder::overheard(self)
    }

    fn received_count(&self) -> usize {
        LedgerFlooder::received_count(self)
    }
}

impl Engine for Flooder {
    type Msg = FloodMsg;

    fn start(_nodes: usize, me: NodeId, input: Value) -> (Self, Vec<(Value, Vec<NodeId>)>) {
        let (arena, _) = shared();
        let (flooder, out) = Flooder::start(arena.clone(), me, input);
        (flooder, resolve_out(&arena, &out))
    }

    fn make_msg(&self, value: Value, path: &[NodeId]) -> FloodMsg {
        let (arena, _) = shared();
        FloodMsg {
            value,
            path: arena.intern(&Path::from_nodes(path.iter().copied())),
        }
    }

    fn run_round(
        &mut self,
        graph: &Graph,
        first: bool,
        inbox: &[Delivery<FloodMsg>],
    ) -> Vec<(Value, Vec<NodeId>)> {
        let out = self.on_round(graph, first, Inbox::direct(inbox));
        let (arena, _) = shared();
        resolve_out(&arena, &out)
    }

    fn received_from(&self, origin: NodeId) -> Vec<(Path, Value)> {
        Flooder::received_from(self, origin)
    }

    fn overheard(&self) -> Vec<(NodeId, Path, Value)> {
        Flooder::overheard(self)
    }

    fn received_count(&self) -> usize {
        Flooder::received_count(self)
    }
}

impl Engine for NaiveFlooder {
    type Msg = NaiveFloodMsg;

    fn start(_nodes: usize, me: NodeId, input: Value) -> (Self, Vec<(Value, Vec<NodeId>)>) {
        let (flooder, out) = NaiveFlooder::start(me, input);
        let resolved = out
            .iter()
            .map(|o| match o {
                Outgoing::Broadcast(m) => (m.value, m.path.nodes().to_vec()),
                Outgoing::Unicast(..) => unreachable!("flooding never unicasts"),
            })
            .collect();
        (flooder, resolved)
    }

    fn make_msg(&self, value: Value, path: &[NodeId]) -> NaiveFloodMsg {
        NaiveFloodMsg {
            value,
            path: Path::from_nodes(path.iter().copied()),
        }
    }

    fn run_round(
        &mut self,
        graph: &Graph,
        first: bool,
        inbox: &[Delivery<NaiveFloodMsg>],
    ) -> Vec<(Value, Vec<NodeId>)> {
        self.on_round(graph, first, Inbox::direct(inbox))
            .iter()
            .map(|o| match o {
                Outgoing::Broadcast(m) => (m.value, m.path.nodes().to_vec()),
                Outgoing::Unicast(..) => unreachable!("flooding never unicasts"),
            })
            .collect()
    }

    fn received_from(&self, origin: NodeId) -> Vec<(Path, Value)> {
        NaiveFlooder::received_from(self, origin)
    }

    fn overheard(&self) -> Vec<(NodeId, Path, Value)> {
        NaiveFlooder::overheard(self)
    }

    fn received_count(&self) -> usize {
        NaiveFlooder::received_count(self)
    }
}

fn resolve_out(arena: &SharedPathArena, out: &[Outgoing<FloodMsg>]) -> Vec<(Value, Vec<NodeId>)> {
    out.iter()
        .map(|o| match o {
            Outgoing::Broadcast(m) => (m.value, arena.resolve(m.path).nodes().to_vec()),
            Outgoing::Unicast(..) => unreachable!("flooding never unicasts"),
        })
        .collect()
}

/// Runs one engine over the script and records the transcript.
fn run_engine<E: Engine>(
    graph: &Graph,
    inputs: &[Value],
    rounds: usize,
    fault: Fault,
) -> Transcript {
    let _ = fresh_shared();
    let node_count = graph.node_count();
    let mut flooders: Vec<E> = Vec::new();
    // pending[v] = the abstract messages v transmits before the next round.
    let mut pending: Vec<Vec<(Value, Vec<NodeId>)>> = Vec::new();
    for (v, &input) in inputs.iter().enumerate().take(node_count) {
        let (flooder, msgs) = E::start(node_count, n(v), input);
        flooders.push(flooder);
        pending.push(apply_fault(fault, n(v), 0, msgs));
    }

    let mut transcript_rounds = Vec::new();
    for round in 0..rounds {
        // Record this round's (faulted) transmissions.
        let mut record = Vec::new();
        for (v, msgs) in pending.iter().enumerate() {
            for (value, path) in msgs {
                record.push((n(v), *value, path.clone()));
            }
        }
        transcript_rounds.push(record);

        // Deliver to all neighbors, in sender order.
        let mut inboxes: Vec<Vec<Delivery<E::Msg>>> = (0..node_count).map(|_| Vec::new()).collect();
        for (sender, msgs) in pending.iter().enumerate() {
            for (value, path) in msgs {
                let message = flooders[sender].make_msg(*value, path);
                for neighbor in graph.neighbors(n(sender)) {
                    inboxes[neighbor.index()].push(Delivery {
                        from: n(sender),
                        message: message.clone(),
                    });
                }
            }
        }

        let mut next_pending = Vec::with_capacity(node_count);
        for (v, flooder) in flooders.iter_mut().enumerate() {
            let msgs = flooder.run_round(graph, round == 0, &inboxes[v]);
            next_pending.push(apply_fault(fault, n(v), round + 1, msgs));
        }
        pending = next_pending;
    }

    Transcript {
        rounds: transcript_rounds,
        received_from: flooders
            .iter()
            .map(|f| {
                (0..node_count)
                    .flat_map(|origin| {
                        f.received_from(n(origin))
                            .into_iter()
                            .map(|(p, v)| (p.nodes().to_vec(), v))
                    })
                    .collect()
            })
            .collect(),
        overheard: flooders
            .iter()
            .map(|f| {
                f.overheard()
                    .into_iter()
                    .map(|(from, p, v)| (from, p.nodes().to_vec(), v))
                    .collect()
            })
            .collect(),
        received_counts: flooders.iter().map(E::received_count).collect(),
    }
}

fn assert_equivalent(graph: &Graph, inputs: &[Value], fault: Fault, label: &str) {
    let rounds = graph.node_count() + 1;
    let naive = run_engine::<NaiveFlooder>(graph, inputs, rounds, fault);
    for (engine, transcript) in [
        (
            "per-node",
            run_engine::<Flooder>(graph, inputs, rounds, fault),
        ),
        (
            "ledger",
            run_engine::<LedgerFlooder>(graph, inputs, rounds, fault),
        ),
    ] {
        assert_eq!(
            transcript.rounds, naive.rounds,
            "{label}/{engine}: per-round transcripts diverge"
        );
        assert_eq!(
            transcript.received_from, naive.received_from,
            "{label}/{engine}: received maps diverge"
        );
        assert_eq!(
            transcript.overheard, naive.overheard,
            "{label}/{engine}: overheard sets diverge"
        );
        assert_eq!(
            transcript.received_counts, naive.received_counts,
            "{label}/{engine}: received counts diverge"
        );
    }
}

fn alternating_inputs(count: usize) -> Vec<Value> {
    (0..count).map(|i| Value::from(i % 2 == 0)).collect()
}

#[test]
fn fault_free_flood_is_identical_on_the_5_cycle() {
    let graph = generators::cycle(5);
    assert_equivalent(&graph, &alternating_inputs(5), Fault::None, "cycle5/honest");
}

#[test]
fn fault_free_flood_is_identical_on_the_clique() {
    let graph = generators::complete(5);
    assert_equivalent(&graph, &alternating_inputs(5), Fault::None, "k5/honest");
}

#[test]
fn tampered_relays_are_identical_on_cycle_and_clique() {
    for (label, graph) in [
        ("cycle6/tamper", generators::cycle(6)),
        ("k5/tamper", generators::complete(5)),
    ] {
        assert_equivalent(
            &graph,
            &alternating_inputs(graph.node_count()),
            Fault::TamperRelays(n(1)),
            label,
        );
    }
}

#[test]
fn equivocation_suppression_is_identical() {
    // The equivocating node's second, conflicting copy must be dropped by
    // rule (ii) in all engines, leaving identical state.
    for (label, graph) in [
        ("cycle5/equivocate", generators::cycle(5)),
        ("k4/equivocate", generators::complete(4)),
    ] {
        assert_equivalent(
            &graph,
            &alternating_inputs(graph.node_count()),
            Fault::Equivocate(n(0)),
            label,
        );
    }
}

#[test]
fn default_injection_for_silent_nodes_is_identical() {
    for (label, graph) in [
        ("cycle5/silent", generators::cycle(5)),
        ("k5/silent", generators::complete(5)),
    ] {
        assert_equivalent(
            &graph,
            &alternating_inputs(graph.node_count()),
            Fault::Silent(n(2)),
            label,
        );
    }
}

#[test]
fn wheel_and_circulant_floods_are_identical() {
    for (label, graph) in [
        ("wheel8/honest", generators::wheel(8)),
        ("circulant8/tamper", generators::circulant(8, &[1, 2])),
    ] {
        assert_equivalent(
            &graph,
            &alternating_inputs(graph.node_count()),
            Fault::TamperRelays(n(3)),
            label,
        );
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

    /// Three-way ladder, randomized: on random connected graphs satisfying
    /// the paper's f = 1 conditions, with a random tamper / omission /
    /// equivocation fault, all three engines produce byte-identical
    /// transcripts and final state.
    #[test]
    fn three_way_equivalence_on_random_connected_graphs(
        size in 5usize..9,
        seed in 0u64..10_000,
        fault_index in 0usize..9,
        fault_kind in 0usize..4,
        bits in 0u64..512,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let graph = generators::random_satisfying(size, 1, 0.3, &mut rng);
        let bad = n(fault_index % graph.node_count());
        let fault = match fault_kind % 4 {
            0 => Fault::None,
            1 => Fault::Silent(bad), // omission
            2 => Fault::TamperRelays(bad),
            _ => Fault::Equivocate(bad),
        };
        let inputs: Vec<Value> = (0..graph.node_count())
            .map(|i| Value::from(bits >> i & 1 == 1))
            .collect();
        assert_equivalent(&graph, &inputs, fault, "random");
    }
}

/// Divergent per-receiver deliveries: the same `(sender, path)` key reaches
/// two receivers with *different* values (possible under point-to-point or
/// hybrid equivocators). The ledger records one first value; each node's
/// queries must still answer with the node's *own* first value — this is
/// the per-node override path that keeps sharing sound beyond local
/// broadcast.
#[test]
fn ledger_overrides_keep_divergent_views_per_node() {
    let graph = generators::cycle(5);
    let (arena, ledger) = fresh_shared();
    // Nodes 1 and 3 both neighbor nodes 0/2... use receivers 1 and 3 of
    // transmissions claimed from their common neighbor 2.
    let (mut at1, _) = LedgerFlooder::start(arena.clone(), ledger.clone(), n(1), Value::Zero);
    let (mut at3, _) = LedgerFlooder::start(arena.clone(), ledger.clone(), n(3), Value::Zero);
    let (mut control1, _) = Flooder::start(arena.clone(), n(1), Value::Zero);
    let (mut control3, _) = Flooder::start(arena.clone(), n(3), Value::Zero);

    // Node 2 "initiates" with value One toward node 1 but value Zero toward
    // node 3 (an equivocation the physical layer permitted).
    let to1 = [Delivery {
        from: n(2),
        message: FloodMsg::initiation(Value::One),
    }];
    let to3 = [Delivery {
        from: n(2),
        message: FloodMsg::initiation(Value::Zero),
    }];
    let _ = at1.on_round(&graph, true, Inbox::direct(&to1));
    let _ = at3.on_round(&graph, true, Inbox::direct(&to3));
    let _ = control1.on_round(&graph, true, Inbox::direct(&to1));
    let _ = control3.on_round(&graph, true, Inbox::direct(&to3));

    let via2_at1 = Path::from_nodes([n(2), n(1)]);
    let via2_at3 = Path::from_nodes([n(2), n(3)]);
    assert_eq!(at1.value_along(&via2_at1), Some(Value::One));
    assert_eq!(at3.value_along(&via2_at3), Some(Value::Zero));
    assert_eq!(at1.value_along(&via2_at1), control1.value_along(&via2_at1));
    assert_eq!(at3.value_along(&via2_at3), control3.value_along(&via2_at3));
    assert_eq!(at1.overheard(), control1.overheard());
    assert_eq!(at3.overheard(), control3.overheard());
}

#[test]
fn ledger_restart_behaves_like_a_fresh_start() {
    let graph = generators::cycle(5);
    let (arena, ledger) = fresh_shared();
    let (mut reused, _) = LedgerFlooder::start(arena.clone(), ledger.clone(), n(2), Value::Zero);
    let inbox = [
        Delivery {
            from: n(1),
            message: FloodMsg {
                value: Value::One,
                path: arena.intern(&Path::singleton(n(0))),
            },
        },
        Delivery {
            from: n(3),
            message: FloodMsg {
                value: Value::Zero,
                path: arena.intern(&Path::singleton(n(4))),
            },
        },
    ];
    let _ = reused.on_round(&graph, true, Inbox::direct(&inbox));
    assert!(reused.received_count() > 1);

    // Restarting with a new value must reproduce a fresh flooder's
    // behaviour exactly. The fresh control runs on the next epoch of the
    // same ledger — exactly what the restarted engine migrates to.
    let init = reused.restart(Value::One);
    let (mut fresh, fresh_init) =
        LedgerFlooder::start_on(arena.clone(), ledger.clone(), n(2), Value::One, 0, 1);
    assert_eq!(init, fresh_init);
    assert_eq!(reused.received_count(), fresh.received_count());
    assert_eq!(reused.own_value(), fresh.own_value());
    assert_eq!(reused.overheard(), fresh.overheard());

    let out_reused = reused.on_round(&graph, true, Inbox::direct(&inbox));
    let out_fresh = fresh.on_round(&graph, true, Inbox::direct(&inbox));
    assert_eq!(out_reused, out_fresh);
    assert_eq!(reused.received_from(n(0)), fresh.received_from(n(0)));
    assert_eq!(reused.received_from(n(4)), fresh.received_from(n(4)));
    assert_eq!(reused.overheard(), fresh.overheard());
}

#[test]
fn query_accessors_agree_value_by_value() {
    // Beyond transcript equality: spot-check the query APIs (value_along,
    // paths_with_value_excluding, overheard_exactly) on the clique where
    // many paths exist.
    let graph = generators::complete(5);
    let inputs = alternating_inputs(5);
    let (arena, ledger) = fresh_shared();
    let mut ledgered: Vec<LedgerFlooder> = Vec::new();
    let mut interned: Vec<Flooder> = Vec::new();
    let mut naive: Vec<NaiveFlooder> = Vec::new();
    let mut pending_l = Vec::new();
    let mut pending_i = Vec::new();
    let mut pending_n = Vec::new();
    for (v, &input) in inputs.iter().enumerate() {
        let (f, out) = LedgerFlooder::start(arena.clone(), ledger.clone(), n(v), input);
        ledgered.push(f);
        pending_l.push(out);
        let (f, out) = Flooder::start(arena.clone(), n(v), input);
        interned.push(f);
        pending_i.push(out);
        let (f, out) = NaiveFlooder::start(n(v), input);
        naive.push(f);
        pending_n.push(out);
    }
    for round in 0..5 {
        let mut inboxes_l: Vec<Vec<Delivery<FloodMsg>>> = vec![Vec::new(); 5];
        let mut inboxes_i: Vec<Vec<Delivery<FloodMsg>>> = vec![Vec::new(); 5];
        let mut inboxes_n: Vec<Vec<Delivery<NaiveFloodMsg>>> = vec![Vec::new(); 5];
        for sender in 0..5 {
            for o in &pending_l[sender] {
                if let Outgoing::Broadcast(m) = o {
                    for neighbor in graph.neighbors(n(sender)) {
                        inboxes_l[neighbor.index()].push(Delivery {
                            from: n(sender),
                            message: *m,
                        });
                    }
                }
            }
            for o in &pending_i[sender] {
                if let Outgoing::Broadcast(m) = o {
                    for neighbor in graph.neighbors(n(sender)) {
                        inboxes_i[neighbor.index()].push(Delivery {
                            from: n(sender),
                            message: *m,
                        });
                    }
                }
            }
            for o in &pending_n[sender] {
                if let Outgoing::Broadcast(m) = o {
                    for neighbor in graph.neighbors(n(sender)) {
                        inboxes_n[neighbor.index()].push(Delivery {
                            from: n(sender),
                            message: m.clone(),
                        });
                    }
                }
            }
        }
        for v in 0..5 {
            pending_l[v] = ledgered[v].on_round(&graph, round == 0, Inbox::direct(&inboxes_l[v]));
            pending_i[v] = interned[v].on_round(&graph, round == 0, Inbox::direct(&inboxes_i[v]));
            pending_n[v] = naive[v].on_round(&graph, round == 0, Inbox::direct(&inboxes_n[v]));
        }
    }
    let exclude: NodeSet = [n(1), n(3)].into_iter().collect();
    for v in 0..5 {
        assert_eq!(ledgered[v].overheard_ids(), interned[v].overheard_ids());
        for (from, path, value) in interned[v].overheard_ids() {
            assert!(ledgered[v].overheard_exactly(from, path, value));
            assert!(!ledgered[v].overheard_exactly(from, path, value.flipped()));
        }
        for origin in 0..5 {
            for value in [Value::Zero, Value::One] {
                let expected = naive[v].paths_with_value(n(origin), value);
                assert_eq!(
                    interned[v].paths_with_value(n(origin), value),
                    expected,
                    "per-node paths_with_value(v{v}, origin v{origin}, {value})"
                );
                assert_eq!(
                    ledgered[v].paths_with_value(n(origin), value),
                    expected,
                    "ledger paths_with_value(v{v}, origin v{origin}, {value})"
                );
                assert_eq!(
                    ledgered[v].paths_with_value_excluding(n(origin), value, &exclude),
                    naive[v].paths_with_value_excluding(n(origin), value, &exclude),
                    "ledger paths_with_value_excluding(v{v}, origin v{origin}, {value})"
                );
            }
            for (path, _) in naive[v].received_from(n(origin)) {
                let expected = naive[v].value_along(&path);
                assert_eq!(
                    interned[v].value_along(&path),
                    expected,
                    "per-node value_along(v{v}, {path})"
                );
                assert_eq!(
                    ledgered[v].value_along(&path),
                    expected,
                    "ledger value_along(v{v}, {path})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regime equivalence: the ladder extended to the asynchronous regime.
// ---------------------------------------------------------------------------
//
// The engine ladder above proves three implementations of the flood rules
// agree under lockstep delivery. The asynchronous regime adds a second
// quantifier: the *delivery schedule*. On graphs that satisfy the async
// threshold (connectivity ≥ 2f + 1), a completed flood's accepted
// `(sender, path) → value` map — and therefore the async algorithm's
// decided values — must be identical under every eventually-fair schedule:
// rule (ii) plus per-edge FIFO pins each key's first copy regardless of
// cross-edge reordering. These tests permute the schedule (every scheduler
// family × several seeds × several fairness bounds) and assert the decided
// outputs are byte-identical and correct.

/// The schedule grid every case is permuted over.
fn schedule_grid() -> Vec<Regime> {
    let mut regimes = vec![Regime::Synchronous];
    for scheduler in SchedulerKind::all() {
        for (delay, seed) in [(2, 5u64), (4, 17), (6, 902)] {
            regimes.push(Regime::Asynchronous(AsyncRegime {
                scheduler,
                delay,
                seed,
            }));
        }
    }
    regimes
}

/// Runs the async algorithm over the schedule grid and asserts identical
/// outputs everywhere; returns the common outputs.
fn assert_schedule_invariant(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    strategy: &lbc_adversary::Strategy,
    label: &str,
) -> Vec<Option<Value>> {
    let mut reference: Option<Vec<Option<Value>>> = None;
    for regime in schedule_grid() {
        let mut adversary = strategy.clone().into_adversary();
        let (outcome, _) =
            runner::run_async_flood(graph, f, inputs, faulty, &regime, &mut adversary);
        let outputs: Vec<Option<Value>> = graph.nodes().map(|v| outcome.output_of(v)).collect();
        match &reference {
            None => reference = Some(outputs),
            Some(expected) => assert_eq!(
                &outputs, expected,
                "{label}: decided values changed under {regime}"
            ),
        }
    }
    reference.expect("the grid is non-empty")
}

#[test]
fn async_decisions_are_schedule_invariant_on_conforming_graphs() {
    // C9(1,2) is 4-connected: above the async threshold for f = 1.
    let graph = generators::circulant(9, &[1, 2]);
    assert!(conditions::asynchronous_feasible(&graph, 1));
    let inputs = InputAssignment::from_bits(9, 0b011011001);
    for strategy in [
        lbc_adversary::Strategy::Honest,
        lbc_adversary::Strategy::Silent,
        lbc_adversary::Strategy::TamperRelays,
        lbc_adversary::Strategy::TamperAll,
        lbc_adversary::Strategy::Equivocate,
    ] {
        for faulty_index in [0, 4] {
            let faulty = NodeSet::singleton(n(faulty_index));
            let outputs =
                assert_schedule_invariant(&graph, 1, &inputs, &faulty, &strategy, strategy.name());
            // Conforming graphs must also *agree* (on every schedule).
            let decided: Vec<Value> = graph
                .nodes()
                .filter(|v| !faulty.contains(*v))
                .map(|v| outputs[v.index()].expect("non-faulty nodes decide"))
                .collect();
            assert!(
                decided.windows(2).all(|w| w[0] == w[1]),
                "{}: honest outputs disagree: {decided:?}",
                strategy.name()
            );
        }
    }
}

#[test]
fn async_decisions_are_schedule_invariant_even_below_threshold() {
    // The stronger fact behind the boundary campaign's determinism wall:
    // even where the algorithm *fails* (the cycle is 2-connected, below the
    // f = 1 threshold of 3), the failure itself is schedule-independent for
    // timing-independent strategies — the flood's accepted map does not
    // depend on the schedule, only the graph does.
    let graph = generators::cycle(5);
    assert!(!conditions::asynchronous_feasible(&graph, 1));
    let inputs = InputAssignment::from_bits(5, 0b11000);
    let faulty = NodeSet::singleton(n(0));
    let _ = assert_schedule_invariant(
        &graph,
        1,
        &inputs,
        &faulty,
        &lbc_adversary::Strategy::TamperRelays,
        "cycle5/tamper-relays",
    );
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    /// Scheduler-permuted deliveries yield identical decided values on
    /// random conforming graphs: Harary graphs H_{k,n} with k ≥ 3 are
    /// k-connected, hence above the async threshold for f = 1.
    #[test]
    fn async_schedule_invariance_on_random_conforming_graphs(
        k in 3usize..5,
        size in 6usize..11,
        fault_index in 0usize..11,
        strategy_index in 0usize..4,
        bits in 0u64..2048,
    ) {
        let size = size.max(k + 1);
        let graph = generators::harary(k, size);
        proptest::prop_assume!(conditions::asynchronous_feasible(&graph, 1));
        let strategy = [
            lbc_adversary::Strategy::Honest,
            lbc_adversary::Strategy::Silent,
            lbc_adversary::Strategy::TamperRelays,
            lbc_adversary::Strategy::Equivocate,
        ][strategy_index % 4]
            .clone();
        let faulty = NodeSet::singleton(n(fault_index % size));
        let inputs = InputAssignment::from_bits(size, bits);
        let outputs =
            assert_schedule_invariant(&graph, 1, &inputs, &faulty, &strategy, "random-harary");
        let decided: Vec<Value> = graph
            .nodes()
            .filter(|v| !faulty.contains(*v))
            .map(|v| outputs[v.index()].expect("non-faulty nodes decide"))
            .collect();
        proptest::prop_assert!(
            decided.windows(2).all(|w| w[0] == w[1]),
            "honest outputs disagree on a conforming graph: {:?}",
            decided
        );
    }
}
