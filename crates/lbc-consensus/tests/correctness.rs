//! End-to-end correctness of Algorithms 1–3 and the point-to-point baseline
//! under fault placements and adversary strategies.

use lbc_adversary::Strategy;
use lbc_consensus::{conditions, runner};
use lbc_graph::{generators, Graph};
use lbc_model::{InputAssignment, NodeId, NodeSet};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// A small but adversarial set of input assignments: all-zero, all-one,
/// alternating, single-one, single-zero.
fn input_battery(nodes: usize) -> Vec<InputAssignment> {
    let mut patterns = vec![
        InputAssignment::all_zero(nodes),
        InputAssignment::all_one(nodes),
        InputAssignment::from_bits(nodes, 0b0101_0101_0101_0101 & ((1 << nodes) - 1)),
        InputAssignment::from_bits(nodes, 1),
        InputAssignment::from_bits(nodes, ((1u64 << nodes) - 1) ^ 1),
    ];
    patterns.dedup();
    patterns
}

fn check_algorithm1(graph: &Graph, f: usize, faulty: &NodeSet, strategy: &Strategy) {
    for inputs in input_battery(graph.node_count()) {
        let mut adversary = strategy.clone().into_adversary();
        let (outcome, _) = runner::run_algorithm1(graph, f, &inputs, faulty, &mut adversary);
        assert!(
            outcome.verdict().is_correct(),
            "Algorithm 1 failed: graph n={}, f={f}, faulty={faulty}, strategy={}, inputs={inputs}: {outcome}",
            graph.node_count(),
            strategy.name(),
        );
    }
}

fn check_algorithm2(graph: &Graph, f: usize, faulty: &NodeSet, strategy: &Strategy) {
    for inputs in input_battery(graph.node_count()) {
        let mut adversary = strategy.clone().into_adversary();
        let (outcome, _) = runner::run_algorithm2(graph, f, &inputs, faulty, &mut adversary);
        assert!(
            outcome.verdict().is_correct(),
            "Algorithm 2 failed: graph n={}, f={f}, faulty={faulty}, strategy={}, inputs={inputs}: {outcome}",
            graph.node_count(),
            strategy.name(),
        );
    }
}

/// Figure 1(a): the 5-cycle tolerates a single Byzantine node under the local
/// broadcast model, for every fault placement and every adversary strategy.
#[test]
fn algorithm1_on_the_5_cycle_tolerates_one_fault() {
    let graph = generators::paper_fig1a();
    assert!(conditions::local_broadcast_feasible(&graph, 1));
    for faulty_node in 0..5 {
        let faulty = NodeSet::singleton(n(faulty_node));
        for strategy in Strategy::all(42) {
            check_algorithm1(&graph, 1, &faulty, &strategy);
        }
    }
}

/// K5 satisfies the f = 2 conditions (complete graph on 2f + 1 nodes);
/// Algorithm 1 reaches consensus for every 2-fault placement under the
/// tampering and crash strategies.
#[test]
fn algorithm1_on_k5_tolerates_two_faults() {
    let graph = generators::complete(5);
    assert!(conditions::local_broadcast_feasible(&graph, 2));
    let strategies = [
        Strategy::Silent,
        Strategy::TamperAll,
        Strategy::TamperRelays,
        Strategy::Equivocate,
    ];
    for a in 0..5 {
        for b in (a + 1)..5 {
            let faulty: NodeSet = [n(a), n(b)].into_iter().collect();
            for strategy in &strategies {
                check_algorithm1(&graph, 2, &faulty, strategy);
            }
        }
    }
}

/// The efficient Algorithm 2 on the 5-cycle (2f-connected for f = 1): every
/// fault placement, under commission-style misbehaviour (tampering,
/// equivocation attempts, late switches).
///
/// Omission-only misbehaviour is exercised separately by
/// [`algorithm2_omission_gap_reproduction_finding`], which documents a gap in
/// the paper's Appendix C fault-identification rule.
#[test]
fn algorithm2_on_the_5_cycle_tolerates_one_commission_fault() {
    let graph = generators::paper_fig1a();
    assert!(conditions::efficient_algorithm_applicable(&graph, 1));
    let strategies = [
        Strategy::Honest,
        Strategy::TamperAll,
        Strategy::TamperRelays,
        Strategy::Equivocate,
        Strategy::SleeperTamper { honest_rounds: 3 },
    ];
    for faulty_node in 0..5 {
        let faulty = NodeSet::singleton(n(faulty_node));
        for strategy in &strategies {
            check_algorithm2(&graph, 1, &faulty, strategy);
        }
    }
}

/// **Reproduction finding.** The fault-identification rule of Appendix C
/// ("mark the first node reliably reported to have forwarded the *opposite*
/// value") only detects commission (tampering). A faulty node that simply
/// *omits* relaying on an exactly-`2f`-connected graph can leave two type B
/// nodes with different reliably-received input sets and no identified
/// faults, so their majority decisions can differ.
///
/// Concretely: on the 5-cycle with inputs `1,0,1,0,1` and node 0 silent,
/// node 2 reliably receives only `{v0↦1 (default), v1↦0, v2↦1, v3↦0}` (a tie,
/// decided 0) while the other nodes see three ones and decide 1.
///
/// This test pins the counterexample down so that the gap — and any future
/// fix — is visible. Algorithm 1 (the paper's main algorithm) handles the
/// same scenario correctly, which the last assertion double-checks.
#[test]
fn algorithm2_omission_gap_reproduction_finding() {
    let graph = generators::paper_fig1a();
    let inputs = InputAssignment::from_bits(5, 0b10101);
    let faulty = NodeSet::singleton(n(0));

    let mut adversary = Strategy::Silent.into_adversary();
    let (outcome, _) = runner::run_algorithm2(&graph, 1, &inputs, &faulty, &mut adversary);
    let verdict = outcome.verdict();
    assert!(
        !verdict.agreement,
        "the documented Appendix C omission gap no longer reproduces; \
         update EXPERIMENTS.md if Algorithm 2 was strengthened: {outcome}"
    );
    assert!(verdict.validity && verdict.termination);

    // Algorithm 1 is immune: same graph, same inputs, same adversary.
    let mut adversary = Strategy::Silent.into_adversary();
    let (outcome, _) = runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary);
    assert!(outcome.verdict().is_correct(), "{outcome}");
}

/// Algorithm 2 on K5 with two faults (K5 is 4-connected = 2f-connected).
#[test]
fn algorithm2_on_k5_tolerates_two_faults() {
    let graph = generators::complete(5);
    assert!(conditions::efficient_algorithm_applicable(&graph, 2));
    let strategies = [
        Strategy::Silent,
        Strategy::TamperRelays,
        Strategy::Equivocate,
    ];
    for a in 0..5 {
        for b in (a + 1)..5 {
            let faulty: NodeSet = [n(a), n(b)].into_iter().collect();
            for strategy in &strategies {
                check_algorithm2(&graph, 2, &faulty, strategy);
            }
        }
    }
}

/// Algorithm 2 is much cheaper than Algorithm 1 in rounds: 3n versus
/// n · Σ C(n, i).
#[test]
fn algorithm2_uses_linearly_many_rounds() {
    let graph = generators::paper_fig1a();
    let inputs = InputAssignment::from_bits(5, 0b01010);
    let faulty = NodeSet::singleton(n(1));
    let mut adversary = Strategy::TamperRelays.into_adversary();
    let (_, trace1) = runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary);
    let mut adversary = Strategy::TamperRelays.into_adversary();
    let (_, trace2) = runner::run_algorithm2(&graph, 1, &inputs, &faulty, &mut adversary);
    assert!(trace2.rounds() < trace1.rounds());
    assert!(trace2.rounds() <= 15);
    assert_eq!(trace1.rounds(), 30);
}

/// Hybrid model: K5 with f = 1, t = 1 — the single fault may equivocate and
/// Algorithm 3 still reaches consensus.
#[test]
fn algorithm3_on_k5_tolerates_an_equivocating_fault() {
    let graph = generators::complete(5);
    assert!(conditions::hybrid_feasible(&graph, 1, 1));
    for faulty_node in 0..5 {
        let faulty = NodeSet::singleton(n(faulty_node));
        for strategy in [Strategy::Equivocate, Strategy::TamperAll, Strategy::Silent] {
            for inputs in input_battery(5) {
                let mut adversary = strategy.clone().into_adversary();
                let (outcome, _) =
                    runner::run_algorithm3(&graph, 1, 1, &faulty, &inputs, &faulty, &mut adversary);
                assert!(
                    outcome.verdict().is_correct(),
                    "Algorithm 3 failed: faulty={faulty}, strategy={}, inputs={inputs}: {outcome}",
                    strategy.name(),
                );
            }
        }
    }
}

/// Hybrid model with a *mixed* fault set: on K7 with f = 2, t = 1, one fault
/// equivocates and the other is restricted to local broadcast.
#[test]
fn algorithm3_on_k7_with_mixed_faults() {
    let graph = generators::complete(7);
    assert!(conditions::hybrid_feasible(&graph, 2, 1));
    let faulty: NodeSet = [n(0), n(3)].into_iter().collect();
    let equivocators = NodeSet::singleton(n(0));
    let inputs = InputAssignment::from_bits(7, 0b0110100);
    let mut adversary = Strategy::Equivocate.into_adversary();
    let (outcome, _) = runner::run_algorithm3(
        &graph,
        2,
        1,
        &equivocators,
        &inputs,
        &faulty,
        &mut adversary,
    );
    assert!(outcome.verdict().is_correct(), "{outcome}");
}

/// The point-to-point baseline works where Dolev's conditions hold (K4, f=1),
/// including against an equivocating fault.
#[test]
fn p2p_baseline_on_k4_tolerates_one_fault() {
    let graph = generators::complete(4);
    assert!(conditions::point_to_point_feasible(&graph, 1));
    for faulty_node in 0..4 {
        let faulty = NodeSet::singleton(n(faulty_node));
        for strategy in [
            Strategy::Silent,
            Strategy::TamperAll,
            Strategy::Equivocate,
            Strategy::Random { seed: 5 },
        ] {
            for inputs in input_battery(4) {
                let mut adversary = strategy.clone().into_adversary();
                let (outcome, _) =
                    runner::run_p2p_baseline(&graph, 1, &inputs, &faulty, &mut adversary);
                assert!(
                    outcome.verdict().is_correct(),
                    "p2p baseline failed: faulty={faulty}, strategy={}, inputs={inputs}: {outcome}",
                    strategy.name(),
                );
            }
        }
    }
}

/// The headline comparison: the 5-cycle supports f = 1 under local broadcast
/// but not under point-to-point; K5 supports f = 2 under local broadcast but
/// needs K7 under point-to-point.
#[test]
fn local_broadcast_needs_less_than_point_to_point() {
    let cycle = generators::paper_fig1a();
    assert!(conditions::local_broadcast_feasible(&cycle, 1));
    assert!(!conditions::point_to_point_feasible(&cycle, 1));

    let k5 = generators::complete(5);
    assert!(conditions::local_broadcast_feasible(&k5, 2));
    assert!(!conditions::point_to_point_feasible(&k5, 2));
    assert!(conditions::point_to_point_feasible(
        &generators::complete(7),
        2
    ));
}
