//! Message types exchanged by the consensus algorithms.
//!
//! Since the path-interning refactor, messages carry [`PathId`]s rather than
//! owned node vectors: a message is two or three machine words, so the
//! simulator's per-neighbor delivery clones are trivially cheap, and the
//! receiving flood engine keys its state by the id directly. Ids are
//! resolved against the execution's [`lbc_model::SharedPathArena`], which
//! the simulator hands to every protocol hook.

use lbc_model::{NodeId, PathId, SharedPathArena, Value};
use lbc_sim::{ByzantineMessage, MessageView, MsgMeta};

/// A path-annotated flooding message `(b, Π)` as used in step (a) of
/// Algorithms 1 and 3 and in phase 1 of Algorithm 2.
///
/// `path` is the sequence of nodes that have *transmitted* the message so
/// far, **excluding** the current transmitter: an origin `u` initiates the
/// flood of its value `b` by broadcasting `(b, ⊥)`; a relay that received
/// `(b, Π)` from neighbor `w` forwards `(b, Π‑w)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FloodMsg {
    /// The flooded binary value.
    pub value: Value,
    /// The relay path so far (excluding the current transmitter), interned.
    pub path: PathId,
}

impl FloodMsg {
    /// The initiation message `(value, ⊥)` broadcast by an origin.
    #[must_use]
    pub fn initiation(value: Value) -> Self {
        FloodMsg {
            value,
            path: PathId::EMPTY,
        }
    }

    /// The origin of the flooded value: the first node of the relay path, or
    /// `transmitter` itself when the path is empty (an initiation).
    #[must_use]
    pub fn origin(&self, arena: &SharedPathArena, transmitter: NodeId) -> NodeId {
        arena.first(self.path).unwrap_or(transmitter)
    }
}

impl ByzantineMessage for FloodMsg {
    fn tampered(&self) -> Self {
        FloodMsg {
            value: self.value.flipped(),
            path: self.path,
        }
    }
}

/// A phase-2 report of Algorithm 2: "node `observed` transmitted the phase-1
/// flooding message `(value, observed_path)`".
///
/// Reports carry the *exact* transmission (value **and** the path annotation
/// it was transmitted with), which is what makes the fault-identification
/// rule sound: an honest relay that forwarded a tampered value received along
/// some *other* route is never blamed for the tampering on the inspected
/// path, because its transmission carries a different path annotation.
///
/// Reports are flooded with a relay path (`path`) whose *first* node is the
/// observed node itself, so that a receiver can apply the reliable-receive
/// rule (Definition C.1) to `observed → receiver` paths: the observed node's
/// transmission, overheard by its neighbors under local broadcast, is in
/// effect re-flooded from the observed node outward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReportMsg {
    /// The node whose phase-1 transmission is being reported.
    pub observed: NodeId,
    /// The value the observed node transmitted.
    pub value: Value,
    /// The path annotation the observed node transmitted with (the relay path
    /// of the *phase-1* message, excluding the observed node itself).
    pub observed_path: PathId,
    /// Relay path of the *report*, starting at `observed` and excluding the
    /// current transmitter.
    pub path: PathId,
}

impl ReportMsg {
    /// The origin of the phase-1 value the observed node was relaying: the
    /// first node of the observed path, or the observed node itself for an
    /// initiation.
    #[must_use]
    pub fn origin(&self, arena: &SharedPathArena) -> NodeId {
        arena.first(self.observed_path).unwrap_or(self.observed)
    }
}

impl ByzantineMessage for ReportMsg {
    fn tampered(&self) -> Self {
        ReportMsg {
            observed: self.observed,
            value: self.value.flipped(),
            observed_path: self.observed_path,
            path: self.path,
        }
    }
}

/// A phase-3 decision message of Algorithm 2: a type B node floods the value
/// it decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DecisionMsg {
    /// The decided value being disseminated.
    pub value: Value,
    /// Relay path (excluding the current transmitter); empty for the deciding
    /// node's own initiation.
    pub path: PathId,
}

impl ByzantineMessage for DecisionMsg {
    fn tampered(&self) -> Self {
        DecisionMsg {
            value: self.value.flipped(),
            path: self.path,
        }
    }
}

/// The message alphabet of Algorithm 2 (phases 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Alg2Message {
    /// Phase 1: flooded input value.
    Input(FloodMsg),
    /// Phase 2: flooded report on an overheard phase-1 transmission.
    Report(ReportMsg),
    /// Phase 3: flooded decision of a type B node.
    Decision(DecisionMsg),
}

impl ByzantineMessage for Alg2Message {
    fn tampered(&self) -> Self {
        match self {
            Alg2Message::Input(m) => Alg2Message::Input(m.tampered()),
            Alg2Message::Report(m) => Alg2Message::Report(m.tampered()),
            Alg2Message::Decision(m) => Alg2Message::Decision(m.tampered()),
        }
    }
}

impl MessageView for FloodMsg {
    fn meta(&self, arena: &SharedPathArena) -> MsgMeta {
        MsgMeta {
            kind: "flood",
            value: Some(self.value),
            path: Some(self.path),
            path_nodes: arena.borrow().nodes(self.path),
            observed: None,
        }
    }
}

impl MessageView for ReportMsg {
    fn meta(&self, arena: &SharedPathArena) -> MsgMeta {
        MsgMeta {
            kind: "report",
            value: Some(self.value),
            path: Some(self.path),
            path_nodes: arena.borrow().nodes(self.path),
            observed: Some(self.observed),
        }
    }
}

impl MessageView for DecisionMsg {
    fn meta(&self, arena: &SharedPathArena) -> MsgMeta {
        MsgMeta {
            kind: "decision",
            value: Some(self.value),
            path: Some(self.path),
            path_nodes: arena.borrow().nodes(self.path),
            observed: None,
        }
    }
}

impl MessageView for Alg2Message {
    fn meta(&self, arena: &SharedPathArena) -> MsgMeta {
        match self {
            Alg2Message::Input(m) => MsgMeta {
                kind: "input",
                ..m.meta(arena)
            },
            Alg2Message::Report(m) => m.meta(arena),
            Alg2Message::Decision(m) => m.meta(arena),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_model::Path;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn intern(arena: &SharedPathArena, ids: &[usize]) -> PathId {
        arena.intern(&Path::from_nodes(ids.iter().map(|&i| n(i))))
    }

    #[test]
    fn initiation_has_empty_path() {
        let arena = SharedPathArena::new();
        let m = FloodMsg::initiation(Value::One);
        assert!(m.path.is_empty());
        assert_eq!(m.origin(&arena, n(3)), n(3));
    }

    #[test]
    fn origin_is_first_path_node_when_relayed() {
        let arena = SharedPathArena::new();
        let m = FloodMsg {
            value: Value::Zero,
            path: intern(&arena, &[5, 2]),
        };
        assert_eq!(m.origin(&arena, n(7)), n(5));
    }

    #[test]
    fn tampering_flips_values_and_keeps_paths() {
        let arena = SharedPathArena::new();
        let m = FloodMsg {
            value: Value::Zero,
            path: intern(&arena, &[1]),
        };
        let t = m.tampered();
        assert_eq!(t.value, Value::One);
        assert_eq!(t.path, m.path);

        let r = ReportMsg {
            observed: n(2),
            value: Value::One,
            observed_path: intern(&arena, &[1]),
            path: intern(&arena, &[2]),
        };
        assert_eq!(r.tampered().value, Value::Zero);
        assert_eq!(r.tampered().observed, n(2));
        assert_eq!(r.origin(&arena), n(1));
        let initiation_report = ReportMsg {
            observed: n(2),
            value: Value::One,
            observed_path: PathId::EMPTY,
            path: intern(&arena, &[2]),
        };
        assert_eq!(initiation_report.origin(&arena), n(2));

        let d = DecisionMsg {
            value: Value::One,
            path: PathId::EMPTY,
        };
        assert_eq!(d.tampered().value, Value::Zero);
    }

    #[test]
    fn alg2_message_tampering_is_variant_preserving() {
        let arena = SharedPathArena::new();
        let m = Alg2Message::Input(FloodMsg::initiation(Value::One));
        assert!(matches!(m.tampered(), Alg2Message::Input(f) if f.value == Value::Zero));
        let d = Alg2Message::Decision(DecisionMsg {
            value: Value::Zero,
            path: PathId::EMPTY,
        });
        assert!(matches!(d.tampered(), Alg2Message::Decision(x) if x.value == Value::One));
        let r = Alg2Message::Report(ReportMsg {
            observed: n(0),
            value: Value::Zero,
            observed_path: PathId::EMPTY,
            path: intern(&arena, &[0]),
        });
        assert!(matches!(r.tampered(), Alg2Message::Report(x) if x.value == Value::One));
    }
}
