//! Algorithm 1: exact Byzantine consensus under the local broadcast model
//! (Theorem 5.1).

use lbc_model::{Round, Value};
use lbc_sim::{Inbox, NodeContext, Outgoing, Protocol};

use crate::messages::FloodMsg;
use crate::phased::{PhasedNode, StepCCase};

/// A node running **Algorithm 1** of the paper: the exponential-phase exact
/// Byzantine consensus algorithm for graphs with minimum degree ≥ `2f` and
/// vertex connectivity ≥ `⌊3f/2⌋ + 1` under the local broadcast model.
///
/// The algorithm executes one phase per candidate fault set `F ⊆ V` with
/// `|F| ≤ f` (`Σ_{i≤f} C(n,i)` phases of `n` flooding rounds each), so it is
/// intended for small networks; for `2f`-connected graphs use the `O(n)`
/// round [`crate::Algorithm2Node`].
///
/// # Example
///
/// ```
/// use lbc_consensus::{runner, Algorithm1Node};
/// use lbc_graph::generators;
/// use lbc_model::{InputAssignment, NodeSet};
/// use lbc_sim::HonestAdversary;
///
/// let graph = generators::paper_fig1a(); // the 5-cycle, f = 1
/// let inputs = InputAssignment::from_bits(5, 0b00110);
/// let (outcome, _) = runner::run_algorithm1(
///     &graph,
///     1,
///     &inputs,
///     &NodeSet::new(),
///     &mut HonestAdversary,
/// );
/// assert!(outcome.verdict().is_correct());
/// ```
#[derive(Debug, Clone)]
pub struct Algorithm1Node {
    inner: PhasedNode,
}

impl Algorithm1Node {
    /// Creates an Algorithm 1 node with the given binary input.
    #[must_use]
    pub fn new(input: Value) -> Self {
        Algorithm1Node {
            inner: PhasedNode::new(input, 0),
        }
    }

    /// The node's input value.
    #[must_use]
    pub fn input(&self) -> Value {
        self.inner.input()
    }

    /// The node's current state `γ_v` (equals the output once decided).
    #[must_use]
    pub fn gamma(&self) -> Value {
        self.inner.gamma()
    }

    /// The step-(c) cases taken in the phases completed so far (diagnostics).
    #[must_use]
    pub fn case_log(&self) -> &[StepCCase] {
        self.inner.case_log()
    }

    /// The number of phases Algorithm 1 executes on an `n`-node graph with
    /// fault bound `f`: `Σ_{i ≤ f} C(n, i)`.
    #[must_use]
    pub fn phase_count(n: usize, f: usize) -> usize {
        PhasedNode::phase_count(n, f, 0)
    }

    /// The total number of synchronous rounds Algorithm 1 needs on an
    /// `n`-node graph with fault bound `f` (phases × `n` rounds of flooding).
    #[must_use]
    pub fn round_count(n: usize, f: usize) -> usize {
        Self::phase_count(n, f) * n.max(1)
    }
}

impl Protocol for Algorithm1Node {
    type Message = FloodMsg;

    fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<FloodMsg>> {
        self.inner.on_start(ctx)
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        round: Round,
        inbox: Inbox<'_, FloodMsg>,
    ) -> Vec<Outgoing<FloodMsg>> {
        self.inner.on_round(ctx, round, inbox)
    }

    fn output(&self) -> Option<Value> {
        self.inner.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_and_round_counts() {
        assert_eq!(Algorithm1Node::phase_count(5, 1), 6);
        assert_eq!(Algorithm1Node::round_count(5, 1), 30);
        assert_eq!(Algorithm1Node::phase_count(5, 2), 16);
        assert_eq!(Algorithm1Node::round_count(5, 2), 80);
    }

    #[test]
    fn construction_exposes_input_and_gamma() {
        let node = Algorithm1Node::new(Value::Zero);
        assert_eq!(node.input(), Value::Zero);
        assert_eq!(node.gamma(), Value::Zero);
        assert_eq!(node.output(), None);
        assert!(node.case_log().is_empty());
    }
}
