//! Asynchronous exact consensus under the local broadcast model.
//!
//! The synchronous algorithms of the source paper are round machines: their
//! phase boundaries *are* the lockstep assumption. This module mechanizes
//! the asynchronous variant of the local-broadcast line (undirected graphs,
//! cf. arXiv:1909.02865) as an **event-driven** protocol over the same
//! flood fabric:
//!
//! 1. Every node floods its input with the path-annotated rules (i)–(iv) of
//!    [`crate::flooding`]. The rules are round-free — each delivery is
//!    processed when the scheduler releases it, and forwards go out
//!    immediately.
//! 2. A node **reliably receives** `(u, b)` when `u` is itself (its input),
//!    a neighbor whose initiation it overheard directly, or a remote origin
//!    whose value `b` arrived along `f + 1` internally-disjoint `u→v`
//!    paths.
//! 3. Once the flood has provably quiesced, the node decides the majority
//!    of its reliably received values (its own input on a tie).
//!
//! # The decision horizon
//!
//! True unbounded asynchrony rules out deterministic termination (FLP), so
//! the simulator's asynchronous regime is *eventually fair*: every
//! transmission is delivered within the regime's fairness bound `D` of
//! being sent ([`lbc_model::AsyncRegime::delay`]), in per-edge FIFO order.
//! The node reads `D` from [`NodeContext::regime`] and places its deadlines
//! against it: all genuine initiations have arrived after `D` steps (absent
//! neighbors are then substituted with the default `(1, ⊥)`, consistently
//! at every neighbor — initiations are sent at step 0, so the bound applies
//! uniformly), and every relay of a length-`≤ n` path has been processed by
//! step `n · D`. Decisions happen at step `(n + 1) · D`.
//!
//! Under **partial synchrony** fairness only holds from the Global
//! Stabilization Time on: the adversary may withhold pre-GST transmissions
//! entirely (they burst-arrive at `gst`). The node therefore re-derives
//! both deadlines from `gst + D` — defaults at `gst + (D − 1)`, decisions
//! at `gst + (n + 1) · D` — instead of assuming fairness from step 0,
//! reading `gst` from [`lbc_model::Regime::stabilization_time`] (which is 0
//! for the other regimes, leaving their horizons untouched).
//!
//! # Why `2f + 1`-connectivity
//!
//! See [`crate::conditions::asynchronous_feasible`]. With `κ ≥ 2f + 1`
//! every correct node reliably receives the same effective value for every
//! origin — the accepted `(sender, path) → value` map of a completed flood
//! is schedule-independent (rule (ii) plus per-edge FIFO pins each key's
//! first copy), so the decision is the **same under every scheduler**; the
//! `flood_equivalence` tests assert exactly that. Below the threshold two
//! correct nodes can end up with different reliable sets (a tampered copy
//! blocks one of the only two disjoint paths) and their majorities can
//! split — the violation the async boundary campaign reproduces on cycles.

use lbc_graph::paths;
use lbc_model::{NodeId, PathId, Round, Value};
use lbc_sim::{Inbox, NodeContext, Outgoing, Protocol};

use crate::flooding::LedgerFlooder;
use crate::messages::FloodMsg;

/// A node running the asynchronous local-broadcast consensus algorithm.
///
/// Designed for the asynchronous regime but regime-generic: under
/// [`lbc_model::Regime::Synchronous`] the fairness bound is 1 and the node
/// behaves as a (slightly slow) one-shot flood-and-decide protocol, which is
/// what the cross-regime equivalence tests compare schedulers against.
///
/// # Example
///
/// ```
/// use lbc_consensus::{conditions, runner};
/// use lbc_graph::generators;
/// use lbc_model::{AsyncRegime, InputAssignment, NodeSet, Regime, SchedulerKind};
/// use lbc_sim::HonestAdversary;
///
/// let graph = generators::circulant(9, &[1, 2]); // 4-connected: f = 1 works
/// assert!(conditions::asynchronous_feasible(&graph, 1));
/// let inputs = InputAssignment::from_bits(9, 0b101100110);
/// let regime = Regime::Asynchronous(AsyncRegime {
///     scheduler: SchedulerKind::EdgeLag,
///     delay: 3,
///     seed: 7,
/// });
/// let (outcome, _) = runner::run_async_flood(
///     &graph,
///     1,
///     &inputs,
///     &NodeSet::new(),
///     &regime,
///     &mut HonestAdversary,
/// );
/// assert!(outcome.verdict().is_correct());
/// ```
#[derive(Debug, Clone)]
pub struct AsyncFloodNode {
    input: Value,
    decided: Option<Value>,
    /// Number of `on_round` invocations so far (the node's local clock —
    /// under both regimes every node is stepped every scheduler step, so
    /// local steps equal global steps and deadlines derived from the
    /// fairness bound are consistent across nodes).
    steps: usize,
    flooder: Option<LedgerFlooder>,
    /// The `(origin, value)` pairs reliably received, computed at decision
    /// time (diagnostics; see [`AsyncFloodNode::reliable_inputs`]).
    reliable_inputs: Vec<(NodeId, Value)>,
}

impl AsyncFloodNode {
    /// Creates an asynchronous consensus node with the given binary input.
    #[must_use]
    pub fn new(input: Value) -> Self {
        AsyncFloodNode {
            input,
            decided: None,
            steps: 0,
            flooder: None,
            reliable_inputs: Vec::new(),
        }
    }

    /// The node's input value.
    #[must_use]
    pub fn input(&self) -> Value {
        self.input
    }

    /// The `(origin, value)` pairs this node reliably received, in node
    /// order — populated when the node decides.
    #[must_use]
    pub fn reliable_inputs(&self) -> &[(NodeId, Value)] {
        &self.reliable_inputs
    }

    /// The step at which nodes substitute defaults for neighbors whose
    /// initiation never arrived: all genuine initiations (sent at step 0)
    /// have landed within the fairness bound `delay`.
    #[must_use]
    pub fn default_step(delay: u64) -> usize {
        delay.saturating_sub(1) as usize
    }

    /// The local step at which the node decides: every relay of a simple
    /// path (length ≤ `n`) has been delivered and processed by `n · delay`
    /// steps, so `(n + 1) · delay` leaves one full fairness window of
    /// margin.
    #[must_use]
    pub fn decision_step(n: usize, delay: u64) -> usize {
        (n.max(1) + 1) * delay as usize
    }

    /// An upper bound on the steps the protocol needs under a regime with
    /// fairness bound `delay` (decision step plus shutdown margin).
    #[must_use]
    pub fn step_count(n: usize, delay: u64) -> usize {
        Self::decision_step(n, delay) + 2
    }

    /// The regime-aware step bound: [`AsyncFloodNode::step_count`] shifted
    /// by the regime's stabilization time. Before GST the adversary may
    /// withhold deliveries entirely, so no deadline placed against the
    /// fairness bound can be trusted until `gst` has passed — the node's
    /// horizons degrade gracefully by re-deriving from `gst + D` instead of
    /// assuming fairness from step 0.
    #[must_use]
    pub fn step_count_under(n: usize, regime: &lbc_model::Regime) -> usize {
        regime.stabilization_time() as usize + Self::step_count(n, regime.delay_bound())
    }

    /// Definition C.1, regime-free: whether this node reliably received
    /// `value` from `origin` — directly for itself and its neighbors, along
    /// `f + 1` internally-disjoint paths otherwise.
    fn reliably_received(&self, ctx: &NodeContext<'_>, origin: NodeId, value: Value) -> bool {
        let Some(flood) = &self.flooder else {
            return false;
        };
        if origin == ctx.id {
            return flood.own_value() == Some(value);
        }
        if ctx.graph.has_edge(ctx.id, origin) {
            let relay = ctx.arena.borrow().find_child(PathId::EMPTY, origin);
            return relay.is_some_and(|relay| flood.value_along_relay(relay) == Some(value));
        }
        let candidates = flood.paths_with_value(origin, value);
        paths::find_internally_disjoint_subset(&candidates, ctx.f + 1).is_some()
    }

    /// Runs the decision rule: majority of the reliably received values,
    /// falling back to the node's own input on a tie or an empty set.
    fn decide(&mut self, ctx: &NodeContext<'_>) {
        let mut reliable = Vec::new();
        for origin in ctx.graph.nodes() {
            for value in [Value::Zero, Value::One] {
                if self.reliably_received(ctx, origin, value) {
                    reliable.push((origin, value));
                }
            }
        }
        let decision =
            Value::majority(reliable.iter().map(|(_, value)| *value)).unwrap_or(self.input);
        self.reliable_inputs = reliable;
        self.decided = Some(decision);
    }
}

impl Protocol for AsyncFloodNode {
    type Message = FloodMsg;

    fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<FloodMsg>> {
        let (flooder, out) =
            LedgerFlooder::start(ctx.arena.clone(), ctx.ledger.clone(), ctx.id, self.input);
        self.flooder = Some(flooder);
        out
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        _round: Round,
        inbox: Inbox<'_, FloodMsg>,
    ) -> Vec<Outgoing<FloodMsg>> {
        if self.decided.is_some() {
            return Vec::new();
        }
        let delay = ctx.regime.delay_bound();
        // Under partial synchrony fairness only holds from `gst` on: held
        // initiations burst-arrive exactly at `gst`, so both deadlines shift
        // by it. For the synchronous and asynchronous regimes `gst` is 0 and
        // the horizons are unchanged.
        let gst = ctx.regime.stabilization_time() as usize;
        let step = self.steps;
        self.steps += 1;

        let out = match self.flooder.as_mut() {
            Some(flood) => {
                flood.on_round(ctx.graph, step == gst + Self::default_step(delay), inbox)
            }
            None => Vec::new(),
        };

        if step >= gst + Self::decision_step(ctx.n(), delay) {
            self.decide(ctx);
        }
        out
    }

    fn output(&self) -> Option<Value> {
        self.decided
    }

    fn decision_evidence(&self) -> Vec<(NodeId, Value)> {
        self.reliable_inputs.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_arithmetic() {
        // Sync-equivalent regime (delay 1): defaults at step 0, decision
        // right after the flood's n steps.
        assert_eq!(AsyncFloodNode::default_step(1), 0);
        assert_eq!(AsyncFloodNode::decision_step(5, 1), 6);
        // Fairness bound 3 stretches both deadlines.
        assert_eq!(AsyncFloodNode::default_step(3), 2);
        assert_eq!(AsyncFloodNode::decision_step(5, 3), 18);
        assert!(AsyncFloodNode::step_count(5, 3) > AsyncFloodNode::decision_step(5, 3));
        // The regime-aware bound shifts by the stabilization time — and only
        // by it: sync/async regimes keep their pre-GST horizons.
        use lbc_model::{AdversarialSchedule, AsyncRegime, Regime, SchedulerKind};
        let post = AsyncRegime {
            scheduler: SchedulerKind::Fifo,
            delay: 2,
            seed: 0,
        };
        assert_eq!(
            AsyncFloodNode::step_count_under(5, &Regime::Synchronous),
            AsyncFloodNode::step_count(5, 1)
        );
        assert_eq!(
            AsyncFloodNode::step_count_under(5, &Regime::Asynchronous(post)),
            AsyncFloodNode::step_count(5, 2)
        );
        assert_eq!(
            AsyncFloodNode::step_count_under(
                5,
                &Regime::PartialSync {
                    gst: 10,
                    pre: AdversarialSchedule::empty(),
                    post,
                }
            ),
            10 + AsyncFloodNode::step_count(5, 2)
        );
    }

    #[test]
    fn construction_defaults() {
        let node = AsyncFloodNode::new(Value::One);
        assert_eq!(node.input(), Value::One);
        assert_eq!(node.output(), None);
        assert!(node.reliable_inputs().is_empty());
    }
}
