//! The phase machinery shared by Algorithm 1 (local broadcast) and
//! Algorithm 3 (hybrid model).
//!
//! Both algorithms execute one *phase* per candidate fault set — `F` with
//! `|F| ≤ f` for Algorithm 1, a pair `(F, T)` with `|T| ≤ t`,
//! `|F| ≤ f − |T|` for Algorithm 3. Each phase consists of
//!
//! * **step (a)** — flooding the node's current state `γ_v` with the rules of
//!   [`crate::flooding`],
//! * **step (b)** — classifying every node `u` into `Z_v` (value 0 received
//!   along a chosen `uv`-path excluding `F ∪ T`) or `N_v`,
//! * **step (c)** — the four-case analysis that selects `(A_v, B_v)` and,
//!   when the node is in `B_v`, updates `γ_v` if an identical value arrived
//!   along `f + 1` node-disjoint `A_v v`-paths excluding `F ∪ T`.
//!
//! Algorithm 1 is exactly this machinery with `t = 0`.

use lbc_graph::{combinatorics, paths};
use lbc_model::{NodeId, NodeSet, Path, Round, Value};
use lbc_sim::{Inbox, NodeContext, Outgoing, Protocol};

use crate::flooding::LedgerFlooder;
use crate::messages::FloodMsg;

/// Which of the four cases of step (c) applied in a phase (Algorithm 1 /
/// Algorithm 3). Exposed for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepCCase {
    /// `|Z_v ∩ F| ≤ ⌊ϕ/2⌋` and `|N_v| > f`: `A_v := N_v`, `B_v := Z_v`.
    Case1,
    /// `|Z_v ∩ F| ≤ ⌊ϕ/2⌋` and `|N_v| ≤ f`: `A_v := Z_v`, `B_v := N_v`.
    Case2,
    /// `|Z_v ∩ F| > ⌊ϕ/2⌋` and `|Z_v| > f`: `A_v := Z_v`, `B_v := N_v`.
    Case3,
    /// `|Z_v ∩ F| > ⌊ϕ/2⌋` and `|Z_v| ≤ f`: `A_v := N_v`, `B_v := Z_v`.
    Case4,
}

/// Evaluates the case analysis of step (c), returning the case together with
/// the sets `(A_v, B_v)`.
///
/// `phi` is `f − |T|` (equal to `f` for Algorithm 1).
#[must_use]
pub(crate) fn step_c_sets(
    zv: &NodeSet,
    nv: &NodeSet,
    fault_candidate: &NodeSet,
    f: usize,
    phi: usize,
) -> (StepCCase, NodeSet, NodeSet) {
    let zv_cap_f = zv.intersection(fault_candidate).len();
    if zv_cap_f <= phi / 2 {
        if nv.len() > f {
            (StepCCase::Case1, nv.clone(), zv.clone())
        } else {
            (StepCCase::Case2, zv.clone(), nv.clone())
        }
    } else if zv.len() > f {
        (StepCCase::Case3, zv.clone(), nv.clone())
    } else {
        (StepCCase::Case4, nv.clone(), zv.clone())
    }
}

/// Per-phase runtime state.
#[derive(Debug, Clone)]
struct RunState {
    /// The phase schedule: candidate pairs `(F, T)`.
    phases: Vec<(NodeSet, NodeSet)>,
    phase_index: usize,
    round_in_phase: usize,
    rounds_per_phase: usize,
    flooder: LedgerFlooder,
}

/// The shared protocol implementation behind [`crate::Algorithm1Node`] and
/// [`crate::Algorithm3Node`].
#[derive(Debug, Clone)]
pub(crate) struct PhasedNode {
    input: Value,
    gamma: Value,
    /// The bound `t` on equivocating faulty nodes (0 for Algorithm 1).
    equivocation_bound: usize,
    state: Option<RunState>,
    decided: Option<Value>,
    /// Cases taken in each completed phase (diagnostics).
    case_log: Vec<StepCCase>,
}

impl PhasedNode {
    pub(crate) fn new(input: Value, equivocation_bound: usize) -> Self {
        PhasedNode {
            input,
            gamma: input,
            equivocation_bound,
            state: None,
            decided: None,
            case_log: Vec::new(),
        }
    }

    /// The node's input value.
    pub(crate) fn input(&self) -> Value {
        self.input
    }

    /// The node's current state `γ_v`.
    pub(crate) fn gamma(&self) -> Value {
        self.gamma
    }

    /// The step-(c) cases taken in completed phases, in order.
    pub(crate) fn case_log(&self) -> &[StepCCase] {
        &self.case_log
    }

    /// Total number of phases this node will execute on an `n`-node graph
    /// with fault bound `f`.
    pub(crate) fn phase_count(n: usize, f: usize, t: usize) -> usize {
        combinatorics::hybrid_fault_set_phases(n, f, t).len()
    }

    /// Executes steps (b) and (c) at the end of a phase.
    fn finish_phase(
        &mut self,
        ctx: &NodeContext<'_>,
        flooder: &LedgerFlooder,
        phase: &(NodeSet, NodeSet),
    ) {
        let (fault_candidate, equivocator_candidate) = phase;
        let me = ctx.id;
        let graph = ctx.graph;
        let f = ctx.f;
        let phi = f.saturating_sub(equivocator_candidate.len());
        let exclude = fault_candidate.union(equivocator_candidate);

        // Step (b): classify every node of V − T into Z_v / N_v according to
        // the value received along a single uv-path that excludes F ∪ T.
        let mut zv = NodeSet::new();
        let mut nv = NodeSet::new();
        for u in graph.nodes() {
            if equivocator_candidate.contains(u) {
                continue;
            }
            let value = if u == me {
                flooder.own_value()
            } else {
                paths::path_excluding(graph, u, me, &exclude)
                    .and_then(|puv| flooder.value_along(&puv))
            };
            if value == Some(Value::Zero) {
                zv.insert(u);
            } else {
                nv.insert(u);
            }
        }

        // Step (c): select (A_v, B_v) and update γ_v when an identical value
        // arrives along f + 1 node-disjoint A_v v-paths excluding F ∪ T.
        let (case, av, bv) = {
            let (case, av, bv) = step_c_sets(&zv, &nv, fault_candidate, f, phi);
            (case, av, bv)
        };
        self.case_log.push(case);

        if bv.contains(me) {
            let witness_paths = paths::disjoint_set_to_node_paths(graph, &av, me, &exclude, f + 1);
            if witness_paths.len() == f + 1 {
                let delivered: Vec<Option<Value>> = witness_paths
                    .iter()
                    .map(|p| self.value_along_witness(flooder, me, p))
                    .collect();
                if let Some(Some(first)) = delivered.first() {
                    if delivered.iter().all(|v| *v == Some(*first)) {
                        self.gamma = *first;
                    }
                }
            }
        }
    }

    /// The value received along a witness path ending at `me` (a path of
    /// length one, `[me]`, stands for the node's own value).
    fn value_along_witness(
        &self,
        flooder: &LedgerFlooder,
        me: NodeId,
        path: &Path,
    ) -> Option<Value> {
        if path.len() == 1 && path.first() == Some(me) {
            flooder.own_value()
        } else {
            flooder.value_along(path)
        }
    }
}

impl Protocol for PhasedNode {
    type Message = FloodMsg;

    fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<FloodMsg>> {
        let n = ctx.n();
        let phases = combinatorics::hybrid_fault_set_phases(n, ctx.f, self.equivocation_bound);
        let (flooder, out) =
            LedgerFlooder::start(ctx.arena.clone(), ctx.ledger.clone(), ctx.id, self.gamma);
        self.state = Some(RunState {
            phases,
            phase_index: 0,
            round_in_phase: 0,
            rounds_per_phase: n.max(1),
            flooder,
        });
        out
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        _round: Round,
        inbox: Inbox<'_, FloodMsg>,
    ) -> Vec<Outgoing<FloodMsg>> {
        if self.decided.is_some() {
            return Vec::new();
        }
        let Some(mut state) = self.state.take() else {
            return Vec::new();
        };

        let first_round = state.round_in_phase == 0;
        let mut out = state.flooder.on_round(ctx.graph, first_round, inbox);

        if state.round_in_phase + 1 < state.rounds_per_phase {
            state.round_in_phase += 1;
            self.state = Some(state);
            return out;
        }

        // Last round of the phase: run steps (b) and (c), then either start
        // the next phase or decide.
        let phase = state.phases[state.phase_index].clone();
        self.finish_phase(ctx, &state.flooder, &phase);

        state.phase_index += 1;
        state.round_in_phase = 0;
        if state.phase_index < state.phases.len() {
            // Re-flood the (possibly updated) state γ_v for the next phase,
            // reusing the flooder's maps and index allocations; only the
            // per-phase *contents* reset, the arena and its validity memo
            // persist for the whole execution.
            out.extend(state.flooder.restart(self.gamma));
            self.state = Some(state);
            out
        } else {
            self.decided = Some(self.gamma);
            self.state = None;
            Vec::new()
        }
    }

    fn output(&self) -> Option<Value> {
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn step_c_case_selection_matches_the_paper() {
        // f = 2, phi = 2, candidate F = {0, 1}.
        let f = 2;
        let phi = 2;
        let fault = set(&[0, 1]);

        // Case 1: |Z ∩ F| = 1 ≤ 1 and |N| = 3 > f.
        let (case, av, bv) = step_c_sets(&set(&[0, 2]), &set(&[3, 4, 5]), &fault, f, phi);
        assert_eq!(case, StepCCase::Case1);
        assert_eq!(av, set(&[3, 4, 5]));
        assert_eq!(bv, set(&[0, 2]));

        // Case 2: |Z ∩ F| small and |N| ≤ f.
        let (case, av, bv) = step_c_sets(&set(&[2, 3, 4]), &set(&[5, 6]), &fault, f, phi);
        assert_eq!(case, StepCCase::Case2);
        assert_eq!(av, set(&[2, 3, 4]));
        assert_eq!(bv, set(&[5, 6]));

        // Case 3: |Z ∩ F| = 2 > 1 and |Z| = 3 > f.
        let (case, av, bv) = step_c_sets(&set(&[0, 1, 2]), &set(&[3, 4]), &fault, f, phi);
        assert_eq!(case, StepCCase::Case3);
        assert_eq!(av, set(&[0, 1, 2]));
        assert_eq!(bv, set(&[3, 4]));

        // Case 4: |Z ∩ F| = 2 > 1 and |Z| = 2 ≤ f.
        let (case, av, bv) = step_c_sets(&set(&[0, 1]), &set(&[2, 3, 4]), &fault, f, phi);
        assert_eq!(case, StepCCase::Case4);
        assert_eq!(av, set(&[2, 3, 4]));
        assert_eq!(bv, set(&[0, 1]));
    }

    #[test]
    fn phase_count_matches_combinatorics() {
        assert_eq!(
            PhasedNode::phase_count(5, 1, 0),
            6 // C(5,0) + C(5,1)
        );
        assert_eq!(PhasedNode::phase_count(5, 2, 0), 16);
        // Hybrid schedule is strictly larger when t > 0.
        assert!(PhasedNode::phase_count(5, 2, 1) > 16);
    }

    #[test]
    fn node_starts_with_its_input_as_state() {
        let node = PhasedNode::new(Value::One, 0);
        assert_eq!(node.input(), Value::One);
        assert_eq!(node.gamma(), Value::One);
        assert!(node.case_log().is_empty());
        assert_eq!(node.output(), None);
    }
}
