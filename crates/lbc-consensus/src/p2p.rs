//! Point-to-point baseline: Byzantine consensus under the classical model
//! (Dolev 1982 conditions: `n ≥ 3f + 1` and `2f + 1`-connectivity).
//!
//! The paper compares its local-broadcast requirements against this model,
//! so the workspace ships an executable baseline:
//!
//! * **Reliable pairwise dissemination** — each communication step of the
//!   agreement protocol is realized by path-annotated relay flooding; a
//!   receiver accepts a sender's step value only if an identical copy arrived
//!   along `f + 1` internally-disjoint paths (Dolev-style relay: with
//!   `2f + 1` disjoint paths and at most `f` faulty internal nodes, an honest
//!   sender's value always qualifies and a forged value never does).
//! * **King agreement** — the Berman–Garay "king" algorithm (`f + 1` phases
//!   of three steps: vote, propose, king tie-break), correct for `n > 3f`.
//!   A faulty *sender* may still equivocate — that is precisely what the
//!   point-to-point model permits — and the king algorithm tolerates it.
//!
//! Round complexity: `3 (f + 1)` communication steps, each emulated by `n`
//! relay rounds, i.e. `3 (f + 1) n` synchronous rounds.

use std::collections::BTreeMap;

use lbc_model::{NodeId, Round, Value};
use lbc_sim::{ByzantineMessage, Delivery, Inbox, MessageView, NodeContext, Outgoing, Protocol};

use crate::flooding::{LedgerFlooder, TAG_VALUE};
use crate::messages::FloodMsg;

/// What kind of value a communication step carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StepKind {
    /// Phase round 1: every node broadcasts its current value.
    Vote,
    /// Phase round 2: nodes that saw a value `≥ n − f` times propose it.
    Propose,
    /// Phase round 3: the phase's king broadcasts its current value.
    King,
}

/// A message of the point-to-point baseline: a step identifier plus a
/// path-annotated relay payload.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct P2pMessage {
    /// Global index of the communication step this flood belongs to.
    pub step: usize,
    /// The relayed payload (value + relay path).
    pub inner: FloodMsg,
}

impl ByzantineMessage for P2pMessage {
    fn tampered(&self) -> Self {
        P2pMessage {
            step: self.step,
            inner: self.inner.tampered(),
        }
    }
}

impl MessageView for P2pMessage {
    fn meta(&self, arena: &lbc_model::SharedPathArena) -> lbc_sim::MsgMeta {
        lbc_sim::MsgMeta {
            kind: "p2p",
            ..self.inner.meta(arena)
        }
    }
}

/// A node running the **point-to-point baseline**: king agreement over
/// Dolev-style reliable relay.
///
/// Requires `n ≥ 3f + 1` and vertex connectivity `≥ 2f + 1` (checked by
/// [`crate::conditions::point_to_point_feasible`]); with fewer nodes or less
/// connectivity the algorithm may fail, which is exactly the comparison the
/// experiments demonstrate.
///
/// # Example
///
/// ```
/// use lbc_consensus::runner;
/// use lbc_graph::generators;
/// use lbc_model::{InputAssignment, NodeSet};
/// use lbc_sim::HonestAdversary;
///
/// let graph = generators::complete(4); // n = 3f + 1 for f = 1
/// let inputs = InputAssignment::from_bits(4, 0b0110);
/// let (outcome, _) = runner::run_p2p_baseline(
///     &graph,
///     1,
///     &inputs,
///     &NodeSet::new(),
///     &mut HonestAdversary,
/// );
/// assert!(outcome.verdict().is_correct());
/// ```
#[derive(Debug, Clone)]
pub struct P2pBaselineNode {
    value: Value,
    decided: Option<Value>,
    round_counter: usize,
    step: usize,
    flooder: Option<LedgerFlooder>,
    /// Values accepted in the most recent vote step, per origin.
    last_votes: BTreeMap<NodeId, Value>,
    /// Values accepted in the most recent propose step, per origin.
    last_proposals: BTreeMap<NodeId, Value>,
}

impl P2pBaselineNode {
    /// Creates a baseline node with the given binary input.
    #[must_use]
    pub fn new(input: Value) -> Self {
        P2pBaselineNode {
            value: input,
            decided: None,
            round_counter: 0,
            step: 0,
            flooder: None,
            last_votes: BTreeMap::new(),
            last_proposals: BTreeMap::new(),
        }
    }

    /// The node's current working value.
    #[must_use]
    pub fn current_value(&self) -> Value {
        self.value
    }

    /// Number of communication steps the baseline performs: three per phase,
    /// `f + 1` phases.
    #[must_use]
    pub fn step_count(f: usize) -> usize {
        3 * (f + 1)
    }

    /// Total synchronous rounds: each step is emulated by `n` relay rounds.
    #[must_use]
    pub fn round_count(n: usize, f: usize) -> usize {
        Self::step_count(f) * n.max(1)
    }

    fn kind_of_step(step: usize) -> StepKind {
        match step % 3 {
            0 => StepKind::Vote,
            1 => StepKind::Propose,
            _ => StepKind::King,
        }
    }

    fn phase_of_step(step: usize) -> usize {
        step / 3
    }

    /// The value this node floods in the given step, if any.
    fn step_initiation(&self, ctx: &NodeContext<'_>, step: usize) -> Option<Value> {
        match Self::kind_of_step(step) {
            StepKind::Vote => Some(self.value),
            StepKind::Propose => {
                let n = ctx.n();
                let f = ctx.f;
                for candidate in [Value::Zero, Value::One] {
                    let count = self
                        .last_votes
                        .values()
                        .filter(|v| **v == candidate)
                        .count();
                    if count >= n.saturating_sub(f) {
                        return Some(candidate);
                    }
                }
                None
            }
            StepKind::King => {
                let king = NodeId::new(Self::phase_of_step(step) % ctx.n());
                (ctx.id == king).then_some(self.value)
            }
        }
    }

    /// Definition-C.1-style acceptance for the just-finished step: the values
    /// accepted per origin (own value, direct neighbor transmission, or an
    /// identical copy along `f + 1` internally-disjoint paths).
    fn accepted_values(&self, ctx: &NodeContext<'_>) -> BTreeMap<NodeId, Value> {
        let mut accepted = BTreeMap::new();
        let Some(flooder) = &self.flooder else {
            return accepted;
        };
        for origin in ctx.graph.nodes() {
            if origin == ctx.id {
                if let Some(v) = flooder.own_value() {
                    accepted.insert(origin, v);
                }
                continue;
            }
            for value in [Value::Zero, Value::One] {
                let candidates = flooder.paths_with_value(origin, value);
                let direct = ctx.graph.has_edge(ctx.id, origin)
                    && candidates
                        .iter()
                        .any(|p| p.len() == 2 && p.first() == Some(origin));
                let relayed =
                    lbc_graph::paths::find_internally_disjoint_subset(&candidates, ctx.f + 1)
                        .is_some();
                if direct || relayed {
                    accepted.insert(origin, value);
                    break;
                }
            }
        }
        accepted
    }

    /// State update at the end of a step, per the king algorithm.
    fn finish_step(&mut self, ctx: &NodeContext<'_>, step: usize) {
        let accepted = self.accepted_values(ctx);
        match Self::kind_of_step(step) {
            StepKind::Vote => {
                self.last_votes = accepted;
            }
            StepKind::Propose => {
                self.last_proposals = accepted;
                let f = ctx.f;
                for candidate in [Value::Zero, Value::One] {
                    let count = self
                        .last_proposals
                        .values()
                        .filter(|v| **v == candidate)
                        .count();
                    if count > f {
                        self.value = candidate;
                        break;
                    }
                }
            }
            StepKind::King => {
                let n = ctx.n();
                let f = ctx.f;
                let king = NodeId::new(Self::phase_of_step(step) % n);
                let proposals_received = self.last_proposals.len();
                if proposals_received < n.saturating_sub(f) {
                    // Too few proposals: defer to the king (default when the
                    // king's value did not arrive).
                    self.value = accepted.get(&king).copied().unwrap_or(Value::Zero);
                }
            }
        }
    }
}

impl Protocol for P2pBaselineNode {
    type Message = P2pMessage;

    fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<P2pMessage>> {
        self.begin_step(ctx, 0)
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        _round: Round,
        inbox: Inbox<'_, P2pMessage>,
    ) -> Vec<Outgoing<P2pMessage>> {
        if self.decided.is_some() {
            return Vec::new();
        }
        let n = ctx.n().max(1);
        let relative = self.round_counter % n;
        self.round_counter += 1;

        // Relay the current step's flood.
        let current_step = self.step;
        let step_inbox: Vec<Delivery<FloodMsg>> = inbox
            .iter()
            .filter(|d| d.message.step == current_step)
            .map(|d| Delivery {
                from: d.from,
                message: d.message.inner,
            })
            .collect();
        let mut out = Vec::new();
        if let Some(flooder) = self.flooder.as_mut() {
            // No default substitution: silence is legitimate in propose/king
            // steps and handled by the counting rules in vote steps.
            let forwards = flooder.on_round(ctx.graph, false, Inbox::direct(&step_inbox));
            out.extend(forwards.into_iter().map(|o| wrap(o, current_step)));
        }

        if relative + 1 == n {
            // Step boundary: apply the king-algorithm update and start the
            // next step (or decide).
            self.finish_step(ctx, current_step);
            self.step += 1;
            if self.step >= Self::step_count(ctx.f) {
                self.decided = Some(self.value);
            } else {
                out.extend(self.begin_step(ctx, self.step));
            }
        }
        out
    }

    fn output(&self) -> Option<Value> {
        self.decided
    }
}

impl P2pBaselineNode {
    fn begin_step(&mut self, ctx: &NodeContext<'_>, step: usize) -> Vec<Outgoing<P2pMessage>> {
        // One ledger channel per global step: every node derives the same
        // `(tag, step)` name, so the step's flood shares one channel. The
        // point-to-point model lets faulty senders deliver different copies
        // to different receivers — the ledger engine's per-node overrides
        // absorb exactly that, so sharing stays sound (see lbc_model::ledger).
        let epoch = u32::try_from(step).expect("step index fits u32");
        match self.step_initiation(ctx, step) {
            Some(value) => {
                let (flooder, out) = LedgerFlooder::start_on(
                    ctx.arena.clone(),
                    ctx.ledger.clone(),
                    ctx.id,
                    value,
                    TAG_VALUE,
                    epoch,
                );
                self.flooder = Some(flooder);
                out.into_iter().map(|o| wrap(o, step)).collect()
            }
            None => {
                self.flooder = Some(LedgerFlooder::observer_on(
                    ctx.arena.clone(),
                    ctx.ledger.clone(),
                    ctx.id,
                    TAG_VALUE,
                    epoch,
                ));
                Vec::new()
            }
        }
    }
}

fn wrap(outgoing: Outgoing<FloodMsg>, step: usize) -> Outgoing<P2pMessage> {
    match outgoing {
        Outgoing::Broadcast(inner) => Outgoing::Broadcast(P2pMessage { step, inner }),
        Outgoing::Unicast(to, inner) => Outgoing::Unicast(to, P2pMessage { step, inner }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_schedule() {
        assert_eq!(P2pBaselineNode::step_count(1), 6);
        assert_eq!(P2pBaselineNode::round_count(4, 1), 24);
        assert_eq!(P2pBaselineNode::kind_of_step(0), StepKind::Vote);
        assert_eq!(P2pBaselineNode::kind_of_step(1), StepKind::Propose);
        assert_eq!(P2pBaselineNode::kind_of_step(2), StepKind::King);
        assert_eq!(P2pBaselineNode::kind_of_step(3), StepKind::Vote);
        assert_eq!(P2pBaselineNode::phase_of_step(5), 1);
    }

    #[test]
    fn construction_defaults() {
        let node = P2pBaselineNode::new(Value::One);
        assert_eq!(node.current_value(), Value::One);
        assert_eq!(node.output(), None);
    }

    #[test]
    fn p2p_message_tampering_flips_inner_value() {
        let m = P2pMessage {
            step: 2,
            inner: FloodMsg::initiation(Value::Zero),
        };
        let t = m.tampered();
        assert_eq!(t.step, 2);
        assert_eq!(t.inner.value, Value::One);
    }

    #[test]
    fn tampered_path_is_preserved() {
        let arena = lbc_model::SharedPathArena::new();
        let path = arena.intern(&lbc_model::Path::singleton(NodeId::new(3)));
        let m = P2pMessage {
            step: 0,
            inner: FloodMsg {
                value: Value::One,
                path,
            },
        };
        assert_eq!(m.tampered().inner.path, m.inner.path);
    }
}
