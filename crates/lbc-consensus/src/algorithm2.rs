//! Algorithm 2: the efficient `O(n)`-round consensus algorithm for
//! `2f`-connected graphs (Theorem 5.6, Appendix C).
//!
//! The algorithm has three phases of `n` synchronous rounds each:
//!
//! 1. **Phase 1** — every node floods its input value (path-annotated
//!    flooding as in Algorithm 1).
//! 2. **Phase 2** — every node floods *reports* of everything it overheard
//!    its neighbors transmit in phase 1. At the end of the phase each node
//!    runs the fault-identification procedure: for every value it reliably
//!    received (Definition C.1) it inspects `2f` node-disjoint paths and
//!    marks, per path, the first node reliably reported to have forwarded the
//!    opposite value. A node that identifies all `f` faults becomes a
//!    **type A** node; the others are **type B** nodes.
//! 3. **Phase 3** — type B nodes decide the majority of the reliably received
//!    input values and flood their decision; type A nodes adopt a decision
//!    received along a path that avoids the (fully known) faulty set, falling
//!    back to the majority of the non-faulty inputs they can read along
//!    fault-free paths.
//!
//! All three phases run on the shared flood fabric: the phase-1 value flood
//! is a [`LedgerFlooder`], the phase-2 report flood records each distinct
//! report broadcast **once per execution** in the shared
//! [`lbc_model::FloodLedger`] (per-node rule-(ii) state is a bitset over
//! shared record indices), and the phase-3 decision flood keys rule (ii) by
//! interned relay ids in a per-node bitset. The fault-identification
//! procedure additionally shares its disjoint-path plans across nodes
//! through the ledger's pair-path memo — they are pure functions of the
//! (common) communication graph, so every node would otherwise recompute
//! the same max-flow results.

use std::cell::RefCell;
use std::rc::Rc;

use lbc_graph::{paths, Graph};
use lbc_model::fx::FxHashMap;
use lbc_model::{
    report_key, ChannelId, DenseBits, FloodLedger, NodeId, NodeSet, Path, PathArena, PathId,
    ReportRecord, Round, SharedFloodLedger, SharedPathArena, Value,
};
use lbc_sim::{Delivery, Inbox, NodeContext, Outgoing, Protocol};

use crate::flooding::{validate_path, LedgerFlooder, TAG_REPORT};
use crate::messages::{Alg2Message, DecisionMsg, FloodMsg, ReportMsg};

/// Which role a node ended phase 2 with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Role {
    /// Knows the identity of all `f` faulty nodes.
    TypeA,
    /// Does not know all faults; decides by majority of reliably received
    /// inputs.
    TypeB,
}

/// A node running **Algorithm 2** (Theorem 5.6): Byzantine consensus in
/// `O(n)` rounds on `2f`-connected graphs under the local broadcast model.
///
/// # Reproduction note (Appendix C omission gap)
///
/// The fault-identification rule of Appendix C detects *commission*
/// (forwarding a tampered value) but not *omission* (silently failing to
/// relay). On graphs that are exactly `2f`-connected, an omission-only
/// adversary can leave two type B nodes with different reliably-received
/// input sets and no identified faults, and their majority decisions can then
/// disagree — see the `algorithm2_omission_gap_reproduction_finding`
/// integration test and `EXPERIMENTS.md` for the concrete 5-cycle
/// counterexample. Algorithm 1 ([`crate::Algorithm1Node`]) is unaffected and
/// handles arbitrary Byzantine behaviour; use it when omission faults are in
/// scope or the graph is not comfortably above the `2f`-connectivity bound.
///
/// # Example
///
/// ```
/// use lbc_consensus::{conditions, runner};
/// use lbc_graph::generators;
/// use lbc_model::{InputAssignment, NodeSet};
/// use lbc_sim::HonestAdversary;
///
/// let graph = generators::paper_fig1a(); // 2-connected, so f = 1 works
/// assert!(conditions::efficient_algorithm_applicable(&graph, 1));
/// let inputs = InputAssignment::from_bits(5, 0b10010);
/// let (outcome, trace) = runner::run_algorithm2(
///     &graph,
///     1,
///     &inputs,
///     &NodeSet::new(),
///     &mut HonestAdversary,
/// );
/// assert!(outcome.verdict().is_correct());
/// assert!(trace.rounds() <= 3 * 5 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct Algorithm2Node {
    input: Value,
    decided: Option<Value>,
    /// Relative round counter (how many `on_round` calls have happened).
    round_counter: usize,
    /// Phase-1 value flood state.
    value_flood: Option<LedgerFlooder>,
    /// Phase-2 report flood state.
    reports: ReportFlood,
    /// Phase-3 decision flood state.
    decisions: DecisionFlood,
    /// Faulty nodes identified at the end of phase 2.
    identified_faults: NodeSet,
    /// Role determined at the end of phase 2.
    role: Option<Role>,
    /// The `(origin, value)` pairs reliably received in phase 1, computed
    /// once at the end of phase 2 and reused by the type B decision
    /// (previously re-derived, disjoint-path witnesses and all).
    reliable_inputs: Vec<(NodeId, Value)>,
}

impl Algorithm2Node {
    /// Creates an Algorithm 2 node with the given binary input.
    #[must_use]
    pub fn new(input: Value) -> Self {
        Algorithm2Node {
            input,
            decided: None,
            round_counter: 0,
            value_flood: None,
            reports: ReportFlood::default(),
            decisions: DecisionFlood::default(),
            identified_faults: NodeSet::new(),
            role: None,
            reliable_inputs: Vec::new(),
        }
    }

    /// The node's input value.
    #[must_use]
    pub fn input(&self) -> Value {
        self.input
    }

    /// The faulty nodes this node identified during phase 2.
    #[must_use]
    pub fn identified_faults(&self) -> &NodeSet {
        &self.identified_faults
    }

    /// Whether the node ended phase 2 as a type A node (knowing all faults).
    #[must_use]
    pub fn is_type_a(&self) -> bool {
        self.role == Some(Role::TypeA)
    }

    /// Total number of synchronous rounds Algorithm 2 uses on an `n`-node
    /// graph: three flooding phases of `n` rounds each.
    #[must_use]
    pub fn round_count(n: usize) -> usize {
        3 * n.max(1)
    }

    /// Definition C.1: whether this node reliably received input value
    /// `value` from node `origin` in phase 1.
    fn reliably_received_input(&self, ctx: &NodeContext<'_>, origin: NodeId, value: Value) -> bool {
        let Some(flood) = &self.value_flood else {
            return false;
        };
        if origin == ctx.id {
            return flood.own_value() == Some(value);
        }
        if ctx.graph.has_edge(ctx.id, origin) {
            // A neighbor's transmission is heard directly: the two-node full
            // path, whose relay is the unique length-one relay `[origin]` —
            // looked up directly instead of scanning every relay from
            // `origin`.
            let relay = ctx.arena.borrow().find_child(PathId::EMPTY, origin);
            return relay.is_some_and(|relay| flood.value_along_relay(relay) == Some(value));
        }
        let candidates = flood.paths_with_value(origin, value);
        paths::find_internally_disjoint_subset(&candidates, ctx.f + 1).is_some()
    }

    /// The set of `(origin, value)` pairs reliably received in phase 1.
    fn reliably_received_inputs(&self, ctx: &NodeContext<'_>) -> Vec<(NodeId, Value)> {
        let mut received = Vec::new();
        for origin in ctx.graph.nodes() {
            for value in [Value::Zero, Value::One] {
                if self.reliably_received_input(ctx, origin, value) {
                    received.push((origin, value));
                }
            }
        }
        received
    }

    /// Whether this node reliably learned that `observed` transmitted the
    /// exact phase-1 message `(value, observed_path)` — via direct
    /// overhearing when `observed` is a neighbor, or via the phase-2 report
    /// flood otherwise (Definition C.1 applied to `observed → me` paths).
    fn reliably_received_report(
        &self,
        ctx: &NodeContext<'_>,
        observed: NodeId,
        value: Value,
        observed_path: PathId,
    ) -> bool {
        if observed == ctx.id {
            // A node knows its own transmissions: it transmitted
            // `(value, observed_path)` iff it received `value` along the
            // corresponding full path ending at itself — whose relay id is
            // exactly `observed_path`.
            let Some(flood) = &self.value_flood else {
                return false;
            };
            return flood.value_along_relay(observed_path) == Some(value);
        }
        if ctx.graph.has_edge(ctx.id, observed) {
            // Directly overheard in phase 1: an indexed rule-(ii) lookup.
            return self
                .value_flood
                .as_ref()
                .is_some_and(|flood| flood.overheard_exactly(observed, observed_path, value));
        }
        let candidates = self.reports.full_paths(ctx, observed, value, observed_path);
        paths::find_internally_disjoint_subset(&candidates, ctx.f + 1).is_some()
    }

    /// The `2f` node-disjoint `origin → other` paths inspected by the fault
    /// identification procedure. The family is a pure function of the
    /// (common) communication graph and `f`, so the first node to need it
    /// computes it and every node shares the result through the ledger's
    /// pair-path memo — previously `n` nodes ran the same max-flow
    /// computation each.
    fn inspection_paths(ctx: &NodeContext<'_>, origin: NodeId, other: NodeId) -> Rc<Vec<Path>> {
        if let Some(plan) = ctx.ledger.borrow().pair_paths(origin, other) {
            return plan;
        }
        let plan = paths::disjoint_uv_paths_excluding(
            ctx.graph,
            origin,
            other,
            &NodeSet::new(),
            2 * ctx.f,
        );
        ctx.ledger.borrow_mut().set_pair_paths(origin, other, plan)
    }

    /// The fault identification procedure run at the end of phase 2.
    ///
    /// For every value `b` reliably received from an origin `w`, the node
    /// inspects `2f` node-disjoint paths out of `w` and scans each path from
    /// `w`'s side: an internal node `z` that is reliably reported to have
    /// transmitted `(1−b, prefix)` — where `prefix` is exactly the relay
    /// prefix of the inspected path up to `z` — tampered with `w`'s value on
    /// that path and is marked faulty. The path-exact prefix is what keeps
    /// the rule sound: an honest relay forwarding a value tampered elsewhere
    /// carries a different path annotation and is never blamed.
    fn identify_faults(&mut self, ctx: &NodeContext<'_>) {
        let reliable = self.reliably_received_inputs(ctx);
        // The same `(z, value, prefix)` report query recurs across origins
        // and inspected paths; memoize the disjoint-witness search.
        let mut report_memo: FxHashMap<(NodeId, Value, PathId), bool> = FxHashMap::default();
        let mut faults = NodeSet::new();
        for &(origin, value) in &reliable {
            let opposite = value.flipped();
            for other in ctx.graph.nodes() {
                if other == origin {
                    continue;
                }
                let disjoint = Self::inspection_paths(ctx, origin, other);
                for path in disjoint.iter() {
                    // Scan internal nodes from the origin's side. The
                    // expected transmission of the j-th node on the path
                    // carries the relay prefix up to its predecessor —
                    // interned incrementally, one `extended` per hop.
                    let nodes = path.nodes();
                    let mut prefix = PathId::EMPTY;
                    for j in 1..nodes.len().saturating_sub(1) {
                        prefix = ctx.arena.extended(prefix, nodes[j - 1]);
                        let z = nodes[j];
                        let reliably_reported =
                            *report_memo.entry((z, opposite, prefix)).or_insert_with(|| {
                                self.reliably_received_report(ctx, z, opposite, prefix)
                            });
                        if reliably_reported {
                            faults.insert(z);
                            break;
                        }
                    }
                }
            }
        }
        self.identified_faults = faults;
        self.reliable_inputs = reliable;
        self.role = Some(if self.identified_faults.len() >= ctx.f && ctx.f > 0 {
            Role::TypeA
        } else {
            Role::TypeB
        });
    }

    /// Type B decision: majority of the reliably received input values
    /// (computed once by [`Algorithm2Node::identify_faults`]).
    fn type_b_decision(&self) -> Value {
        let values = self.reliable_inputs.iter().map(|(_, value)| *value);
        Value::majority(values).unwrap_or(self.input)
    }

    /// Type A decision at the end of phase 3.
    fn type_a_decision(&self, ctx: &NodeContext<'_>) -> Value {
        // Prefer a decision value received along a path that avoids every
        // identified fault and originates at a non-faulty node.
        {
            let arena = ctx.arena.borrow();
            for &(origin, value, full_path) in &self.decisions.received {
                if self.identified_faults.contains(origin) {
                    continue;
                }
                if arena.excludes(full_path, &self.identified_faults) {
                    return value;
                }
            }
        }
        // Fall back to the majority of the non-faulty inputs read along
        // fault-free paths of phase 1.
        let Some(flood) = &self.value_flood else {
            return self.input;
        };
        let mut inputs = Vec::new();
        for u in ctx.graph.nodes() {
            if self.identified_faults.contains(u) {
                continue;
            }
            if u == ctx.id {
                inputs.push(self.input);
                continue;
            }
            let fault_free_value = flood
                .received_from(u)
                .into_iter()
                .find(|(path, _)| path.excludes(&self.identified_faults))
                .map(|(_, value)| value);
            if let Some(value) = fault_free_value {
                inputs.push(value);
            }
        }
        Value::majority(inputs).unwrap_or(self.input)
    }

    /// Builds the phase-2 report initiations: one report per distinct
    /// phase-1 transmission overheard from a neighbor.
    fn build_reports(&self, ctx: &NodeContext<'_>) -> Vec<Outgoing<Alg2Message>> {
        let Some(flood) = &self.value_flood else {
            return Vec::new();
        };
        // `overheard_ids` is already unique per (sender, path) and sorted,
        // matching the order the pre-interning engine emitted reports in.
        flood
            .overheard_ids()
            .into_iter()
            .map(|(observed, observed_path, value)| {
                Outgoing::Broadcast(Alg2Message::Report(ReportMsg {
                    observed,
                    value,
                    observed_path,
                    path: ctx.arena.extended(PathId::EMPTY, observed),
                }))
            })
            .collect()
    }
}

impl Protocol for Algorithm2Node {
    type Message = Alg2Message;

    fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<Alg2Message>> {
        let (flooder, out) =
            LedgerFlooder::start(ctx.arena.clone(), ctx.ledger.clone(), ctx.id, self.input);
        self.value_flood = Some(flooder);
        out.into_iter()
            .map(|o| map_outgoing(o, Alg2Message::Input))
            .collect()
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        _round: Round,
        inbox: Inbox<'_, Alg2Message>,
    ) -> Vec<Outgoing<Alg2Message>> {
        let n = ctx.n().max(1);
        let relative = self.round_counter;
        self.round_counter += 1;

        let mut out: Vec<Outgoing<Alg2Message>> = Vec::new();

        // Each phase window consumes its own message variant straight off
        // the zero-clone inbox view; other variants delivered inside the
        // window (e.g. late phase-1 forwards arriving in a phase-2 round)
        // are dropped, exactly as the previous split-then-ignore did.
        if relative < n {
            // Phase 1 relaying (rounds 0..n).
            let value_msgs: Vec<Delivery<FloodMsg>> = inbox
                .iter()
                .filter_map(|delivery| match &delivery.message {
                    Alg2Message::Input(m) => Some(Delivery {
                        from: delivery.from,
                        message: *m,
                    }),
                    _ => None,
                })
                .collect();
            if let Some(flood) = self.value_flood.as_mut() {
                let forwards = flood.on_round(ctx.graph, relative == 0, Inbox::direct(&value_msgs));
                out.extend(
                    forwards
                        .into_iter()
                        .map(|o| map_outgoing(o, Alg2Message::Input)),
                );
            }
        } else if relative < 2 * n {
            // Phase 2 relaying (rounds n..2n).
            self.reports.on_round(ctx, inbox, &mut out);
        } else {
            // Phase 3 relaying (rounds 2n..3n).
            let decision_msgs: Vec<(NodeId, DecisionMsg)> = inbox
                .iter()
                .filter_map(|delivery| match &delivery.message {
                    Alg2Message::Decision(m) => Some((delivery.from, *m)),
                    _ => None,
                })
                .collect();
            let forwards = self.decisions.on_round(ctx, &decision_msgs);
            out.extend(forwards.into_iter().map(Outgoing::Broadcast));
        }

        // Phase transitions.
        if relative + 1 == n {
            // End of phase 1: emit the report initiations.
            out.extend(self.build_reports(ctx));
        }
        if relative + 1 == 2 * n {
            // End of phase 2: identify faults and, for type B nodes, decide
            // and start flooding the decision.
            self.identify_faults(ctx);
            if self.role == Some(Role::TypeB) {
                let decision = self.type_b_decision();
                self.decided = Some(decision);
                out.push(Outgoing::Broadcast(Alg2Message::Decision(DecisionMsg {
                    value: decision,
                    path: PathId::EMPTY,
                })));
            }
        }
        if relative + 1 == 3 * n && self.decided.is_none() {
            // End of phase 3: type A nodes decide.
            self.decided = Some(self.type_a_decision(ctx));
        }

        out
    }

    fn output(&self) -> Option<Value> {
        self.decided
    }
}

fn map_outgoing<M, N>(outgoing: Outgoing<M>, wrap: impl Fn(M) -> N) -> Outgoing<N> {
    match outgoing {
        Outgoing::Broadcast(m) => Outgoing::Broadcast(wrap(m)),
        Outgoing::Unicast(to, m) => Outgoing::Unicast(to, wrap(m)),
    }
}

/// Flooding state for phase-2 reports, on the shared flood fabric.
///
/// A report's relay path starts at the *observed* node, so that
/// disjoint-path checks at the receiver range over `observed → receiver`
/// paths. Rule (ii) is applied per `(sender, relay path, observed, observed
/// transmission path)` key — but the key's validity, relay id and first
/// value are receiver-independent, so they live **once per execution** in
/// the ledger's keyed records: the first receiver anywhere validates and
/// interns, every other receiver's processing is one key lookup plus bit
/// operations. Per-node state is a [`DenseBits`] bitset over record indices
/// plus the accepted-record list (this used to be an `FxHashSet` of four-word
/// keys and an `FxHashMap` of path vectors *per node*).
#[derive(Debug, Clone, Default)]
struct ReportFlood {
    /// The report channel, opened on first use.
    channel: Option<ChannelId>,
    /// Rounds processed so far: the generation of the ledger's per-round
    /// slot cache. All nodes advance in lockstep (one `on_round` per
    /// simulator round), so a generation identifies one shared round buffer.
    round_generation: u32,
    /// Rule-(ii) membership over shared record indices.
    seen: DenseBits,
    /// Accepted record indices, in arrival order.
    accepted: Vec<u32>,
    /// Per-node first values that diverge from the shared record (empty
    /// under local broadcast; see the ledger module docs).
    overrides: FxHashMap<u32, Value>,
    /// Lazily built stream index and per-stream resolved paths (interior
    /// mutability: queries run behind `&self` during fault identification).
    /// Nothing is indexed or resolved until the first stream query — most
    /// executions query few or no streams (neighbors are checked by direct
    /// overhearing), and eagerly indexing the accepted records measurably
    /// dominated identification.
    streams: RefCell<StreamIndex>,
    /// Scratch buffer for [`validate_path`] (avoids per-message allocation).
    validate_scratch: Vec<PathId>,
}

/// Lazily built index of accepted report records by stream; see
/// [`ReportFlood::full_paths`].
#[derive(Debug, Clone, Default)]
struct StreamIndex {
    built: bool,
    /// `(observed, value, observed_path)` → accepted record indices.
    by_stream: FxHashMap<(NodeId, Value, PathId), Vec<u32>>,
    /// Resolved full `observed → me` paths per *queried* stream.
    resolved: FxHashMap<(NodeId, Value, PathId), Rc<Vec<Path>>>,
}

impl ReportFlood {
    fn channel(&mut self, ledger: &SharedFloodLedger) -> ChannelId {
        *self
            .channel
            .get_or_insert_with(|| ledger.open(TAG_REPORT, 0))
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: Inbox<'_, Alg2Message>,
        out: &mut Vec<Outgoing<Alg2Message>>,
    ) {
        // One slot-cache generation per round; advance even when nothing
        // arrived so generations track rounds across all nodes.
        self.round_generation += 1;
        if inbox.is_empty() {
            return;
        }
        let channel = self.channel(ctx.ledger);
        let generation = self.round_generation;
        // Borrow the shared structures once for the whole round, not once
        // per message; consume report messages straight off the zero-clone
        // inbox view.
        let mut arena = ctx.arena.borrow_mut();
        let mut ledger = ctx.ledger.borrow_mut();
        for (slot, delivery) in inbox.iter_indexed() {
            let Alg2Message::Report(msg) = &delivery.message else {
                continue;
            };
            if let Some(forward) = self.process_inner(
                &mut arena,
                &mut ledger,
                channel,
                ctx.graph,
                ctx.id,
                generation,
                slot,
                delivery.from,
                msg,
            ) {
                out.push(Outgoing::Broadcast(Alg2Message::Report(forward)));
            }
        }
    }

    /// Test-facing single-message entry point (bypasses the slot cache).
    #[cfg(test)]
    fn process(
        &mut self,
        arena: &SharedPathArena,
        ledger: &SharedFloodLedger,
        graph: &Graph,
        me: NodeId,
        from: NodeId,
        msg: &ReportMsg,
    ) -> Option<ReportMsg> {
        let channel = self.channel(ledger);
        let mut arena = arena.borrow_mut();
        let mut ledger = ledger.borrow_mut();
        self.process_inner(&mut arena, &mut ledger, channel, graph, me, 0, 0, from, msg)
    }

    #[allow(clippy::too_many_arguments)]
    fn process_inner(
        &mut self,
        arena: &mut PathArena,
        ledger: &mut FloodLedger,
        channel: ChannelId,
        graph: &Graph,
        me: NodeId,
        generation: u32,
        slot: u32,
        from: NodeId,
        msg: &ReportMsg,
    ) -> Option<ReportMsg> {
        let key = report_key(from, msg.path, msg.observed, msg.observed_path);
        // Broadcast-once lookup: the first receiver of this round's slot
        // resolves the key through the map; everyone else reads the slot
        // cache (one verified cache-line read). A missing record means no
        // receiver processed this broadcast yet — validate once and publish.
        let lookup = match ledger.report_lookup_at_slot(channel, slot, generation, &key) {
            Some(found) => found,
            None => {
                let record = Self::validate(arena, &mut self.validate_scratch, graph, from, msg);
                let index = ledger.insert_keyed(channel, key, record);
                ledger.cache_slot(channel, slot, generation, key, index)
            }
        };
        if !lookup.valid {
            return None;
        }
        // Rule (iii) *before* rule (ii): for the report flood the orders
        // are observably equivalent (a rule-(iii)-doomed key never produces
        // a forward or an accepted record, and nothing queries the report
        // flood's rule-(ii) state for such keys), and testing the memoized
        // member word first means the ~3/4 of deliveries whose relay runs
        // through the receiver touch no per-node state at all.
        if lookup.relay_contains(me, || arena.contains(lookup.relay, me)) {
            return None;
        }
        // Rule (ii): one message per key — a bit test on the record index.
        if !self.seen.insert(lookup.index as usize) {
            return None;
        }
        if msg.value != lookup.value {
            self.overrides.insert(lookup.index, msg.value);
        }
        // Rule (iv): index the accepted record and forward.
        self.accepted.push(lookup.index);
        Some(ReportMsg {
            observed: msg.observed,
            value: msg.value,
            observed_path: msg.observed_path,
            path: lookup.relay,
        })
    }

    /// The receiver-independent part of report processing: shape checks,
    /// rule (i), and relay interning. Runs once per distinct broadcast.
    fn validate(
        arena: &mut PathArena,
        scratch: &mut Vec<PathId>,
        graph: &Graph,
        from: NodeId,
        msg: &ReportMsg,
    ) -> ReportRecord {
        let invalid = ReportRecord {
            valid: false,
            value: msg.value,
            relay: PathId::EMPTY,
            relay_members_low: 0,
            observed: msg.observed,
            observed_path: msg.observed_path,
        };
        // The report's relay path must start at the observed node.
        if arena.first(msg.path) != Some(msg.observed) {
            return invalid;
        }
        // Rule (i): the relay path (including the transmitter) must exist in
        // G. Validation reads the arena's shared graph-validity memo — the
        // same per-entry byte the phase-1 value flood populated, so a report
        // about a path that travelled in phase 1 costs one array read. The
        // relay path is `msg.path` itself when the transmitter is already
        // its last node (a report initiation), otherwise `msg.path‑from`.
        let retransmission = arena.last(msg.path) == Some(from);
        if !validate_path(arena, scratch, graph, msg.path) {
            return invalid;
        }
        if !retransmission
            && (!graph.contains_node(from)
                || arena.contains(msg.path, from)
                || arena
                    .last(msg.path)
                    .is_none_or(|last| !graph.has_edge(last, from)))
        {
            return invalid;
        }
        let relay = if retransmission {
            msg.path
        } else {
            arena.extended(msg.path, from)
        };
        ReportRecord {
            valid: true,
            value: msg.value,
            relay,
            relay_members_low: arena
                .members(relay)
                .as_words()
                .first()
                .copied()
                .unwrap_or(0),
            observed: msg.observed,
            observed_path: msg.observed_path,
        }
    }

    /// The full `observed → me` paths the report `(observed, value,
    /// observed_path)` arrived along, in arrival order. The stream index is
    /// built from the accepted records on the first query of the execution,
    /// and each queried stream's paths resolve once and are cached — an
    /// execution that never asks (every reliably-received check answered by
    /// direct overhearing) pays nothing.
    fn full_paths(
        &self,
        ctx: &NodeContext<'_>,
        observed: NodeId,
        value: Value,
        observed_path: PathId,
    ) -> Rc<Vec<Path>> {
        let Some(channel) = self.channel else {
            return Rc::new(Vec::new()); // no report was ever processed
        };
        let mut streams = self.streams.borrow_mut();
        if !streams.built {
            streams.built = true;
            let ledger = ctx.ledger.borrow();
            for &index in &self.accepted {
                let record = ledger.record(channel, index);
                let accepted_value = self.overrides.get(&index).copied().unwrap_or(record.value);
                streams
                    .by_stream
                    .entry((record.observed, accepted_value, record.observed_path))
                    .or_default()
                    .push(index);
            }
        }
        let key = (observed, value, observed_path);
        if let Some(found) = streams.resolved.get(&key) {
            return Rc::clone(found);
        }
        let resolved = match streams.by_stream.get(&key) {
            Some(indices) => {
                let arena = ctx.arena.borrow();
                let ledger = ctx.ledger.borrow();
                Rc::new(
                    indices
                        .iter()
                        .map(|&index| {
                            let mut nodes = arena.nodes(ledger.record(channel, index).relay);
                            nodes.push(ctx.id);
                            Path::from_nodes(nodes)
                        })
                        .collect::<Vec<Path>>(),
                )
            }
            None => Rc::new(Vec::new()),
        };
        streams.resolved.insert(key, Rc::clone(&resolved));
        resolved
    }
}

/// Flooding state for phase-3 decision messages.
///
/// Rule (ii)'s `(sender, path)` key *is* the interned relay id `Π‑sender`,
/// so the state is a [`DenseBits`] bitset over the shared arena's ids — the
/// arena plays the role of the execution-wide key interner (this used to be
/// a per-node `FxHashSet`).
#[derive(Debug, Clone, Default)]
struct DecisionFlood {
    /// Rule-(ii) membership over interned relay ids.
    seen: DenseBits,
    /// Full origin→me paths and the value they delivered, in arrival order.
    received: Vec<(NodeId, Value, PathId)>,
    /// Scratch buffer for [`validate_path`] (avoids per-message allocation).
    validate_scratch: Vec<PathId>,
}

impl DecisionFlood {
    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[(NodeId, DecisionMsg)],
    ) -> Vec<Alg2Message> {
        let mut out = Vec::new();
        for (from, msg) in inbox {
            if let Some(forward) = self.process(ctx.arena, ctx.graph, ctx.id, *from, msg) {
                out.push(Alg2Message::Decision(forward));
            }
        }
        out
    }

    fn process(
        &mut self,
        arena: &SharedPathArena,
        graph: &Graph,
        me: NodeId,
        from: NodeId,
        msg: &DecisionMsg,
    ) -> Option<DecisionMsg> {
        // Rule (i), checked id-natively against the arena's shared
        // graph-validity memo (decision paths are usually re-walks of
        // phase-1/2 prefixes, so the memo hits).
        {
            let mut borrowed = arena.borrow_mut();
            if !graph.contains_node(from)
                || !validate_path(&mut borrowed, &mut self.validate_scratch, graph, msg.path)
                || borrowed.contains(msg.path, from)
            {
                return None;
            }
            if let Some(last) = borrowed.last(msg.path) {
                if !graph.has_edge(last, from) {
                    return None;
                }
            }
        }
        // Rules (ii) and (iii): the relay id is the key; one bit test.
        let relay_path = arena.extended(msg.path, from);
        if !self.seen.insert(relay_path.index()) {
            return None;
        }
        if arena.contains(relay_path, me) {
            return None;
        }
        // Rule (iv).
        let full = arena.extended(relay_path, me);
        let origin = arena.first(full).expect("non-empty path");
        self.received.push((origin, msg.value, full));
        Some(DecisionMsg {
            value: msg.value,
            path: relay_path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn intern(arena: &SharedPathArena, ids: &[usize]) -> PathId {
        arena.intern(&Path::from_nodes(ids.iter().map(|&i| n(i))))
    }

    fn ctx_at<'a>(
        id: NodeId,
        graph: &'a Graph,
        arena: &'a SharedPathArena,
        ledger: &'a SharedFloodLedger,
    ) -> NodeContext<'a> {
        NodeContext {
            id,
            graph,
            f: 1,
            regime: &lbc_model::Regime::Synchronous,
            step: None,
            arena,
            ledger,
            observer: Box::leak(Box::new(lbc_sim::ObserverHandle::disabled())),
        }
    }

    #[test]
    fn round_count_is_linear() {
        assert_eq!(Algorithm2Node::round_count(5), 15);
        assert_eq!(Algorithm2Node::round_count(9), 27);
    }

    #[test]
    fn construction_defaults() {
        let node = Algorithm2Node::new(Value::One);
        assert_eq!(node.input(), Value::One);
        assert_eq!(node.output(), None);
        assert!(!node.is_type_a());
        assert!(node.identified_faults().is_empty());
    }

    #[test]
    fn report_flood_rejects_malformed_paths() {
        let graph = generators::cycle(5);
        let arena = SharedPathArena::new();
        let ledger = SharedFloodLedger::new();
        let mut flood = ReportFlood::default();
        // Relay path does not start at the observed node.
        let bad = ReportMsg {
            observed: n(0),
            value: Value::One,
            observed_path: PathId::EMPTY,
            path: intern(&arena, &[1]),
        };
        assert!(flood
            .process(&arena, &ledger, &graph, n(2), n(1), &bad)
            .is_none());
        // Non-adjacent relay claim: relay path [0] transmitted by node 2
        // (0-2 is not an edge of the 5-cycle).
        let not_adjacent = ReportMsg {
            observed: n(0),
            value: Value::One,
            observed_path: PathId::EMPTY,
            path: intern(&arena, &[0]),
        };
        assert!(flood
            .process(&arena, &ledger, &graph, n(3), n(2), &not_adjacent)
            .is_none());
    }

    #[test]
    fn report_flood_records_and_forwards_valid_reports() {
        let graph = generators::cycle(5);
        let arena = SharedPathArena::new();
        let ledger = SharedFloodLedger::new();
        let mut flood = ReportFlood::default();
        // Node 1 reports on its neighbor 0 relaying node 4's value; we are
        // node 2 receiving the report from node 1.
        let observed_path = intern(&arena, &[4]);
        let report = ReportMsg {
            observed: n(0),
            value: Value::Zero,
            observed_path,
            path: intern(&arena, &[0]),
        };
        let forward = flood
            .process(&arena, &ledger, &graph, n(2), n(1), &report)
            .unwrap();
        assert_eq!(arena.resolve(forward.path).nodes(), &[n(0), n(1)]);
        // Duplicate (same sender, relay path, observed, observed-path) is ignored.
        assert!(flood
            .process(&arena, &ledger, &graph, n(2), n(1), &report)
            .is_none());
        let ctx = ctx_at(n(2), &graph, &arena, &ledger);
        let full = flood.full_paths(&ctx, n(0), Value::Zero, observed_path);
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].nodes(), &[n(0), n(1), n(2)]);
        assert!(flood
            .full_paths(&ctx, n(0), Value::One, observed_path)
            .is_empty());
    }

    #[test]
    fn report_ledger_shares_records_across_receivers() {
        // Two receivers of the same broadcast: the second one's processing
        // hits the shared record; both keep their own accepted indexes.
        let graph = generators::cycle(5);
        let arena = SharedPathArena::new();
        let ledger = SharedFloodLedger::new();
        let mut at_node2 = ReportFlood::default();
        let mut at_node0 = ReportFlood::default();
        let observed_path = intern(&arena, &[4]);
        let report = ReportMsg {
            observed: n(1),
            value: Value::One,
            observed_path,
            path: intern(&arena, &[1]),
        };
        assert!(at_node2
            .process(&arena, &ledger, &graph, n(2), n(1), &report)
            .is_some());
        assert!(at_node0
            .process(&arena, &ledger, &graph, n(0), n(1), &report)
            .is_some());
        assert_eq!(
            at_node2.full_paths(
                &ctx_at(n(2), &graph, &arena, &ledger),
                n(1),
                Value::One,
                observed_path
            )[0]
            .nodes(),
            &[n(1), n(2)]
        );
        assert_eq!(
            at_node0.full_paths(
                &ctx_at(n(0), &graph, &arena, &ledger),
                n(1),
                Value::One,
                observed_path
            )[0]
            .nodes(),
            &[n(1), n(0)]
        );
    }

    #[test]
    fn decision_flood_tracks_origins() {
        let graph = generators::cycle(5);
        let arena = SharedPathArena::new();
        let mut flood = DecisionFlood::default();
        let msg = DecisionMsg {
            value: Value::One,
            path: PathId::EMPTY,
        };
        let forward = flood.process(&arena, &graph, n(2), n(1), &msg).unwrap();
        assert_eq!(arena.resolve(forward.path).nodes(), &[n(1)]);
        assert_eq!(flood.received.len(), 1);
        assert_eq!(flood.received[0].0, n(1));
        assert_eq!(flood.received[0].1, Value::One);
        // Rule (ii): the same (sender, path) key is ignored on repeat.
        assert!(flood.process(&arena, &graph, n(2), n(1), &msg).is_none());
    }
}
