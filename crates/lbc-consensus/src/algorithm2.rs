//! Algorithm 2: the efficient `O(n)`-round consensus algorithm for
//! `2f`-connected graphs (Theorem 5.6, Appendix C).
//!
//! The algorithm has three phases of `n` synchronous rounds each:
//!
//! 1. **Phase 1** — every node floods its input value (path-annotated
//!    flooding as in Algorithm 1).
//! 2. **Phase 2** — every node floods *reports* of everything it overheard
//!    its neighbors transmit in phase 1. At the end of the phase each node
//!    runs the fault-identification procedure: for every value it reliably
//!    received (Definition C.1) it inspects `2f` node-disjoint paths and
//!    marks, per path, the first node reliably reported to have forwarded the
//!    opposite value. A node that identifies all `f` faults becomes a
//!    **type A** node; the others are **type B** nodes.
//! 3. **Phase 3** — type B nodes decide the majority of the reliably received
//!    input values and flood their decision; type A nodes adopt a decision
//!    received along a path that avoids the (fully known) faulty set, falling
//!    back to the majority of the non-faulty inputs they can read along
//!    fault-free paths.
//!
//! All three phases run on interned [`PathId`]s: the phase-2 report flood and
//! phase-3 decision flood key their rule-(ii) state by `(sender, path id)`
//! tuples in `FxHashSet`s and record full paths as ids, resolving to owned
//! [`Path`]s only at phase boundaries.

use lbc_graph::{paths, Graph};
use lbc_model::fx::{FxHashMap, FxHashSet};
use lbc_model::{NodeId, NodeSet, Path, PathId, Round, SharedPathArena, Value};
use lbc_sim::{Delivery, NodeContext, Outgoing, Protocol};

use crate::flooding::{validate_path, Flooder};
use crate::messages::{Alg2Message, DecisionMsg, ReportMsg};

/// Which role a node ended phase 2 with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Role {
    /// Knows the identity of all `f` faulty nodes.
    TypeA,
    /// Does not know all faults; decides by majority of reliably received
    /// inputs.
    TypeB,
}

/// A node running **Algorithm 2** (Theorem 5.6): Byzantine consensus in
/// `O(n)` rounds on `2f`-connected graphs under the local broadcast model.
///
/// # Reproduction note (Appendix C omission gap)
///
/// The fault-identification rule of Appendix C detects *commission*
/// (forwarding a tampered value) but not *omission* (silently failing to
/// relay). On graphs that are exactly `2f`-connected, an omission-only
/// adversary can leave two type B nodes with different reliably-received
/// input sets and no identified faults, and their majority decisions can then
/// disagree — see the `algorithm2_omission_gap_reproduction_finding`
/// integration test and `EXPERIMENTS.md` for the concrete 5-cycle
/// counterexample. Algorithm 1 ([`crate::Algorithm1Node`]) is unaffected and
/// handles arbitrary Byzantine behaviour; use it when omission faults are in
/// scope or the graph is not comfortably above the `2f`-connectivity bound.
///
/// # Example
///
/// ```
/// use lbc_consensus::{conditions, runner};
/// use lbc_graph::generators;
/// use lbc_model::{InputAssignment, NodeSet};
/// use lbc_sim::HonestAdversary;
///
/// let graph = generators::paper_fig1a(); // 2-connected, so f = 1 works
/// assert!(conditions::efficient_algorithm_applicable(&graph, 1));
/// let inputs = InputAssignment::from_bits(5, 0b10010);
/// let (outcome, trace) = runner::run_algorithm2(
///     &graph,
///     1,
///     &inputs,
///     &NodeSet::new(),
///     &mut HonestAdversary,
/// );
/// assert!(outcome.verdict().is_correct());
/// assert!(trace.rounds() <= 3 * 5 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct Algorithm2Node {
    input: Value,
    decided: Option<Value>,
    /// Relative round counter (how many `on_round` calls have happened).
    round_counter: usize,
    /// Phase-1 value flood state.
    value_flood: Option<Flooder>,
    /// Phase-2 report flood state.
    reports: ReportFlood,
    /// Phase-3 decision flood state.
    decisions: DecisionFlood,
    /// Faulty nodes identified at the end of phase 2.
    identified_faults: NodeSet,
    /// Role determined at the end of phase 2.
    role: Option<Role>,
}

impl Algorithm2Node {
    /// Creates an Algorithm 2 node with the given binary input.
    #[must_use]
    pub fn new(input: Value) -> Self {
        Algorithm2Node {
            input,
            decided: None,
            round_counter: 0,
            value_flood: None,
            reports: ReportFlood::default(),
            decisions: DecisionFlood::default(),
            identified_faults: NodeSet::new(),
            role: None,
        }
    }

    /// The node's input value.
    #[must_use]
    pub fn input(&self) -> Value {
        self.input
    }

    /// The faulty nodes this node identified during phase 2.
    #[must_use]
    pub fn identified_faults(&self) -> &NodeSet {
        &self.identified_faults
    }

    /// Whether the node ended phase 2 as a type A node (knowing all faults).
    #[must_use]
    pub fn is_type_a(&self) -> bool {
        self.role == Some(Role::TypeA)
    }

    /// Total number of synchronous rounds Algorithm 2 uses on an `n`-node
    /// graph: three flooding phases of `n` rounds each.
    #[must_use]
    pub fn round_count(n: usize) -> usize {
        3 * n.max(1)
    }

    /// Definition C.1: whether this node reliably received input value
    /// `value` from node `origin` in phase 1.
    fn reliably_received_input(&self, ctx: &NodeContext<'_>, origin: NodeId, value: Value) -> bool {
        let Some(flood) = &self.value_flood else {
            return false;
        };
        if origin == ctx.id {
            return flood.own_value() == Some(value);
        }
        if ctx.graph.has_edge(ctx.id, origin) {
            // A neighbor's transmission is heard directly: the two-node full
            // path, i.e. the single-node relay path `[origin]`.
            let arena = ctx.arena.borrow();
            return flood
                .relay_ids_from(origin)
                .iter()
                .any(|id| arena.len(*id) == 1 && flood.value_along_relay(*id) == Some(value));
        }
        let candidates = flood.paths_with_value(origin, value);
        paths::find_internally_disjoint_subset(&candidates, ctx.f + 1).is_some()
    }

    /// The set of `(origin, value)` pairs reliably received in phase 1.
    fn reliably_received_inputs(&self, ctx: &NodeContext<'_>) -> Vec<(NodeId, Value)> {
        let mut received = Vec::new();
        for origin in ctx.graph.nodes() {
            for value in [Value::Zero, Value::One] {
                if self.reliably_received_input(ctx, origin, value) {
                    received.push((origin, value));
                }
            }
        }
        received
    }

    /// Whether this node reliably learned that `observed` transmitted the
    /// exact phase-1 message `(value, observed_path)` — via direct
    /// overhearing when `observed` is a neighbor, or via the phase-2 report
    /// flood otherwise (Definition C.1 applied to `observed → me` paths).
    fn reliably_received_report(
        &self,
        ctx: &NodeContext<'_>,
        observed: NodeId,
        value: Value,
        observed_path: PathId,
    ) -> bool {
        if observed == ctx.id {
            // A node knows its own transmissions: it transmitted
            // `(value, observed_path)` iff it received `value` along the
            // corresponding full path ending at itself — whose relay id is
            // exactly `observed_path`.
            let Some(flood) = &self.value_flood else {
                return false;
            };
            return flood.value_along_relay(observed_path) == Some(value);
        }
        if ctx.graph.has_edge(ctx.id, observed) {
            // Directly overheard in phase 1: an indexed rule-(ii) lookup.
            return self
                .value_flood
                .as_ref()
                .is_some_and(|flood| flood.overheard_exactly(observed, observed_path, value));
        }
        let candidates = self
            .reports
            .full_paths(ctx.arena, observed, value, observed_path);
        paths::find_internally_disjoint_subset(&candidates, ctx.f + 1).is_some()
    }

    /// The fault identification procedure run at the end of phase 2.
    ///
    /// For every value `b` reliably received from an origin `w`, the node
    /// inspects `2f` node-disjoint paths out of `w` and scans each path from
    /// `w`'s side: an internal node `z` that is reliably reported to have
    /// transmitted `(1−b, prefix)` — where `prefix` is exactly the relay
    /// prefix of the inspected path up to `z` — tampered with `w`'s value on
    /// that path and is marked faulty. The path-exact prefix is what keeps
    /// the rule sound: an honest relay forwarding a value tampered elsewhere
    /// carries a different path annotation and is never blamed.
    fn identify_faults(&mut self, ctx: &NodeContext<'_>) {
        let mut faults = NodeSet::new();
        for origin in ctx.graph.nodes() {
            for value in [Value::Zero, Value::One] {
                if !self.reliably_received_input(ctx, origin, value) {
                    continue;
                }
                let opposite = value.flipped();
                for other in ctx.graph.nodes() {
                    if other == origin {
                        continue;
                    }
                    let disjoint = paths::disjoint_uv_paths_excluding(
                        ctx.graph,
                        origin,
                        other,
                        &NodeSet::new(),
                        2 * ctx.f,
                    );
                    for path in disjoint {
                        // Scan internal nodes from the origin's side. The
                        // expected transmission of the j-th node on the path
                        // carries the relay prefix up to its predecessor —
                        // interned incrementally, one `extended` per hop.
                        let nodes = path.nodes();
                        let mut prefix = PathId::EMPTY;
                        for j in 1..nodes.len().saturating_sub(1) {
                            prefix = ctx.arena.extended(prefix, nodes[j - 1]);
                            let z = nodes[j];
                            if self.reliably_received_report(ctx, z, opposite, prefix) {
                                faults.insert(z);
                                break;
                            }
                        }
                    }
                }
            }
        }
        self.identified_faults = faults;
        self.role = Some(if self.identified_faults.len() >= ctx.f && ctx.f > 0 {
            Role::TypeA
        } else {
            Role::TypeB
        });
    }

    /// Type B decision: majority of the reliably received input values.
    fn type_b_decision(&self, ctx: &NodeContext<'_>) -> Value {
        let values = self
            .reliably_received_inputs(ctx)
            .into_iter()
            .map(|(_, value)| value);
        Value::majority(values).unwrap_or(self.input)
    }

    /// Type A decision at the end of phase 3.
    fn type_a_decision(&self, ctx: &NodeContext<'_>) -> Value {
        // Prefer a decision value received along a path that avoids every
        // identified fault and originates at a non-faulty node.
        {
            let arena = ctx.arena.borrow();
            for &(origin, value, full_path) in &self.decisions.received {
                if self.identified_faults.contains(origin) {
                    continue;
                }
                if arena.excludes(full_path, &self.identified_faults) {
                    return value;
                }
            }
        }
        // Fall back to the majority of the non-faulty inputs read along
        // fault-free paths of phase 1.
        let Some(flood) = &self.value_flood else {
            return self.input;
        };
        let mut inputs = Vec::new();
        for u in ctx.graph.nodes() {
            if self.identified_faults.contains(u) {
                continue;
            }
            if u == ctx.id {
                inputs.push(self.input);
                continue;
            }
            let fault_free_value = flood
                .received_from(u)
                .into_iter()
                .find(|(path, _)| path.excludes(&self.identified_faults))
                .map(|(_, value)| value);
            if let Some(value) = fault_free_value {
                inputs.push(value);
            }
        }
        Value::majority(inputs).unwrap_or(self.input)
    }

    /// Builds the phase-2 report initiations: one report per distinct
    /// phase-1 transmission overheard from a neighbor.
    fn build_reports(&self, ctx: &NodeContext<'_>) -> Vec<Outgoing<Alg2Message>> {
        let Some(flood) = &self.value_flood else {
            return Vec::new();
        };
        // `overheard_ids` is already unique per (sender, path) and sorted,
        // matching the order the pre-interning engine emitted reports in.
        flood
            .overheard_ids()
            .into_iter()
            .map(|(observed, observed_path, value)| {
                Outgoing::Broadcast(Alg2Message::Report(ReportMsg {
                    observed,
                    value,
                    observed_path,
                    path: ctx.arena.extended(PathId::EMPTY, observed),
                }))
            })
            .collect()
    }
}

impl Protocol for Algorithm2Node {
    type Message = Alg2Message;

    fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<Alg2Message>> {
        let (flooder, out) = Flooder::start(ctx.arena.clone(), ctx.id, self.input);
        self.value_flood = Some(flooder);
        out.into_iter()
            .map(|o| map_outgoing(o, Alg2Message::Input))
            .collect()
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        _round: Round,
        inbox: &[Delivery<Alg2Message>],
    ) -> Vec<Outgoing<Alg2Message>> {
        let n = ctx.n().max(1);
        let relative = self.round_counter;
        self.round_counter += 1;

        // Split the inbox by phase/variant. Messages are two or three words,
        // so this split copies ids, not paths.
        let mut value_msgs = Vec::new();
        let mut report_msgs = Vec::new();
        let mut decision_msgs = Vec::new();
        for delivery in inbox {
            match &delivery.message {
                Alg2Message::Input(m) => value_msgs.push(Delivery {
                    from: delivery.from,
                    message: *m,
                }),
                Alg2Message::Report(m) => report_msgs.push((delivery.from, *m)),
                Alg2Message::Decision(m) => decision_msgs.push((delivery.from, *m)),
            }
        }

        let mut out: Vec<Outgoing<Alg2Message>> = Vec::new();

        // Phase 1 relaying (rounds 0..n).
        if relative < n {
            if let Some(flood) = self.value_flood.as_mut() {
                let forwards = flood.on_round(ctx.graph, relative == 0, &value_msgs);
                out.extend(
                    forwards
                        .into_iter()
                        .map(|o| map_outgoing(o, Alg2Message::Input)),
                );
            }
        }

        // Phase 2 relaying (rounds n..2n).
        if relative >= n && relative < 2 * n {
            let forwards = self.reports.on_round(ctx, &report_msgs);
            out.extend(forwards.into_iter().map(Outgoing::Broadcast));
        }

        // Phase 3 relaying (rounds 2n..3n).
        if relative >= 2 * n {
            let forwards = self.decisions.on_round(ctx, &decision_msgs);
            out.extend(forwards.into_iter().map(Outgoing::Broadcast));
        }

        // Phase transitions.
        if relative + 1 == n {
            // End of phase 1: emit the report initiations.
            out.extend(self.build_reports(ctx));
        }
        if relative + 1 == 2 * n {
            // End of phase 2: identify faults and, for type B nodes, decide
            // and start flooding the decision.
            self.identify_faults(ctx);
            if self.role == Some(Role::TypeB) {
                let decision = self.type_b_decision(ctx);
                self.decided = Some(decision);
                out.push(Outgoing::Broadcast(Alg2Message::Decision(DecisionMsg {
                    value: decision,
                    path: PathId::EMPTY,
                })));
            }
        }
        if relative + 1 == 3 * n && self.decided.is_none() {
            // End of phase 3: type A nodes decide.
            self.decided = Some(self.type_a_decision(ctx));
        }

        out
    }

    fn output(&self) -> Option<Value> {
        self.decided
    }
}

fn map_outgoing<M, N>(outgoing: Outgoing<M>, wrap: impl Fn(M) -> N) -> Outgoing<N> {
    match outgoing {
        Outgoing::Broadcast(m) => Outgoing::Broadcast(wrap(m)),
        Outgoing::Unicast(to, m) => Outgoing::Unicast(to, wrap(m)),
    }
}

/// Flooding state for phase-2 reports.
///
/// A report's relay path starts at the *observed* node, so that
/// disjoint-path checks at the receiver range over `observed → receiver`
/// paths. Rule (ii) is applied per `(sender, relay path, observed, observed
/// transmission path)` key: the first value received for a logical report
/// stream wins. All keys are interned ids, so the set and map hash a handful
/// of machine words per message.
#[derive(Debug, Clone, Default)]
struct ReportFlood {
    seen: FxHashSet<(NodeId, PathId, NodeId, PathId)>,
    /// (observed, value, observed transmission path) → full observed→me relay
    /// paths the report arrived along, in arrival order.
    received: FxHashMap<(NodeId, Value, PathId), Vec<PathId>>,
    /// Scratch buffer for [`validate_path`] (avoids per-message allocation).
    validate_scratch: Vec<PathId>,
}

impl ReportFlood {
    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[(NodeId, ReportMsg)],
    ) -> Vec<Alg2Message> {
        let mut out = Vec::new();
        for (from, msg) in inbox {
            if let Some(forward) = self.process(ctx.arena, ctx.graph, ctx.id, *from, msg) {
                out.push(Alg2Message::Report(forward));
            }
        }
        out
    }

    fn process(
        &mut self,
        arena: &SharedPathArena,
        graph: &Graph,
        me: NodeId,
        from: NodeId,
        msg: &ReportMsg,
    ) -> Option<ReportMsg> {
        // The report's relay path must start at the observed node.
        if arena.first(msg.path) != Some(msg.observed) {
            return None;
        }
        // Rule (i): the relay path (including the transmitter) must exist in
        // G. Validated *before* any interning, so rejected reports allocate
        // no arena entries (as in `Flooder::process`). The relay path is
        // `msg.path` itself when the transmitter is already its last node,
        // otherwise `msg.path‑from`. Validation reads the arena's shared
        // graph-validity memo — the same per-entry byte the phase-1 value
        // flood populated, so a report about a path that travelled in phase 1
        // costs one array read instead of a parent-chain walk.
        let retransmission = arena.last(msg.path) == Some(from);
        {
            let mut borrowed = arena.borrow_mut();
            if !validate_path(&mut borrowed, &mut self.validate_scratch, graph, msg.path) {
                return None;
            }
            if !retransmission
                && (!graph.contains_node(from)
                    || borrowed.contains(msg.path, from)
                    || borrowed
                        .last(msg.path)
                        .is_none_or(|last| !graph.has_edge(last, from)))
            {
                return None;
            }
        }
        // Rule (ii): one message per (sender, relay path, observed,
        // observed-path) key.
        let key = (from, msg.path, msg.observed, msg.observed_path);
        if !self.seen.insert(key) {
            return None;
        }
        // Rule (iii): discard if the relay path already contains me.
        if arena.contains(msg.path, me) || (!retransmission && from == me) {
            return None;
        }
        // Rule (iv): record the full observed→me path and forward.
        let relay_path = if retransmission {
            msg.path
        } else {
            arena.extended(msg.path, from)
        };
        let full = arena.extended(relay_path, me);
        self.received
            .entry((msg.observed, msg.value, msg.observed_path))
            .or_default()
            .push(full);
        Some(ReportMsg {
            observed: msg.observed,
            value: msg.value,
            observed_path: msg.observed_path,
            path: relay_path,
        })
    }

    /// The full `observed → me` paths the report `(observed, value,
    /// observed_path)` arrived along, resolved in arrival order.
    fn full_paths(
        &self,
        arena: &SharedPathArena,
        observed: NodeId,
        value: Value,
        observed_path: PathId,
    ) -> Vec<Path> {
        let arena = arena.borrow();
        self.received
            .get(&(observed, value, observed_path))
            .map(|ids| ids.iter().map(|id| arena.resolve(*id)).collect())
            .unwrap_or_default()
    }
}

/// Flooding state for phase-3 decision messages.
#[derive(Debug, Clone, Default)]
struct DecisionFlood {
    seen: FxHashSet<(NodeId, PathId)>,
    /// Full origin→me paths and the value they delivered, in arrival order.
    received: Vec<(NodeId, Value, PathId)>,
    /// Scratch buffer for [`validate_path`] (avoids per-message allocation).
    validate_scratch: Vec<PathId>,
}

impl DecisionFlood {
    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[(NodeId, DecisionMsg)],
    ) -> Vec<Alg2Message> {
        let mut out = Vec::new();
        for (from, msg) in inbox {
            if let Some(forward) = self.process(ctx.arena, ctx.graph, ctx.id, *from, msg) {
                out.push(Alg2Message::Decision(forward));
            }
        }
        out
    }

    fn process(
        &mut self,
        arena: &SharedPathArena,
        graph: &Graph,
        me: NodeId,
        from: NodeId,
        msg: &DecisionMsg,
    ) -> Option<DecisionMsg> {
        // Rule (i), checked id-natively against the arena's shared
        // graph-validity memo as in `Flooder::process` (decision paths are
        // usually re-walks of phase-1/2 prefixes, so the memo hits).
        {
            let mut borrowed = arena.borrow_mut();
            if !graph.contains_node(from)
                || !validate_path(&mut borrowed, &mut self.validate_scratch, graph, msg.path)
                || borrowed.contains(msg.path, from)
            {
                return None;
            }
            if let Some(last) = borrowed.last(msg.path) {
                if !graph.has_edge(last, from) {
                    return None;
                }
            }
        }
        // Rule (ii).
        if !self.seen.insert((from, msg.path)) {
            return None;
        }
        // Rule (iii).
        if from == me || arena.contains(msg.path, me) {
            return None;
        }
        // Rule (iv).
        let relay_path = arena.extended(msg.path, from);
        let full = arena.extended(relay_path, me);
        let origin = arena.first(full).expect("non-empty path");
        self.received.push((origin, msg.value, full));
        Some(DecisionMsg {
            value: msg.value,
            path: relay_path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn intern(arena: &SharedPathArena, ids: &[usize]) -> PathId {
        arena.intern(&Path::from_nodes(ids.iter().map(|&i| n(i))))
    }

    #[test]
    fn round_count_is_linear() {
        assert_eq!(Algorithm2Node::round_count(5), 15);
        assert_eq!(Algorithm2Node::round_count(9), 27);
    }

    #[test]
    fn construction_defaults() {
        let node = Algorithm2Node::new(Value::One);
        assert_eq!(node.input(), Value::One);
        assert_eq!(node.output(), None);
        assert!(!node.is_type_a());
        assert!(node.identified_faults().is_empty());
    }

    #[test]
    fn report_flood_rejects_malformed_paths() {
        let graph = generators::cycle(5);
        let arena = SharedPathArena::new();
        let mut flood = ReportFlood::default();
        // Relay path does not start at the observed node.
        let bad = ReportMsg {
            observed: n(0),
            value: Value::One,
            observed_path: PathId::EMPTY,
            path: intern(&arena, &[1]),
        };
        assert!(flood.process(&arena, &graph, n(2), n(1), &bad).is_none());
        // Non-adjacent relay claim: relay path [0] transmitted by node 2
        // (0-2 is not an edge of the 5-cycle).
        let not_adjacent = ReportMsg {
            observed: n(0),
            value: Value::One,
            observed_path: PathId::EMPTY,
            path: intern(&arena, &[0]),
        };
        assert!(flood
            .process(&arena, &graph, n(3), n(2), &not_adjacent)
            .is_none());
    }

    #[test]
    fn report_flood_records_and_forwards_valid_reports() {
        let graph = generators::cycle(5);
        let arena = SharedPathArena::new();
        let mut flood = ReportFlood::default();
        // Node 1 reports on its neighbor 0 relaying node 4's value; we are
        // node 2 receiving the report from node 1.
        let observed_path = intern(&arena, &[4]);
        let report = ReportMsg {
            observed: n(0),
            value: Value::Zero,
            observed_path,
            path: intern(&arena, &[0]),
        };
        let forward = flood.process(&arena, &graph, n(2), n(1), &report).unwrap();
        assert_eq!(arena.resolve(forward.path).nodes(), &[n(0), n(1)]);
        let full = flood.full_paths(&arena, n(0), Value::Zero, observed_path);
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].nodes(), &[n(0), n(1), n(2)]);
        // Duplicate (same sender, relay path, observed, observed-path) is ignored.
        assert!(flood.process(&arena, &graph, n(2), n(1), &report).is_none());
    }

    #[test]
    fn decision_flood_tracks_origins() {
        let graph = generators::cycle(5);
        let arena = SharedPathArena::new();
        let mut flood = DecisionFlood::default();
        let msg = DecisionMsg {
            value: Value::One,
            path: PathId::EMPTY,
        };
        let forward = flood.process(&arena, &graph, n(2), n(1), &msg).unwrap();
        assert_eq!(arena.resolve(forward.path).nodes(), &[n(1)]);
        assert_eq!(flood.received.len(), 1);
        assert_eq!(flood.received[0].0, n(1));
        assert_eq!(flood.received[0].1, Value::One);
    }
}
