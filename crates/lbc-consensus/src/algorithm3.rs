//! Algorithm 3: exact Byzantine consensus under the hybrid model
//! (Theorem 6.1).

use lbc_model::{Round, Value};
use lbc_sim::{Inbox, NodeContext, Outgoing, Protocol};

use crate::messages::FloodMsg;
use crate::phased::{PhasedNode, StepCCase};

/// A node running **Algorithm 3** of the paper: Byzantine consensus under the
/// hybrid model, where at most `t ≤ f` of the faulty nodes may equivocate
/// (behave as under point-to-point) while the rest are restricted to local
/// broadcast.
///
/// The algorithm executes one phase per candidate pair `(F, T)` with
/// `|T| ≤ t` and `|F| ≤ f − |T|`. With `t = 0` it is exactly
/// [`crate::Algorithm1Node`]; with `t = f` its graph requirements coincide
/// with the classical point-to-point ones.
///
/// # Example
///
/// ```
/// use lbc_consensus::{conditions, runner};
/// use lbc_graph::generators;
/// use lbc_model::{InputAssignment, NodeSet};
/// use lbc_sim::HonestAdversary;
///
/// // K5 tolerates f = 1 with t = 1 equivocator under the hybrid model.
/// let graph = generators::complete(5);
/// assert!(conditions::hybrid_feasible(&graph, 1, 1));
/// let inputs = InputAssignment::from_bits(5, 0b01101);
/// let (outcome, _) = runner::run_algorithm3(
///     &graph,
///     1,
///     1,
///     &NodeSet::new(),
///     &inputs,
///     &NodeSet::new(),
///     &mut HonestAdversary,
/// );
/// assert!(outcome.verdict().is_correct());
/// ```
#[derive(Debug, Clone)]
pub struct Algorithm3Node {
    inner: PhasedNode,
    equivocation_bound: usize,
}

impl Algorithm3Node {
    /// Creates an Algorithm 3 node with the given binary input and
    /// equivocation bound `t`.
    #[must_use]
    pub fn new(input: Value, equivocation_bound: usize) -> Self {
        Algorithm3Node {
            inner: PhasedNode::new(input, equivocation_bound),
            equivocation_bound,
        }
    }

    /// The bound `t` on equivocating faulty nodes this node was configured
    /// with.
    #[must_use]
    pub fn equivocation_bound(&self) -> usize {
        self.equivocation_bound
    }

    /// The node's input value.
    #[must_use]
    pub fn input(&self) -> Value {
        self.inner.input()
    }

    /// The node's current state `γ_v`.
    #[must_use]
    pub fn gamma(&self) -> Value {
        self.inner.gamma()
    }

    /// The step-(c) cases taken in the phases completed so far.
    #[must_use]
    pub fn case_log(&self) -> &[StepCCase] {
        self.inner.case_log()
    }

    /// The number of phases Algorithm 3 executes on an `n`-node graph with
    /// fault bound `f` and equivocation bound `t`.
    #[must_use]
    pub fn phase_count(n: usize, f: usize, t: usize) -> usize {
        PhasedNode::phase_count(n, f, t)
    }

    /// The total number of synchronous rounds Algorithm 3 needs.
    #[must_use]
    pub fn round_count(n: usize, f: usize, t: usize) -> usize {
        Self::phase_count(n, f, t) * n.max(1)
    }
}

impl Protocol for Algorithm3Node {
    type Message = FloodMsg;

    fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<FloodMsg>> {
        self.inner.on_start(ctx)
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        round: Round,
        inbox: Inbox<'_, FloodMsg>,
    ) -> Vec<Outgoing<FloodMsg>> {
        self.inner.on_round(ctx, round, inbox)
    }

    fn output(&self) -> Option<Value> {
        self.inner.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_t_zero_the_phase_schedule_matches_algorithm_1() {
        assert_eq!(
            Algorithm3Node::phase_count(5, 2, 0),
            crate::Algorithm1Node::phase_count(5, 2)
        );
        assert_eq!(Algorithm3Node::round_count(5, 1, 0), 30);
    }

    #[test]
    fn with_t_positive_the_schedule_grows() {
        assert!(Algorithm3Node::phase_count(5, 2, 1) > Algorithm3Node::phase_count(5, 2, 0));
        assert!(Algorithm3Node::phase_count(5, 2, 2) >= Algorithm3Node::phase_count(5, 2, 1));
    }

    #[test]
    fn construction_exposes_parameters() {
        let node = Algorithm3Node::new(Value::One, 2);
        assert_eq!(node.equivocation_bound(), 2);
        assert_eq!(node.input(), Value::One);
        assert_eq!(node.gamma(), Value::One);
        assert_eq!(node.output(), None);
    }
}
