//! Path-annotated flooding with the forwarding rules of Algorithm 1.
//!
//! Flooding is the communication workhorse of the paper's algorithms. To
//! flood its value, a node broadcasts `(γ, ⊥)`; when a node `v` receives
//! `(b, Π)` from neighbor `u` it applies, in order:
//!
//! 1. **rule (i)** — if `Π‑u` is not a path of `G`, discard;
//! 2. **rule (ii)** — if `v` already received from `u` a message containing
//!    path `Π`, discard (this is what suppresses equivocation under local
//!    broadcast: all of `u`'s neighbors see the same first message for each
//!    `(u, Π)` key, so a faulty `u` cannot deliver conflicting copies);
//! 3. **rule (iii)** — if `Π‑u` already contains `v`, discard (bounds
//!    flooding to `n` rounds);
//! 4. **rule (iv)** — otherwise `v` *receives value `b` along path `Π‑u`* and
//!    forwards `(b, Π‑u)`.
//!
//! If a neighbor fails to initiate flooding in the first round, the node
//! substitutes the default message `(1, ⊥)` on its behalf.

use std::collections::BTreeMap;

use lbc_graph::Graph;
use lbc_model::{NodeId, NodeSet, Path, Value};
use lbc_sim::{Delivery, Outgoing};

use crate::messages::FloodMsg;

/// Per-phase flooding state of a single node.
///
/// The caller drives the flooder from its protocol hooks: [`Flooder::start`]
/// produces the initiation broadcast, [`Flooder::on_round`] consumes the
/// round's deliveries and produces the forwards, and the `received_*`
/// accessors answer the "which value did I receive along path `P`?" queries
/// of steps (b) and (c).
#[derive(Debug, Clone)]
pub struct Flooder {
    me: NodeId,
    own_value: Option<Value>,
    /// Rule (ii) state: the first value received for each `(sender, path)` key.
    seen: BTreeMap<(NodeId, Path), Value>,
    /// Values received along full paths `origin … me` (rule (iv)), keyed by
    /// the full path including `me`. The node's own value is recorded along
    /// the single-node path `[me]`.
    received: BTreeMap<Path, Value>,
    /// Whether the missing-initiation defaults have been injected yet.
    defaults_injected: bool,
}

impl Flooder {
    /// Creates the flooder and returns the initiation broadcast `(value, ⊥)`.
    #[must_use]
    pub fn start(me: NodeId, value: Value) -> (Self, Vec<Outgoing<FloodMsg>>) {
        let mut received = BTreeMap::new();
        received.insert(Path::singleton(me), value);
        let flooder = Flooder {
            me,
            own_value: Some(value),
            seen: BTreeMap::new(),
            received,
            defaults_injected: false,
        };
        let out = vec![Outgoing::Broadcast(FloodMsg::initiation(value))];
        (flooder, out)
    }

    /// Creates a flooder that relays other nodes' floods without initiating
    /// one of its own — used for floods in which only a subset of nodes are
    /// sources, e.g. the decision flood of Algorithm 2 or the king step of
    /// the point-to-point baseline.
    #[must_use]
    pub fn observer(me: NodeId) -> Self {
        Flooder {
            me,
            own_value: None,
            seen: BTreeMap::new(),
            received: BTreeMap::new(),
            defaults_injected: false,
        }
    }

    /// The value this node initiated the flood with, if it initiated one.
    #[must_use]
    pub fn own_value(&self) -> Option<Value> {
        self.own_value
    }

    /// Processes one round of deliveries and returns the forwards to
    /// transmit. `first_round` must be true exactly for the round in which
    /// initiations are due (relative round 0 of the phase); at the end of
    /// that round, missing initiations from neighbors are replaced by the
    /// default `(1, ⊥)`.
    pub fn on_round(
        &mut self,
        graph: &Graph,
        first_round: bool,
        inbox: &[Delivery<FloodMsg>],
    ) -> Vec<Outgoing<FloodMsg>> {
        let mut out = Vec::new();
        for delivery in inbox {
            out.extend(self.process(graph, delivery.from, &delivery.message));
        }
        if first_round && !self.defaults_injected {
            self.defaults_injected = true;
            for neighbor in graph.neighbors(self.me) {
                let key = (neighbor, Path::empty());
                if !self.seen.contains_key(&key) {
                    let default = FloodMsg::initiation(Value::DEFAULT_FLOOD);
                    out.extend(self.process(graph, neighbor, &default));
                }
            }
        }
        out
    }

    /// Applies rules (i)–(iv) to a single message received from `from`.
    fn process(&mut self, graph: &Graph, from: NodeId, msg: &FloodMsg) -> Vec<Outgoing<FloodMsg>> {
        // Rule (i): the relay path Π‑u must exist in G.
        let relay_path = msg.path.extended(from);
        if !graph.is_path(&relay_path) {
            return Vec::new();
        }
        // Rule (ii): at most one message per (sender, path) key.
        let key = (from, msg.path.clone());
        if self.seen.contains_key(&key) {
            return Vec::new();
        }
        self.seen.insert(key, msg.value);
        // Rule (iii): discard if the relay path already contains me.
        if relay_path.contains(self.me) {
            return Vec::new();
        }
        // Rule (iv): record the value as received along Π‑u and forward.
        let full = relay_path.extended(self.me);
        self.received.insert(full, msg.value);
        vec![Outgoing::Broadcast(FloodMsg {
            value: msg.value,
            path: relay_path,
        })]
    }

    /// The value received along the full path `origin … me`, if any. The
    /// node's own value is available along the single-node path `[me]`.
    #[must_use]
    pub fn value_along(&self, full_path: &Path) -> Option<Value> {
        self.received.get(full_path).copied()
    }

    /// All `(full path, value)` pairs received from `origin` (paths start at
    /// `origin` and end at this node).
    #[must_use]
    pub fn received_from(&self, origin: NodeId) -> Vec<(Path, Value)> {
        self.received
            .iter()
            .filter(|(path, _)| path.first() == Some(origin))
            .map(|(path, value)| (path.clone(), *value))
            .collect()
    }

    /// The full paths from `origin` along which this node received `value`.
    #[must_use]
    pub fn paths_with_value(&self, origin: NodeId, value: Value) -> Vec<Path> {
        self.received
            .iter()
            .filter(|(path, v)| path.first() == Some(origin) && **v == value)
            .map(|(path, _)| path.clone())
            .collect()
    }

    /// The full paths from `origin` delivering `value` that *exclude* the set
    /// `exclude` (no internal node in `exclude`).
    #[must_use]
    pub fn paths_with_value_excluding(
        &self,
        origin: NodeId,
        value: Value,
        exclude: &NodeSet,
    ) -> Vec<Path> {
        self.paths_with_value(origin, value)
            .into_iter()
            .filter(|p| p.excludes(exclude))
            .collect()
    }

    /// Every `(sender, path, value)` accepted under rule (ii) from direct
    /// neighbors — i.e. everything this node *overheard*, which is exactly
    /// what Algorithm 2's phase 2 reports on.
    #[must_use]
    pub fn overheard(&self) -> Vec<(NodeId, Path, Value)> {
        self.seen
            .iter()
            .map(|((from, path), value)| (*from, path.clone(), *value))
            .collect()
    }

    /// Number of distinct full paths along which values were received.
    #[must_use]
    pub fn received_count(&self) -> usize {
        self.received.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn deliver(from: usize, value: Value, path: &[usize]) -> Delivery<FloodMsg> {
        Delivery {
            from: n(from),
            message: FloodMsg {
                value,
                path: Path::from_nodes(path.iter().map(|&i| n(i))),
            },
        }
    }

    #[test]
    fn start_records_own_value_and_broadcasts_initiation() {
        let (flooder, out) = Flooder::start(n(0), Value::One);
        assert_eq!(out.len(), 1);
        assert_eq!(
            flooder.value_along(&Path::singleton(n(0))),
            Some(Value::One)
        );
        assert_eq!(flooder.own_value(), Some(Value::One));
    }

    #[test]
    fn accepts_and_forwards_valid_messages() {
        // Cycle 0-1-2-3-4; we are node 2 and receive node 0's initiation via 1.
        let g = generators::cycle(5);
        let (mut flooder, _) = Flooder::start(n(2), Value::Zero);
        let out = flooder.on_round(&g, true, &[deliver(1, Value::One, &[0])]);
        // Forward (1, [0,1]) plus defaults for the missing neighbor 3.
        assert!(out
            .iter()
            .any(|o| matches!(o, Outgoing::Broadcast(m) if m.path.nodes() == [n(0), n(1)])));
        let full = Path::from_nodes([n(0), n(1), n(2)]);
        assert_eq!(flooder.value_along(&full), Some(Value::One));
    }

    #[test]
    fn rule_i_rejects_non_paths() {
        let g = generators::cycle(5);
        let (mut flooder, _) = Flooder::start(n(2), Value::Zero);
        // Claimed path [0, 3] then sender 1: 0-3 is not an edge on the cycle.
        let out = flooder.on_round(&g, false, &[deliver(1, Value::One, &[0, 3])]);
        assert!(out.is_empty());
        assert_eq!(flooder.received_count(), 1); // only the own value
    }

    #[test]
    fn rule_ii_keeps_only_the_first_message_per_sender_path() {
        let g = generators::cycle(5);
        let (mut flooder, _) = Flooder::start(n(2), Value::Zero);
        let first = deliver(1, Value::One, &[0]);
        let conflicting = deliver(1, Value::Zero, &[0]);
        let out1 = flooder.on_round(&g, false, &[first, conflicting]);
        // Only one forward for the (1, [0]) key.
        assert_eq!(out1.len(), 1);
        let full = Path::from_nodes([n(0), n(1), n(2)]);
        assert_eq!(flooder.value_along(&full), Some(Value::One));
    }

    #[test]
    fn rule_iii_discards_paths_containing_me() {
        let g = generators::cycle(5);
        let (mut flooder, _) = Flooder::start(n(2), Value::Zero);
        // Path [2, 3] from sender 4: contains me (2), discard silently.
        let out = flooder.on_round(&g, false, &[deliver(4, Value::One, &[2, 3])]);
        assert!(out.is_empty());
    }

    #[test]
    fn missing_initiations_get_the_default_value() {
        let g = generators::cycle(5);
        let (mut flooder, _) = Flooder::start(n(2), Value::Zero);
        // Neighbor 1 initiates, neighbor 3 stays silent.
        let out = flooder.on_round(&g, true, &[deliver(1, Value::Zero, &[])]);
        // We forward both node 1's initiation and the default for node 3.
        assert_eq!(out.len(), 2);
        let via3 = Path::from_nodes([n(3), n(2)]);
        assert_eq!(flooder.value_along(&via3), Some(Value::DEFAULT_FLOOD));
        // A late real initiation from 3 is now ignored (rule (ii)).
        let out = flooder.on_round(&g, false, &[deliver(3, Value::Zero, &[])]);
        assert!(out.is_empty());
        assert_eq!(flooder.value_along(&via3), Some(Value::DEFAULT_FLOOD));
    }

    #[test]
    fn received_from_and_paths_with_value_filter_by_origin() {
        let g = generators::cycle(5);
        let (mut flooder, _) = Flooder::start(n(2), Value::Zero);
        let _ = flooder.on_round(
            &g,
            true,
            &[deliver(1, Value::One, &[0]), deliver(3, Value::Zero, &[4])],
        );
        let from0 = flooder.received_from(n(0));
        assert_eq!(from0.len(), 1);
        assert_eq!(from0[0].1, Value::One);
        assert_eq!(flooder.paths_with_value(n(4), Value::Zero).len(), 1);
        assert!(flooder.paths_with_value(n(4), Value::One).is_empty());
        // Excluding the internal node 3 removes the only path from 4.
        let excl: NodeSet = [n(3)].into_iter().collect();
        assert!(flooder
            .paths_with_value_excluding(n(4), Value::Zero, &excl)
            .is_empty());
    }

    #[test]
    fn overheard_lists_accepted_sender_path_pairs() {
        let g = generators::cycle(5);
        let (mut flooder, _) = Flooder::start(n(2), Value::Zero);
        let _ = flooder.on_round(&g, true, &[deliver(1, Value::One, &[])]);
        let overheard = flooder.overheard();
        // Node 1's initiation plus the injected default for node 3.
        assert_eq!(overheard.len(), 2);
        assert!(overheard
            .iter()
            .any(|(from, path, value)| *from == n(1) && path.is_empty() && *value == Value::One));
    }
}
