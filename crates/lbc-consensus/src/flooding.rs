//! Path-annotated flooding with the forwarding rules of Algorithm 1.
//!
//! Flooding is the communication workhorse of the paper's algorithms. To
//! flood its value, a node broadcasts `(γ, ⊥)`; when a node `v` receives
//! `(b, Π)` from neighbor `u` it applies, in order:
//!
//! 1. **rule (i)** — if `Π‑u` is not a path of `G`, discard;
//! 2. **rule (ii)** — if `v` already received from `u` a message containing
//!    path `Π`, discard (this is what suppresses equivocation under local
//!    broadcast: all of `u`'s neighbors see the same first message for each
//!    `(u, Π)` key, so a faulty `u` cannot deliver conflicting copies);
//! 3. **rule (iii)** — if `Π‑u` already contains `v`, discard (bounds
//!    flooding to `n` rounds);
//! 4. **rule (iv)** — otherwise `v` *receives value `b` along path `Π‑u`* and
//!    forwards `(b, Π‑u)`.
//!
//! If a neighbor fails to initiate flooding in the first round, the node
//! substitutes the default message `(1, ⊥)` on its behalf.
//!
//! # Engines
//!
//! Three implementations form a verification ladder:
//!
//! * [`LedgerFlooder`] — the production engine, built on the shared flood
//!   fabric. Rule-(ii) state is a [`DenseBits`] bitset over interned relay
//!   ids, and first values live **once per execution** in the
//!   [`lbc_model::FloodLedger`] (under local broadcast every neighbor
//!   receives the same first message per `(sender, Π)` key, so per-node
//!   value maps are redundant; a per-node override map keeps the engine
//!   exactly per-node-faithful under equivocation-capable models too).
//! * [`Flooder`] — the per-node control engine. Paths travel as interned
//!   [`PathId`]s against the execution's [`SharedPathArena`]; rule-(ii) and
//!   rule-(iv) state is keyed by `(NodeId, PathId)` in `FxHashMap`s, and a
//!   per-origin index makes [`Flooder::received_from`] /
//!   [`Flooder::paths_with_value`] indexed lookups instead of full-map scans.
//! * [`NaiveFlooder`] — the pre-interning reference engine (`BTreeMap` keyed
//!   by cloned [`Path`]s), kept as the bottom rung for equivalence tests and
//!   the `naive` benchmark variants.
//!
//! All three must behave byte-identically; the `flood_equivalence`
//! integration test enforces the full three-way ladder.

use std::collections::BTreeMap;

use lbc_graph::Graph;
use lbc_model::{
    ChannelId, DenseBits, NodeId, NodeSet, Path, PathArena, PathId, SharedFloodLedger,
    SharedPathArena, Value,
};
use lbc_sim::{ByzantineMessage, Inbox, Outgoing};

use crate::messages::FloodMsg;

/// Ledger channel tag of value floods (Algorithm 1/3 phases, Algorithm 2
/// phase 1, point-to-point king steps).
pub(crate) const TAG_VALUE: u32 = 0;
/// Ledger channel tag of Algorithm 2's phase-2 report flood. (The phase-3
/// decision flood needs no channel: its rule-(ii) keys are interned relay
/// ids, so the arena itself is the shared key space.)
pub(crate) const TAG_REPORT: u32 = 1;

/// Rule-(i) validation with incremental memoization: a non-empty path is a
/// path of `G` iff its parent prefix is one, its last node is valid and
/// adjacent to the parent's last node, and it repeats no node. Prefixes are
/// shared trie entries and validity is memoized *in the arena* (a per-entry
/// byte, shared by every node of the execution), so each distinct prefix is
/// validated exactly once per execution — the common case is a single array
/// read. `suffix` is a caller-owned scratch buffer so the hot path never
/// allocates.
pub(crate) fn validate_path(
    arena: &mut PathArena,
    suffix: &mut Vec<PathId>,
    graph: &Graph,
    id: PathId,
) -> bool {
    if let Some(valid) = arena.path_validity(id) {
        return valid;
    }
    // Collect the unvalidated suffix, deepest entry first.
    suffix.clear();
    suffix.push(id);
    let (mut cursor, _) = arena.step(id).expect("non-empty path has a parent");
    while arena.path_validity(cursor).is_none() {
        suffix.push(cursor);
        let (parent, _) = arena.step(cursor).expect("non-empty path has a parent");
        cursor = parent;
    }
    if arena.path_validity(cursor) == Some(false) {
        // An invalid prefix poisons every extension.
        for &entry in suffix.iter() {
            arena.set_path_validity(entry, false);
        }
        return false;
    }
    // `cursor` is a known-valid prefix (or ⊥). Validate forward.
    let mut all_valid = true;
    for &entry in suffix.iter().rev() {
        let (parent, last) = arena.step(entry).expect("non-empty path has a parent");
        all_valid = all_valid
            && arena.is_simple(entry)
            && graph.contains_node(last)
            && arena
                .last(parent)
                .is_none_or(|prev| graph.has_edge(prev, last));
        arena.set_path_validity(entry, all_valid);
    }
    all_valid
}

/// Per-phase flooding state of a single node (path-interning engine).
///
/// The caller drives the flooder from its protocol hooks: [`Flooder::start`]
/// produces the initiation broadcast, [`Flooder::on_round`] consumes the
/// round's deliveries and produces the forwards, and the `received_*`
/// accessors answer the "which value did I receive along path `P`?" queries
/// of steps (b) and (c).
#[derive(Debug, Clone)]
pub struct Flooder {
    me: NodeId,
    own_value: Option<Value>,
    /// Handle to the execution-wide path arena message ids resolve against.
    arena: SharedPathArena,
    /// Rule (ii) state: the first value received for each `(sender, path)`
    /// key. `PathId` is a `u32`, so the key hashes as two machine words.
    seen: lbc_model::fx::FxHashMap<(NodeId, PathId), Value>,
    /// Per-origin index over the received paths: relay-path ids (the full
    /// path minus the trailing `me`) in arrival order, densely indexed by
    /// origin. This is what turns `received_from` / `paths_with_value` into
    /// indexed lookups instead of scans over every received path. There is
    /// no separate value map: a relay's value is `seen[(relay.last,
    /// relay.parent)]`, recovered in O(1) through the trie (rule (ii)
    /// guarantees that entry is written exactly once). The node's own value
    /// sits under the empty relay path at index `me`.
    by_origin: Vec<Vec<PathId>>,
    /// Count of received full paths (rule (iv) accepts plus the own value).
    received_total: usize,
    /// Scratch buffer for [`validate_path`] (avoids per-message allocation).
    validate_scratch: Vec<PathId>,
    /// Whether the missing-initiation defaults have been injected yet.
    defaults_injected: bool,
}

impl Flooder {
    /// Creates the flooder and returns the initiation broadcast `(value, ⊥)`.
    #[must_use]
    pub fn start(
        arena: SharedPathArena,
        me: NodeId,
        value: Value,
    ) -> (Self, Vec<Outgoing<FloodMsg>>) {
        let mut flooder = Flooder::observer(arena, me);
        flooder.own_value = Some(value);
        flooder.by_origin.resize(me.index() + 1, Vec::new());
        flooder.by_origin[me.index()].push(PathId::EMPTY);
        flooder.received_total = 1;
        let out = vec![Outgoing::Broadcast(FloodMsg::initiation(value))];
        (flooder, out)
    }

    /// Creates a flooder that relays other nodes' floods without initiating
    /// one of its own — used for floods in which only a subset of nodes are
    /// sources, e.g. the decision flood of Algorithm 2 or the king step of
    /// the point-to-point baseline.
    #[must_use]
    pub fn observer(arena: SharedPathArena, me: NodeId) -> Self {
        Flooder {
            me,
            own_value: None,
            arena,
            seen: lbc_model::fx::FxHashMap::default(),
            by_origin: Vec::new(),
            received_total: 0,
            validate_scratch: Vec::new(),
            defaults_injected: false,
        }
    }

    /// The value this node initiated the flood with, if it initiated one.
    #[must_use]
    pub fn own_value(&self) -> Option<Value> {
        self.own_value
    }

    /// Resets the flooder for a fresh flood of `value` and returns the new
    /// initiation broadcast, *keeping every allocation* — the hash-map
    /// capacity, the per-origin index vectors, and the validation scratch
    /// buffer all survive, so a multi-phase algorithm (Algorithm 1 floods
    /// once per candidate fault set) re-floods without rebuilding its state
    /// tables from scratch. The shared arena is untouched: interned paths
    /// and their graph-validity memo persist across phases by design.
    ///
    /// Observable behaviour is identical to dropping the flooder and calling
    /// [`Flooder::start`] with the same arena.
    pub fn restart(&mut self, value: Value) -> Vec<Outgoing<FloodMsg>> {
        self.own_value = Some(value);
        self.seen.clear();
        for per_origin in &mut self.by_origin {
            per_origin.clear();
        }
        if self.by_origin.len() <= self.me.index() {
            self.by_origin.resize(self.me.index() + 1, Vec::new());
        }
        self.by_origin[self.me.index()].push(PathId::EMPTY);
        self.received_total = 1;
        self.defaults_injected = false;
        vec![Outgoing::Broadcast(FloodMsg::initiation(value))]
    }

    /// Processes one round of deliveries and returns the forwards to
    /// transmit. `first_round` must be true exactly for the round in which
    /// initiations are due (relative round 0 of the phase); at the end of
    /// that round, missing initiations from neighbors are replaced by the
    /// default `(1, ⊥)`.
    pub fn on_round(
        &mut self,
        graph: &Graph,
        first_round: bool,
        inbox: Inbox<'_, FloodMsg>,
    ) -> Vec<Outgoing<FloodMsg>> {
        let mut out = Vec::new();
        for delivery in inbox.iter() {
            out.extend(
                self.process(graph, delivery.from, &delivery.message)
                    .map(Outgoing::Broadcast),
            );
        }
        if first_round && !self.defaults_injected {
            self.defaults_injected = true;
            for neighbor in graph.neighbors(self.me) {
                if !self.seen.contains_key(&(neighbor, PathId::EMPTY)) {
                    let default = FloodMsg::initiation(Value::DEFAULT_FLOOD);
                    out.extend(
                        self.process(graph, neighbor, &default)
                            .map(Outgoing::Broadcast),
                    );
                }
            }
        }
        out
    }

    /// Applies rules (i)–(iv) to a single message received from `from`,
    /// returning the forward to broadcast, if any.
    fn process(&mut self, graph: &Graph, from: NodeId, msg: &FloodMsg) -> Option<FloodMsg> {
        // Rule (i): the relay path Π‑u must exist in G. Equivalent to: Π is a
        // (simple) path of G, u is a valid node not on Π, and u is adjacent
        // to Π's last node. Checked against the arena without resolving,
        // with incremental memoization in `valid_paths`.
        let mut arena = self.arena.borrow_mut();
        if !graph.contains_node(from)
            || !validate_path(&mut arena, &mut self.validate_scratch, graph, msg.path)
            || arena.contains(msg.path, from)
        {
            return None;
        }
        if let Some(last) = arena.last(msg.path) {
            if !graph.has_edge(last, from) {
                return None;
            }
        }
        // Rules (ii) and (iii) with a single hash of the (sender, path)
        // key: every message that passes rule (i) is recorded, whether
        // rule (iii) then discards it or not.
        match self.seen.entry((from, msg.path)) {
            std::collections::hash_map::Entry::Occupied(_) => return None,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(msg.value);
            }
        }
        // Rule (iii): discard if the relay path Π‑u already contains me.
        if from == self.me || arena.contains(msg.path, self.me) {
            return None;
        }
        // Rule (iv): record the value as received along Π‑u and forward. The
        // state is keyed by the relay id itself (the full path is `relay`
        // plus `me`, re-appended on resolution); the value needs no second
        // map — it is the `seen` entry written above, reachable from the
        // relay id through the trie.
        let relay = arena.extended(msg.path, from);
        // Π‑u passed the same checks, so it is a graph path too; memoize it —
        // it is exactly what the neighbors will send back to us.
        arena.set_path_validity(relay, true);
        let origin = arena.first(relay).expect("relay path contains the sender");
        if self.by_origin.len() <= origin.index() {
            self.by_origin.resize(origin.index() + 1, Vec::new());
        }
        self.by_origin[origin.index()].push(relay);
        self.received_total += 1;
        Some(FloodMsg {
            value: msg.value,
            path: relay,
        })
    }

    /// The value received along the full path `origin … me`, if any. The
    /// node's own value is available along the single-node path `[me]`.
    #[must_use]
    pub fn value_along(&self, full_path: &Path) -> Option<Value> {
        let nodes = full_path.nodes();
        let (&last, relay_nodes) = nodes.split_last()?;
        if last != self.me {
            return None;
        }
        let relay = self.arena.borrow().find_slice(relay_nodes)?;
        self.value_along_relay(relay)
    }

    /// The value received along the full path `relay‑me`, given the interned
    /// relay id (the path annotation the last transmitter forwarded with,
    /// i.e. the full path minus this node). The node's own value is under
    /// the empty relay path.
    ///
    /// Only paths actually *received* under rule (iv) answer: a `(sender,
    /// path)` key that was overheard but discarded by rule (iii) is not a
    /// received path and yields `None`.
    #[must_use]
    pub fn value_along_relay(&self, relay: PathId) -> Option<Value> {
        let arena = self.arena.borrow();
        let Some((prefix, last)) = arena.step(relay) else {
            return self.own_value; // the empty relay path: the own value
        };
        // Rule-(iii) guard: the relay was accepted only if neither its
        // sender nor its prefix involves me.
        if last == self.me || arena.contains(prefix, self.me) {
            return None;
        }
        self.seen.get(&(last, prefix)).copied()
    }

    /// The interned relay-path ids received from `origin`, in arrival order
    /// (the full paths are these plus a trailing `me`). This is the
    /// allocation-free, indexed counterpart of [`Flooder::received_from`].
    #[must_use]
    pub fn relay_ids_from(&self, origin: NodeId) -> &[PathId] {
        self.by_origin
            .get(origin.index())
            .map_or(&[], Vec::as_slice)
    }

    /// The value of an *indexed* relay id, given a pre-acquired arena borrow
    /// (indexed relays were accepted under rule (iv), so the rule-(iii)
    /// guard of [`Flooder::value_along_relay`] is unnecessary).
    fn relay_value(&self, arena: &lbc_model::PathArena, relay: PathId) -> Option<Value> {
        match arena.step(relay) {
            None => self.own_value,
            Some((prefix, last)) => self.seen.get(&(last, prefix)).copied(),
        }
    }

    /// Resolves a stored relay id into the full received path `relay‑me`.
    fn resolve_full(&self, arena: &lbc_model::PathArena, relay: PathId) -> Path {
        let mut nodes = arena.nodes(relay);
        nodes.push(self.me);
        Path::from_nodes(nodes)
    }

    /// All `(full path, value)` pairs received from `origin` (paths start at
    /// `origin` and end at this node), in lexicographic path order — the
    /// same order the pre-interning engine produced.
    #[must_use]
    pub fn received_from(&self, origin: NodeId) -> Vec<(Path, Value)> {
        let arena = self.arena.borrow();
        let mut entries: Vec<(Path, Value)> = self
            .relay_ids_from(origin)
            .iter()
            .map(|id| {
                let value = self
                    .relay_value(&arena, *id)
                    .expect("indexed relay has a value");
                (self.resolve_full(&arena, *id), value)
            })
            .collect();
        entries.sort();
        entries
    }

    /// The full paths from `origin` along which this node received `value`,
    /// in lexicographic path order.
    #[must_use]
    pub fn paths_with_value(&self, origin: NodeId, value: Value) -> Vec<Path> {
        let arena = self.arena.borrow();
        let mut paths: Vec<Path> = self
            .relay_ids_from(origin)
            .iter()
            .filter(|id| self.relay_value(&arena, **id) == Some(value))
            .map(|id| self.resolve_full(&arena, *id))
            .collect();
        paths.sort();
        paths
    }

    /// The full paths from `origin` delivering `value` that *exclude* the set
    /// `exclude` (no internal node in `exclude`). The exclusion test runs on
    /// the interned relay ids (memoized member bitsets) before any path is
    /// resolved.
    #[must_use]
    pub fn paths_with_value_excluding(
        &self,
        origin: NodeId,
        value: Value,
        exclude: &NodeSet,
    ) -> Vec<Path> {
        let arena = self.arena.borrow();
        let mut paths: Vec<Path> = self
            .relay_ids_from(origin)
            .iter()
            .filter(|id| {
                self.relay_value(&arena, **id) == Some(value) && arena.tail_excludes(**id, exclude)
            })
            .map(|id| self.resolve_full(&arena, *id))
            .collect();
        paths.sort();
        paths
    }

    /// Every `(sender, path, value)` accepted under rule (ii) from direct
    /// neighbors — i.e. everything this node *overheard*, which is exactly
    /// what Algorithm 2's phase 2 reports on. Sorted by `(sender, path)` as
    /// the pre-interning engine's `BTreeMap` iteration was.
    #[must_use]
    pub fn overheard(&self) -> Vec<(NodeId, Path, Value)> {
        let arena = self.arena.borrow();
        let mut entries: Vec<(NodeId, Path, Value)> = self
            .seen
            .iter()
            .map(|((from, path), value)| (*from, arena.resolve(*path), *value))
            .collect();
        entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        entries
    }

    /// The overheard `(sender, path id, value)` triples, sorted by
    /// `(sender, path)` — the id-carrying counterpart of
    /// [`Flooder::overheard`], used to build Algorithm 2's phase-2 reports
    /// without cloning paths.
    #[must_use]
    pub fn overheard_ids(&self) -> Vec<(NodeId, PathId, Value)> {
        let arena = self.arena.borrow();
        let mut entries: Vec<(NodeId, PathId, Value)> = self
            .seen
            .iter()
            .map(|((from, path), value)| (*from, *path, *value))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| arena.cmp_nodes(a.1, b.1)));
        entries
    }

    /// Whether this node overheard `observed` transmit exactly `(value, Π)`,
    /// with `Π` given as an interned id — the indexed counterpart of scanning
    /// [`Flooder::overheard`].
    #[must_use]
    pub fn overheard_exactly(&self, observed: NodeId, path: PathId, value: Value) -> bool {
        self.seen.get(&(observed, path)) == Some(&value)
    }

    /// Number of distinct full paths along which values were received.
    #[must_use]
    pub fn received_count(&self) -> usize {
        self.received_total
    }
}

/// The production flood engine, built on the shared flood fabric.
///
/// The paper's rule (ii) observes that under local broadcast every neighbor
/// of `u` receives the *same* first message per `(u, Π)` key. The per-node
/// [`Flooder`] uses that only for correctness; this engine uses it for
/// speed: each distinct broadcast is recorded **once per execution** in the
/// shared [`lbc_model::FloodLedger`] (keyed by the interned relay id
/// `Π‑u`), and per-node rule-(ii) state collapses to a [`DenseBits`] bitset
/// over relay ids. The first node to process a broadcast inserts the ledger
/// record; every other receiver pays one dense-array lookup plus bit
/// operations on memoized bitsets.
///
/// Sharing is an optimization, not an assumption: when a node's own first
/// value for a key differs from the ledger record (possible only under
/// equivocation-capable channels — hybrid-model equivocators, the
/// point-to-point baseline, or the doubled networks of the impossibility
/// constructions), the node keeps a per-node override, so the engine is
/// observably identical to [`Flooder`] under *every* communication model.
/// The `flood_equivalence` tests enforce the three-way ladder.
#[derive(Debug, Clone)]
pub struct LedgerFlooder {
    me: NodeId,
    own_value: Option<Value>,
    /// Handle to the execution-wide path arena message ids resolve against.
    arena: SharedPathArena,
    /// Handle to the execution-wide shared flood ledger.
    ledger: SharedFloodLedger,
    /// The ledger channel this flood records into (all nodes of the same
    /// flood derive the same `(tag, epoch)` name and share the channel).
    channel: ChannelId,
    tag: u32,
    epoch: u32,
    /// Rule-(ii) membership: the relay ids (`Π‑sender`) of every broadcast
    /// this node processed. One bit per arena entry instead of a hash map
    /// entry per key.
    seen: DenseBits,
    /// Per-node first values that differ from the ledger's record. Provably
    /// empty under local broadcast; populated only when the communication
    /// model lets a sender deliver different copies to different receivers.
    overrides: lbc_model::fx::FxHashMap<PathId, Value>,
    /// Per-origin index over the received (rule-(iv)-accepted) relay ids, in
    /// arrival order — same layout as [`Flooder::by_origin`].
    by_origin: Vec<Vec<PathId>>,
    /// Count of received full paths (rule (iv) accepts plus the own value).
    received_total: usize,
    /// Scratch buffer for [`validate_path`] (avoids per-message allocation).
    validate_scratch: Vec<PathId>,
    /// Whether the missing-initiation defaults have been injected yet.
    defaults_injected: bool,
}

impl LedgerFlooder {
    /// Creates the flooder on the default value-flood channel and returns
    /// the initiation broadcast `(value, ⊥)`.
    #[must_use]
    pub fn start(
        arena: SharedPathArena,
        ledger: SharedFloodLedger,
        me: NodeId,
        value: Value,
    ) -> (Self, Vec<Outgoing<FloodMsg>>) {
        Self::start_on(arena, ledger, me, value, TAG_VALUE, 0)
    }

    /// Creates the flooder on the channel named `(tag, epoch)` and returns
    /// the initiation broadcast. Every node of the same flood must derive
    /// the same name (e.g. the point-to-point baseline uses its global step
    /// index as the epoch).
    #[must_use]
    pub fn start_on(
        arena: SharedPathArena,
        ledger: SharedFloodLedger,
        me: NodeId,
        value: Value,
        tag: u32,
        epoch: u32,
    ) -> (Self, Vec<Outgoing<FloodMsg>>) {
        let mut flooder = Self::observer_on(arena, ledger, me, tag, epoch);
        flooder.own_value = Some(value);
        flooder.by_origin.resize(me.index() + 1, Vec::new());
        flooder.by_origin[me.index()].push(PathId::EMPTY);
        flooder.received_total = 1;
        let out = vec![Outgoing::Broadcast(FloodMsg::initiation(value))];
        (flooder, out)
    }

    /// Creates a flooder that relays other nodes' floods without initiating
    /// one of its own, on the default value-flood channel.
    #[must_use]
    pub fn observer(arena: SharedPathArena, ledger: SharedFloodLedger, me: NodeId) -> Self {
        Self::observer_on(arena, ledger, me, TAG_VALUE, 0)
    }

    /// Creates an observer on the channel named `(tag, epoch)`.
    #[must_use]
    pub fn observer_on(
        arena: SharedPathArena,
        ledger: SharedFloodLedger,
        me: NodeId,
        tag: u32,
        epoch: u32,
    ) -> Self {
        let channel = ledger.open(tag, epoch);
        LedgerFlooder {
            me,
            own_value: None,
            arena,
            ledger,
            channel,
            tag,
            epoch,
            seen: DenseBits::new(),
            overrides: lbc_model::fx::FxHashMap::default(),
            by_origin: Vec::new(),
            received_total: 0,
            validate_scratch: Vec::new(),
            defaults_injected: false,
        }
    }

    /// The value this node initiated the flood with, if it initiated one.
    #[must_use]
    pub fn own_value(&self) -> Option<Value> {
        self.own_value
    }

    /// Resets the flooder for a fresh flood of `value` on the next epoch of
    /// its channel and returns the new initiation broadcast, keeping every
    /// allocation (see [`Flooder::restart`]). Opening the next epoch retires
    /// the channel two epochs back, so a long multi-phase run recycles its
    /// shared state instead of accumulating it.
    pub fn restart(&mut self, value: Value) -> Vec<Outgoing<FloodMsg>> {
        self.epoch += 1;
        self.channel = self.ledger.open(self.tag, self.epoch);
        self.own_value = Some(value);
        self.seen.clear();
        self.overrides.clear();
        for per_origin in &mut self.by_origin {
            per_origin.clear();
        }
        if self.by_origin.len() <= self.me.index() {
            self.by_origin.resize(self.me.index() + 1, Vec::new());
        }
        self.by_origin[self.me.index()].push(PathId::EMPTY);
        self.received_total = 1;
        self.defaults_injected = false;
        vec![Outgoing::Broadcast(FloodMsg::initiation(value))]
    }

    /// Processes one round of deliveries and returns the forwards to
    /// transmit; see [`Flooder::on_round`].
    pub fn on_round(
        &mut self,
        graph: &Graph,
        first_round: bool,
        inbox: Inbox<'_, FloodMsg>,
    ) -> Vec<Outgoing<FloodMsg>> {
        let mut out = Vec::new();
        for delivery in inbox.iter() {
            out.extend(
                self.process(graph, delivery.from, &delivery.message)
                    .map(Outgoing::Broadcast),
            );
        }
        if first_round && !self.defaults_injected {
            self.defaults_injected = true;
            for neighbor in graph.neighbors(self.me) {
                let initiation_seen = self
                    .arena
                    .borrow()
                    .find_child(PathId::EMPTY, neighbor)
                    .is_some_and(|relay| self.seen.contains(relay.index()));
                if !initiation_seen {
                    let default = FloodMsg::initiation(Value::DEFAULT_FLOOD);
                    out.extend(
                        self.process(graph, neighbor, &default)
                            .map(Outgoing::Broadcast),
                    );
                }
            }
        }
        out
    }

    /// Applies rules (i)–(iv) to a single message received from `from`,
    /// returning the forward to broadcast, if any.
    fn process(&mut self, graph: &Graph, from: NodeId, msg: &FloodMsg) -> Option<FloodMsg> {
        // Rule (i), identical to the per-node engine: validation reads the
        // arena's shared memo, so the common case is a single array read.
        let mut arena = self.arena.borrow_mut();
        if !graph.contains_node(from)
            || !validate_path(&mut arena, &mut self.validate_scratch, graph, msg.path)
            || arena.contains(msg.path, from)
        {
            return None;
        }
        if let Some(last) = arena.last(msg.path) {
            if !graph.has_edge(last, from) {
                return None;
            }
        }
        // Rules (ii) and (iii): the relay id Π‑u *is* the (sender, path)
        // key, so rule (ii) is one bit test on the per-node bitset. Every
        // rule-(i)-passing message is recorded, as in the control engines.
        let relay = arena.extended(msg.path, from);
        if !self.seen.insert(relay.index()) {
            return None;
        }
        // Π‑u passed the same checks as Π, so it is a graph path; memoize.
        arena.set_path_validity(relay, true);
        let contains_me = arena.contains(relay, self.me);
        let origin = arena.first(relay).expect("relay path contains the sender");
        drop(arena);
        // Broadcast-once record: the first receiver anywhere stores the
        // value; everyone else compares against it. A mismatch (possible
        // only under equivocation-capable channels) becomes a per-node
        // override so queries keep answering with *this node's* view.
        let first = self.ledger.record_relay(self.channel, relay, msg.value);
        if first != msg.value {
            self.overrides.insert(relay, msg.value);
        }
        // Rule (iii): discard if the relay path Π‑u already contains me.
        if contains_me {
            return None;
        }
        // Rule (iv): record the relay in the per-origin index and forward.
        if self.by_origin.len() <= origin.index() {
            self.by_origin.resize(origin.index() + 1, Vec::new());
        }
        self.by_origin[origin.index()].push(relay);
        self.received_total += 1;
        Some(FloodMsg {
            value: msg.value,
            path: relay,
        })
    }

    /// This node's first-received value for a seen relay key (override if
    /// the node's view diverged from the ledger record, else the record).
    fn seen_value(&self, relay: PathId) -> Value {
        self.overrides.get(&relay).copied().unwrap_or_else(|| {
            self.ledger
                .relay_value(self.channel, relay)
                .expect("seen relay has a ledger record")
        })
    }

    /// The value received along the full path `origin … me`, if any; see
    /// [`Flooder::value_along`].
    #[must_use]
    pub fn value_along(&self, full_path: &Path) -> Option<Value> {
        let nodes = full_path.nodes();
        let (&last, relay_nodes) = nodes.split_last()?;
        if last != self.me {
            return None;
        }
        let relay = self.arena.borrow().find_slice(relay_nodes)?;
        self.value_along_relay(relay)
    }

    /// The value received along the full path `relay‑me`; see
    /// [`Flooder::value_along_relay`].
    #[must_use]
    pub fn value_along_relay(&self, relay: PathId) -> Option<Value> {
        {
            let arena = self.arena.borrow();
            if arena.step(relay).is_none() {
                return self.own_value; // the empty relay path: the own value
            }
            // Rule-(iii) guard: the relay was accepted only if it does not
            // involve me (as sender or prefix node).
            if arena.contains(relay, self.me) {
                return None;
            }
        }
        if !self.seen.contains(relay.index()) {
            return None;
        }
        Some(self.seen_value(relay))
    }

    /// The interned relay-path ids received from `origin`, in arrival order;
    /// see [`Flooder::relay_ids_from`].
    #[must_use]
    pub fn relay_ids_from(&self, origin: NodeId) -> &[PathId] {
        self.by_origin
            .get(origin.index())
            .map_or(&[], Vec::as_slice)
    }

    /// The value of an *indexed* (accepted) relay id.
    fn relay_value(&self, arena: &PathArena, relay: PathId) -> Option<Value> {
        match arena.step(relay) {
            None => self.own_value,
            Some(_) => Some(self.seen_value(relay)),
        }
    }

    /// Resolves a stored relay id into the full received path `relay‑me`.
    fn resolve_full(&self, arena: &PathArena, relay: PathId) -> Path {
        let mut nodes = arena.nodes(relay);
        nodes.push(self.me);
        Path::from_nodes(nodes)
    }

    /// All `(full path, value)` pairs received from `origin`, in
    /// lexicographic path order; see [`Flooder::received_from`].
    #[must_use]
    pub fn received_from(&self, origin: NodeId) -> Vec<(Path, Value)> {
        let arena = self.arena.borrow();
        let mut entries: Vec<(Path, Value)> = self
            .relay_ids_from(origin)
            .iter()
            .map(|id| {
                let value = self
                    .relay_value(&arena, *id)
                    .expect("indexed relay has a value");
                (self.resolve_full(&arena, *id), value)
            })
            .collect();
        entries.sort();
        entries
    }

    /// The full paths from `origin` along which this node received `value`,
    /// in lexicographic path order; see [`Flooder::paths_with_value`].
    #[must_use]
    pub fn paths_with_value(&self, origin: NodeId, value: Value) -> Vec<Path> {
        let arena = self.arena.borrow();
        let mut paths: Vec<Path> = self
            .relay_ids_from(origin)
            .iter()
            .filter(|id| self.relay_value(&arena, **id) == Some(value))
            .map(|id| self.resolve_full(&arena, *id))
            .collect();
        paths.sort();
        paths
    }

    /// The full paths from `origin` delivering `value` that *exclude* the
    /// set `exclude`; see [`Flooder::paths_with_value_excluding`].
    #[must_use]
    pub fn paths_with_value_excluding(
        &self,
        origin: NodeId,
        value: Value,
        exclude: &NodeSet,
    ) -> Vec<Path> {
        let arena = self.arena.borrow();
        let mut paths: Vec<Path> = self
            .relay_ids_from(origin)
            .iter()
            .filter(|id| {
                self.relay_value(&arena, **id) == Some(value) && arena.tail_excludes(**id, exclude)
            })
            .map(|id| self.resolve_full(&arena, *id))
            .collect();
        paths.sort();
        paths
    }

    /// Every `(sender, path, value)` accepted under rule (ii), sorted by
    /// `(sender, path)`; see [`Flooder::overheard`].
    #[must_use]
    pub fn overheard(&self) -> Vec<(NodeId, Path, Value)> {
        let arena = self.arena.borrow();
        self.overheard_ids_inner(&arena)
            .into_iter()
            .map(|(from, path, value)| (from, arena.resolve(path), value))
            .collect()
    }

    /// The overheard `(sender, path id, value)` triples, sorted by
    /// `(sender, path)`; see [`Flooder::overheard_ids`].
    #[must_use]
    pub fn overheard_ids(&self) -> Vec<(NodeId, PathId, Value)> {
        let arena = self.arena.borrow();
        self.overheard_ids_inner(&arena)
    }

    fn overheard_ids_inner(&self, arena: &PathArena) -> Vec<(NodeId, PathId, Value)> {
        let mut entries: Vec<(NodeId, PathId, Value)> = self
            .seen
            .ones()
            .map(|index| {
                let relay = PathId::from_index(index);
                let (prefix, last) = arena.step(relay).expect("seen relays are non-empty");
                (last, prefix, self.seen_value(relay))
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| arena.cmp_nodes(a.1, b.1)));
        entries
    }

    /// Whether this node overheard `observed` transmit exactly
    /// `(value, Π)`; see [`Flooder::overheard_exactly`].
    #[must_use]
    pub fn overheard_exactly(&self, observed: NodeId, path: PathId, value: Value) -> bool {
        let relay = self.arena.borrow().find_child(path, observed);
        relay.is_some_and(|relay| {
            self.seen.contains(relay.index()) && self.seen_value(relay) == value
        })
    }

    /// Number of distinct full paths along which values were received.
    #[must_use]
    pub fn received_count(&self) -> usize {
        self.received_total
    }
}

/// A flooding message carrying an owned [`Path`], used by [`NaiveFlooder`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NaiveFloodMsg {
    /// The flooded binary value.
    pub value: Value,
    /// The relay path so far (excluding the current transmitter).
    pub path: Path,
}

impl NaiveFloodMsg {
    /// The initiation message `(value, ⊥)`.
    #[must_use]
    pub fn initiation(value: Value) -> Self {
        NaiveFloodMsg {
            value,
            path: Path::empty(),
        }
    }
}

impl ByzantineMessage for NaiveFloodMsg {
    fn tampered(&self) -> Self {
        NaiveFloodMsg {
            value: self.value.flipped(),
            path: self.path.clone(),
        }
    }
}

/// The pre-interning flood engine, kept verbatim as the control: `BTreeMap`
/// state keyed by cloned [`Path`]s, with full-map scans in the accessors.
///
/// Benchmarks compare [`Flooder`] against this implementation, and the
/// equivalence tests assert identical observable behaviour.
#[derive(Debug, Clone)]
pub struct NaiveFlooder {
    me: NodeId,
    own_value: Option<Value>,
    seen: BTreeMap<(NodeId, Path), Value>,
    received: BTreeMap<Path, Value>,
    defaults_injected: bool,
}

impl NaiveFlooder {
    /// Creates the flooder and returns the initiation broadcast `(value, ⊥)`.
    #[must_use]
    pub fn start(me: NodeId, value: Value) -> (Self, Vec<Outgoing<NaiveFloodMsg>>) {
        let mut received = BTreeMap::new();
        received.insert(Path::singleton(me), value);
        let flooder = NaiveFlooder {
            me,
            own_value: Some(value),
            seen: BTreeMap::new(),
            received,
            defaults_injected: false,
        };
        let out = vec![Outgoing::Broadcast(NaiveFloodMsg::initiation(value))];
        (flooder, out)
    }

    /// The value this node initiated the flood with, if it initiated one.
    #[must_use]
    pub fn own_value(&self) -> Option<Value> {
        self.own_value
    }

    /// Processes one round of deliveries; see [`Flooder::on_round`].
    pub fn on_round(
        &mut self,
        graph: &Graph,
        first_round: bool,
        inbox: Inbox<'_, NaiveFloodMsg>,
    ) -> Vec<Outgoing<NaiveFloodMsg>> {
        let mut out = Vec::new();
        for delivery in inbox.iter() {
            out.extend(self.process(graph, delivery.from, &delivery.message));
        }
        if first_round && !self.defaults_injected {
            self.defaults_injected = true;
            for neighbor in graph.neighbors(self.me) {
                let key = (neighbor, Path::empty());
                if !self.seen.contains_key(&key) {
                    let default = NaiveFloodMsg::initiation(Value::DEFAULT_FLOOD);
                    out.extend(self.process(graph, neighbor, &default));
                }
            }
        }
        out
    }

    fn process(
        &mut self,
        graph: &Graph,
        from: NodeId,
        msg: &NaiveFloodMsg,
    ) -> Vec<Outgoing<NaiveFloodMsg>> {
        // Rule (i): the relay path Π‑u must exist in G.
        let relay_path = msg.path.extended(from);
        if !graph.is_path(&relay_path) {
            return Vec::new();
        }
        // Rule (ii): at most one message per (sender, path) key.
        let key = (from, msg.path.clone());
        if self.seen.contains_key(&key) {
            return Vec::new();
        }
        self.seen.insert(key, msg.value);
        // Rule (iii): discard if the relay path already contains me.
        if relay_path.contains(self.me) {
            return Vec::new();
        }
        // Rule (iv): record the value as received along Π‑u and forward.
        let full = relay_path.extended(self.me);
        self.received.insert(full, msg.value);
        vec![Outgoing::Broadcast(NaiveFloodMsg {
            value: msg.value,
            path: relay_path,
        })]
    }

    /// See [`Flooder::value_along`].
    #[must_use]
    pub fn value_along(&self, full_path: &Path) -> Option<Value> {
        self.received.get(full_path).copied()
    }

    /// See [`Flooder::received_from`] — here a full-map scan.
    #[must_use]
    pub fn received_from(&self, origin: NodeId) -> Vec<(Path, Value)> {
        self.received
            .iter()
            .filter(|(path, _)| path.first() == Some(origin))
            .map(|(path, value)| (path.clone(), *value))
            .collect()
    }

    /// See [`Flooder::paths_with_value`] — here a full-map scan.
    #[must_use]
    pub fn paths_with_value(&self, origin: NodeId, value: Value) -> Vec<Path> {
        self.received
            .iter()
            .filter(|(path, v)| path.first() == Some(origin) && **v == value)
            .map(|(path, _)| path.clone())
            .collect()
    }

    /// See [`Flooder::paths_with_value_excluding`].
    #[must_use]
    pub fn paths_with_value_excluding(
        &self,
        origin: NodeId,
        value: Value,
        exclude: &NodeSet,
    ) -> Vec<Path> {
        self.paths_with_value(origin, value)
            .into_iter()
            .filter(|p| p.excludes(exclude))
            .collect()
    }

    /// See [`Flooder::overheard`].
    #[must_use]
    pub fn overheard(&self) -> Vec<(NodeId, Path, Value)> {
        self.seen
            .iter()
            .map(|((from, path), value)| (*from, path.clone(), *value))
            .collect()
    }

    /// See [`Flooder::received_count`].
    #[must_use]
    pub fn received_count(&self) -> usize {
        self.received.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;
    use lbc_sim::Delivery;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn deliver(
        arena: &SharedPathArena,
        from: usize,
        value: Value,
        path: &[usize],
    ) -> Delivery<FloodMsg> {
        let path = arena.intern(&Path::from_nodes(path.iter().map(|&i| n(i))));
        Delivery {
            from: n(from),
            message: FloodMsg { value, path },
        }
    }

    fn started(i: usize, value: Value) -> (SharedPathArena, Flooder) {
        let arena = SharedPathArena::new();
        let (flooder, _) = Flooder::start(arena.clone(), n(i), value);
        (arena, flooder)
    }

    #[test]
    fn start_records_own_value_and_broadcasts_initiation() {
        let arena = SharedPathArena::new();
        let (flooder, out) = Flooder::start(arena, n(0), Value::One);
        assert_eq!(out.len(), 1);
        assert_eq!(
            flooder.value_along(&Path::singleton(n(0))),
            Some(Value::One)
        );
        assert_eq!(flooder.own_value(), Some(Value::One));
    }

    #[test]
    fn accepts_and_forwards_valid_messages() {
        // Cycle 0-1-2-3-4; we are node 2 and receive node 0's initiation via 1.
        let g = generators::cycle(5);
        let (arena, mut flooder) = started(2, Value::Zero);
        let out = flooder.on_round(
            &g,
            true,
            Inbox::direct(&[deliver(&arena, 1, Value::One, &[0])]),
        );
        // Forward (1, [0,1]) plus defaults for the missing neighbor 3.
        assert!(out.iter().any(
            |o| matches!(o, Outgoing::Broadcast(m) if arena.resolve(m.path).nodes() == [n(0), n(1)])
        ));
        let full = Path::from_nodes([n(0), n(1), n(2)]);
        assert_eq!(flooder.value_along(&full), Some(Value::One));
        let relay_id = arena.find(&Path::from_nodes([n(0), n(1)])).unwrap();
        assert_eq!(flooder.value_along_relay(relay_id), Some(Value::One));
        assert_eq!(flooder.relay_ids_from(n(0)), &[relay_id]);
    }

    #[test]
    fn rule_i_rejects_non_paths() {
        let g = generators::cycle(5);
        let (arena, mut flooder) = started(2, Value::Zero);
        // Claimed path [0, 3] then sender 1: 0-3 is not an edge on the cycle.
        let out = flooder.on_round(
            &g,
            false,
            Inbox::direct(&[deliver(&arena, 1, Value::One, &[0, 3])]),
        );
        assert!(out.is_empty());
        assert_eq!(flooder.received_count(), 1); // only the own value
    }

    #[test]
    fn rule_i_rejects_senders_already_on_the_path() {
        let g = generators::cycle(5);
        let (arena, mut flooder) = started(2, Value::Zero);
        // Relay path [1, 0] re-transmitted by node 1: 1 is already on Π.
        let out = flooder.on_round(
            &g,
            false,
            Inbox::direct(&[deliver(&arena, 1, Value::One, &[1, 0])]),
        );
        assert!(out.is_empty());
        assert_eq!(flooder.received_count(), 1);
    }

    #[test]
    fn rule_ii_keeps_only_the_first_message_per_sender_path() {
        let g = generators::cycle(5);
        let (arena, mut flooder) = started(2, Value::Zero);
        let first = deliver(&arena, 1, Value::One, &[0]);
        let conflicting = deliver(&arena, 1, Value::Zero, &[0]);
        let out1 = flooder.on_round(&g, false, Inbox::direct(&[first, conflicting]));
        // Only one forward for the (1, [0]) key.
        assert_eq!(out1.len(), 1);
        let full = Path::from_nodes([n(0), n(1), n(2)]);
        assert_eq!(flooder.value_along(&full), Some(Value::One));
    }

    #[test]
    fn rule_iii_discards_paths_containing_me() {
        let g = generators::cycle(5);
        let (arena, mut flooder) = started(2, Value::Zero);
        // Path [2, 3] from sender 4: contains me (2), discard silently.
        let out = flooder.on_round(
            &g,
            false,
            Inbox::direct(&[deliver(&arena, 4, Value::One, &[2, 3])]),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn missing_initiations_get_the_default_value() {
        let g = generators::cycle(5);
        let (arena, mut flooder) = started(2, Value::Zero);
        // Neighbor 1 initiates, neighbor 3 stays silent.
        let out = flooder.on_round(
            &g,
            true,
            Inbox::direct(&[deliver(&arena, 1, Value::Zero, &[])]),
        );
        // We forward both node 1's initiation and the default for node 3.
        assert_eq!(out.len(), 2);
        let via3 = Path::from_nodes([n(3), n(2)]);
        assert_eq!(flooder.value_along(&via3), Some(Value::DEFAULT_FLOOD));
        // A late real initiation from 3 is now ignored (rule (ii)).
        let out = flooder.on_round(
            &g,
            false,
            Inbox::direct(&[deliver(&arena, 3, Value::Zero, &[])]),
        );
        assert!(out.is_empty());
        assert_eq!(flooder.value_along(&via3), Some(Value::DEFAULT_FLOOD));
    }

    #[test]
    fn received_from_and_paths_with_value_filter_by_origin() {
        let g = generators::cycle(5);
        let (arena, mut flooder) = started(2, Value::Zero);
        let _ = flooder.on_round(
            &g,
            true,
            Inbox::direct(&[
                deliver(&arena, 1, Value::One, &[0]),
                deliver(&arena, 3, Value::Zero, &[4]),
            ]),
        );
        let from0 = flooder.received_from(n(0));
        assert_eq!(from0.len(), 1);
        assert_eq!(from0[0].1, Value::One);
        assert_eq!(flooder.paths_with_value(n(4), Value::Zero).len(), 1);
        assert!(flooder.paths_with_value(n(4), Value::One).is_empty());
        // Excluding the internal node 3 removes the only path from 4.
        let excl: NodeSet = [n(3)].into_iter().collect();
        assert!(flooder
            .paths_with_value_excluding(n(4), Value::Zero, &excl)
            .is_empty());
    }

    #[test]
    fn overheard_lists_accepted_sender_path_pairs() {
        let g = generators::cycle(5);
        let (arena, mut flooder) = started(2, Value::Zero);
        let _ = flooder.on_round(
            &g,
            true,
            Inbox::direct(&[deliver(&arena, 1, Value::One, &[])]),
        );
        let overheard = flooder.overheard();
        // Node 1's initiation plus the injected default for node 3.
        assert_eq!(overheard.len(), 2);
        assert!(overheard
            .iter()
            .any(|(from, path, value)| *from == n(1) && path.is_empty() && *value == Value::One));
        assert!(flooder.overheard_exactly(n(1), PathId::EMPTY, Value::One));
        assert!(!flooder.overheard_exactly(n(1), PathId::EMPTY, Value::Zero));
    }

    #[test]
    fn restart_behaves_like_a_fresh_start() {
        let g = generators::cycle(5);
        let (arena, mut reused) = started(2, Value::Zero);
        let inbox = [
            deliver(&arena, 1, Value::One, &[0]),
            deliver(&arena, 3, Value::Zero, &[4]),
        ];
        let _ = reused.on_round(&g, true, Inbox::direct(&inbox));
        assert!(reused.received_count() > 1);

        // Restarting with a new value must reproduce a fresh flooder's
        // behaviour exactly, against the same (persistent) arena.
        let init = reused.restart(Value::One);
        let (fresh, fresh_init) = Flooder::start(arena.clone(), n(2), Value::One);
        assert_eq!(init, fresh_init);
        assert_eq!(reused.received_count(), fresh.received_count());
        assert_eq!(reused.own_value(), fresh.own_value());
        assert_eq!(reused.overheard(), fresh.overheard());

        let mut fresh = fresh;
        let out_reused = reused.on_round(&g, true, Inbox::direct(&inbox));
        let out_fresh = fresh.on_round(&g, true, Inbox::direct(&inbox));
        assert_eq!(out_reused, out_fresh);
        assert_eq!(reused.received_from(n(0)), fresh.received_from(n(0)));
        assert_eq!(reused.received_from(n(4)), fresh.received_from(n(4)));
        assert_eq!(reused.overheard(), fresh.overheard());
    }

    #[test]
    fn restart_retires_stale_ledger_channels() {
        // Regression (PR 5): a multi-phase algorithm restarts its flood once
        // per candidate fault set — Algorithm 1 at f = 2 on 9 nodes runs 46
        // phases. Every restart opens the next epoch's channel; retirement
        // must keep the ledger's live *and allocated* channel counts bounded
        // instead of growing linearly with the phase count.
        let g = generators::cycle(5);
        let arena = SharedPathArena::new();
        let ledger = SharedFloodLedger::new();
        let (mut flooder, _) =
            LedgerFlooder::start(arena.clone(), ledger.clone(), n(2), Value::One);
        for phase in 0..40 {
            let inbox = [deliver(&arena, 1, Value::One, &[0])];
            let _ = flooder.on_round(&g, true, Inbox::direct(&inbox));
            let _ = flooder.restart(Value::One);
            assert!(
                ledger.borrow().live_channels() <= 2,
                "phase {phase}: {} live channels",
                ledger.borrow().live_channels()
            );
        }
        assert!(
            ledger.borrow().allocated_channels() <= 3,
            "retired channel slots must be recycled: {}",
            ledger.borrow().allocated_channels()
        );
        // The restarted flooder still behaves like a fresh one.
        let (fresh, _) =
            LedgerFlooder::start_on(arena.clone(), ledger.clone(), n(2), Value::One, 0, 41);
        assert_eq!(flooder.own_value(), fresh.own_value());
        assert_eq!(flooder.received_count(), fresh.received_count());
    }

    #[test]
    fn naive_engine_smoke() {
        let g = generators::cycle(5);
        let (mut flooder, out) = NaiveFlooder::start(n(2), Value::Zero);
        assert_eq!(out.len(), 1);
        let forwards = flooder.on_round(
            &g,
            true,
            Inbox::direct(&[Delivery {
                from: n(1),
                message: NaiveFloodMsg {
                    value: Value::One,
                    path: Path::singleton(n(0)),
                },
            }]),
        );
        // The forward of (1, [0,1]) plus injected defaults for both
        // neighbors (neither 1 nor 3 was seen *initiating*).
        assert_eq!(forwards.len(), 3);
        let full = Path::from_nodes([n(0), n(1), n(2)]);
        assert_eq!(flooder.value_along(&full), Some(Value::One));
        assert_eq!(flooder.received_from(n(0)).len(), 1);
        assert_eq!(flooder.own_value(), Some(Value::Zero));
    }
}
