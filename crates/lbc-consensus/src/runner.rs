//! Glue for executing the consensus algorithms inside the simulator and
//! judging the outcome.

use lbc_graph::Graph;
use lbc_model::{CommModel, ConsensusOutcome, InputAssignment, NodeSet, Regime, Value};
use lbc_sim::{Adversary, Network, ObserverHandle, Protocol, Trace};

use crate::algorithm1::Algorithm1Node;
use crate::algorithm2::Algorithm2Node;
use crate::algorithm3::Algorithm3Node;
use crate::asyncflood::AsyncFloodNode;
use crate::messages::{Alg2Message, FloodMsg};
use crate::p2p::{P2pBaselineNode, P2pMessage};

/// Which consensus algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Algorithm 1: exponential-phase exact consensus (Theorem 5.1).
    Algorithm1,
    /// Algorithm 2: `O(n)`-round consensus for `2f`-connected graphs
    /// (Theorem 5.6).
    Algorithm2,
    /// The classical point-to-point baseline (king agreement over
    /// Dolev-style relay), run under [`CommModel::PointToPoint`].
    P2pBaseline,
    /// The asynchronous local-broadcast algorithm
    /// ([`crate::AsyncFloodNode`]): event-driven flood-and-decide for
    /// `(2f + 1)`-connected graphs, the only algorithm that runs under
    /// asynchronous regimes (and the regime-generic one — it also runs
    /// under [`Regime::Synchronous`], where the fairness bound is 1).
    AsyncFlood,
}

impl AlgorithmKind {
    /// A short, stable name ("alg1" / "alg2" / "p2p" / "async"), used by
    /// campaign specs, report rows, and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Algorithm1 => "alg1",
            AlgorithmKind::Algorithm2 => "alg2",
            AlgorithmKind::P2pBaseline => "p2p",
            AlgorithmKind::AsyncFlood => "async",
        }
    }

    /// Whether this algorithm can execute under `regime`. The three
    /// round-machine algorithms require lockstep rounds; the asynchronous
    /// algorithm is regime-generic.
    #[must_use]
    pub fn supports_regime(self, regime: &Regime) -> bool {
        match self {
            AlgorithmKind::AsyncFlood => true,
            _ => regime.is_synchronous(),
        }
    }

    /// Parses the stable name produced by [`AlgorithmKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "alg1" => AlgorithmKind::Algorithm1,
            "alg2" => AlgorithmKind::Algorithm2,
            "p2p" => AlgorithmKind::P2pBaseline,
            "async" => AlgorithmKind::AsyncFlood,
            _ => return None,
        })
    }

    /// Every runnable kind, in stable order.
    #[must_use]
    pub fn all() -> [AlgorithmKind; 4] {
        [
            AlgorithmKind::Algorithm1,
            AlgorithmKind::Algorithm2,
            AlgorithmKind::P2pBaseline,
            AlgorithmKind::AsyncFlood,
        ]
    }
}

/// Safety margin multiplier applied to the theoretical round counts when
/// picking the simulator's round limit.
const ROUND_MARGIN: usize = 2;

#[allow(clippy::too_many_arguments)]
fn execute<P, A>(
    graph: &Graph,
    model: CommModel,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    nodes: Vec<P>,
    max_rounds: usize,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    P: Protocol,
    A: Adversary<P::Message>,
{
    execute_under(
        graph,
        model,
        &Regime::Synchronous,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_rounds,
        observer,
    )
}

#[allow(clippy::too_many_arguments)]
fn execute_under<P, A>(
    graph: &Graph,
    model: CommModel,
    regime: &Regime,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    nodes: Vec<P>,
    max_rounds: usize,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    P: Protocol,
    A: Adversary<P::Message>,
{
    assert_eq!(
        inputs.len(),
        graph.node_count(),
        "one input per graph node is required"
    );
    let mut network = Network::new(graph.clone(), model, faulty.clone(), nodes)
        .with_fault_bound(f)
        .with_observer(observer);
    let report = network.run_under(regime, adversary, max_rounds);
    let mut outcome = ConsensusOutcome::new(inputs.clone(), faulty.clone());
    for node in graph.nodes() {
        if let Some(value) = report.output_of(node) {
            outcome.record_output(node, value);
        }
    }
    (outcome, report.trace)
}

/// Runs **Algorithm 1** under the local broadcast model.
pub fn run_algorithm1<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg>,
{
    algorithm1_observed(
        graph,
        f,
        inputs,
        faulty,
        adversary,
        ObserverHandle::disabled(),
    )
}

fn algorithm1_observed<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg>,
{
    let n = graph.node_count();
    let nodes: Vec<Algorithm1Node> = graph
        .nodes()
        .map(|v| Algorithm1Node::new(inputs.get(v)))
        .collect();
    let max_rounds = Algorithm1Node::round_count(n, f) * ROUND_MARGIN + 2;
    execute(
        graph,
        CommModel::LocalBroadcast,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_rounds,
        observer,
    )
}

/// Runs **Algorithm 2** (the efficient `O(n)`-round algorithm) under the
/// local broadcast model.
pub fn run_algorithm2<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<Alg2Message>,
{
    algorithm2_observed(
        graph,
        f,
        inputs,
        faulty,
        adversary,
        ObserverHandle::disabled(),
    )
}

fn algorithm2_observed<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<Alg2Message>,
{
    let n = graph.node_count();
    let nodes: Vec<Algorithm2Node> = graph
        .nodes()
        .map(|v| Algorithm2Node::new(inputs.get(v)))
        .collect();
    let max_rounds = Algorithm2Node::round_count(n) * ROUND_MARGIN + 2;
    execute(
        graph,
        CommModel::LocalBroadcast,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_rounds,
        observer,
    )
}

/// Runs any algorithm selected by `kind` — the two local-broadcast
/// algorithms or the point-to-point baseline — with a caller-constructed
/// (and, for randomized strategies, pre-seeded) adversary.
///
/// This is the single entry point the campaign executor dispatches through:
/// one `(kind, graph, f, inputs, faulty)` scenario plus one adversary in,
/// one judged outcome and trace out.
pub fn run_kind<A>(
    kind: AlgorithmKind,
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg> + Adversary<Alg2Message> + Adversary<P2pMessage>,
{
    run_kind_under(
        kind,
        &Regime::Synchronous,
        graph,
        f,
        inputs,
        faulty,
        adversary,
    )
}

/// Runs any algorithm under an explicit execution [`Regime`] — the entry
/// point regime-axis campaign cells dispatch through.
///
/// # Panics
///
/// Panics when `kind` is a synchronous round machine and `regime` is
/// asynchronous (see [`AlgorithmKind::supports_regime`]); campaign spec
/// expansion rejects such cells before they reach the executor.
pub fn run_kind_under<A>(
    kind: AlgorithmKind,
    regime: &Regime,
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg> + Adversary<Alg2Message> + Adversary<P2pMessage>,
{
    run_kind_observed(
        kind,
        regime,
        graph,
        f,
        inputs,
        faulty,
        adversary,
        ObserverHandle::disabled(),
    )
}

/// Runs any algorithm under an explicit [`Regime`] with a telemetry
/// observer attached to the simulated network — the entry point behind
/// `lbc trace` and per-cell campaign telemetry. With a
/// [`ObserverHandle::disabled`] handle this is exactly
/// [`run_kind_under`].
///
/// # Panics
///
/// Panics when `kind` cannot execute under `regime` (see
/// [`AlgorithmKind::supports_regime`]).
#[allow(clippy::too_many_arguments)]
pub fn run_kind_observed<A>(
    kind: AlgorithmKind,
    regime: &Regime,
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg> + Adversary<Alg2Message> + Adversary<P2pMessage>,
{
    assert!(
        kind.supports_regime(regime),
        "{} is a synchronous round machine and cannot run under {regime}",
        kind.name()
    );
    match kind {
        AlgorithmKind::Algorithm1 => {
            algorithm1_observed(graph, f, inputs, faulty, adversary, observer)
        }
        AlgorithmKind::Algorithm2 => {
            algorithm2_observed(graph, f, inputs, faulty, adversary, observer)
        }
        AlgorithmKind::P2pBaseline => {
            p2p_baseline_observed(graph, f, inputs, faulty, adversary, observer)
        }
        AlgorithmKind::AsyncFlood => {
            async_flood_observed(graph, f, inputs, faulty, regime, adversary, observer)
        }
    }
}

/// Runs the **asynchronous** local-broadcast algorithm under `regime`
/// (which may also be [`Regime::Synchronous`] — the algorithm is
/// regime-generic and the cross-scheduler equivalence tests rely on that).
pub fn run_async_flood<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    regime: &Regime,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg>,
{
    async_flood_observed(
        graph,
        f,
        inputs,
        faulty,
        regime,
        adversary,
        ObserverHandle::disabled(),
    )
}

fn async_flood_observed<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    regime: &Regime,
    adversary: &mut A,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg>,
{
    let n = graph.node_count();
    let nodes: Vec<AsyncFloodNode> = graph
        .nodes()
        .map(|v| AsyncFloodNode::new(inputs.get(v)))
        .collect();
    let max_steps = AsyncFloodNode::step_count_under(n, regime);
    execute_under(
        graph,
        CommModel::LocalBroadcast,
        regime,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_steps,
        observer,
    )
}

/// Runs **Algorithm 3** under the hybrid model with the given set of
/// equivocating faulty nodes (`equivocators ⊆ faulty`, `|equivocators| ≤ t`).
#[allow(clippy::too_many_arguments)]
pub fn run_algorithm3<A>(
    graph: &Graph,
    f: usize,
    t: usize,
    equivocators: &NodeSet,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg>,
{
    assert!(
        equivocators.is_subset(faulty) || equivocators.is_empty(),
        "equivocators must be faulty nodes"
    );
    let n = graph.node_count();
    let nodes: Vec<Algorithm3Node> = graph
        .nodes()
        .map(|v| Algorithm3Node::new(inputs.get(v), t))
        .collect();
    let max_rounds = Algorithm3Node::round_count(n, f, t) * ROUND_MARGIN + 2;
    let model = CommModel::Hybrid {
        equivocators: equivocators.clone(),
    };
    execute(
        graph,
        model,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_rounds,
        ObserverHandle::disabled(),
    )
}

/// Runs the **point-to-point baseline** (king agreement over Dolev-style
/// relay) under the point-to-point model.
pub fn run_p2p_baseline<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<P2pMessage>,
{
    p2p_baseline_observed(
        graph,
        f,
        inputs,
        faulty,
        adversary,
        ObserverHandle::disabled(),
    )
}

fn p2p_baseline_observed<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<P2pMessage>,
{
    let n = graph.node_count();
    let nodes: Vec<P2pBaselineNode> = graph
        .nodes()
        .map(|v| P2pBaselineNode::new(inputs.get(v)))
        .collect();
    let max_rounds = P2pBaselineNode::round_count(n, f) * ROUND_MARGIN + 2;
    execute(
        graph,
        CommModel::PointToPoint,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_rounds,
        observer,
    )
}

/// Convenience: run one algorithm over *every* input assignment where the
/// non-faulty inputs are not unanimous-by-construction is unnecessary; this
/// helper simply enumerates all `2^n` assignments for small `n` and returns
/// the first failing outcome, if any.
///
/// Used by tests and experiments to exhaustively check small configurations.
pub fn exhaustive_inputs_check<F>(
    n: usize,
    mut run: F,
) -> Option<(InputAssignment, ConsensusOutcome)>
where
    F: FnMut(&InputAssignment) -> ConsensusOutcome,
{
    assert!(n <= 16, "exhaustive input enumeration limited to 16 nodes");
    for bits in 0..(1u64 << n) {
        let inputs = InputAssignment::from_bits(n, bits);
        let outcome = run(&inputs);
        if !outcome.verdict().is_correct() {
            return Some((inputs, outcome));
        }
    }
    None
}

/// Helper used by experiments: the majority input value of the non-faulty
/// nodes (ties to zero), handy as a reference point when eyeballing outcomes.
#[must_use]
pub fn honest_majority(inputs: &InputAssignment, faulty: &NodeSet) -> Option<Value> {
    Value::majority(
        inputs
            .iter()
            .filter(|(node, _)| !faulty.contains(*node))
            .map(|(_, value)| value),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;
    use lbc_model::NodeId;
    use lbc_sim::HonestAdversary;

    #[test]
    fn algorithm1_fault_free_on_the_5_cycle() {
        let graph = generators::paper_fig1a();
        let inputs = InputAssignment::from_bits(5, 0b00110);
        let (outcome, trace) =
            run_algorithm1(&graph, 1, &inputs, &NodeSet::new(), &mut HonestAdversary);
        assert!(outcome.verdict().is_correct(), "{outcome}");
        assert_eq!(trace.rounds(), Algorithm1Node::round_count(5, 1));
    }

    #[test]
    fn algorithm2_fault_free_on_the_5_cycle() {
        let graph = generators::paper_fig1a();
        let inputs = InputAssignment::from_bits(5, 0b01011);
        let (outcome, trace) =
            run_algorithm2(&graph, 1, &inputs, &NodeSet::new(), &mut HonestAdversary);
        assert!(outcome.verdict().is_correct(), "{outcome}");
        assert!(trace.rounds() <= Algorithm2Node::round_count(5));
    }

    #[test]
    fn algorithm3_fault_free_on_k5() {
        let graph = generators::complete(5);
        let inputs = InputAssignment::from_bits(5, 0b10101);
        let (outcome, _) = run_algorithm3(
            &graph,
            1,
            1,
            &NodeSet::new(),
            &inputs,
            &NodeSet::new(),
            &mut HonestAdversary,
        );
        assert!(outcome.verdict().is_correct(), "{outcome}");
    }

    #[test]
    fn p2p_baseline_fault_free_on_k4() {
        let graph = generators::complete(4);
        let inputs = InputAssignment::from_bits(4, 0b0101);
        let (outcome, _) =
            run_p2p_baseline(&graph, 1, &inputs, &NodeSet::new(), &mut HonestAdversary);
        assert!(outcome.verdict().is_correct(), "{outcome}");
    }

    #[test]
    fn algorithm_kind_names_roundtrip() {
        for kind in AlgorithmKind::all() {
            assert_eq!(AlgorithmKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(AlgorithmKind::from_name("alg9"), None);
    }

    #[test]
    fn run_kind_dispatches_every_algorithm() {
        let graph = generators::complete(4);
        let inputs = InputAssignment::from_bits(4, 0b0110);
        for kind in AlgorithmKind::all() {
            let (outcome, _) = run_kind(
                kind,
                &graph,
                1,
                &inputs,
                &NodeSet::new(),
                &mut HonestAdversary,
            );
            assert!(outcome.verdict().is_correct(), "{}: {outcome}", kind.name());
        }
    }

    #[test]
    fn honest_majority_ignores_faulty_inputs() {
        let inputs = InputAssignment::from_bits(4, 0b1110);
        let faulty = NodeSet::singleton(NodeId::new(3));
        assert_eq!(honest_majority(&inputs, &faulty), Some(Value::One));
        assert_eq!(honest_majority(&inputs, &NodeSet::new()), Some(Value::One));
    }

    #[test]
    fn exhaustive_check_passes_for_a_correct_runner() {
        let graph = generators::complete(3);
        let result = exhaustive_inputs_check(3, |inputs| {
            let (outcome, _) =
                run_algorithm2(&graph, 0, inputs, &NodeSet::new(), &mut HonestAdversary);
            outcome
        });
        assert!(result.is_none());
    }
}
