//! Glue for executing the consensus algorithms inside the simulator and
//! judging the outcome.

use lbc_graph::Graph;
use lbc_model::{CommModel, ConsensusOutcome, InputAssignment, NodeSet, Regime, Value};
use lbc_sim::{Adversary, ChainStats, Network, ObserverHandle, Protocol, Trace};

use crate::algorithm1::Algorithm1Node;
use crate::algorithm2::Algorithm2Node;
use crate::algorithm3::Algorithm3Node;
use crate::asyncflood::AsyncFloodNode;
use crate::messages::{Alg2Message, FloodMsg};
use crate::p2p::{P2pBaselineNode, P2pMessage};

/// Which consensus algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Algorithm 1: exponential-phase exact consensus (Theorem 5.1).
    Algorithm1,
    /// Algorithm 2: `O(n)`-round consensus for `2f`-connected graphs
    /// (Theorem 5.6).
    Algorithm2,
    /// The classical point-to-point baseline (king agreement over
    /// Dolev-style relay), run under [`CommModel::PointToPoint`].
    P2pBaseline,
    /// The asynchronous local-broadcast algorithm
    /// ([`crate::AsyncFloodNode`]): event-driven flood-and-decide for
    /// `(2f + 1)`-connected graphs, the only algorithm that runs under
    /// asynchronous regimes (and the regime-generic one — it also runs
    /// under [`Regime::Synchronous`], where the fairness bound is 1).
    AsyncFlood,
}

impl AlgorithmKind {
    /// A short, stable name ("alg1" / "alg2" / "p2p" / "async"), used by
    /// campaign specs, report rows, and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Algorithm1 => "alg1",
            AlgorithmKind::Algorithm2 => "alg2",
            AlgorithmKind::P2pBaseline => "p2p",
            AlgorithmKind::AsyncFlood => "async",
        }
    }

    /// Whether this algorithm can execute under `regime`. The three
    /// round-machine algorithms require lockstep rounds; the asynchronous
    /// algorithm is regime-generic.
    #[must_use]
    pub fn supports_regime(self, regime: &Regime) -> bool {
        match self {
            AlgorithmKind::AsyncFlood => true,
            _ => regime.is_synchronous(),
        }
    }

    /// Parses the stable name produced by [`AlgorithmKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "alg1" => AlgorithmKind::Algorithm1,
            "alg2" => AlgorithmKind::Algorithm2,
            "p2p" => AlgorithmKind::P2pBaseline,
            "async" => AlgorithmKind::AsyncFlood,
            _ => return None,
        })
    }

    /// Every runnable kind, in stable order.
    #[must_use]
    pub fn all() -> [AlgorithmKind; 4] {
        [
            AlgorithmKind::Algorithm1,
            AlgorithmKind::Algorithm2,
            AlgorithmKind::P2pBaseline,
            AlgorithmKind::AsyncFlood,
        ]
    }
}

/// Safety margin multiplier applied to the theoretical round counts when
/// picking the simulator's round limit.
const ROUND_MARGIN: usize = 2;

#[allow(clippy::too_many_arguments)]
fn execute<P, A>(
    graph: &Graph,
    model: CommModel,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    nodes: Vec<P>,
    max_rounds: usize,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    P: Protocol,
    A: Adversary<P::Message>,
{
    execute_under(
        graph,
        model,
        &Regime::Synchronous,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_rounds,
        observer,
    )
}

#[allow(clippy::too_many_arguments)]
fn execute_under<P, A>(
    graph: &Graph,
    model: CommModel,
    regime: &Regime,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    nodes: Vec<P>,
    max_rounds: usize,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    P: Protocol,
    A: Adversary<P::Message>,
{
    assert_eq!(
        inputs.len(),
        graph.node_count(),
        "one input per graph node is required"
    );
    let mut network = Network::new(graph.clone(), model, faulty.clone(), nodes)
        .with_fault_bound(f)
        .with_observer(observer);
    let report = network.run_under(regime, adversary, max_rounds);
    let mut outcome = ConsensusOutcome::new(inputs.clone(), faulty.clone());
    for node in graph.nodes() {
        if let Some(value) = report.output_of(node) {
            outcome.record_output(node, value);
        }
    }
    (outcome, report.trace)
}

/// Runs **Algorithm 1** under the local broadcast model.
pub fn run_algorithm1<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg>,
{
    algorithm1_observed(
        graph,
        f,
        inputs,
        faulty,
        adversary,
        ObserverHandle::disabled(),
    )
}

fn algorithm1_observed<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg>,
{
    let n = graph.node_count();
    let nodes: Vec<Algorithm1Node> = graph
        .nodes()
        .map(|v| Algorithm1Node::new(inputs.get(v)))
        .collect();
    let max_rounds = Algorithm1Node::round_count(n, f) * ROUND_MARGIN + 2;
    execute(
        graph,
        CommModel::LocalBroadcast,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_rounds,
        observer,
    )
}

/// Runs **Algorithm 2** (the efficient `O(n)`-round algorithm) under the
/// local broadcast model.
pub fn run_algorithm2<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<Alg2Message>,
{
    algorithm2_observed(
        graph,
        f,
        inputs,
        faulty,
        adversary,
        ObserverHandle::disabled(),
    )
}

fn algorithm2_observed<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<Alg2Message>,
{
    let n = graph.node_count();
    let nodes: Vec<Algorithm2Node> = graph
        .nodes()
        .map(|v| Algorithm2Node::new(inputs.get(v)))
        .collect();
    let max_rounds = Algorithm2Node::round_count(n) * ROUND_MARGIN + 2;
    execute(
        graph,
        CommModel::LocalBroadcast,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_rounds,
        observer,
    )
}

/// Runs any algorithm selected by `kind` — the two local-broadcast
/// algorithms or the point-to-point baseline — with a caller-constructed
/// (and, for randomized strategies, pre-seeded) adversary.
///
/// This is the single entry point the campaign executor dispatches through:
/// one `(kind, graph, f, inputs, faulty)` scenario plus one adversary in,
/// one judged outcome and trace out.
pub fn run_kind<A>(
    kind: AlgorithmKind,
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg> + Adversary<Alg2Message> + Adversary<P2pMessage>,
{
    run_kind_under(
        kind,
        &Regime::Synchronous,
        graph,
        f,
        inputs,
        faulty,
        adversary,
    )
}

/// Runs any algorithm under an explicit execution [`Regime`] — the entry
/// point regime-axis campaign cells dispatch through.
///
/// # Panics
///
/// Panics when `kind` is a synchronous round machine and `regime` is
/// asynchronous (see [`AlgorithmKind::supports_regime`]); campaign spec
/// expansion rejects such cells before they reach the executor.
pub fn run_kind_under<A>(
    kind: AlgorithmKind,
    regime: &Regime,
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg> + Adversary<Alg2Message> + Adversary<P2pMessage>,
{
    run_kind_observed(
        kind,
        regime,
        graph,
        f,
        inputs,
        faulty,
        adversary,
        ObserverHandle::disabled(),
    )
}

/// Runs any algorithm under an explicit [`Regime`] with a telemetry
/// observer attached to the simulated network — the entry point behind
/// `lbc trace` and per-cell campaign telemetry. With a
/// [`ObserverHandle::disabled`] handle this is exactly
/// [`run_kind_under`].
///
/// # Panics
///
/// Panics when `kind` cannot execute under `regime` (see
/// [`AlgorithmKind::supports_regime`]).
#[allow(clippy::too_many_arguments)]
pub fn run_kind_observed<A>(
    kind: AlgorithmKind,
    regime: &Regime,
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg> + Adversary<Alg2Message> + Adversary<P2pMessage>,
{
    assert!(
        kind.supports_regime(regime),
        "{} is a synchronous round machine and cannot run under {regime}",
        kind.name()
    );
    match kind {
        AlgorithmKind::Algorithm1 => {
            algorithm1_observed(graph, f, inputs, faulty, adversary, observer)
        }
        AlgorithmKind::Algorithm2 => {
            algorithm2_observed(graph, f, inputs, faulty, adversary, observer)
        }
        AlgorithmKind::P2pBaseline => {
            p2p_baseline_observed(graph, f, inputs, faulty, adversary, observer)
        }
        AlgorithmKind::AsyncFlood => {
            async_flood_observed(graph, f, inputs, faulty, regime, adversary, observer)
        }
    }
}

/// Runs the **asynchronous** local-broadcast algorithm under `regime`
/// (which may also be [`Regime::Synchronous`] — the algorithm is
/// regime-generic and the cross-scheduler equivalence tests rely on that).
pub fn run_async_flood<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    regime: &Regime,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg>,
{
    async_flood_observed(
        graph,
        f,
        inputs,
        faulty,
        regime,
        adversary,
        ObserverHandle::disabled(),
    )
}

fn async_flood_observed<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    regime: &Regime,
    adversary: &mut A,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg>,
{
    let n = graph.node_count();
    let nodes: Vec<AsyncFloodNode> = graph
        .nodes()
        .map(|v| AsyncFloodNode::new(inputs.get(v)))
        .collect();
    let max_steps = AsyncFloodNode::step_count_under(n, regime);
    execute_under(
        graph,
        CommModel::LocalBroadcast,
        regime,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_steps,
        observer,
    )
}

/// Runs **Algorithm 3** under the hybrid model with the given set of
/// equivocating faulty nodes (`equivocators ⊆ faulty`, `|equivocators| ≤ t`).
#[allow(clippy::too_many_arguments)]
pub fn run_algorithm3<A>(
    graph: &Graph,
    f: usize,
    t: usize,
    equivocators: &NodeSet,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<FloodMsg>,
{
    assert!(
        equivocators.is_subset(faulty) || equivocators.is_empty(),
        "equivocators must be faulty nodes"
    );
    let n = graph.node_count();
    let nodes: Vec<Algorithm3Node> = graph
        .nodes()
        .map(|v| Algorithm3Node::new(inputs.get(v), t))
        .collect();
    let max_rounds = Algorithm3Node::round_count(n, f, t) * ROUND_MARGIN + 2;
    let model = CommModel::Hybrid {
        equivocators: equivocators.clone(),
    };
    execute(
        graph,
        model,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_rounds,
        ObserverHandle::disabled(),
    )
}

/// Runs the **point-to-point baseline** (king agreement over Dolev-style
/// relay) under the point-to-point model.
pub fn run_p2p_baseline<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<P2pMessage>,
{
    p2p_baseline_observed(
        graph,
        f,
        inputs,
        faulty,
        adversary,
        ObserverHandle::disabled(),
    )
}

fn p2p_baseline_observed<A>(
    graph: &Graph,
    f: usize,
    inputs: &InputAssignment,
    faulty: &NodeSet,
    adversary: &mut A,
    observer: ObserverHandle,
) -> (ConsensusOutcome, Trace)
where
    A: Adversary<P2pMessage>,
{
    let n = graph.node_count();
    let nodes: Vec<P2pBaselineNode> = graph
        .nodes()
        .map(|v| P2pBaselineNode::new(inputs.get(v)))
        .collect();
    let max_rounds = P2pBaselineNode::round_count(n, f) * ROUND_MARGIN + 2;
    execute(
        graph,
        CommModel::PointToPoint,
        f,
        inputs,
        faulty,
        adversary,
        nodes,
        max_rounds,
        observer,
    )
}

/// Per-instance judged result of a chained repeated-consensus run
/// ([`run_chain_under`]): one [`ConsensusOutcome`] plus the instance's
/// resource footprint, in instance order.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// The judged consensus outcome of this instance.
    pub outcome: ConsensusOutcome,
    /// Whether every non-faulty node terminated within the step budget.
    pub all_non_faulty_terminated: bool,
    /// Steps (lockstep rounds or scheduler steps) this instance consumed.
    pub steps: usize,
    /// Transmissions emitted by this instance, including its drain tail.
    pub transmissions: usize,
    /// Deliveries of this instance's transmissions.
    pub deliveries: usize,
}

/// Runs `instances` consecutive executions of one algorithm over a single
/// long-lived network — the repeated-consensus service core behind
/// `lbc serve`. Instance `k + 1` starts while instance `k`'s flood tail
/// drains; the path arena, disjoint-path plans, and ledger pair memos stay
/// warm across instances, and each instance's ledger channels live in their
/// own epoch session (see [`lbc_sim::Network::run_chain`]).
///
/// `inputs_for` is called once per instance (with the instance index) and
/// must return one input per graph node; each instance is judged against its
/// own assignment. Returns the per-instance results in order plus the
/// chain-wide resource high-water marks.
///
/// # Panics
///
/// Panics when `kind` cannot execute under `regime` (see
/// [`AlgorithmKind::supports_regime`]) or when `inputs_for` returns an
/// assignment of the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn run_chain_under<A, FI>(
    kind: AlgorithmKind,
    regime: &Regime,
    graph: &Graph,
    f: usize,
    faulty: &NodeSet,
    instances: usize,
    mut inputs_for: FI,
    adversary: &mut A,
) -> (Vec<InstanceResult>, ChainStats)
where
    A: Adversary<FloodMsg> + Adversary<Alg2Message> + Adversary<P2pMessage>,
    FI: FnMut(u64) -> InputAssignment,
{
    assert!(
        kind.supports_regime(regime),
        "{} is a synchronous round machine and cannot run under {regime}",
        kind.name()
    );
    let n = graph.node_count();
    match kind {
        AlgorithmKind::Algorithm1 => chain_execute(
            graph,
            CommModel::LocalBroadcast,
            regime,
            f,
            faulty,
            instances,
            &mut inputs_for,
            |inputs| {
                graph
                    .nodes()
                    .map(|v| Algorithm1Node::new(inputs.get(v)))
                    .collect()
            },
            Algorithm1Node::round_count(n, f) * ROUND_MARGIN + 2,
            adversary,
        ),
        AlgorithmKind::Algorithm2 => chain_execute(
            graph,
            CommModel::LocalBroadcast,
            regime,
            f,
            faulty,
            instances,
            &mut inputs_for,
            |inputs| {
                graph
                    .nodes()
                    .map(|v| Algorithm2Node::new(inputs.get(v)))
                    .collect()
            },
            Algorithm2Node::round_count(n) * ROUND_MARGIN + 2,
            adversary,
        ),
        AlgorithmKind::P2pBaseline => chain_execute(
            graph,
            CommModel::PointToPoint,
            regime,
            f,
            faulty,
            instances,
            &mut inputs_for,
            |inputs| {
                graph
                    .nodes()
                    .map(|v| P2pBaselineNode::new(inputs.get(v)))
                    .collect()
            },
            P2pBaselineNode::round_count(n, f) * ROUND_MARGIN + 2,
            adversary,
        ),
        AlgorithmKind::AsyncFlood => chain_execute(
            graph,
            CommModel::LocalBroadcast,
            regime,
            f,
            faulty,
            instances,
            &mut inputs_for,
            |inputs| {
                graph
                    .nodes()
                    .map(|v| AsyncFloodNode::new(inputs.get(v)))
                    .collect()
            },
            AsyncFloodNode::step_count_under(n, regime),
            adversary,
        ),
    }
}

/// The monomorphic body behind [`run_chain_under`]: build one network, pump
/// the chain, judge every instance against its own input assignment.
#[allow(clippy::too_many_arguments)]
fn chain_execute<P, A, FI, FB>(
    graph: &Graph,
    model: CommModel,
    regime: &Regime,
    f: usize,
    faulty: &NodeSet,
    instances: usize,
    inputs_for: &mut FI,
    mut build: FB,
    max_steps: usize,
    adversary: &mut A,
) -> (Vec<InstanceResult>, ChainStats)
where
    P: Protocol,
    A: Adversary<P::Message>,
    FI: FnMut(u64) -> InputAssignment,
    FB: FnMut(&InputAssignment) -> Vec<P>,
{
    let mut assignments: Vec<InputAssignment> = Vec::with_capacity(instances);
    let first = inputs_for(0);
    assert_eq!(
        first.len(),
        graph.node_count(),
        "one input per graph node is required"
    );
    let nodes = build(&first);
    assignments.push(first);
    let mut network = Network::new(graph.clone(), model, faulty.clone(), nodes).with_fault_bound(f);
    let (reports, stats) = network.run_chain(regime, adversary, max_steps, instances, |k| {
        let inputs = inputs_for(k);
        assert_eq!(
            inputs.len(),
            graph.node_count(),
            "one input per graph node is required"
        );
        let nodes = build(&inputs);
        assignments.push(inputs);
        nodes
    });
    let results = reports
        .into_iter()
        .zip(assignments)
        .map(|(report, inputs)| {
            let mut outcome = ConsensusOutcome::new(inputs, faulty.clone());
            for node in graph.nodes() {
                if let Some(value) = report.outputs[node.index()] {
                    outcome.record_output(node, value);
                }
            }
            InstanceResult {
                outcome,
                all_non_faulty_terminated: report.all_non_faulty_terminated,
                steps: report.steps,
                transmissions: report.transmissions,
                deliveries: report.deliveries,
            }
        })
        .collect();
    (results, stats)
}

/// Convenience: run one algorithm over *every* input assignment where the
/// non-faulty inputs are not unanimous-by-construction is unnecessary; this
/// helper simply enumerates all `2^n` assignments for small `n` and returns
/// the first failing outcome, if any.
///
/// Used by tests and experiments to exhaustively check small configurations.
pub fn exhaustive_inputs_check<F>(
    n: usize,
    mut run: F,
) -> Option<(InputAssignment, ConsensusOutcome)>
where
    F: FnMut(&InputAssignment) -> ConsensusOutcome,
{
    assert!(n <= 16, "exhaustive input enumeration limited to 16 nodes");
    for bits in 0..(1u64 << n) {
        let inputs = InputAssignment::from_bits(n, bits);
        let outcome = run(&inputs);
        if !outcome.verdict().is_correct() {
            return Some((inputs, outcome));
        }
    }
    None
}

/// Helper used by experiments: the majority input value of the non-faulty
/// nodes (ties to zero), handy as a reference point when eyeballing outcomes.
#[must_use]
pub fn honest_majority(inputs: &InputAssignment, faulty: &NodeSet) -> Option<Value> {
    Value::majority(
        inputs
            .iter()
            .filter(|(node, _)| !faulty.contains(*node))
            .map(|(_, value)| value),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;
    use lbc_model::NodeId;
    use lbc_sim::HonestAdversary;

    #[test]
    fn algorithm1_fault_free_on_the_5_cycle() {
        let graph = generators::paper_fig1a();
        let inputs = InputAssignment::from_bits(5, 0b00110);
        let (outcome, trace) =
            run_algorithm1(&graph, 1, &inputs, &NodeSet::new(), &mut HonestAdversary);
        assert!(outcome.verdict().is_correct(), "{outcome}");
        assert_eq!(trace.rounds(), Algorithm1Node::round_count(5, 1));
    }

    #[test]
    fn algorithm2_fault_free_on_the_5_cycle() {
        let graph = generators::paper_fig1a();
        let inputs = InputAssignment::from_bits(5, 0b01011);
        let (outcome, trace) =
            run_algorithm2(&graph, 1, &inputs, &NodeSet::new(), &mut HonestAdversary);
        assert!(outcome.verdict().is_correct(), "{outcome}");
        assert!(trace.rounds() <= Algorithm2Node::round_count(5));
    }

    #[test]
    fn algorithm3_fault_free_on_k5() {
        let graph = generators::complete(5);
        let inputs = InputAssignment::from_bits(5, 0b10101);
        let (outcome, _) = run_algorithm3(
            &graph,
            1,
            1,
            &NodeSet::new(),
            &inputs,
            &NodeSet::new(),
            &mut HonestAdversary,
        );
        assert!(outcome.verdict().is_correct(), "{outcome}");
    }

    #[test]
    fn p2p_baseline_fault_free_on_k4() {
        let graph = generators::complete(4);
        let inputs = InputAssignment::from_bits(4, 0b0101);
        let (outcome, _) =
            run_p2p_baseline(&graph, 1, &inputs, &NodeSet::new(), &mut HonestAdversary);
        assert!(outcome.verdict().is_correct(), "{outcome}");
    }

    #[test]
    fn algorithm_kind_names_roundtrip() {
        for kind in AlgorithmKind::all() {
            assert_eq!(AlgorithmKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(AlgorithmKind::from_name("alg9"), None);
    }

    #[test]
    fn run_kind_dispatches_every_algorithm() {
        let graph = generators::complete(4);
        let inputs = InputAssignment::from_bits(4, 0b0110);
        for kind in AlgorithmKind::all() {
            let (outcome, _) = run_kind(
                kind,
                &graph,
                1,
                &inputs,
                &NodeSet::new(),
                &mut HonestAdversary,
            );
            assert!(outcome.verdict().is_correct(), "{}: {outcome}", kind.name());
        }
    }

    #[test]
    fn honest_majority_ignores_faulty_inputs() {
        let inputs = InputAssignment::from_bits(4, 0b1110);
        let faulty = NodeSet::singleton(NodeId::new(3));
        assert_eq!(honest_majority(&inputs, &faulty), Some(Value::One));
        assert_eq!(honest_majority(&inputs, &NodeSet::new()), Some(Value::One));
    }

    #[test]
    fn chained_runs_decide_every_instance_for_every_kind() {
        let graph = generators::complete(4);
        for kind in AlgorithmKind::all() {
            let (results, stats) = run_chain_under(
                kind,
                &Regime::Synchronous,
                &graph,
                1,
                &NodeSet::new(),
                3,
                |k| InputAssignment::from_bits(4, 0b0110 ^ k),
                &mut HonestAdversary,
            );
            assert_eq!(results.len(), 3, "{}", kind.name());
            for (k, result) in results.iter().enumerate() {
                assert!(result.all_non_faulty_terminated, "{} #{k}", kind.name());
                assert!(
                    result.outcome.verdict().is_correct(),
                    "{} #{k}: {}",
                    kind.name(),
                    result.outcome
                );
            }
            assert!(stats.max_live_per_tag <= 2, "{}", kind.name());
        }
    }

    #[test]
    fn chained_async_flood_rides_one_network_with_a_fault() {
        use lbc_model::{AsyncRegime, SchedulerKind};
        let graph = generators::circulant(9, &[1, 2]);
        let faulty = NodeSet::singleton(NodeId::new(3));
        let regime = Regime::Asynchronous(AsyncRegime {
            scheduler: SchedulerKind::EdgeLag,
            delay: 3,
            seed: 7,
        });
        let (results, stats) = run_chain_under(
            AlgorithmKind::AsyncFlood,
            &regime,
            &graph,
            1,
            &faulty,
            6,
            |k| InputAssignment::from_bits(9, 0b0_1101_1001 >> (k % 3)),
            &mut HonestAdversary,
        );
        assert_eq!(results.len(), 6);
        for (k, result) in results.iter().enumerate() {
            assert!(
                result.outcome.verdict().is_correct(),
                "#{k}: {}",
                result.outcome
            );
        }
        assert!(stats.max_live_per_tag <= 2);
        assert!(stats.max_allocated_channels <= 3 * stats.live_tags.max(1));
    }

    #[test]
    fn chain_of_one_judges_like_the_one_shot_runner() {
        let graph = generators::paper_fig1a();
        let inputs = InputAssignment::from_bits(5, 0b01011);
        let (one_shot, _) =
            run_algorithm2(&graph, 1, &inputs, &NodeSet::new(), &mut HonestAdversary);
        let (results, _) = run_chain_under(
            AlgorithmKind::Algorithm2,
            &Regime::Synchronous,
            &graph,
            1,
            &NodeSet::new(),
            1,
            |_| inputs.clone(),
            &mut HonestAdversary,
        );
        assert_eq!(results.len(), 1);
        assert_eq!(format!("{}", results[0].outcome), format!("{one_shot}"));
    }

    #[test]
    fn exhaustive_check_passes_for_a_correct_runner() {
        let graph = generators::complete(3);
        let result = exhaustive_inputs_check(3, |inputs| {
            let (outcome, _) =
                run_algorithm2(&graph, 0, inputs, &NodeSet::new(), &mut HonestAdversary);
            outcome
        });
        assert!(result.is_none());
    }
}
