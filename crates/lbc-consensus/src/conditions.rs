//! Executable feasibility conditions.
//!
//! This module turns the paper's characterizations into predicates over
//! graphs:
//!
//! | Model | Condition | Source |
//! |---|---|---|
//! | local broadcast | min degree ≥ `2f` **and** connectivity ≥ `⌊3f/2⌋+1` | Theorems 4.1 + 5.1 |
//! | local broadcast, efficient | connectivity ≥ `2f` | Theorem 5.6 |
//! | local broadcast, asynchronous | connectivity ≥ `2f + 1` | async regime (cf. arXiv:1909.02865) |
//! | point-to-point | `n ≥ 3f+1` **and** connectivity ≥ `2f+1` | Dolev 1982 |
//! | hybrid (`t` equivocators) | connectivity ≥ `⌊3(f−t)/2⌋+2t+1`; if `t=0` min degree ≥ `2f`; if `t>0` every `S`, `0<|S|≤t`, has ≥ `2f+1` neighbors | Theorem 6.1 |

use lbc_graph::{connectivity, cuts, Graph};

/// The connectivity the local broadcast model requires for tolerance `f`:
/// `⌊3f/2⌋ + 1`.
#[must_use]
pub const fn local_broadcast_connectivity_requirement(f: usize) -> usize {
    (3 * f) / 2 + 1
}

/// The minimum degree the local broadcast model requires for tolerance `f`:
/// `2f`.
#[must_use]
pub const fn local_broadcast_degree_requirement(f: usize) -> usize {
    2 * f
}

/// The connectivity the classical point-to-point model requires: `2f + 1`.
#[must_use]
pub const fn point_to_point_connectivity_requirement(f: usize) -> usize {
    2 * f + 1
}

/// The node count the classical point-to-point model requires: `3f + 1`.
#[must_use]
pub const fn point_to_point_node_requirement(f: usize) -> usize {
    3 * f + 1
}

/// The connectivity the hybrid model requires for `f` faults of which at most
/// `t` may equivocate: `⌊3(f − t)/2⌋ + 2t + 1`.
///
/// # Panics
///
/// Panics if `t > f`.
#[must_use]
pub fn hybrid_connectivity_requirement(f: usize, t: usize) -> usize {
    assert!(t <= f, "t = {t} must not exceed f = {f}");
    (3 * (f - t)) / 2 + 2 * t + 1
}

/// Whether Byzantine consensus tolerating `f` faults is achievable on `graph`
/// under the **local broadcast** model (Theorems 4.1 and 5.1): minimum degree
/// at least `2f` and vertex connectivity at least `⌊3f/2⌋ + 1`.
#[must_use]
pub fn local_broadcast_feasible(graph: &Graph, f: usize) -> bool {
    graph.min_degree() >= local_broadcast_degree_requirement(f)
        && connectivity::is_k_connected(graph, local_broadcast_connectivity_requirement(f))
}

/// The connectivity the **asynchronous** local-broadcast algorithm
/// mechanized here ([`crate::AsyncFloodNode`]) requires: `2f + 1`.
///
/// Strictly above the synchronous threshold `⌊3f/2⌋ + 1` for every `f ≥ 1` —
/// the regime separation of the asynchronous local-broadcast line
/// (arXiv:1909.02865): graphs such as the cycle (`κ = 2`, synchronous-
/// feasible at `f = 1`) fall below it, which the async boundary campaign
/// exhibits as a reproducible violation.
#[must_use]
pub const fn asynchronous_connectivity_requirement(f: usize) -> usize {
    2 * f + 1
}

/// Whether the asynchronous local-broadcast algorithm applies to `graph`
/// with fault bound `f`: vertex connectivity at least `2f + 1` (which
/// implies minimum degree ≥ `2f + 1 > 2f`). For `f = 0` a connected graph
/// suffices.
///
/// With `κ ≥ 2f + 1`, removing any faulty set `F` (`|F| ≤ f`) leaves the
/// graph `(f + 1)`-connected, so every correct node *reliably receives*
/// (value along `f + 1` internally-disjoint fault-free paths) the effective
/// initiation value of **every** node, while a forged value can travel
/// along at most `f` disjoint paths (each must contain a faulty relay) and
/// is never accepted — schedule-independent agreement without the
/// round-synchronized phase machinery asynchrony forbids.
#[must_use]
pub fn asynchronous_feasible(graph: &Graph, f: usize) -> bool {
    if f == 0 {
        return graph.node_count() == 1 || graph.is_connected();
    }
    connectivity::is_k_connected(graph, asynchronous_connectivity_requirement(f))
}

/// Whether the **efficient** local-broadcast algorithm (Algorithm 2,
/// Theorem 5.6) applies: `graph` is `2f`-connected.
///
/// For `f = 0` this only requires a connected graph with at least two nodes
/// (the algorithm still floods and decides), matching `is_k_connected(g, 0)`
/// semantics plus connectivity.
#[must_use]
pub fn efficient_algorithm_applicable(graph: &Graph, f: usize) -> bool {
    if f == 0 {
        return graph.node_count() == 1 || graph.is_connected();
    }
    connectivity::is_k_connected(graph, 2 * f)
}

/// Whether Byzantine consensus tolerating `f` faults is achievable on `graph`
/// under the classical **point-to-point** model (Dolev 1982): `n ≥ 3f + 1`
/// and vertex connectivity at least `2f + 1`.
#[must_use]
pub fn point_to_point_feasible(graph: &Graph, f: usize) -> bool {
    if f == 0 {
        return graph.node_count() == 1 || graph.is_connected();
    }
    graph.node_count() >= point_to_point_node_requirement(f)
        && connectivity::is_k_connected(graph, point_to_point_connectivity_requirement(f))
}

/// Whether Byzantine consensus tolerating `f` faults, of which at most `t`
/// may equivocate, is achievable on `graph` under the **hybrid** model
/// (Theorem 6.1).
///
/// # Panics
///
/// Panics if `t > f`.
#[must_use]
pub fn hybrid_feasible(graph: &Graph, f: usize, t: usize) -> bool {
    assert!(t <= f, "t = {t} must not exceed f = {f}");
    if f == 0 {
        return graph.node_count() == 1 || graph.is_connected();
    }
    let kappa = hybrid_connectivity_requirement(f, t);
    if !connectivity::is_k_connected(graph, kappa) {
        return false;
    }
    if t == 0 {
        graph.min_degree() >= local_broadcast_degree_requirement(f)
    } else {
        // Condition (iii): every non-empty S with |S| ≤ t has ≥ 2f + 1 neighbors,
        // i.e. there is no such S with ≤ 2f neighbors.
        cuts::small_neighborhood_set(graph, t, 2 * f).is_none()
    }
}

/// The largest `f` for which `graph` satisfies the local broadcast conditions.
#[must_use]
pub fn max_f_local_broadcast(graph: &Graph) -> usize {
    let mut best = 0;
    let ceiling = graph.node_count();
    for f in 1..=ceiling {
        if local_broadcast_feasible(graph, f) {
            best = f;
        } else {
            break;
        }
    }
    best
}

/// The largest `f` for which `graph` satisfies the point-to-point conditions.
#[must_use]
pub fn max_f_point_to_point(graph: &Graph) -> usize {
    let mut best = 0;
    let ceiling = graph.node_count();
    for f in 1..=ceiling {
        if point_to_point_feasible(graph, f) {
            best = f;
        } else {
            break;
        }
    }
    best
}

/// The largest `f` for which `graph` is `2f`-connected, i.e. for which the
/// efficient Algorithm 2 applies.
#[must_use]
pub fn max_f_efficient(graph: &Graph) -> usize {
    let mut best = 0;
    for f in 1..=graph.node_count() {
        if efficient_algorithm_applicable(graph, f) {
            best = f;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    #[test]
    fn requirement_formulas_match_the_paper() {
        // Local broadcast: ⌊3f/2⌋ + 1 and 2f.
        assert_eq!(local_broadcast_connectivity_requirement(0), 1);
        assert_eq!(local_broadcast_connectivity_requirement(1), 2);
        assert_eq!(local_broadcast_connectivity_requirement(2), 4);
        assert_eq!(local_broadcast_connectivity_requirement(3), 5);
        assert_eq!(local_broadcast_connectivity_requirement(4), 7);
        assert_eq!(local_broadcast_degree_requirement(3), 6);
        // Point-to-point: 2f + 1 and 3f + 1.
        assert_eq!(point_to_point_connectivity_requirement(2), 5);
        assert_eq!(point_to_point_node_requirement(2), 7);
        // Hybrid interpolates between the two.
        assert_eq!(hybrid_connectivity_requirement(3, 0), 5);
        assert_eq!(hybrid_connectivity_requirement(3, 3), 7);
        assert_eq!(hybrid_connectivity_requirement(3, 1), 6);
        assert_eq!(hybrid_connectivity_requirement(4, 2), 8);
    }

    #[test]
    fn hybrid_requirement_reduces_to_endpoints() {
        for f in 0..6 {
            assert_eq!(
                hybrid_connectivity_requirement(f, 0),
                local_broadcast_connectivity_requirement(f)
            );
            assert_eq!(
                hybrid_connectivity_requirement(f, f),
                point_to_point_connectivity_requirement(f)
            );
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn hybrid_requirement_rejects_t_above_f() {
        let _ = hybrid_connectivity_requirement(1, 2);
    }

    #[test]
    fn five_cycle_is_exactly_f1_under_local_broadcast() {
        let g = generators::paper_fig1a();
        assert!(local_broadcast_feasible(&g, 1));
        assert!(!local_broadcast_feasible(&g, 2));
        assert_eq!(max_f_local_broadcast(&g), 1);
        // The same cycle cannot tolerate any fault under point-to-point
        // (needs 3-connectivity and n ≥ 4).
        assert!(!point_to_point_feasible(&g, 1));
        assert_eq!(max_f_point_to_point(&g), 0);
    }

    #[test]
    fn circulant_c9_1_2_is_exactly_f2_under_local_broadcast() {
        let g = generators::paper_fig1b();
        assert!(local_broadcast_feasible(&g, 2));
        assert!(!local_broadcast_feasible(&g, 3));
        assert_eq!(max_f_local_broadcast(&g), 2);
        // Under point-to-point the same graph only tolerates f = 1
        // (it is 4-connected, so 2f+1 ≤ 4 gives f ≤ 1).
        assert_eq!(max_f_point_to_point(&g), 1);
    }

    #[test]
    fn complete_graphs_match_known_thresholds() {
        // K_{2f+1} suffices under local broadcast (global broadcast reduces
        // to n ≥ 2f + 1), while point-to-point needs K_{3f+1}.
        for f in 1..=3usize {
            let k = generators::complete(2 * f + 1);
            assert!(local_broadcast_feasible(&k, f), "K_{} for f={f}", 2 * f + 1);
            assert!(!point_to_point_feasible(&k, f));
            let k_big = generators::complete(3 * f + 1);
            assert!(point_to_point_feasible(&k_big, f));
        }
    }

    #[test]
    fn efficient_condition_is_2f_connectivity() {
        let cycle = generators::cycle(5);
        assert!(efficient_algorithm_applicable(&cycle, 1));
        assert!(!efficient_algorithm_applicable(&cycle, 2));
        let c9 = generators::circulant(9, &[1, 2]);
        assert!(efficient_algorithm_applicable(&c9, 2));
        assert_eq!(max_f_efficient(&c9), 2);
        assert_eq!(max_f_efficient(&cycle), 1);
    }

    #[test]
    fn f_zero_only_needs_connectivity() {
        let path = generators::path_graph(4);
        assert!(local_broadcast_feasible(&path, 0));
        assert!(point_to_point_feasible(&path, 0));
        assert!(hybrid_feasible(&path, 0, 0));
        let disconnected = Graph::from_edge_indices(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!local_broadcast_feasible(&disconnected, 0));
    }

    #[test]
    fn deficient_graphs_fail_exactly_one_condition() {
        let f = 2;
        let low_conn = generators::deficient_connectivity(f, f + 1);
        assert!(!local_broadcast_feasible(&low_conn, f));
        assert!(low_conn.min_degree() >= 2 * f);

        let f = 3;
        let low_deg = generators::deficient_degree(f, 2 * f + 3);
        assert!(!local_broadcast_feasible(&low_deg, f));
        assert!(connectivity::is_k_connected(
            &low_deg,
            local_broadcast_connectivity_requirement(f)
        ));
    }

    #[test]
    fn hybrid_feasibility_on_complete_graphs() {
        // K7 tolerates f = 2 with any t under the hybrid model: for t = 2 it
        // is the point-to-point bound (n = 3f+1 = 7, κ = 6 ≥ 5); for t = 0 it
        // is the local broadcast bound.
        let k7 = generators::complete(7);
        for t in 0..=2 {
            assert!(hybrid_feasible(&k7, 2, t), "K7, f=2, t={t}");
        }
        // K5 tolerates f = 2 only without equivocation.
        let k5 = generators::complete(5);
        assert!(hybrid_feasible(&k5, 2, 0));
        assert!(!hybrid_feasible(&k5, 2, 1));
    }

    #[test]
    fn hybrid_condition_iii_checks_set_neighborhoods() {
        // The 7-node wheel: hub 0 plus 6-cycle. Each rim node has 3 neighbors,
        // so for f = 1, t = 1 condition (iii) (every small S has ≥ 3 neighbors)
        // holds only for... the hub has 6. Rim nodes have 3 ≥ 3, so (iii) holds;
        // but connectivity is 3 < ⌊0⌋ + 2 + 1 = 3, so κ requirement holds too.
        let w = generators::wheel(7);
        assert!(hybrid_feasible(&w, 1, 1));
        // f = 2, t = 1 needs every single node to have ≥ 5 neighbors: rim
        // nodes fail.
        assert!(!hybrid_feasible(&w, 2, 1));
    }

    use lbc_graph::Graph;
}
