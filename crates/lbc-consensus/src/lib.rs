//! # lbc-consensus
//!
//! Exact Byzantine consensus under the local broadcast model — the primary
//! contribution of Khan, Naqvi and Vaidya (PODC 2019) — together with the
//! hybrid-model extension and a classical point-to-point baseline.
//!
//! ## What is here
//!
//! * [`conditions`] — executable versions of the paper's feasibility
//!   characterizations: Theorem 4.1/5.1 (local broadcast), Theorem 5.6
//!   (`2f`-connectivity for the efficient algorithm), Theorem 6.1 (hybrid
//!   model), and the classical Dolev condition for point-to-point.
//! * [`flooding`] — the path-annotated flooding sub-protocol with the
//!   equivocation-suppressing forwarding rules (i)–(iv) of Algorithm 1,
//!   implemented as a three-engine verification ladder: the production
//!   [`flooding::LedgerFlooder`] on the shared flood fabric, the per-node
//!   [`flooding::Flooder`] control, and the pre-interning
//!   [`flooding::NaiveFlooder`] reference.
//! * [`Algorithm1Node`] — the exponential-phase consensus algorithm of
//!   Theorem 5.1 (one phase per candidate fault set `F`, `|F| ≤ f`).
//! * [`Algorithm2Node`] — the efficient `O(n)`-round algorithm of Theorem 5.6
//!   for `2f`-connected graphs (reliable receive, reporting, fault
//!   identification, type A/B decision).
//! * [`Algorithm3Node`] — the hybrid-model algorithm of Theorem 6.1 (phases
//!   over pairs `(F, T)` of non-equivocating and equivocating candidates).
//! * [`AsyncFloodNode`] — the asynchronous-regime algorithm (cf.
//!   arXiv:1909.02865): event-driven flood-and-decide for
//!   `(2f + 1)`-connected graphs, with its decision horizon placed against
//!   the regime's eventual-fairness bound.
//! * [`p2p`] — the point-to-point baseline: reliable pairwise channels via
//!   Dolev-style relay over `2f+1` disjoint paths plus Phase-King agreement
//!   (requires `n ≥ 3f+1` and `2f+1`-connectivity).
//! * [`runner`] — glue that executes any of the above inside the `lbc-sim`
//!   network with an adversary and produces a judged
//!   [`lbc_model::ConsensusOutcome`].
//!
//! ## Quickstart
//!
//! ```
//! use lbc_consensus::{conditions, runner, AlgorithmKind};
//! use lbc_graph::generators;
//! use lbc_model::{InputAssignment, NodeSet, Value};
//! use lbc_sim::HonestAdversary;
//!
//! // Figure 1(a): the 5-cycle tolerates f = 1 under local broadcast.
//! let graph = generators::paper_fig1a();
//! assert!(conditions::local_broadcast_feasible(&graph, 1));
//!
//! let inputs = InputAssignment::from_bits(5, 0b01101);
//! let faulty = NodeSet::new();
//! let (outcome, _trace) = runner::run_kind(
//!     AlgorithmKind::Algorithm1,
//!     &graph,
//!     1,
//!     &inputs,
//!     &faulty,
//!     &mut HonestAdversary,
//! );
//! assert!(outcome.verdict().is_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithm1;
mod algorithm2;
mod algorithm3;
mod asyncflood;
pub mod conditions;
pub mod flooding;
mod messages;
pub mod p2p;
mod phased;
pub mod runner;

pub use algorithm1::Algorithm1Node;
pub use algorithm2::Algorithm2Node;
pub use algorithm3::Algorithm3Node;
pub use asyncflood::AsyncFloodNode;
pub use messages::{Alg2Message, DecisionMsg, FloodMsg, ReportMsg};
pub use phased::StepCCase;
pub use runner::{AlgorithmKind, InstanceResult};
