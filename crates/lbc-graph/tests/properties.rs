//! Property-based tests for the graph substrate: Menger-style consistency
//! between connectivity, disjoint paths, and cuts on randomly generated
//! graphs.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use lbc_graph::{connectivity, cuts, generators, paths, Graph};
use lbc_model::{NodeId, NodeSet};

/// A random connected-ish graph: G(n, p) seeded deterministically.
fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generators::random_gnp(n, p, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vertex connectivity never exceeds the minimum degree, and
    /// `is_k_connected` agrees with the computed connectivity.
    #[test]
    fn connectivity_vs_min_degree(n in 4usize..10, p in 0.3f64..0.9, seed in 0u64..500) {
        let g = random_graph(n, p, seed);
        let kappa = connectivity::vertex_connectivity(&g);
        if g.is_connected() && n >= 2 {
            prop_assert!(kappa <= g.min_degree());
        }
        prop_assert!(connectivity::is_k_connected(&g, kappa) || kappa == 0);
        prop_assert!(!connectivity::is_k_connected(&g, kappa + 1) || kappa + 1 >= n);
    }

    /// Menger: between any two distinct nodes of a connected graph there are
    /// at least `κ(G)` internally disjoint paths, and the returned family is
    /// genuinely disjoint and genuinely made of graph paths.
    #[test]
    fn menger_disjoint_path_family(n in 4usize..9, p in 0.4f64..0.9, seed in 0u64..500) {
        let g = random_graph(n, p, seed);
        prop_assume!(g.is_connected());
        let kappa = connectivity::vertex_connectivity(&g);
        let u = NodeId::new(0);
        let v = NodeId::new(n - 1);
        let family = paths::disjoint_uv_paths_excluding(&g, u, v, &NodeSet::new(), usize::MAX);
        prop_assert!(family.len() >= kappa);
        for path in &family {
            prop_assert!(g.is_path(path));
            prop_assert_eq!(path.first(), Some(u));
            prop_assert_eq!(path.last(), Some(v));
        }
        for (i, a) in family.iter().enumerate() {
            for b in &family[i + 1..] {
                prop_assert!(a.internally_disjoint(b));
            }
        }
    }

    /// A minimum uv-separator disconnects u from v, has size equal to the
    /// number of disjoint paths, and never contains u or v.
    #[test]
    fn min_separator_matches_disjoint_paths(n in 5usize..9, p in 0.3f64..0.8, seed in 0u64..500) {
        let g = random_graph(n, p, seed);
        let u = NodeId::new(0);
        let v = NodeId::new(n - 1);
        prop_assume!(!g.has_edge(u, v));
        let count = paths::max_disjoint_uv_paths(&g, u, v, usize::MAX);
        let separator = connectivity::min_uv_separator(&g, u, v).unwrap();
        prop_assert_eq!(separator.len(), count);
        prop_assert!(!separator.contains(u) && !separator.contains(v));
        // After removing the separator, v is unreachable from u.
        let reach = g.reachable_from(u, &separator);
        prop_assert!(!reach.contains(v));
    }

    /// `path_excluding` returns a valid path that excludes the set, whenever
    /// it returns anything; and it always succeeds when the excluded set is
    /// empty and the graph is connected.
    #[test]
    fn path_excluding_is_sound(n in 4usize..10, p in 0.3f64..0.9, seed in 0u64..500, excl_bits in 0u16..64) {
        let g = random_graph(n, p, seed);
        let u = NodeId::new(0);
        let v = NodeId::new(n - 1);
        let exclude: NodeSet = (0..n)
            .filter(|i| excl_bits & (1 << i) != 0)
            .map(NodeId::new)
            .collect();
        if let Some(path) = paths::path_excluding(&g, u, v, &exclude) {
            prop_assert!(g.is_path(&path));
            prop_assert!(path.excludes(&exclude));
            prop_assert_eq!(path.first(), Some(u));
            prop_assert_eq!(path.last(), Some(v));
        }
        if g.is_connected() {
            prop_assert!(paths::path_excluding(&g, u, v, &NodeSet::new()).is_some());
        }
    }

    /// Set-to-node disjoint paths: distinct sources, shared endpoint only,
    /// exclusion respected.
    #[test]
    fn set_to_node_paths_are_disjoint(n in 5usize..9, p in 0.4f64..0.9, seed in 0u64..500) {
        let g = random_graph(n, p, seed);
        prop_assume!(g.is_connected());
        let v = NodeId::new(0);
        let sources: NodeSet = (1..n).map(NodeId::new).collect();
        let family = paths::disjoint_set_to_node_paths(&g, &sources, v, &NodeSet::new(), usize::MAX);
        prop_assert!(!family.is_empty());
        for path in &family {
            prop_assert!(g.is_path(path));
            prop_assert!(sources.contains(path.first().unwrap()));
            prop_assert_eq!(path.last(), Some(v));
        }
        for (i, a) in family.iter().enumerate() {
            for b in &family[i + 1..] {
                prop_assert!(a.disjoint_except_endpoint(b, v));
            }
        }
        // The fan size is at least the local structure allows: at least
        // min(degree of v, 1).
        prop_assert!(family.len() >= 1.min(g.degree(v)));
    }

    /// Harary graphs hit their design connectivity exactly, for every valid
    /// (k, n) pair in the sampled range.
    #[test]
    fn harary_is_exactly_k_connected(k in 1usize..6, extra in 1usize..6) {
        let n = k + 1 + extra;
        let g = generators::harary(k, n);
        prop_assert!(g.min_degree() >= k);
        prop_assert_eq!(connectivity::vertex_connectivity(&g), k);
    }

    /// The neighborhood of a set never intersects the set, and every
    /// neighborhood member has an edge into the set.
    #[test]
    fn set_neighborhood_is_a_frontier(n in 4usize..10, p in 0.2f64..0.9, seed in 0u64..500, bits in 0u16..256) {
        let g = random_graph(n, p, seed);
        let s: NodeSet = (0..n)
            .filter(|i| bits & (1 << i) != 0)
            .map(NodeId::new)
            .collect();
        let frontier = g.neighborhood_of_set(&s);
        prop_assert!(frontier.is_disjoint(&s));
        for w in frontier.iter() {
            prop_assert!(g.neighbors(w).any(|x| s.contains(x)));
        }
    }

    /// The cut partition returned for a disconnecting set is valid, and the
    /// minimum cut's size equals the vertex connectivity for non-complete
    /// connected graphs.
    #[test]
    fn min_cut_partition_is_consistent(n in 5usize..9, p in 0.3f64..0.8, seed in 0u64..500) {
        let g = random_graph(n, p, seed);
        prop_assume!(g.is_connected());
        let kappa = connectivity::vertex_connectivity(&g);
        prop_assume!(kappa < n - 1); // not complete
        let partition = cuts::min_cut_partition(&g).unwrap();
        prop_assert!(partition.is_valid(&g));
        prop_assert_eq!(partition.cut.len(), kappa);
        prop_assert!(g.disconnects(&partition.cut));
    }

    /// Random "satisfying" graphs really satisfy the paper's conditions.
    #[test]
    fn random_satisfying_satisfies(f in 1usize..4, extra in 1usize..4, seed in 0u64..200) {
        let n = 2 * f + 1 + extra;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::random_satisfying(n, f, 0.3, &mut rng);
        prop_assert!(g.min_degree() >= 2 * f);
        prop_assert!(connectivity::is_k_connected(&g, (3 * f) / 2 + 1));
    }
}
