//! Vertex connectivity and minimum vertex cuts.
//!
//! The paper's conditions are stated in terms of `k`-connectivity: a graph
//! `G` is `k`-connected if `n > k` and removing fewer than `k` nodes never
//! disconnects it. By Menger's theorem this is equivalent to every pair of
//! nodes being joined by `k` node-disjoint paths, which is how we compute it
//! (unit-capacity max-flow on the vertex-split graph).

use lbc_model::{NodeId, NodeSet};

use crate::maxflow::FlowNetwork;
use crate::paths;
use crate::Graph;

/// The local connectivity `κ(u, v)`: the maximum number of pairwise
/// internally-disjoint `uv`-paths. For adjacent nodes the direct edge counts
/// as one path.
#[must_use]
pub fn local_connectivity(graph: &Graph, u: NodeId, v: NodeId) -> usize {
    paths::max_disjoint_uv_paths(graph, u, v, usize::MAX)
}

/// The vertex connectivity `κ(G)`.
///
/// * For a complete graph on `n` nodes this is `n − 1`.
/// * For a disconnected graph (or `n ≤ 1`) it is `0`.
/// * Otherwise it is the minimum over non-adjacent pairs of the local
///   connectivity, per Menger's theorem.
#[must_use]
pub fn vertex_connectivity(graph: &Graph) -> usize {
    let n = graph.node_count();
    if n == 0 {
        return 0;
    }
    if n == 1 {
        return 0;
    }
    if !graph.is_connected() {
        return 0;
    }
    let mut best: Option<usize> = None;
    for u in graph.nodes() {
        for v in graph.nodes() {
            if u < v && !graph.has_edge(u, v) {
                let limit = best.unwrap_or(usize::MAX);
                let k = paths::max_disjoint_uv_paths(graph, u, v, limit.saturating_add(1));
                best = Some(best.map_or(k, |b| b.min(k)));
            }
        }
    }
    // Complete graph: no non-adjacent pair exists.
    best.unwrap_or(n - 1)
}

/// Whether `G` is `k`-connected: `n > k` and no set of fewer than `k` nodes
/// disconnects `G`.
///
/// `is_k_connected(g, 0)` is true for every non-empty graph and
/// `is_k_connected(g, 1)` means "connected with at least 2 nodes".
#[must_use]
pub fn is_k_connected(graph: &Graph, k: usize) -> bool {
    let n = graph.node_count();
    if n <= k {
        return false;
    }
    if k == 0 {
        return true;
    }
    if !graph.is_connected() {
        return false;
    }
    if k == 1 {
        return true;
    }
    // Early-exit variant of vertex_connectivity: every non-adjacent pair must
    // have at least k disjoint paths.
    for u in graph.nodes() {
        for v in graph.nodes() {
            if u < v && !graph.has_edge(u, v) {
                let found = paths::max_disjoint_uv_paths(graph, u, v, k);
                if found < k {
                    return false;
                }
            }
        }
    }
    true
}

/// A minimum `uv`-separator for a non-adjacent pair `u, v`: a smallest set of
/// nodes (containing neither `u` nor `v`) whose removal disconnects `u` from
/// `v`.
///
/// Returns `None` if `u` and `v` are adjacent or equal (no separator exists).
#[must_use]
pub fn min_uv_separator(graph: &Graph, u: NodeId, v: NodeId) -> Option<NodeSet> {
    if u == v || graph.has_edge(u, v) {
        return None;
    }
    let n = graph.node_count();
    let mut net = FlowNetwork::new(2 * n);
    let big = n as i64 + 1;
    for w in graph.nodes() {
        let capacity = if w == u || w == v { big } else { 1 };
        net.add_edge(2 * w.index(), 2 * w.index() + 1, capacity);
    }
    // Edge arcs get "infinite" capacity so that every minimum cut consists of
    // vertex-split arcs only, which is what identifies a *vertex* separator.
    for (a, b) in graph.edges() {
        net.add_edge(2 * a.index() + 1, 2 * b.index(), big);
        net.add_edge(2 * b.index() + 1, 2 * a.index(), big);
    }
    let source = 2 * u.index() + 1;
    let sink = 2 * v.index();
    net.max_flow(source, sink, i64::MAX);
    let reachable = net.residual_reachable(source);
    // A vertex w is in the minimum cut exactly when its split arc w_in → w_out
    // crosses the residual cut: w_in reachable, w_out not.
    let cut: NodeSet = graph
        .nodes()
        .filter(|&w| w != u && w != v)
        .filter(|&w| reachable[2 * w.index()] && !reachable[2 * w.index() + 1])
        .collect();
    Some(cut)
}

/// A global minimum vertex cut of `G`: a smallest node set whose removal
/// disconnects the graph, together with its size.
///
/// Returns `None` for complete graphs and graphs with fewer than 2 nodes
/// (they have no vertex cut). For a disconnected graph the cut is empty.
#[must_use]
pub fn min_vertex_cut(graph: &Graph) -> Option<NodeSet> {
    let n = graph.node_count();
    if n < 2 {
        return None;
    }
    if !graph.is_connected() {
        return Some(NodeSet::new());
    }
    let mut best: Option<NodeSet> = None;
    for u in graph.nodes() {
        for v in graph.nodes() {
            if u < v && !graph.has_edge(u, v) {
                if let Some(cut) = min_uv_separator(graph, u, v) {
                    let better = best.as_ref().is_none_or(|b| cut.len() < b.len());
                    if better {
                        best = Some(cut);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn cycle_is_two_connected() {
        let g = generators::cycle(5);
        assert_eq!(vertex_connectivity(&g), 2);
        assert!(is_k_connected(&g, 2));
        assert!(!is_k_connected(&g, 3));
    }

    #[test]
    fn complete_graph_connectivity_is_n_minus_one() {
        for size in 2..7 {
            let g = generators::complete(size);
            assert_eq!(vertex_connectivity(&g), size - 1);
            assert!(is_k_connected(&g, size - 1));
            assert!(!is_k_connected(&g, size));
        }
    }

    #[test]
    fn path_graph_is_one_connected() {
        let g = generators::path_graph(5);
        assert_eq!(vertex_connectivity(&g), 1);
        assert!(is_k_connected(&g, 1));
        assert!(!is_k_connected(&g, 2));
    }

    #[test]
    fn disconnected_graph_has_zero_connectivity() {
        let g = Graph::from_edge_indices(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(vertex_connectivity(&g), 0);
        assert!(!is_k_connected(&g, 1));
        assert_eq!(min_vertex_cut(&g), Some(NodeSet::new()));
    }

    #[test]
    fn circulant_c9_1_2_is_four_connected() {
        let g = generators::circulant(9, &[1, 2]);
        assert_eq!(vertex_connectivity(&g), 4);
        assert!(is_k_connected(&g, 4));
        assert!(!is_k_connected(&g, 5));
    }

    #[test]
    fn hypercube_connectivity_equals_dimension() {
        let g = generators::hypercube(3);
        assert_eq!(vertex_connectivity(&g), 3);
    }

    #[test]
    fn harary_graph_achieves_design_connectivity() {
        for (k, size) in [(2, 7), (3, 8), (4, 9), (5, 10)] {
            let g = generators::harary(k, size);
            assert_eq!(
                vertex_connectivity(&g),
                k,
                "H_{{{k},{size}}} should be exactly {k}-connected"
            );
        }
    }

    #[test]
    fn local_connectivity_of_adjacent_nodes_counts_direct_edge() {
        let g = generators::cycle(4);
        assert_eq!(local_connectivity(&g, n(0), n(1)), 2);
        assert_eq!(local_connectivity(&g, n(0), n(2)), 2);
    }

    #[test]
    fn min_uv_separator_on_cycle() {
        let g = generators::cycle(5);
        let cut = min_uv_separator(&g, n(0), n(2)).unwrap();
        assert_eq!(cut.len(), 2);
        assert!(g.disconnects(&cut));
        // Adjacent pairs have no separator.
        assert!(min_uv_separator(&g, n(0), n(1)).is_none());
    }

    #[test]
    fn min_vertex_cut_disconnects_the_graph() {
        let g = generators::cycle(6);
        let cut = min_vertex_cut(&g).unwrap();
        assert_eq!(cut.len(), 2);
        assert!(g.disconnects(&cut));

        let complete = generators::complete(4);
        assert!(min_vertex_cut(&complete).is_none());
    }

    #[test]
    fn barbell_graph_has_cut_vertex() {
        // Two triangles joined at a single node 3.
        let g = Graph::from_edge_indices(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 4),
            ],
        )
        .unwrap();
        assert_eq!(vertex_connectivity(&g), 1);
        let cut = min_vertex_cut(&g).unwrap();
        assert_eq!(cut.len(), 1);
        assert!(g.disconnects(&cut));
    }
}
