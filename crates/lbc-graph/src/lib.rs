//! # lbc-graph
//!
//! Undirected-graph substrate for the local-broadcast Byzantine consensus
//! workspace.
//!
//! The paper's characterizations are stated purely in terms of graph
//! properties — minimum degree, vertex connectivity (`⌊3f/2⌋ + 1`), node
//! disjoint `uv`- and `Uv`-paths (Menger's theorem), neighborhoods of node
//! sets — so this crate provides:
//!
//! * [`Graph`] — a compact undirected graph with deterministic iteration,
//! * [`generators`] — the graph families used by the paper and the
//!   experiments (cycles, complete graphs, circulants, Harary graphs,
//!   hypercubes, wheels, random graphs, and the paper's Figure 1 examples),
//! * [`connectivity`] — vertex connectivity, `is_k_connected`, minimum vertex
//!   cuts (Even–Tarjan style, built on unit-capacity max-flow with vertex
//!   splitting),
//! * [`paths`] — BFS paths, paths excluding a node set, and maximum sets of
//!   node-disjoint `uv`-paths / `Uv`-paths with the actual paths recovered,
//! * [`cuts`] — neighborhoods of node sets, separator extraction and cut
//!   partitions used by the lower-bound constructions,
//! * [`combinatorics`] — enumeration of candidate fault sets
//!   (`F ⊆ V`, `|F| ≤ f`) and the partitions used in Appendix A/D.
//!
//! # Example
//!
//! ```
//! use lbc_graph::{generators, connectivity};
//!
//! // Figure 1(a): the 5-cycle satisfies the paper's conditions for f = 1.
//! let g = generators::cycle(5);
//! assert_eq!(g.min_degree(), 2);
//! assert_eq!(connectivity::vertex_connectivity(&g), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod combinatorics;
pub mod connectivity;
pub mod cuts;
pub mod generators;
mod graph;
mod maxflow;
pub mod paths;

pub use graph::{Graph, GraphError};
