//! The undirected communication graph.

use std::collections::BTreeSet;
use std::fmt;

use lbc_model::{NodeId, NodeSet, Path, PathArena, PathId};

/// Errors produced when constructing or mutating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// A self-loop `uu` was supplied; the model's graphs are simple.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(
                    f,
                    "edge endpoint {node} is out of range for a graph on {n} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at {node} is not allowed in a simple graph")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected simple graph on nodes `0..n`, the communication network `G`
/// of the paper.
///
/// Adjacency is stored as a sorted set per node so that neighbor iteration is
/// deterministic, which keeps simulation traces reproducible.
///
/// # Example
///
/// ```
/// use lbc_graph::Graph;
/// use lbc_model::NodeId;
///
/// let g = Graph::from_edge_indices(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert_eq!(g.degree(NodeId::new(2)), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adjacency: Vec<BTreeSet<NodeId>>,
}

impl Graph {
    /// Creates an empty graph (no edges) on `n` nodes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Graph {
            n,
            adjacency: vec![BTreeSet::new(); n],
        }
    }

    /// Creates a graph on `n` nodes from an iterator of edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] for an edge `uu`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut graph = Graph::empty(n);
        for (u, v) in edges {
            graph.add_edge(u, v)?;
        }
        Ok(graph)
    }

    /// Creates a graph on `n` nodes from an iterator of `usize` index pairs.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::from_edges`].
    pub fn from_edge_indices<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        Self::from_edges(
            n,
            edges
                .into_iter()
                .map(|(u, v)| (NodeId::new(u), NodeId::new(v))),
        )
    }

    /// Adds the undirected edge `uv`. Adding an existing edge is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.adjacency[u.index()].insert(v);
        self.adjacency[v.index()].insert(u);
        Ok(())
    }

    /// Removes the undirected edge `uv` if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.n || v.index() >= self.n {
            return false;
        }
        let a = self.adjacency[u.index()].remove(&v);
        let b = self.adjacency[v.index()].remove(&u);
        a && b
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Iterates over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }

    /// The full node set `V`.
    #[must_use]
    pub fn node_set(&self) -> NodeSet {
        NodeSet::full(self.n)
    }

    /// Whether `node` is a valid node of this graph.
    #[must_use]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.n
    }

    /// Whether the undirected edge `uv` exists.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.n && self.adjacency[u.index()].contains(&v)
    }

    /// Iterates over the neighbors of `node` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[node.index()].iter().copied()
    }

    /// The neighbors of `node` as a [`NodeSet`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn neighbor_set(&self, node: NodeId) -> NodeSet {
        self.neighbors(node).collect()
    }

    /// The degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// The minimum degree over all nodes. Returns `0` for the empty graph.
    #[must_use]
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// The maximum degree over all nodes. Returns `0` for the empty graph.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Whether `path` is a path of this graph: consecutive nodes are
    /// adjacent, all nodes are valid, and no node repeats.
    ///
    /// Single-node paths are valid; the empty path is valid (it is the `⊥`
    /// used to initiate flooding).
    #[must_use]
    pub fn is_path(&self, path: &Path) -> bool {
        let nodes = path.nodes();
        if nodes.iter().any(|&v| !self.contains_node(v)) {
            return false;
        }
        if path.has_repeated_node() {
            return false;
        }
        nodes.windows(2).all(|w| self.has_edge(w[0], w[1]))
    }

    /// Whether the interned path `id` is a path of this graph — the
    /// arena-native counterpart of [`Graph::is_path`], used by the flood
    /// engine's rule (i) without resolving the path into a `Vec`.
    ///
    /// Walks the arena's parent chain once: consecutive nodes must be
    /// adjacent, all nodes valid, and no node may repeat (the arena memoizes
    /// simplicity per entry, so the repeat check is O(1)).
    #[must_use]
    pub fn is_arena_path(&self, arena: &PathArena, id: PathId) -> bool {
        if !arena.is_simple(id) {
            return false;
        }
        let Some((mut prefix, mut current)) = arena.step(id) else {
            return true; // the empty path ⊥
        };
        if !self.contains_node(current) {
            return false;
        }
        while let Some((parent, node)) = arena.step(prefix) {
            if !self.contains_node(node) || !self.has_edge(node, current) {
                return false;
            }
            current = node;
            prefix = parent;
        }
        true
    }

    /// The neighborhood of a node set `S`: nodes *outside* `S` that have an
    /// edge to some node in `S` (the paper's "neighbors of set S").
    #[must_use]
    pub fn neighborhood_of_set(&self, s: &NodeSet) -> NodeSet {
        let mut out = NodeSet::new();
        for u in s.iter() {
            for v in self.neighbors(u) {
                if !s.contains(v) {
                    out.insert(v);
                }
            }
        }
        out
    }

    /// Returns the subgraph induced on `V \ removed`, keeping the original
    /// node identifiers (removed nodes become isolated and are reported in
    /// the returned mask).
    ///
    /// Most algorithms in this workspace need "G with a set of nodes deleted"
    /// while still speaking the original node ids, so rather than renumbering
    /// we return a same-size graph whose removed nodes have no edges, plus
    /// the set of remaining nodes.
    #[must_use]
    pub fn without_nodes(&self, removed: &NodeSet) -> (Graph, NodeSet) {
        let mut g = Graph::empty(self.n);
        for (u, v) in self.edges() {
            if !removed.contains(u) && !removed.contains(v) {
                g.add_edge(u, v).expect("edge endpoints validated by self");
            }
        }
        let remaining = removed.complement(self.n);
        (g, remaining)
    }

    /// Breadth-first search from `source`, restricted to nodes not in
    /// `forbidden`; returns the set of reachable nodes (including `source`
    /// when it is not forbidden).
    #[must_use]
    pub fn reachable_from(&self, source: NodeId, forbidden: &NodeSet) -> NodeSet {
        let mut visited = NodeSet::new();
        if forbidden.contains(source) || !self.contains_node(source) {
            return visited;
        }
        let mut queue = std::collections::VecDeque::new();
        visited.insert(source);
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if !forbidden.contains(v) && visited.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        visited
    }

    /// Whether the graph is connected. The empty graph and single-node graph
    /// are connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let reach = self.reachable_from(NodeId::new(0), &NodeSet::new());
        reach.len() == self.n
    }

    /// The connected components of the graph, each as a [`NodeSet`], in
    /// ascending order of their smallest node.
    #[must_use]
    pub fn components(&self) -> Vec<NodeSet> {
        let mut seen = NodeSet::new();
        let mut components = Vec::new();
        for v in self.nodes() {
            if !seen.contains(v) {
                let comp = self.reachable_from(v, &NodeSet::new());
                seen.extend(comp.iter());
                components.push(comp);
            }
        }
        components
    }

    /// Whether removing the node set `cut` disconnects the remaining nodes
    /// (or leaves fewer than two of them).
    #[must_use]
    pub fn disconnects(&self, cut: &NodeSet) -> bool {
        let remaining: Vec<NodeId> = self.nodes().filter(|v| !cut.contains(*v)).collect();
        if remaining.len() <= 1 {
            return false;
        }
        let reach = self.reachable_from(remaining[0], cut);
        reach.len() != remaining.len()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.edge_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn c5() -> Graph {
        Graph::from_edge_indices(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = c5();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.min_degree(), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.to_string(), "Graph(n=5, m=5)");
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let g = Graph::from_edge_indices(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn out_of_range_and_self_loops_are_rejected() {
        assert!(matches!(
            Graph::from_edge_indices(3, [(0, 3)]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            Graph::from_edge_indices(3, [(1, 1)]),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn remove_edge_works() {
        let mut g = c5();
        assert!(g.remove_edge(n(0), n(1)));
        assert!(!g.remove_edge(n(0), n(1)));
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(n(0)), 1);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edge_indices(5, [(2, 4), (2, 0), (2, 3)]).unwrap();
        let ns: Vec<usize> = g.neighbors(n(2)).map(NodeId::index).collect();
        assert_eq!(ns, vec![0, 3, 4]);
        assert_eq!(g.neighbor_set(n(2)).len(), 3);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = c5();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn is_path_checks_adjacency_and_repeats() {
        let g = c5();
        let ok = Path::from_nodes([n(0), n(1), n(2)]);
        let not_adjacent = Path::from_nodes([n(0), n(2)]);
        let repeated = Path::from_nodes([n(0), n(1), n(0)]);
        let out_of_range = Path::from_nodes([n(0), n(7)]);
        assert!(g.is_path(&ok));
        assert!(!g.is_path(&not_adjacent));
        assert!(!g.is_path(&repeated));
        assert!(!g.is_path(&out_of_range));
        assert!(g.is_path(&Path::empty()));
        assert!(g.is_path(&Path::singleton(n(3))));
    }

    #[test]
    fn is_arena_path_agrees_with_is_path() {
        let g = c5();
        let mut arena = PathArena::new();
        let cases: &[&[usize]] = &[
            &[],
            &[3],
            &[0, 1, 2],
            &[0, 2],
            &[0, 1, 0],
            &[0, 7],
            &[4, 0, 1, 2, 3],
        ];
        for nodes in cases {
            let path = Path::from_nodes(nodes.iter().map(|&i| n(i)));
            let id = arena.intern(&path);
            assert_eq!(
                g.is_arena_path(&arena, id),
                g.is_path(&path),
                "disagreement on {path}"
            );
        }
    }

    #[test]
    fn neighborhood_of_set_excludes_the_set() {
        let g = c5();
        let s: NodeSet = [n(0), n(1)].into_iter().collect();
        let nb = g.neighborhood_of_set(&s);
        assert_eq!(nb, [n(2), n(4)].into_iter().collect());
    }

    #[test]
    fn without_nodes_removes_incident_edges() {
        let g = c5();
        let removed = NodeSet::singleton(n(0));
        let (h, remaining) = g.without_nodes(&removed);
        assert_eq!(h.degree(n(0)), 0);
        assert_eq!(h.edge_count(), 3);
        assert_eq!(remaining.len(), 4);
    }

    #[test]
    fn connectivity_and_components() {
        let g = c5();
        assert!(g.is_connected());
        assert_eq!(g.components().len(), 1);

        let disconnected = Graph::from_edge_indices(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!disconnected.is_connected());
        assert_eq!(disconnected.components().len(), 2);

        assert!(Graph::empty(0).is_connected());
        assert!(Graph::empty(1).is_connected());
        assert!(!Graph::empty(2).is_connected());
    }

    #[test]
    fn disconnects_detects_cuts() {
        let g = c5();
        // Removing two non-adjacent nodes disconnects the 5-cycle.
        let cut: NodeSet = [n(1), n(3)].into_iter().collect();
        assert!(g.disconnects(&cut));
        // Removing a single node leaves a path, still connected.
        assert!(!g.disconnects(&NodeSet::singleton(n(1))));
        // Removing all but one node cannot "disconnect".
        let big: NodeSet = [n(0), n(1), n(2), n(3)].into_iter().collect();
        assert!(!g.disconnects(&big));
    }

    #[test]
    fn reachable_from_respects_forbidden_set() {
        let g = c5();
        let forbidden: NodeSet = [n(1), n(4)].into_iter().collect();
        let reach = g.reachable_from(n(0), &forbidden);
        assert_eq!(reach, NodeSet::singleton(n(0)));
        let reach2 = g.reachable_from(n(2), &forbidden);
        assert_eq!(reach2, [n(2), n(3)].into_iter().collect());
    }

    #[test]
    fn error_display() {
        let e = GraphError::NodeOutOfRange { node: n(5), n: 3 };
        assert!(e.to_string().contains("v5"));
        let e = GraphError::SelfLoop { node: n(2) };
        assert!(e.to_string().contains("self-loop"));
    }
}
