//! Path finding: BFS paths, paths excluding a node set, and maximum families
//! of node-disjoint `uv`-paths and `Uv`-paths (Menger's theorem made
//! executable).
//!
//! Terminology follows Section 3 of the paper:
//!
//! * a path **excludes** a set `X` if none of its *internal* nodes is in `X`
//!   (endpoints may be in `X`);
//! * two `uv`-paths are node-disjoint if they share no internal node;
//! * two `Uv`-paths are node-disjoint if they share no node other than the
//!   common endpoint `v` (in particular their `U`-side endpoints differ).

use std::collections::VecDeque;

use lbc_model::{NodeId, NodeSet, Path};

use crate::maxflow::FlowNetwork;
use crate::Graph;

/// Returns a shortest `uv`-path (by hop count), if one exists.
///
/// The path for `u == v` is the single-node path `[u]`.
#[must_use]
pub fn shortest_path(graph: &Graph, u: NodeId, v: NodeId) -> Option<Path> {
    path_excluding(graph, u, v, &NodeSet::new())
}

/// Returns a `uv`-path that *excludes* `exclude` (no internal node belongs to
/// `exclude`; the endpoints `u`, `v` may), if one exists. Shortest such path
/// by hop count.
///
/// This is the path `P_uv` selected in step (b) of Algorithms 1 and 3.
#[must_use]
pub fn path_excluding(graph: &Graph, u: NodeId, v: NodeId, exclude: &NodeSet) -> Option<Path> {
    if !graph.contains_node(u) || !graph.contains_node(v) {
        return None;
    }
    if u == v {
        return Some(Path::singleton(u));
    }
    if graph.has_edge(u, v) {
        return Some(Path::from_nodes([u, v]));
    }
    // BFS from u where every node except u and v must avoid `exclude`.
    let mut parent: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut visited = NodeSet::singleton(u);
    let mut queue = VecDeque::new();
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        for y in graph.neighbors(x) {
            if visited.contains(y) {
                continue;
            }
            if y == v {
                // Reconstruct u … x, then append v.
                let mut rev = vec![v, x];
                let mut cur = x;
                while let Some(p) = parent[cur.index()] {
                    rev.push(p);
                    cur = p;
                }
                rev.reverse();
                return Some(Path::from_nodes(rev));
            }
            if exclude.contains(y) {
                continue;
            }
            visited.insert(y);
            parent[y.index()] = Some(x);
            queue.push_back(y);
        }
    }
    None
}

/// The maximum number of pairwise node-disjoint (internally disjoint)
/// `uv`-paths, capped at `limit`.
///
/// If `u` and `v` are adjacent, the direct edge counts as one path.
#[must_use]
pub fn max_disjoint_uv_paths(graph: &Graph, u: NodeId, v: NodeId, limit: usize) -> usize {
    disjoint_uv_paths_excluding(graph, u, v, &NodeSet::new(), limit).len()
}

/// Returns a maximum family (capped at `limit`) of pairwise node-disjoint
/// `uv`-paths, each of which excludes `exclude` (no internal node in
/// `exclude`).
///
/// The returned paths all start at `u` and end at `v`.
#[must_use]
pub fn disjoint_uv_paths_excluding(
    graph: &Graph,
    u: NodeId,
    v: NodeId,
    exclude: &NodeSet,
    limit: usize,
) -> Vec<Path> {
    if u == v || !graph.contains_node(u) || !graph.contains_node(v) || limit == 0 {
        return Vec::new();
    }
    let n = graph.node_count();
    // Split graph: w_in = 2w, w_out = 2w + 1.
    let mut net = FlowNetwork::new(2 * n);
    let big = n as i64 + 1;
    let internal_forbidden = |w: NodeId| w != u && w != v && exclude.contains(w);
    for w in graph.nodes() {
        if internal_forbidden(w) {
            continue;
        }
        let capacity = if w == u || w == v { big } else { 1 };
        net.add_edge(2 * w.index(), 2 * w.index() + 1, capacity);
    }
    for (a, b) in graph.edges() {
        if internal_forbidden(a) || internal_forbidden(b) {
            continue;
        }
        net.add_edge(2 * a.index() + 1, 2 * b.index(), 1);
        net.add_edge(2 * b.index() + 1, 2 * a.index(), 1);
    }
    let source = 2 * u.index() + 1;
    let sink = 2 * v.index();
    let cap = i64::try_from(limit).unwrap_or(i64::MAX);
    let flow = net.max_flow(source, sink, cap);
    if flow == 0 {
        return Vec::new();
    }
    let raw = net.decompose_paths(source, sink);
    raw.into_iter()
        .map(|split_path| collapse_split_path(&split_path, None))
        .map(Path::from_nodes)
        .collect()
}

/// Returns a maximum family (capped at `limit`) of pairwise node-disjoint
/// `Uv`-paths from the source set `sources` to `v`, each of which excludes
/// `exclude`.
///
/// Following the paper's definition, two `Uv`-paths share no node except the
/// common endpoint `v`; in particular each source node is the endpoint of at
/// most one returned path. Source nodes that belong to `exclude` may still be
/// *endpoints* (this is exactly the situation in Lemma 5.5, where the nodes
/// of `A_v ∩ F` are chosen as path endpoints) but may not appear as internal
/// nodes of any path.
#[must_use]
pub fn disjoint_set_to_node_paths(
    graph: &Graph,
    sources: &NodeSet,
    v: NodeId,
    exclude: &NodeSet,
    limit: usize,
) -> Vec<Path> {
    if !graph.contains_node(v) || sources.is_empty() || limit == 0 {
        return Vec::new();
    }
    let n = graph.node_count();
    let mut net = FlowNetwork::new(2 * n + 1);
    let super_source = 2 * n;
    let big = n as i64 + 1;

    // A node is fully removed if it is excluded and is neither a source nor v.
    let removed = |w: NodeId| w != v && !sources.contains(w) && exclude.contains(w);
    // A node may serve only as a path endpoint (never internal) if it is an
    // excluded source.
    let endpoint_only = |w: NodeId| sources.contains(w) && exclude.contains(w);

    for w in graph.nodes() {
        if removed(w) {
            continue;
        }
        let capacity = if w == v { big } else { 1 };
        net.add_edge(2 * w.index(), 2 * w.index() + 1, capacity);
    }
    for (a, b) in graph.edges() {
        if removed(a) || removed(b) {
            continue;
        }
        // A node that is only allowed to be a path endpoint (an excluded
        // source) may be *entered* only from the super source; it may still
        // be *left* through its outgoing arcs.
        if !endpoint_only(b) {
            net.add_edge(2 * a.index() + 1, 2 * b.index(), 1);
        }
        if !endpoint_only(a) {
            net.add_edge(2 * b.index() + 1, 2 * a.index(), 1);
        }
    }
    for s in sources.iter() {
        if s == v || !graph.contains_node(s) {
            continue;
        }
        net.add_edge(super_source, 2 * s.index(), 1);
    }
    let sink = 2 * v.index();
    let cap = i64::try_from(limit).unwrap_or(i64::MAX);
    let flow = net.max_flow(super_source, sink, cap);
    if flow == 0 {
        return Vec::new();
    }
    let raw = net.decompose_paths(super_source, sink);
    raw.into_iter()
        .map(|split_path| collapse_split_path(&split_path, Some(super_source)))
        .map(Path::from_nodes)
        .collect()
}

/// The maximum number of node-disjoint `Uv`-paths from `sources` to `v`
/// excluding `exclude`, capped at `limit`.
#[must_use]
pub fn max_disjoint_set_to_node_paths(
    graph: &Graph,
    sources: &NodeSet,
    v: NodeId,
    exclude: &NodeSet,
    limit: usize,
) -> usize {
    disjoint_set_to_node_paths(graph, sources, v, exclude, limit).len()
}

/// Collapses a path through the split graph (alternating `w_in`, `w_out`
/// indices, optionally starting at a super source) back into graph nodes.
fn collapse_split_path(split_path: &[usize], super_source: Option<usize>) -> Vec<NodeId> {
    let mut nodes = Vec::new();
    for &idx in split_path {
        if Some(idx) == super_source {
            continue;
        }
        let node = NodeId::new(idx / 2);
        if nodes.last() != Some(&node) {
            nodes.push(node);
        }
    }
    nodes
}

/// Enumerates **all** simple `uv`-paths (including the trivial direct edge if
/// present). Exponential in general; intended for small graphs and tests.
#[must_use]
pub fn all_simple_paths(graph: &Graph, u: NodeId, v: NodeId) -> Vec<Path> {
    let mut result = Vec::new();
    if !graph.contains_node(u) || !graph.contains_node(v) {
        return result;
    }
    let mut stack = vec![u];
    let mut on_path = NodeSet::singleton(u);
    fn recurse(
        graph: &Graph,
        v: NodeId,
        stack: &mut Vec<NodeId>,
        on_path: &mut NodeSet,
        result: &mut Vec<Path>,
    ) {
        let current = *stack.last().expect("stack never empty during recursion");
        if current == v {
            result.push(Path::from_nodes(stack.iter().copied()));
            return;
        }
        for next in graph.neighbors(current) {
            if on_path.contains(next) {
                continue;
            }
            stack.push(next);
            on_path.insert(next);
            recurse(graph, v, stack, on_path, result);
            stack.pop();
            on_path.remove(next);
        }
    }
    if u == v {
        return vec![Path::singleton(u)];
    }
    recurse(graph, v, &mut stack, &mut on_path, &mut result);
    result
}

/// Exact backtracking search for `k` pairwise-compatible paths among an
/// explicit collection, where "compatible" is supplied by the caller.
///
/// Unlike the flow-based functions above, the candidate set here is an
/// arbitrary explicit list (the messages a node actually received), so we use
/// an exact search: order shortest-first and backtrack. The candidate lists
/// are small on the graph sizes the exponential algorithm is run on.
fn find_compatible_subset(
    candidates: &[Path],
    k: usize,
    compatible: impl Fn(&Path, &Path) -> bool,
) -> Option<Vec<Path>> {
    if k == 0 {
        return Some(Vec::new());
    }
    if candidates.len() < k {
        return None;
    }
    // Order shortest-first: short paths conflict with fewer others.
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by_key(|&i| candidates[i].len());

    fn search(
        candidates: &[Path],
        order: &[usize],
        compatible: &impl Fn(&Path, &Path) -> bool,
        k: usize,
        start: usize,
        chosen: &mut Vec<usize>,
    ) -> bool {
        if chosen.len() == k {
            return true;
        }
        if order.len() - start < k - chosen.len() {
            return false;
        }
        for pos in start..order.len() {
            let idx = order[pos];
            if chosen
                .iter()
                .any(|&c| !compatible(&candidates[c], &candidates[idx]))
            {
                continue;
            }
            chosen.push(idx);
            if search(candidates, order, compatible, k, pos + 1, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }

    let mut chosen = Vec::new();
    if search(candidates, &order, &compatible, k, 0, &mut chosen) {
        Some(chosen.into_iter().map(|i| candidates[i].clone()).collect())
    } else {
        None
    }
}

/// Searches the explicit candidate collection for `k` pairwise node-disjoint
/// `Uv`-paths sharing only the endpoint `shared_endpoint` (the `A_v v`-path
/// check of Algorithm 1 / Algorithm 3 step (c)).
///
/// Returns a witness family of `k` pairwise disjoint paths if one exists.
#[must_use]
pub fn find_disjoint_subset(
    candidates: &[Path],
    shared_endpoint: NodeId,
    k: usize,
) -> Option<Vec<Path>> {
    find_compatible_subset(candidates, k, |a, b| {
        a.disjoint_except_endpoint(b, shared_endpoint)
    })
}

/// Searches the explicit candidate collection for `k` pairwise *internally*
/// disjoint `uv`-paths (they may share both endpoints) — the "reliably
/// received along `f+1` node-disjoint `uv`-paths" check of Definition C.1.
///
/// Returns a witness family of `k` pairwise internally disjoint paths if one
/// exists.
#[must_use]
pub fn find_internally_disjoint_subset(candidates: &[Path], k: usize) -> Option<Vec<Path>> {
    find_compatible_subset(candidates, k, Path::internally_disjoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn set(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| n(i)).collect()
    }

    #[test]
    fn shortest_path_on_cycle() {
        let g = generators::cycle(5);
        let p = shortest_path(&g, n(0), n(2)).unwrap();
        assert_eq!(p.nodes(), &[n(0), n(1), n(2)]);
        assert_eq!(
            shortest_path(&g, n(3), n(3)).unwrap(),
            Path::singleton(n(3))
        );
    }

    #[test]
    fn path_excluding_avoids_internal_nodes_only() {
        let g = generators::cycle(5);
        // Excluding node 1 forces the path 0-4-3-2.
        let p = path_excluding(&g, n(0), n(2), &set(&[1])).unwrap();
        assert_eq!(p.nodes(), &[n(0), n(4), n(3), n(2)]);
        // Excluding an endpoint does not block the path.
        let p = path_excluding(&g, n(0), n(1), &set(&[0, 1])).unwrap();
        assert_eq!(p.nodes(), &[n(0), n(1)]);
        // Excluding both internal routes disconnects.
        assert!(path_excluding(&g, n(0), n(2), &set(&[1, 3])).is_none());
        assert!(path_excluding(&g, n(0), n(2), &set(&[1, 4])).is_none());
    }

    #[test]
    fn disjoint_paths_on_cycle_are_two() {
        let g = generators::cycle(5);
        let paths = disjoint_uv_paths_excluding(&g, n(0), n(2), &NodeSet::new(), usize::MAX);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(g.is_path(p));
            assert_eq!(p.first(), Some(n(0)));
            assert_eq!(p.last(), Some(n(2)));
        }
        assert!(paths[0].internally_disjoint(&paths[1]));
    }

    #[test]
    fn disjoint_paths_on_complete_graph() {
        let g = generators::complete(5);
        assert_eq!(max_disjoint_uv_paths(&g, n(0), n(4), usize::MAX), 4);
        // Limit caps the number of returned paths.
        assert_eq!(
            disjoint_uv_paths_excluding(&g, n(0), n(4), &NodeSet::new(), 2).len(),
            2
        );
    }

    #[test]
    fn adjacent_nodes_count_the_direct_edge() {
        let g = generators::cycle(4);
        let paths = disjoint_uv_paths_excluding(&g, n(0), n(1), &NodeSet::new(), usize::MAX);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.len() == 2));
    }

    #[test]
    fn exclusion_reduces_disjoint_path_count() {
        let g = generators::complete(5);
        // Internal nodes 1, 2 are forbidden: only the direct edge 0-4 and the
        // path through 3 remain between 0 and 4.
        let paths = disjoint_uv_paths_excluding(&g, n(0), n(4), &set(&[1, 2]), usize::MAX);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(p.excludes(&set(&[1, 2])));
        }
    }

    #[test]
    fn set_to_node_disjoint_paths_on_cycle() {
        let g = generators::cycle(5);
        // U = {1, 4} are the neighbors of 0; two disjoint Uv-paths to v=0.
        let u = set(&[1, 4]);
        let paths = disjoint_set_to_node_paths(&g, &u, n(0), &NodeSet::new(), usize::MAX);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(g.is_path(p));
            assert!(u.contains(p.first().unwrap()));
            assert_eq!(p.last(), Some(n(0)));
        }
        assert!(paths[0].disjoint_except_endpoint(&paths[1], n(0)));
    }

    #[test]
    fn set_to_node_paths_respect_exclusion_of_internal_nodes() {
        let g = generators::complete(6);
        let sources = set(&[1, 2, 3]);
        let exclude = set(&[4]);
        let paths = disjoint_set_to_node_paths(&g, &sources, n(0), &exclude, usize::MAX);
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(p.excludes(&exclude));
            assert!(!p.internal_nodes().any(|w| w == n(4)));
        }
    }

    #[test]
    fn excluded_sources_may_be_endpoints_but_not_internal() {
        // Lemma 5.5 situation: a source in F is allowed as an endpoint.
        let g = generators::complete(5);
        let sources = set(&[1, 2]);
        let exclude = set(&[1]); // node 1 is an excluded source
        let paths = disjoint_set_to_node_paths(&g, &sources, n(0), &exclude, usize::MAX);
        assert_eq!(paths.len(), 2);
        let endpoints: NodeSet = paths.iter().map(|p| p.first().unwrap()).collect();
        assert_eq!(endpoints, sources);
        for p in &paths {
            assert!(!p.internal_nodes().any(|w| w == n(1)));
        }
    }

    #[test]
    fn menger_on_circulant_c9_1_2() {
        // C9(1,2) is 4-connected: every pair has 4 disjoint paths.
        let g = generators::circulant(9, &[1, 2]);
        for u in g.nodes() {
            for v in g.nodes() {
                if u < v {
                    assert!(max_disjoint_uv_paths(&g, u, v, usize::MAX) >= 4);
                }
            }
        }
    }

    #[test]
    fn all_simple_paths_on_cycle() {
        let g = generators::cycle(5);
        let paths = all_simple_paths(&g, n(0), n(2));
        // Exactly two simple paths on a cycle.
        assert_eq!(paths.len(), 2);
        let lens: Vec<usize> = {
            let mut l: Vec<usize> = paths.iter().map(Path::len).collect();
            l.sort_unstable();
            l
        };
        assert_eq!(lens, vec![3, 4]);
    }

    #[test]
    fn all_simple_paths_counts_on_complete_graph() {
        let g = generators::complete(5);
        // Simple paths between two fixed nodes of K5: 1 + 3 + 3·2 + 3·2·1 = 16.
        assert_eq!(all_simple_paths(&g, n(0), n(4)).len(), 16);
    }

    #[test]
    fn find_internally_disjoint_subset_on_uv_paths() {
        // uv-paths share both endpoints; only internal disjointness matters.
        let g = generators::cycle(5);
        let candidates = all_simple_paths(&g, n(0), n(2));
        let witness = find_internally_disjoint_subset(&candidates, 2).unwrap();
        assert_eq!(witness.len(), 2);
        assert!(witness[0].internally_disjoint(&witness[1]));
        assert!(find_internally_disjoint_subset(&candidates, 3).is_none());
        assert_eq!(
            find_internally_disjoint_subset(&candidates, 0)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn find_disjoint_subset_finds_uv_path_witnesses() {
        // Two Av v-paths from distinct sources, sharing only v = 0.
        let a = Path::from_nodes([n(1), n(2), n(0)]);
        let b = Path::from_nodes([n(3), n(4), n(0)]);
        let c = Path::from_nodes([n(3), n(2), n(0)]); // conflicts with both
        let witness = find_disjoint_subset(&[a.clone(), b.clone(), c], n(0), 2).unwrap();
        assert_eq!(witness.len(), 2);
        assert!(witness[0].disjoint_except_endpoint(&witness[1], n(0)));
        assert!(find_disjoint_subset(&[a.clone(), b.clone()], n(0), 3).is_none());
    }

    #[test]
    fn find_disjoint_subset_requires_disjoint_sources_too() {
        // Two paths starting at the same node are not node-disjoint Uv-paths.
        let a = Path::from_nodes([n(1), n(2), n(0)]);
        let b = Path::from_nodes([n(1), n(3), n(0)]);
        assert!(find_disjoint_subset(&[a, b], n(0), 2).is_none());
    }
}
