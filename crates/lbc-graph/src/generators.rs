//! Graph family generators.
//!
//! These cover the graphs the paper uses as examples (Figure 1), the
//! families the experiments sweep over (cycles, circulants, Harary graphs,
//! hypercubes, random graphs), and a convenience constructor for graphs that
//! satisfy the paper's conditions for a chosen fault tolerance `f`.

use rand::seq::SliceRandom;
use rand::Rng;

use lbc_model::NodeId;

use crate::Graph;

/// The complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(NodeId::new(u), NodeId::new(v))
                .expect("indices < n");
        }
    }
    g
}

/// The cycle `C_n` (`n ≥ 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes, got {n}");
    let mut g = Graph::empty(n);
    for u in 0..n {
        g.add_edge(NodeId::new(u), NodeId::new((u + 1) % n))
            .expect("indices < n");
    }
    g
}

/// The path graph `P_n` on `n` nodes (`n ≥ 1`).
#[must_use]
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 1..n {
        g.add_edge(NodeId::new(u - 1), NodeId::new(u))
            .expect("indices < n");
    }
    g
}

/// The star `K_{1,n-1}` with center node `0`.
#[must_use]
pub fn star(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 1..n {
        g.add_edge(NodeId::new(0), NodeId::new(u))
            .expect("indices < n");
    }
    g
}

/// The complete bipartite graph `K_{a,b}`: nodes `0..a` on one side and
/// `a..a+b` on the other.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::empty(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            g.add_edge(NodeId::new(u), NodeId::new(v))
                .expect("indices < n");
        }
    }
    g
}

/// The circulant graph `C_n(offsets)`: node `i` is adjacent to `i ± d` (mod n)
/// for each `d` in `offsets`.
///
/// `circulant(n, &[1])` is the cycle; `circulant(9, &[1, 2])` is the
/// 4-regular, 4-connected graph used as the Figure 1(b)-class example for
/// `f = 2`.
///
/// # Panics
///
/// Panics if `n == 0` or any offset is `0` or `≥ n`.
#[must_use]
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    assert!(n > 0, "circulant graph needs at least one node");
    let mut g = Graph::empty(n);
    for &d in offsets {
        assert!(d > 0 && d < n, "offset {d} must be in 1..{n}");
        for u in 0..n {
            let v = (u + d) % n;
            if u != v {
                g.add_edge(NodeId::new(u), NodeId::new(v))
                    .expect("indices < n");
            }
        }
    }
    g
}

/// The Harary graph `H_{k,n}`: the canonical `k`-connected graph on `n`
/// nodes with the minimum possible number of edges (`⌈kn/2⌉`).
///
/// Construction (West, *Introduction to Graph Theory*): start from the
/// circulant with offsets `1..=⌊k/2⌋`; if `k` is odd additionally join
/// antipodal nodes (`i` to `i + n/2`), and when both `k` and `n` are odd join
/// node `i` to `i + (n±1)/2` for the first half.
///
/// # Panics
///
/// Panics if `k >= n` or `n == 0`.
#[must_use]
pub fn harary(k: usize, n: usize) -> Graph {
    assert!(n > 0, "Harary graph needs at least one node");
    assert!(
        k < n,
        "Harary graph H_{{k,n}} requires k < n (got k={k}, n={n})"
    );
    if k == 0 {
        return Graph::empty(n);
    }
    if k == 1 {
        // The circulant-based construction below degenerates for k = 1; the
        // minimal 1-connected graph on n nodes is simply a spanning path.
        return path_graph(n);
    }
    let half = k / 2;
    let offsets: Vec<usize> = (1..=half).collect();
    let mut g = if offsets.is_empty() {
        Graph::empty(n)
    } else {
        circulant(n, &offsets)
    };
    if k % 2 == 1 {
        if n.is_multiple_of(2) {
            for u in 0..n / 2 {
                g.add_edge(NodeId::new(u), NodeId::new(u + n / 2))
                    .expect("indices < n");
            }
        } else {
            // Both k and n odd: node 0 gets one extra edge; nodes i join i + (n+1)/2.
            for u in 0..=(n / 2) {
                let v = (u + n.div_ceil(2)) % n;
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v))
                        .expect("indices < n");
                }
            }
        }
    }
    g
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
#[must_use]
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::empty(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                g.add_edge(NodeId::new(u), NodeId::new(v))
                    .expect("indices < n");
            }
        }
    }
    g
}

/// The wheel `W_n`: a cycle on nodes `1..n` plus a hub node `0` adjacent to
/// every cycle node (`n ≥ 4` total nodes).
///
/// # Panics
///
/// Panics if `n < 4`.
#[must_use]
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "a wheel needs at least 4 nodes, got {n}");
    let mut g = Graph::empty(n);
    for u in 1..n {
        let next = if u == n - 1 { 1 } else { u + 1 };
        g.add_edge(NodeId::new(u), NodeId::new(next))
            .expect("indices < n");
        g.add_edge(NodeId::new(0), NodeId::new(u))
            .expect("indices < n");
    }
    g
}

/// The graph of the paper's **Figure 1(a)**: the 5-cycle `1-2-3-4-5`
/// (relabelled `0..5`), which satisfies the conditions of Theorem 4.1 for
/// `f = 1` (minimum degree 2 = 2f, connectivity 2 ≥ ⌊3f/2⌋ + 1 = 2).
#[must_use]
pub fn paper_fig1a() -> Graph {
    cycle(5)
}

/// A graph of the **Figure 1(b)** class: a graph satisfying the conditions of
/// Theorem 4.1 for `f = 2` (minimum degree ≥ 4 = 2f and connectivity
/// ≥ ⌊3f/2⌋ + 1 = 4).
///
/// The paper's figure is not reproduced numerically in the text; we use the
/// circulant `C_9(1, 2)`, which is 4-regular and 4-connected, as the
/// canonical member of this class (documented in DESIGN.md).
#[must_use]
pub fn paper_fig1b() -> Graph {
    circulant(9, &[1, 2])
}

/// An Erdős–Rényi random graph `G(n, p)` drawn with the supplied RNG.
#[must_use]
pub fn random_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(NodeId::new(u), NodeId::new(v))
                    .expect("indices < n");
            }
        }
    }
    g
}

/// A random graph that **satisfies the paper's local-broadcast conditions**
/// for fault tolerance `f`: minimum degree ≥ `2f` and connectivity
/// ≥ `⌊3f/2⌋ + 1`.
///
/// Construction: start from the Harary graph `H_{2f, n}` (which is
/// `2f`-connected and `2f`-regular, hence satisfies both conditions since
/// `2f ≥ ⌊3f/2⌋ + 1` for `f ≥ 2`, and equals it for `f ≤ 2`), then add each
/// remaining edge independently with probability `extra_edge_prob`.
///
/// # Panics
///
/// Panics if `n ≤ 2f` (no such graph exists).
#[must_use]
pub fn random_satisfying<R: Rng + ?Sized>(
    n: usize,
    f: usize,
    extra_edge_prob: f64,
    rng: &mut R,
) -> Graph {
    assert!(n > 2 * f, "need n > 2f to satisfy minimum degree 2f");
    let mut g = if f == 0 {
        // Any connected graph works for f = 0; use a spanning cycle when
        // possible, a path/edge otherwise.
        if n >= 3 {
            cycle(n)
        } else {
            path_graph(n)
        }
    } else {
        harary(2 * f, n)
    };
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(NodeId::new(u), NodeId::new(v)) {
                candidates.push((u, v));
            }
        }
    }
    candidates.shuffle(rng);
    for (u, v) in candidates {
        if rng.gen_bool(extra_edge_prob.clamp(0.0, 1.0)) {
            g.add_edge(NodeId::new(u), NodeId::new(v))
                .expect("indices < n");
        }
    }
    g
}

/// A graph that satisfies the minimum-degree condition (`≥ 2f`) but whose
/// connectivity is exactly `⌊3f/2⌋` — i.e. **one short of** the paper's
/// connectivity condition. Used by the lower-bound experiments (Figure 3).
///
/// Construction: two complete blobs of size `blob` joined through a cut of
/// exactly `⌊3f/2⌋` nodes that is fully connected to both blobs and within
/// itself.
///
/// # Panics
///
/// Panics if `blob` is too small for the degree condition
/// (`blob − 1 + ⌊3f/2⌋ < 2f`, i.e. `blob < ⌈f/2⌉ + 1`).
#[must_use]
pub fn deficient_connectivity(f: usize, blob: usize) -> Graph {
    let cut = (3 * f) / 2;
    assert!(
        blob + cut > 2 * f,
        "blob size {blob} too small to reach minimum degree 2f = {}",
        2 * f
    );
    let n = 2 * blob + cut;
    let mut g = Graph::empty(n);
    // Blob A: nodes 0..blob; blob B: nodes blob..2*blob; cut: 2*blob..n.
    let a: Vec<usize> = (0..blob).collect();
    let b: Vec<usize> = (blob..2 * blob).collect();
    let c: Vec<usize> = (2 * blob..n).collect();
    let add_clique = |g: &mut Graph, nodes: &[usize]| {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                g.add_edge(NodeId::new(u), NodeId::new(v))
                    .expect("indices < n");
            }
        }
    };
    add_clique(&mut g, &a);
    add_clique(&mut g, &b);
    add_clique(&mut g, &c);
    for &u in &c {
        for &v in a.iter().chain(b.iter()) {
            g.add_edge(NodeId::new(u), NodeId::new(v))
                .expect("indices < n");
        }
    }
    g
}

/// A graph that satisfies the connectivity condition (`≥ ⌊3f/2⌋ + 1`) but has
/// one node of degree exactly `2f − 1` — i.e. **one short of** the paper's
/// minimum-degree condition. Used by the lower-bound experiments (Figure 2).
///
/// Construction: a complete graph on `n − 1` nodes plus one extra node `n−1`
/// adjacent to exactly `2f − 1` of them.
///
/// # Panics
///
/// Panics if `f < 3` or the complete part is too small (`n − 1 < 2f`). For
/// `f < 3` no graph can have minimum degree `2f − 1` while staying
/// (`⌊3f/2⌋ + 1`)-connected, because connectivity never exceeds minimum
/// degree; the lower-bound experiments use bespoke small graphs there.
#[must_use]
pub fn deficient_degree(f: usize, n: usize) -> Graph {
    assert!(n > 2 * f, "need n - 1 >= 2f for the complete part");
    assert!(
        f >= 3 && 2 * f > (3 * f) / 2 + 1,
        "for f = {f} the construction cannot keep connectivity ⌊3f/2⌋+1; use f >= 3"
    );
    let mut g = complete(n - 1);
    let mut g2 = Graph::empty(n);
    for (u, v) in g.edges() {
        g2.add_edge(u, v).expect("indices < n");
    }
    g = g2;
    for v in 0..(2 * f - 1) {
        g.add_edge(NodeId::new(n - 1), NodeId::new(v))
            .expect("indices < n");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.min_degree(), 5);
    }

    #[test]
    fn cycle_and_path_shapes() {
        let c = cycle(7);
        assert_eq!(c.edge_count(), 7);
        assert_eq!(c.min_degree(), 2);
        let p = path_graph(7);
        assert_eq!(p.edge_count(), 6);
        assert_eq!(p.min_degree(), 1);
        let p1 = path_graph(1);
        assert_eq!(p1.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn cycle_requires_three_nodes() {
        let _ = cycle(2);
    }

    #[test]
    fn star_and_bipartite() {
        let s = star(5);
        assert_eq!(s.degree(NodeId::new(0)), 4);
        assert_eq!(s.min_degree(), 1);
        let kb = complete_bipartite(2, 3);
        assert_eq!(kb.edge_count(), 6);
        assert_eq!(connectivity::vertex_connectivity(&kb), 2);
    }

    #[test]
    fn circulant_degrees() {
        let g = circulant(9, &[1, 2]);
        assert_eq!(g.node_count(), 9);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn harary_edge_counts_are_minimal() {
        // |E(H_{k,n})| = ceil(k*n/2).
        for (k, n) in [(2usize, 7usize), (3, 8), (4, 9), (3, 9), (5, 12)] {
            let g = harary(k, n);
            assert_eq!(
                g.edge_count(),
                (k * n).div_ceil(2),
                "H_{{{k},{n}}} edge count"
            );
            assert!(g.min_degree() >= k);
        }
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.min_degree(), 3);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(6);
        assert_eq!(g.degree(NodeId::new(0)), 5);
        assert_eq!(g.min_degree(), 3);
        assert_eq!(connectivity::vertex_connectivity(&g), 3);
    }

    #[test]
    fn figure_1a_satisfies_f1_conditions() {
        let g = paper_fig1a();
        assert_eq!(g.min_degree(), 2);
        assert_eq!(connectivity::vertex_connectivity(&g), 2);
    }

    #[test]
    fn figure_1b_class_satisfies_f2_conditions() {
        let g = paper_fig1b();
        assert_eq!(g.min_degree(), 4);
        assert_eq!(connectivity::vertex_connectivity(&g), 4);
    }

    #[test]
    fn random_gnp_is_reproducible_per_seed() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(7);
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let g1 = random_gnp(10, 0.4, &mut rng1);
        let g2 = random_gnp(10, 0.4, &mut rng2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn random_satisfying_meets_paper_conditions() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for f in 1..=3usize {
            let n = 2 * f + 4;
            let g = random_satisfying(n, f, 0.2, &mut rng);
            assert!(g.min_degree() >= 2 * f, "min degree for f={f}");
            let needed = (3 * f) / 2 + 1;
            assert!(
                connectivity::is_k_connected(&g, needed),
                "connectivity ⌊3f/2⌋+1 for f={f}"
            );
        }
    }

    #[test]
    fn random_satisfying_with_f_zero_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = random_satisfying(5, 0, 0.0, &mut rng);
        assert!(g.is_connected());
    }

    #[test]
    fn deficient_connectivity_violates_only_connectivity() {
        for f in 2..=4usize {
            let g = deficient_connectivity(f, f + 1);
            assert!(g.min_degree() >= 2 * f, "degree stays satisfied for f={f}");
            let needed = (3 * f) / 2 + 1;
            assert_eq!(
                connectivity::vertex_connectivity(&g),
                needed - 1,
                "connectivity is exactly ⌊3f/2⌋ for f={f}"
            );
        }
    }

    #[test]
    fn deficient_degree_violates_only_degree() {
        for f in 3..=4usize {
            let n = 2 * f + 3;
            let g = deficient_degree(f, n);
            assert_eq!(g.min_degree(), 2 * f - 1, "one short of 2f for f={f}");
            let needed = (3 * f) / 2 + 1;
            assert!(
                connectivity::is_k_connected(&g, needed),
                "connectivity stays satisfied for f={f}"
            );
        }
    }
}
