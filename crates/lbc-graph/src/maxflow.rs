//! Internal unit-capacity max-flow machinery (Dinic's algorithm).
//!
//! Vertex connectivity and node-disjoint path computations are reduced to
//! max-flow on a directed *split* graph: every vertex `w` becomes an arc
//! `w_in → w_out` whose capacity bounds how many paths may pass through `w`.
//! This module provides the generic flow network; the reductions live in
//! [`crate::connectivity`] and [`crate::paths`].

#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    capacity: i64,
    flow: i64,
}

/// A directed flow network with integer capacities.
#[derive(Debug, Clone)]
pub(crate) struct FlowNetwork {
    adjacency: Vec<Vec<usize>>,
    edges: Vec<FlowEdge>,
}

impl FlowNetwork {
    /// Creates a flow network with `node_count` nodes and no edges.
    pub(crate) fn new(node_count: usize) -> Self {
        FlowNetwork {
            adjacency: vec![Vec::new(); node_count],
            edges: Vec::new(),
        }
    }

    /// Number of nodes in the network.
    pub(crate) fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Adds a directed edge `from → to` with the given capacity (and its
    /// residual reverse edge with capacity 0). Returns the edge index.
    pub(crate) fn add_edge(&mut self, from: usize, to: usize, capacity: i64) -> usize {
        let id = self.edges.len();
        self.edges.push(FlowEdge {
            to,
            capacity,
            flow: 0,
        });
        self.edges.push(FlowEdge {
            to: from,
            capacity: 0,
            flow: 0,
        });
        self.adjacency[from].push(id);
        self.adjacency[to].push(id + 1);
        id
    }

    fn residual(&self, edge: usize) -> i64 {
        self.edges[edge].capacity - self.edges[edge].flow
    }

    fn bfs_levels(&self, source: usize, sink: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        level[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &edge in &self.adjacency[u] {
                let v = self.edges[edge].to;
                if level[v] < 0 && self.residual(edge) > 0 {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[sink] >= 0 {
            Some(level)
        } else {
            None
        }
    }

    fn dfs_augment(
        &mut self,
        u: usize,
        sink: usize,
        pushed: i64,
        level: &[i32],
        iter: &mut [usize],
    ) -> i64 {
        if u == sink {
            return pushed;
        }
        while iter[u] < self.adjacency[u].len() {
            let edge = self.adjacency[u][iter[u]];
            let v = self.edges[edge].to;
            if level[v] == level[u] + 1 && self.residual(edge) > 0 {
                let amount = pushed.min(self.residual(edge));
                let flowed = self.dfs_augment(v, sink, amount, level, iter);
                if flowed > 0 {
                    self.edges[edge].flow += flowed;
                    self.edges[edge ^ 1].flow -= flowed;
                    return flowed;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Computes the maximum flow from `source` to `sink`, capped at `limit`
    /// (pass `i64::MAX` for the true maximum). The cap lets connectivity
    /// queries stop early once a threshold is exceeded.
    pub(crate) fn max_flow(&mut self, source: usize, sink: usize, limit: i64) -> i64 {
        if source == sink {
            return limit;
        }
        let mut total = 0i64;
        while total < limit {
            let Some(level) = self.bfs_levels(source, sink) else {
                break;
            };
            let mut iter = vec![0usize; self.node_count()];
            loop {
                let pushed = self.dfs_augment(source, sink, limit - total, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
                if total >= limit {
                    break;
                }
            }
        }
        total
    }

    /// After a max-flow computation, returns the set of nodes reachable from
    /// `source` in the residual graph (used to extract minimum cuts).
    pub(crate) fn residual_reachable(&self, source: usize) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        seen[source] = true;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &edge in &self.adjacency[u] {
                let v = self.edges[edge].to;
                if !seen[v] && self.residual(edge) > 0 {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// After a max-flow computation, decomposes the flow into `flow_value`
    /// source-to-sink paths (sequences of node indices, including source and
    /// sink). Only meaningful for unit-capacity vertex-split networks.
    pub(crate) fn decompose_paths(&mut self, source: usize, sink: usize) -> Vec<Vec<usize>> {
        let mut paths = Vec::new();
        loop {
            // Walk a path of positive flow from source to sink, consuming it.
            let mut path = vec![source];
            let mut current = source;
            let mut found_sink = current == sink;
            let mut guard = 0usize;
            while !found_sink {
                guard += 1;
                if guard > self.node_count() + self.edges.len() {
                    // Malformed flow (cycle); abandon this decomposition walk.
                    return paths;
                }
                let mut advanced = false;
                for idx in 0..self.adjacency[current].len() {
                    let edge = self.adjacency[current][idx];
                    // Forward edges with positive flow only.
                    if edge.is_multiple_of(2) && self.edges[edge].flow > 0 {
                        self.edges[edge].flow -= 1;
                        self.edges[edge ^ 1].flow += 1;
                        current = self.edges[edge].to;
                        path.push(current);
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    // No more outgoing flow: either we started with none, or
                    // the decomposition is complete.
                    return paths;
                }
                if current == sink {
                    found_sink = true;
                }
            }
            paths.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_path_network() {
        // source 0 → {1, 2} → sink 3, each path capacity 1.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3, i64::MAX), 2);
    }

    #[test]
    fn bottleneck_is_respected() {
        // All flow must pass through the single edge 1 → 2.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 2, 1);
        net.add_edge(2, 3, 5);
        assert_eq!(net.max_flow(0, 3, i64::MAX), 1);
    }

    #[test]
    fn flow_limit_stops_early() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 10);
        assert_eq!(net.max_flow(0, 1, 3), 3);
    }

    #[test]
    fn disconnected_source_and_sink() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1);
        assert_eq!(net.max_flow(0, 2, i64::MAX), 0);
    }

    #[test]
    fn residual_reachability_identifies_cut_side() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(2, 3, 1);
        net.max_flow(0, 3, i64::MAX);
        let reach = net.residual_reachable(0);
        // With the single path saturated, only the source is residual-reachable.
        assert!(reach[0]);
        assert!(!reach[3]);
    }

    #[test]
    fn path_decomposition_recovers_unit_paths() {
        let mut net = FlowNetwork::new(6);
        // Two disjoint paths 0-1-2-5 and 0-3-4-5.
        net.add_edge(0, 1, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(2, 5, 1);
        net.add_edge(0, 3, 1);
        net.add_edge(3, 4, 1);
        net.add_edge(4, 5, 1);
        let flow = net.max_flow(0, 5, i64::MAX);
        assert_eq!(flow, 2);
        let paths = net.decompose_paths(0, 5);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(*p.first().unwrap(), 0);
            assert_eq!(*p.last().unwrap(), 5);
        }
    }
}
