//! Vertex cuts, cut partitions, and small-neighborhood sets.
//!
//! These are the structural objects the impossibility proofs manipulate:
//!
//! * Lemma A.2 / Figure 3 needs a vertex cut `C` of size at most `⌊3f/2⌋`
//!   together with the two sides `(A, B)` it separates;
//! * Lemma A.1 / Figure 2 needs a node `z` of degree `< 2f` and a partition
//!   of its neighborhood into `(F¹, F²)`;
//! * Lemma D.1 / Figure 4 needs a set `S`, `0 < |S| ≤ t`, with at most `2f`
//!   neighbors.

use lbc_model::{NodeId, NodeSet};

use crate::combinatorics;
use crate::connectivity;
use crate::Graph;

/// A vertex cut together with the bipartition of the remaining nodes it
/// induces: removing `cut` disconnects `side_a` from `side_b`, and
/// `side_a ∪ side_b ∪ cut = V` with all three pairwise disjoint.
///
/// Both sides are non-empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutPartition {
    /// The separating set `C`.
    pub cut: NodeSet,
    /// One side `A` of the separation (non-empty, no edges to `side_b`).
    pub side_a: NodeSet,
    /// The other side `B` (non-empty, no edges to `side_a`).
    pub side_b: NodeSet,
}

impl CutPartition {
    /// Checks the defining invariants against `graph`: the three parts
    /// partition `V`, both sides are non-empty, and no edge joins `side_a`
    /// to `side_b`.
    #[must_use]
    pub fn is_valid(&self, graph: &Graph) -> bool {
        let n = graph.node_count();
        let union = self.cut.union(&self.side_a).union(&self.side_b);
        if union.len() != n
            || self.cut.len() + self.side_a.len() + self.side_b.len() != n
            || self.side_a.is_empty()
            || self.side_b.is_empty()
        {
            return false;
        }
        for u in self.side_a.iter() {
            for v in graph.neighbors(u) {
                if self.side_b.contains(v) {
                    return false;
                }
            }
        }
        true
    }
}

/// Builds the [`CutPartition`] induced by removing `cut` from `graph`:
/// `side_a` is one connected region of `G − cut` and `side_b` is everything
/// else outside the cut.
///
/// Returns `None` if removing `cut` does not actually disconnect the
/// remaining nodes (or leaves fewer than two of them).
#[must_use]
pub fn partition_by_cut(graph: &Graph, cut: &NodeSet) -> Option<CutPartition> {
    if !graph.disconnects(cut) {
        return None;
    }
    let remaining: Vec<NodeId> = graph.nodes().filter(|v| !cut.contains(*v)).collect();
    let first = *remaining.first()?;
    let side_a = graph.reachable_from(first, cut);
    let side_b: NodeSet = remaining
        .iter()
        .copied()
        .filter(|v| !side_a.contains(*v))
        .collect();
    if side_b.is_empty() {
        return None;
    }
    Some(CutPartition {
        cut: cut.clone(),
        side_a,
        side_b,
    })
}

/// Finds a minimum vertex cut and its induced partition, if the graph has a
/// vertex cut at all (complete graphs do not).
#[must_use]
pub fn min_cut_partition(graph: &Graph) -> Option<CutPartition> {
    let cut = connectivity::min_vertex_cut(graph)?;
    partition_by_cut(graph, &cut)
}

/// Finds a vertex cut of size at most `max_size` together with its partition,
/// if one exists (i.e. if the graph is **not** (`max_size + 1`)-connected).
///
/// This is the object Lemma A.2 starts from: "a vertex cut `C` of `G` of size
/// at most `⌊3f/2⌋` with a partition `(A, B, C)` of `V`".
#[must_use]
pub fn cut_partition_of_size_at_most(graph: &Graph, max_size: usize) -> Option<CutPartition> {
    let partition = min_cut_partition(graph)?;
    if partition.cut.len() <= max_size {
        Some(partition)
    } else {
        None
    }
}

/// Finds a non-empty node set `S` with `|S| ≤ max_size` whose neighborhood
/// has at most `max_neighbors` nodes, if one exists.
///
/// This is the object Lemma D.1 (hybrid model, condition (iii)) starts from:
/// a set `S`, `0 < |S| ≤ t`, with at most `2f` neighbors. The search is
/// exhaustive over subsets of size `≤ max_size` (the experiments only use
/// small `t`).
#[must_use]
pub fn small_neighborhood_set(
    graph: &Graph,
    max_size: usize,
    max_neighbors: usize,
) -> Option<NodeSet> {
    let nodes: Vec<NodeId> = graph.nodes().collect();
    for size in 1..=max_size.min(nodes.len()) {
        for subset in combinatorics::subsets_of_size(&nodes, size) {
            let s: NodeSet = subset.into_iter().collect();
            if graph.neighborhood_of_set(&s).len() <= max_neighbors {
                return Some(s);
            }
        }
    }
    None
}

/// Returns a node of minimum degree together with its degree.
///
/// Returns `None` for the empty graph. This is the node `z` of Lemma A.1
/// when its degree is `< 2f`.
#[must_use]
pub fn min_degree_node(graph: &Graph) -> Option<(NodeId, usize)> {
    graph
        .nodes()
        .map(|v| (v, graph.degree(v)))
        .min_by_key(|&(v, d)| (d, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn set(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| n(i)).collect()
    }

    #[test]
    fn partition_by_cut_on_cycle() {
        let g = generators::cycle(6);
        let cut = set(&[0, 3]);
        let partition = partition_by_cut(&g, &cut).unwrap();
        assert!(partition.is_valid(&g));
        assert_eq!(partition.cut, cut);
        assert_eq!(partition.side_a.len() + partition.side_b.len(), 4);
        // A non-separating set yields no partition.
        assert!(partition_by_cut(&g, &set(&[0])).is_none());
    }

    #[test]
    fn min_cut_partition_on_cycle_has_size_two() {
        let g = generators::cycle(7);
        let partition = min_cut_partition(&g).unwrap();
        assert_eq!(partition.cut.len(), 2);
        assert!(partition.is_valid(&g));
    }

    #[test]
    fn complete_graph_has_no_cut_partition() {
        let g = generators::complete(5);
        assert!(min_cut_partition(&g).is_none());
        assert!(cut_partition_of_size_at_most(&g, 3).is_none());
    }

    #[test]
    fn cut_partition_of_size_at_most_respects_bound() {
        let g = generators::cycle(6);
        assert!(cut_partition_of_size_at_most(&g, 2).is_some());
        assert!(cut_partition_of_size_at_most(&g, 1).is_none());
    }

    #[test]
    fn deficient_connectivity_graph_has_the_expected_cut() {
        let f = 2;
        let g = generators::deficient_connectivity(f, f + 1);
        let partition = cut_partition_of_size_at_most(&g, (3 * f) / 2).unwrap();
        assert_eq!(partition.cut.len(), (3 * f) / 2);
        assert!(partition.is_valid(&g));
    }

    #[test]
    fn small_neighborhood_set_on_star() {
        // Every leaf of a star has exactly one neighbor (the hub).
        let g = generators::star(6);
        let s = small_neighborhood_set(&g, 1, 1).unwrap();
        assert_eq!(s.len(), 1);
        assert!(graph_neighbors_at_most(&g, &s, 1));
        // No single node of K5 has ≤ 2 neighbors.
        let k5 = generators::complete(5);
        assert!(small_neighborhood_set(&k5, 1, 2).is_none());
    }

    #[test]
    fn small_neighborhood_set_finds_multi_node_sets() {
        // In a 6-cycle, two adjacent nodes have exactly 2 outside neighbors.
        let g = generators::cycle(6);
        let s = small_neighborhood_set(&g, 2, 2).unwrap();
        assert!(s.len() <= 2);
        assert!(graph_neighbors_at_most(&g, &s, 2));
    }

    #[test]
    fn min_degree_node_finds_the_deficient_node() {
        let f = 3;
        let g = generators::deficient_degree(f, 2 * f + 3);
        let (z, d) = min_degree_node(&g).unwrap();
        assert_eq!(d, 2 * f - 1);
        assert_eq!(z, n(g.node_count() - 1));
        assert!(min_degree_node(&Graph::empty(0)).is_none());
    }

    fn graph_neighbors_at_most(g: &Graph, s: &NodeSet, bound: usize) -> bool {
        g.neighborhood_of_set(s).len() <= bound
    }
}
