//! Subset and partition enumeration.
//!
//! Algorithm 1 runs one phase per candidate fault set `F ⊆ V` with
//! `|F| ≤ f`; Algorithm 3 runs one phase per pair `(F, T)` with `|T| ≤ t`
//! and `|F| ≤ f − |T|`. The impossibility constructions additionally need
//! partitions of neighborhoods and cuts into bounded-size parts. This module
//! provides the corresponding (deterministic-order) enumerations.

use lbc_model::{NodeId, NodeSet};

/// All subsets of `items` of exactly `size`, in lexicographic order of
/// indices.
#[must_use]
pub fn subsets_of_size<T: Clone>(items: &[T], size: usize) -> Vec<Vec<T>> {
    let mut result = Vec::new();
    if size > items.len() {
        return result;
    }
    let mut indices: Vec<usize> = (0..size).collect();
    loop {
        result.push(indices.iter().map(|&i| items[i].clone()).collect());
        // Advance to the next combination.
        let mut i = size;
        loop {
            if i == 0 {
                return result;
            }
            i -= 1;
            if indices[i] != i + items.len() - size {
                break;
            }
            if i == 0 {
                return result;
            }
        }
        indices[i] += 1;
        for j in (i + 1)..size {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

/// All subsets of `items` of size at most `max_size` (including the empty
/// set), ordered by size then lexicographically.
#[must_use]
pub fn subsets_up_to_size<T: Clone>(items: &[T], max_size: usize) -> Vec<Vec<T>> {
    let mut result = Vec::new();
    for size in 0..=max_size.min(items.len()) {
        result.extend(subsets_of_size(items, size));
    }
    result
}

/// The number of subsets of an `n`-element set with size at most `k`:
/// `Σ_{i=0}^{k} C(n, i)`. This is the number of phases Algorithm 1 executes.
#[must_use]
pub fn count_subsets_up_to_size(n: usize, k: usize) -> u128 {
    (0..=k.min(n)).map(|i| binomial(n, i)).sum()
}

/// The binomial coefficient `C(n, k)` as a `u128`.
#[must_use]
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
    }
    result
}

/// Enumerates all candidate fault sets `F ⊆ V`, `|F| ≤ f`, over a population
/// of `n` nodes — the phase schedule of Algorithm 1.
#[must_use]
pub fn fault_set_phases(n: usize, f: usize) -> Vec<NodeSet> {
    let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    subsets_up_to_size(&nodes, f)
        .into_iter()
        .map(|subset| subset.into_iter().collect())
        .collect()
}

/// Enumerates all candidate pairs `(F, T)` with `T ⊆ V`, `|T| ≤ t`,
/// `F ⊆ V − T`, `|F| ≤ f − |T|` — the phase schedule of Algorithm 3.
#[must_use]
pub fn hybrid_fault_set_phases(n: usize, f: usize, t: usize) -> Vec<(NodeSet, NodeSet)> {
    let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let mut result = Vec::new();
    for t_candidate in subsets_up_to_size(&nodes, t.min(f)) {
        let t_set: NodeSet = t_candidate.into_iter().collect();
        let remaining: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|v| !t_set.contains(*v))
            .collect();
        let budget = f - t_set.len();
        for f_candidate in subsets_up_to_size(&remaining, budget) {
            let f_set: NodeSet = f_candidate.into_iter().collect();
            result.push((f_set, t_set.clone()));
        }
    }
    result
}

/// Splits `items` into consecutive chunks whose sizes are given by `sizes`.
/// Panics if the sizes do not sum to `items.len()`.
///
/// Used by the lower-bound constructions to carve a neighborhood or a cut
/// into the `(F¹, F²)` / `(C¹, C², C³, R, T)` parts of Appendix A and D.
#[must_use]
pub fn split_by_sizes(items: &NodeSet, sizes: &[usize]) -> Vec<NodeSet> {
    let total: usize = sizes.iter().sum();
    assert_eq!(
        total,
        items.len(),
        "sizes {:?} must sum to the set size {}",
        sizes,
        items.len()
    );
    let ordered: Vec<NodeId> = items.iter().collect();
    let mut result = Vec::with_capacity(sizes.len());
    let mut offset = 0;
    for &size in sizes {
        result.push(ordered[offset..offset + size].iter().copied().collect());
        offset += size;
    }
    result
}

/// Splits a set of `len` elements into parts with the given *maximum* sizes,
/// greedily filling earlier parts first. Returns `None` if the capacities are
/// insufficient.
///
/// The impossibility proofs only need *some* partition with
/// `|F¹| ≤ ⌊f/2⌋`-style bounds; greedy filling produces one whenever it
/// exists.
#[must_use]
pub fn greedy_sizes(len: usize, max_sizes: &[usize]) -> Option<Vec<usize>> {
    let capacity: usize = max_sizes.iter().sum();
    if capacity < len {
        return None;
    }
    let mut remaining = len;
    let mut sizes = Vec::with_capacity(max_sizes.len());
    for &cap in max_sizes {
        let take = cap.min(remaining);
        sizes.push(take);
        remaining -= take;
    }
    Some(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn subsets_of_size_counts_match_binomial() {
        let items: Vec<usize> = (0..6).collect();
        for k in 0..=6 {
            assert_eq!(
                subsets_of_size(&items, k).len() as u128,
                binomial(6, k),
                "C(6,{k})"
            );
        }
        assert!(subsets_of_size(&items, 7).is_empty());
    }

    #[test]
    fn subsets_of_size_zero_is_the_empty_set() {
        let items = [1, 2, 3];
        let subsets = subsets_of_size(&items, 0);
        assert_eq!(subsets, vec![Vec::<i32>::new()]);
    }

    #[test]
    fn subsets_are_lexicographic_and_distinct() {
        let items = ['a', 'b', 'c', 'd'];
        let subsets = subsets_of_size(&items, 2);
        assert_eq!(
            subsets,
            vec![
                vec!['a', 'b'],
                vec!['a', 'c'],
                vec!['a', 'd'],
                vec!['b', 'c'],
                vec!['b', 'd'],
                vec!['c', 'd'],
            ]
        );
    }

    #[test]
    fn subsets_up_to_size_counts() {
        let items: Vec<usize> = (0..5).collect();
        assert_eq!(
            subsets_up_to_size(&items, 2).len() as u128,
            count_subsets_up_to_size(5, 2)
        );
        assert_eq!(count_subsets_up_to_size(5, 2), 1 + 5 + 10);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(60, 30), 118_264_581_564_861_424);
    }

    #[test]
    fn fault_set_phase_count_matches_formula() {
        let phases = fault_set_phases(5, 2);
        assert_eq!(phases.len() as u128, count_subsets_up_to_size(5, 2));
        // The empty candidate set is one of the phases.
        assert!(phases.iter().any(NodeSet::is_empty));
        // All phases respect the size bound.
        assert!(phases.iter().all(|f| f.len() <= 2));
    }

    #[test]
    fn hybrid_phases_respect_budgets_and_disjointness() {
        let phases = hybrid_fault_set_phases(4, 2, 1);
        for (f_set, t_set) in &phases {
            assert!(t_set.len() <= 1);
            assert!(f_set.len() + t_set.len() <= 2);
            assert!(f_set.is_disjoint(t_set));
        }
        // With t = 0 the schedule reduces to Algorithm 1's.
        let lb = hybrid_fault_set_phases(4, 2, 0);
        assert_eq!(lb.len() as u128, count_subsets_up_to_size(4, 2));
        assert!(lb.iter().all(|(_, t)| t.is_empty()));
    }

    #[test]
    fn split_by_sizes_partitions_in_order() {
        let set: NodeSet = (0..6).map(n).collect();
        let parts = split_by_sizes(&set, &[2, 0, 4]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], [n(0), n(1)].into_iter().collect());
        assert!(parts[1].is_empty());
        assert_eq!(parts[2].len(), 4);
    }

    #[test]
    #[should_panic(expected = "must sum")]
    fn split_by_sizes_panics_on_mismatch() {
        let set: NodeSet = (0..3).map(n).collect();
        let _ = split_by_sizes(&set, &[1, 1]);
    }

    #[test]
    fn greedy_sizes_fills_front_to_back() {
        assert_eq!(greedy_sizes(5, &[2, 2, 3]), Some(vec![2, 2, 1]));
        assert_eq!(greedy_sizes(0, &[1, 1]), Some(vec![0, 0]));
        assert_eq!(greedy_sizes(7, &[2, 2]), None);
    }
}
