//! # lbc-experiments
//!
//! The experiment harness that regenerates every figure and theorem-level
//! claim of the paper as a reproducible table (see `EXPERIMENTS.md` at the
//! workspace root for the experiment ↔ paper mapping).
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | E1 | Figure 1(a): 5-cycle, `f = 1` | [`e1_fig1a_cycle`] |
//! | E2 | Figure 1(b) class: `f = 2` graphs | [`e2_fig1b_f2`] |
//! | E3 | Lemma A.1 / Figure 2: degree lower bound | [`e3_degree_lower_bound`] |
//! | E4 | Lemma A.2 / Figure 3: connectivity lower bound | [`e4_connectivity_lower_bound`] |
//! | E5 | Theorems 4.1 + 5.1 vs Dolev: threshold comparison | [`e5_threshold_sweep`] |
//! | E6 | Theorem 5.6: round/message complexity | [`e6_round_complexity`] |
//! | E7 | Theorem 6.1: hybrid trade-off | [`e7_hybrid_tradeoff`] |
//! | E8 | Section 5.3: reliable receive & fault identification | [`e8_reliable_receive`] |
//!
//! E1 and E6 additionally exist as declarative campaign specs
//! ([`e1_campaign_spec`] / [`e6_campaign_spec`], mirrored by the committed
//! files under `examples/campaigns/`) driving the `lbc-campaign` sweep
//! engine — same coverage, but expressed as data and executed by the
//! deterministic parallel executor.
//!
//! Each function returns an [`ExperimentResult`] that renders to a plain-text
//! table (and serializes to JSON via serde), so `cargo bench` and the
//! examples can print the same rows the paper's claims correspond to.
//!
//! # Example
//!
//! ```
//! let result = lbc_experiments::e5_threshold_sweep();
//! assert_eq!(result.id, "E5");
//! println!("{}", result.render_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaigns;
mod experiments;
mod result;

pub use campaigns::{
    async_boundary_campaign_spec, boundary_search_spec, e1_campaign_spec, e1_via_campaign,
    e6_campaign_spec, e6_via_campaign, gst_boundary_campaign_spec, report_as_experiment,
};
pub use experiments::{
    all_experiments, e1_fig1a_cycle, e2_fig1b_f2, e3_degree_lower_bound,
    e4_connectivity_lower_bound, e5_threshold_sweep, e6_round_complexity, e7_hybrid_tradeoff,
    e8_reliable_receive,
};
pub use result::ExperimentResult;
