//! The experiment implementations (E1–E8).

use lbc_adversary::Strategy;
use lbc_consensus::{conditions, runner, Algorithm1Node, Algorithm2Node};
use lbc_graph::{connectivity, generators, Graph};
use lbc_lowerbound::{connectivity_construction, degree_construction};
use lbc_model::{CommModel, InputAssignment, NodeId, NodeSet};
use lbc_sim::Network;

use crate::result::ExperimentResult;

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// **E1 — Figure 1(a).** The 5-cycle satisfies the conditions for `f = 1`;
/// both Algorithm 1 and the efficient Algorithm 2 reach consensus for every
/// fault placement under tampering and crash adversaries.
#[must_use]
pub fn e1_fig1a_cycle() -> ExperimentResult {
    let graph = generators::paper_fig1a();
    let mut result = ExperimentResult::new(
        "E1",
        "Figure 1(a): 5-cycle, f = 1, all fault placements × strategies",
        &[
            "faulty",
            "strategy",
            "algorithm",
            "correct",
            "rounds",
            "transmissions",
        ],
    );
    result.push_note(format!(
        "conditions: min degree {} >= 2, connectivity {} >= 2 -> feasible = {}",
        graph.min_degree(),
        connectivity::vertex_connectivity(&graph),
        yes_no(conditions::local_broadcast_feasible(&graph, 1))
    ));
    let strategies = [
        Strategy::Silent,
        Strategy::TamperRelays,
        Strategy::Equivocate,
    ];
    for faulty_node in 0..5 {
        let faulty = NodeSet::singleton(NodeId::new(faulty_node));
        for strategy in &strategies {
            let inputs = InputAssignment::from_bits(5, 0b01101);
            let mut adversary = strategy.clone().into_adversary();
            let (o1, t1) = runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary);
            result.push_row([
                faulty.to_string(),
                strategy.name().to_string(),
                "Algorithm 1".to_string(),
                yes_no(o1.verdict().is_correct()).to_string(),
                t1.rounds().to_string(),
                t1.total_transmissions().to_string(),
            ]);
            // Algorithm 2 is only guaranteed against commission faults
            // (see the Appendix C omission gap documented in EXPERIMENTS.md).
            if *strategy != Strategy::Silent {
                let mut adversary = strategy.clone().into_adversary();
                let (o2, t2) = runner::run_algorithm2(&graph, 1, &inputs, &faulty, &mut adversary);
                result.push_row([
                    faulty.to_string(),
                    strategy.name().to_string(),
                    "Algorithm 2".to_string(),
                    yes_no(o2.verdict().is_correct()).to_string(),
                    t2.rounds().to_string(),
                    t2.total_transmissions().to_string(),
                ]);
            }
        }
    }
    result
}

/// **E2 — Figure 1(b) class.** Graphs satisfying the conditions for `f = 2`:
/// the circulant `C9(1,2)` (the paper's figure class), the octahedron
/// `C6(1,2)`, and the complete graph `K5`. Conditions are verified for all
/// three; consensus is exercised on the two smaller ones.
#[must_use]
pub fn e2_fig1b_f2() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E2",
        "Figure 1(b) class: f = 2 graphs (degree >= 4, connectivity >= 4)",
        &[
            "graph",
            "n",
            "min degree",
            "connectivity",
            "feasible f=2",
            "alg1 correct",
            "alg2 correct",
        ],
    );
    let candidates: Vec<(&str, Graph, bool)> = vec![
        ("C9(1,2)", generators::paper_fig1b(), false),
        (
            "C6(1,2) octahedron",
            generators::circulant(6, &[1, 2]),
            true,
        ),
        ("K5", generators::complete(5), true),
    ];
    for (name, graph, run_consensus) in candidates {
        let n = graph.node_count();
        let feasible = conditions::local_broadcast_feasible(&graph, 2);
        let (alg1, alg2) = if run_consensus {
            let faulty: NodeSet = [NodeId::new(0), NodeId::new(2)].into_iter().collect();
            let inputs = InputAssignment::from_bits(n, 0b010110 & ((1 << n) - 1));
            let mut adversary = Strategy::TamperRelays.into_adversary();
            let (o1, _) = runner::run_algorithm1(&graph, 2, &inputs, &faulty, &mut adversary);
            let mut adversary = Strategy::TamperRelays.into_adversary();
            let (o2, _) = runner::run_algorithm2(&graph, 2, &inputs, &faulty, &mut adversary);
            (
                yes_no(o1.verdict().is_correct()).to_string(),
                yes_no(o2.verdict().is_correct()).to_string(),
            )
        } else {
            ("(not run)".to_string(), "(not run)".to_string())
        };
        result.push_row([
            name.to_string(),
            n.to_string(),
            graph.min_degree().to_string(),
            connectivity::vertex_connectivity(&graph).to_string(),
            yes_no(feasible).to_string(),
            alg1,
            alg2,
        ]);
    }
    result.push_note("K5 shows the paper's n = 2f + 1 sufficiency on complete graphs (vs 3f + 1 for point-to-point)");
    result
}

/// **E3 — Lemma A.1 / Figure 2.** Graphs with minimum degree `2f − 1` admit
/// no consensus algorithm: the doubled-network construction exhibits a
/// concrete violation when Algorithm 1 (configured for `f`) is run on it.
#[must_use]
pub fn e3_degree_lower_bound() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E3",
        "Figure 2: impossibility when minimum degree < 2f",
        &[
            "graph",
            "f",
            "deficient node degree",
            "violated executions",
            "violation",
        ],
    );
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("path P4", generators::path_graph(4), 1),
        ("cycle C4", generators::cycle(4), 2),
        ("cycle C6", generators::cycle(6), 2),
    ];
    for (name, graph, f) in cases {
        let Some(construction) = degree_construction(&graph, f) else {
            result.push_row([
                name.to_string(),
                f.to_string(),
                "-".into(),
                "-".into(),
                "n/a".into(),
            ]);
            continue;
        };
        let rounds = Algorithm1Node::round_count(graph.node_count(), f) + 4;
        let report = construction.demonstrate(|_id, input| Algorithm1Node::new(input), rounds);
        result.push_row([
            name.to_string(),
            f.to_string(),
            graph.min_degree().to_string(),
            report.violated_executions().join(","),
            yes_no(report.exhibits_violation()).to_string(),
        ]);
    }
    result.push_note(
        "a violation in E1/E2/E3 shows no algorithm can be correct on the deficient graph",
    );
    result
}

/// **E4 — Lemma A.2 / Figure 3.** Graphs with connectivity `≤ ⌊3f/2⌋` admit
/// no consensus algorithm; the cut-based doubled network exhibits the
/// violation.
#[must_use]
pub fn e4_connectivity_lower_bound() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E4",
        "Figure 3: impossibility when connectivity < floor(3f/2) + 1",
        &[
            "graph",
            "f",
            "connectivity",
            "required",
            "violated executions",
            "violation",
        ],
    );
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("cycle C6", generators::cycle(6), 2),
        (
            "two blobs through a 3-cut",
            generators::deficient_connectivity(2, 3),
            2,
        ),
        ("path P5", generators::path_graph(5), 1),
    ];
    for (name, graph, f) in cases {
        let kappa = connectivity::vertex_connectivity(&graph);
        let required = conditions::local_broadcast_connectivity_requirement(f);
        let Some(construction) = connectivity_construction(&graph, f) else {
            result.push_row([
                name.to_string(),
                f.to_string(),
                kappa.to_string(),
                required.to_string(),
                "-".into(),
                "n/a".into(),
            ]);
            continue;
        };
        let rounds = Algorithm1Node::round_count(graph.node_count(), f) + 4;
        let report = construction.demonstrate(|_id, input| Algorithm1Node::new(input), rounds);
        result.push_row([
            name.to_string(),
            f.to_string(),
            kappa.to_string(),
            required.to_string(),
            report.violated_executions().join(","),
            yes_no(report.exhibits_violation()).to_string(),
        ]);
    }
    result
}

/// **E5 — requirement comparison (Theorems 4.1 + 5.1 vs Dolev 1982).** For a
/// family of graphs: the largest tolerable `f` under local broadcast versus
/// point-to-point, plus the structural quantities the two characterizations
/// read off.
#[must_use]
pub fn e5_threshold_sweep() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E5",
        "Max tolerable f: local broadcast vs point-to-point",
        &[
            "graph",
            "n",
            "min degree",
            "connectivity",
            "max f (local broadcast)",
            "max f (efficient 2f-conn)",
            "max f (point-to-point)",
        ],
    );
    let mut graphs: Vec<(String, Graph)> = Vec::new();
    for n in [4usize, 5, 6, 7, 9, 11] {
        graphs.push((format!("K{n}"), generators::complete(n)));
    }
    for n in [5usize, 7, 9] {
        graphs.push((format!("C{n}"), generators::cycle(n)));
    }
    for n in [6usize, 8, 9, 11] {
        graphs.push((format!("C{n}(1,2)"), generators::circulant(n, &[1, 2])));
    }
    graphs.push(("Q3 hypercube".to_string(), generators::hypercube(3)));
    graphs.push(("wheel W8".to_string(), generators::wheel(8)));
    for (k, n) in [(4usize, 9usize), (5, 11), (6, 13)] {
        graphs.push((format!("Harary H{k},{n}"), generators::harary(k, n)));
    }
    let mut lb_wins = 0usize;
    for (name, graph) in graphs {
        let lb = conditions::max_f_local_broadcast(&graph);
        let eff = conditions::max_f_efficient(&graph);
        let p2p = conditions::max_f_point_to_point(&graph);
        if lb > p2p {
            lb_wins += 1;
        }
        result.push_row([
            name,
            graph.node_count().to_string(),
            graph.min_degree().to_string(),
            connectivity::vertex_connectivity(&graph).to_string(),
            lb.to_string(),
            eff.to_string(),
            p2p.to_string(),
        ]);
    }
    result.push_note(format!(
        "local broadcast tolerates strictly more faults than point-to-point on {lb_wins} of the graphs; it is never worse"
    ));
    result
}

/// **E6 — round/message complexity (Theorem 5.6).** Measured rounds and
/// transmissions of Algorithm 1 (exponential phases), Algorithm 2 (`3n`
/// rounds) and the point-to-point baseline, on graphs where each applies.
#[must_use]
pub fn e6_round_complexity() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E6",
        "Rounds and transmissions: Algorithm 1 vs Algorithm 2 vs point-to-point baseline",
        &[
            "graph",
            "f",
            "algorithm",
            "phases",
            "rounds (measured)",
            "transmissions",
        ],
    );
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("C5", generators::cycle(5), 1),
        ("C7", generators::cycle(7), 1),
        ("K5", generators::complete(5), 2),
    ];
    for (name, graph, f) in cases {
        let n = graph.node_count();
        let faulty = NodeSet::singleton(NodeId::new(1));
        let inputs = InputAssignment::from_bits(n, 0b0110101 & ((1 << n) - 1));
        let mut adversary = Strategy::TamperRelays.into_adversary();
        let (_, t1) = runner::run_algorithm1(&graph, f, &inputs, &faulty, &mut adversary);
        result.push_row([
            name.to_string(),
            f.to_string(),
            "Algorithm 1".to_string(),
            Algorithm1Node::phase_count(n, f).to_string(),
            t1.rounds().to_string(),
            t1.total_transmissions().to_string(),
        ]);
        let mut adversary = Strategy::TamperRelays.into_adversary();
        let (_, t2) = runner::run_algorithm2(&graph, f, &inputs, &faulty, &mut adversary);
        result.push_row([
            name.to_string(),
            f.to_string(),
            "Algorithm 2".to_string(),
            "3".to_string(),
            t2.rounds().to_string(),
            t2.total_transmissions().to_string(),
        ]);
        if conditions::point_to_point_feasible(&graph, f) {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            let (_, tp) = runner::run_p2p_baseline(&graph, f, &inputs, &faulty, &mut adversary);
            result.push_row([
                name.to_string(),
                f.to_string(),
                "p2p baseline".to_string(),
                (f + 1).to_string(),
                tp.rounds().to_string(),
                tp.total_transmissions().to_string(),
            ]);
        }
    }
    result.push_note("Algorithm 2 runs in 3n rounds; Algorithm 1 needs n·Σ C(n,i) rounds — the gap grows combinatorially with n and f");
    result
}

/// **E7 — hybrid trade-off (Theorem 6.1).** The connectivity requirement as a
/// function of the number of equivocating faults `t`, the feasibility of
/// concrete graphs across `t`, and an executed Algorithm 3 run per feasible
/// point on `K5`.
#[must_use]
pub fn e7_hybrid_tradeoff() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E7",
        "Hybrid model: required connectivity and feasibility as t grows",
        &[
            "f",
            "t",
            "required connectivity",
            "K5 feasible",
            "K7 feasible",
            "C9(1,2) feasible",
            "alg3 on K5",
        ],
    );
    let k5 = generators::complete(5);
    let k7 = generators::complete(7);
    let c9 = generators::paper_fig1b();
    for f in 1..=3usize {
        for t in 0..=f {
            let req = conditions::hybrid_connectivity_requirement(f, t);
            let k5_ok = conditions::hybrid_feasible(&k5, f, t);
            let run = if k5_ok && f == 1 {
                let faulty = NodeSet::singleton(NodeId::new(4));
                let equivocators = if t > 0 {
                    faulty.clone()
                } else {
                    NodeSet::new()
                };
                let inputs = InputAssignment::from_bits(5, 0b00110);
                let mut adversary = Strategy::Equivocate.into_adversary();
                let (o, _) = runner::run_algorithm3(
                    &k5,
                    f,
                    t,
                    &equivocators,
                    &inputs,
                    &faulty,
                    &mut adversary,
                );
                yes_no(o.verdict().is_correct()).to_string()
            } else {
                "(not run)".to_string()
            };
            result.push_row([
                f.to_string(),
                t.to_string(),
                req.to_string(),
                yes_no(k5_ok).to_string(),
                yes_no(conditions::hybrid_feasible(&k7, f, t)).to_string(),
                yes_no(conditions::hybrid_feasible(&c9, f, t)).to_string(),
                run,
            ]);
        }
    }
    result.push_note("t = 0 reproduces the local broadcast requirement, t = f the point-to-point requirement (2f+1)");
    result
}

/// **E8 — Section 5.3 tool.** Reliable receive and fault identification on
/// `2f`-connected graphs: with a tampering relay, how many nodes identify the
/// faulty node and become type A.
#[must_use]
pub fn e8_reliable_receive() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E8",
        "Reliable receive / fault identification (Algorithm 2 phase 2)",
        &[
            "graph",
            "f",
            "strategy",
            "type A nodes",
            "correctly identified faults",
            "false accusations",
        ],
    );
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("C5", generators::cycle(5), 1),
        ("K5", generators::complete(5), 2),
    ];
    for (name, graph, f) in cases {
        for strategy in [
            Strategy::TamperRelays,
            Strategy::TamperAll,
            Strategy::Honest,
        ] {
            let n = graph.node_count();
            let faulty: NodeSet = (0..f).map(NodeId::new).collect();
            let inputs = InputAssignment::from_bits(n, 0b101010 & ((1 << n) - 1));
            let nodes: Vec<Algorithm2Node> = graph
                .nodes()
                .map(|v| Algorithm2Node::new(inputs.get(v)))
                .collect();
            let mut network = Network::new(
                graph.clone(),
                CommModel::LocalBroadcast,
                faulty.clone(),
                nodes,
            )
            .with_fault_bound(f);
            let mut adversary = strategy.clone().into_adversary();
            let _ = network.run(&mut adversary, Algorithm2Node::round_count(n) + 2);
            let mut type_a = 0usize;
            let mut correct = 0usize;
            let mut false_accusations = 0usize;
            for v in graph.nodes() {
                if faulty.contains(v) {
                    continue;
                }
                let node = network.node(v);
                if node.is_type_a() {
                    type_a += 1;
                }
                for accused in node.identified_faults().iter() {
                    if faulty.contains(accused) {
                        correct += 1;
                    } else {
                        false_accusations += 1;
                    }
                }
            }
            result.push_row([
                name.to_string(),
                f.to_string(),
                strategy.name().to_string(),
                type_a.to_string(),
                correct.to_string(),
                false_accusations.to_string(),
            ]);
        }
    }
    result.push_note("identification is sound: false accusations must always be 0");
    result
}

/// Runs every experiment in order (E1–E8). Used by the `report` example and
/// the benchmark harness.
#[must_use]
pub fn all_experiments() -> Vec<ExperimentResult> {
    vec![
        e1_fig1a_cycle(),
        e2_fig1b_f2(),
        e3_degree_lower_bound(),
        e4_connectivity_lower_bound(),
        e5_threshold_sweep(),
        e6_round_complexity(),
        e7_hybrid_tradeoff(),
        e8_reliable_receive(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_only_correct_runs() {
        let result = e1_fig1a_cycle();
        assert_eq!(result.id, "E1");
        assert!(!result.rows.is_empty());
        let correct_col = result.headers.iter().position(|h| h == "correct").unwrap();
        assert!(result.rows.iter().all(|row| row[correct_col] == "yes"));
    }

    #[test]
    fn e3_always_exhibits_violations() {
        let result = e3_degree_lower_bound();
        let col = result
            .headers
            .iter()
            .position(|h| h == "violation")
            .unwrap();
        assert!(result.rows.iter().all(|row| row[col] == "yes"));
    }

    #[test]
    fn e4_always_exhibits_violations() {
        let result = e4_connectivity_lower_bound();
        let col = result
            .headers
            .iter()
            .position(|h| h == "violation")
            .unwrap();
        assert!(result.rows.iter().all(|row| row[col] == "yes"));
    }

    #[test]
    fn e5_shows_local_broadcast_never_worse() {
        let result = e5_threshold_sweep();
        let lb = result
            .headers
            .iter()
            .position(|h| h.contains("local broadcast"))
            .unwrap();
        let p2p = result
            .headers
            .iter()
            .position(|h| h.contains("point-to-point"))
            .unwrap();
        for row in &result.rows {
            let lb_f: usize = row[lb].parse().unwrap();
            let p2p_f: usize = row[p2p].parse().unwrap();
            assert!(lb_f >= p2p_f, "row {row:?}");
        }
    }

    #[test]
    fn e7_requirement_endpoints_match_models() {
        let result = e7_hybrid_tradeoff();
        // For f = 2: t = 0 requires 4, t = 2 requires 5.
        let find = |f: &str, t: &str| {
            result
                .rows
                .iter()
                .find(|r| r[0] == f && r[1] == t)
                .map(|r| r[2].clone())
                .unwrap()
        };
        assert_eq!(find("2", "0"), "4");
        assert_eq!(find("2", "2"), "5");
        assert_eq!(find("3", "0"), "5");
        assert_eq!(find("3", "3"), "7");
    }

    #[test]
    fn e8_has_no_false_accusations() {
        let result = e8_reliable_receive();
        let col = result
            .headers
            .iter()
            .position(|h| h == "false accusations")
            .unwrap();
        assert!(result.rows.iter().all(|row| row[col] == "0"));
    }
}
