//! Experiments re-expressed as campaign specs.
//!
//! E1 and E6 exist twice on purpose: the original hardcoded functions in
//! [`crate::e1_fig1a_cycle`] / [`crate::e6_round_complexity`] and the
//! declarative [`CampaignSpec`]s here, which drive the `lbc-campaign`
//! engine instead of bespoke loops. The committed files
//! `examples/campaigns/e1_fig1a.json` and `examples/campaigns/e6_complexity.json`
//! are the serialized forms of these builders (a test keeps them in sync),
//! so the same experiments run from the CLI:
//!
//! ```text
//! lbc campaign examples/campaigns/e1_fig1a.json --strict
//! ```

use lbc_campaign::spec::{FRange, RegimeSpec};
use lbc_campaign::{
    run_campaign, CampaignReport, CampaignSpec, FaultPolicy, GraphFamily, InputPolicy, SearchSpec,
    SizeSpec, StrategySpec, SweepSpec,
};
use lbc_consensus::AlgorithmKind;

use crate::result::ExperimentResult;

/// **E1 as a campaign.** Figure 1(a): the 5-cycle with `f = 1`, every fault
/// placement × strategy. Two sweeps because the grid is not rectangular:
/// Algorithm 2 is only guaranteed against commission faults, so the `silent`
/// strategy runs under Algorithm 1 alone (the Appendix C omission gap).
#[must_use]
pub fn e1_campaign_spec() -> CampaignSpec {
    let sweep = |algorithms: Vec<AlgorithmKind>, strategies: Vec<StrategySpec>| SweepSpec {
        family: GraphFamily::Fig1a,
        sizes: SizeSpec::List(vec![5]),
        f: FRange::exactly(1),
        algorithms,
        regimes: RegimeSpec::default_axis(),
        strategies,
        faults: FaultPolicy::Exhaustive,
        inputs: InputPolicy::Bits(0b01101),
    };
    CampaignSpec {
        name: "e1_fig1a".to_string(),
        seed: 1,
        sweeps: vec![
            sweep(
                vec![AlgorithmKind::Algorithm1],
                vec![
                    StrategySpec::Silent,
                    StrategySpec::TamperRelays,
                    StrategySpec::Equivocate,
                ],
            ),
            sweep(
                vec![AlgorithmKind::Algorithm2],
                vec![StrategySpec::TamperRelays, StrategySpec::Equivocate],
            ),
        ],
        search: None,
        limits: None,
        serve: None,
    }
}

/// **E6 as a campaign.** Theorem 5.6 round/message complexity: Algorithm 1
/// vs Algorithm 2 on the E6 cases (`C5`/`C7` at `f = 1`, `K5` at `f = 2`),
/// fixed fault at node 1, the E6 input pattern. (E6's point-to-point
/// baseline rows are feasibility-gated and none of these graphs qualify,
/// exactly as in the hardcoded experiment.)
#[must_use]
pub fn e6_campaign_spec() -> CampaignSpec {
    let sweep = |family: GraphFamily, sizes: Vec<usize>, f: usize| SweepSpec {
        family,
        sizes: SizeSpec::List(sizes),
        f: FRange::exactly(f),
        algorithms: vec![AlgorithmKind::Algorithm1, AlgorithmKind::Algorithm2],
        regimes: RegimeSpec::default_axis(),
        strategies: vec![StrategySpec::TamperRelays],
        faults: FaultPolicy::Fixed(vec![vec![1], vec![1, 3]]),
        inputs: InputPolicy::Bits(0b0110101),
    };
    CampaignSpec {
        name: "e6_complexity".to_string(),
        seed: 6,
        sweeps: vec![
            sweep(GraphFamily::Cycle, vec![5, 7], 1),
            sweep(GraphFamily::Complete, vec![5], 2),
        ],
        search: None,
        limits: None,
        serve: None,
    }
}

/// **The boundary sweep as a search spec.** Where `boundary_sweep.json`
/// *samples* the degree/connectivity boundary with declared grids, this
/// spec hands the same cells to the per-cell worst-case search
/// (`lbc search`): the C13 × Algorithm 2 cell deliberately declares only
/// commission strategies (`tamper-relays`, `random`) — the Appendix C
/// omission gap is **not** in its grid — and the search must rediscover it
/// from the built-in strategy catalogue and minimize it back to `silent`.
/// Mirrored by the committed `examples/campaigns/search_boundary.json`
/// (a test keeps them in sync).
#[must_use]
pub fn boundary_search_spec() -> CampaignSpec {
    let boundary = |family: GraphFamily, sizes: Vec<usize>, f: FRange| SweepSpec {
        family,
        sizes: SizeSpec::List(sizes),
        f,
        algorithms: vec![AlgorithmKind::Algorithm1],
        regimes: RegimeSpec::default_axis(),
        strategies: vec![StrategySpec::TamperRelays, StrategySpec::Equivocate],
        faults: FaultPolicy::WorstCase,
        inputs: InputPolicy::Alternating,
    };
    CampaignSpec {
        name: "search_boundary".to_string(),
        seed: 41,
        sweeps: vec![
            SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![13]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm2],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![
                    StrategySpec::TamperRelays,
                    StrategySpec::Random { seed: None },
                ],
                faults: FaultPolicy::WorstCase,
                inputs: InputPolicy::Alternating,
            },
            boundary(GraphFamily::Cycle, vec![5, 7], FRange { from: 1, to: 2 }),
            boundary(
                GraphFamily::Circulant {
                    offsets: vec![1, 2],
                },
                vec![9],
                FRange { from: 2, to: 3 },
            ),
        ],
        search: Some(SearchSpec {
            budget: 120,
            beam: 4,
            mutations: 6,
            rounds: 4,
        }),
        limits: None,
        serve: None,
    }
}

/// **The execution-regime boundary as a campaign.** The asynchronous
/// algorithm's threshold is `(2f + 1)`-connectivity, strictly above the
/// synchronous `⌊3f/2⌋ + 1`; this spec walks both sides of it with the
/// scheduler grid as an explicit axis:
///
/// * **conforming** — `C9(1,2)` (`κ = 4 ≥ 3`) at `f = 1`: the async
///   algorithm under every scheduler family (plus the synchronous regime,
///   where the fairness bound degenerates to 1) against omission,
///   commission and equivocation strategies — all correct;
/// * **sync control** — the 5-cycle at `f = 1` under Algorithm 1 in the
///   synchronous regime: correct (the cycle satisfies the synchronous
///   conditions);
/// * **sub-threshold** — the *same* 5-cycle under the async algorithm
///   (`κ = 2 < 3`): tampered relays reproducibly break agreement.
///
/// Mirrored by the committed `examples/campaigns/async_boundary.json`
/// (a test keeps them in sync); `scripts/async_smoke.sh` gates it in CI.
#[must_use]
pub fn async_boundary_campaign_spec() -> CampaignSpec {
    let async_regimes = vec![
        RegimeSpec::Sync,
        RegimeSpec::Async {
            scheduler: lbc_model::SchedulerKind::Fifo,
            delay: 2,
            seed: None,
        },
        RegimeSpec::Async {
            scheduler: lbc_model::SchedulerKind::EdgeLag,
            delay: 3,
            seed: None,
        },
        RegimeSpec::Async {
            scheduler: lbc_model::SchedulerKind::DelayMax,
            delay: 3,
            seed: None,
        },
    ];
    CampaignSpec {
        name: "async_boundary".to_string(),
        seed: 2026,
        sweeps: vec![
            SweepSpec {
                family: GraphFamily::Circulant {
                    offsets: vec![1, 2],
                },
                sizes: SizeSpec::List(vec![9]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::AsyncFlood],
                regimes: async_regimes.clone(),
                strategies: vec![
                    StrategySpec::TamperRelays,
                    StrategySpec::Silent,
                    StrategySpec::Equivocate,
                    StrategySpec::Sleeper { honest_rounds: 4 },
                ],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Random { count: 2 },
            },
            SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![StrategySpec::TamperRelays],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Exhaustive,
            },
            SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::AsyncFlood],
                regimes: vec![
                    RegimeSpec::Async {
                        scheduler: lbc_model::SchedulerKind::EdgeLag,
                        delay: 3,
                        seed: None,
                    },
                    RegimeSpec::Async {
                        scheduler: lbc_model::SchedulerKind::Fifo,
                        delay: 2,
                        seed: None,
                    },
                ],
                strategies: vec![StrategySpec::TamperRelays],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Exhaustive,
            },
        ],
        search: None,
        limits: None,
        serve: None,
    }
}

/// **The partial-synchrony (GST) boundary as a campaign.** The asynchronous
/// algorithm's `(2f + 1)`-connectivity threshold is *regime-independent*:
/// above it the protocol absorbs any finite pre-GST disruption (it re-derives
/// its decision horizon from `gst + D`), below it even a schedule the plain
/// asynchronous regime tolerates can be weaponized by timing alone. This
/// spec pins both sides:
///
/// * **timing boundary** — the 5-cycle at `f = 1` (`κ = 2 < 3`) under a
///   `sleeper(12)` adversary that stays honest past the *synchronous* and
///   *fifo-2 asynchronous* decision horizons: correct under `sync`, correct
///   under `async-fifo-d2`, but a hold-until-GST schedule (`gst = 12`,
///   hold `{2}`, same fifo-2 scheduler after GST) stretches the horizon past
///   the sleeper's wake-up round and agreement breaks — the violation is
///   *purely* a timing attack, demonstrated deterministically;
/// * **graceful degradation** — `C9(1,2)` (`κ = 4 ≥ 3`) at `f = 1` under the
///   same hold-until-GST schedules plus the scheduler-aware strategies
///   (`straddle-tamper`, `gst-equivocate`): all correct.
///
/// The `search` block hands the same cells to `lbc search`, which must
/// discover a violating GST-straddling candidate on the partial-sync cycle
/// cell and emit a replayable partial-sync fragment.
///
/// Mirrored by the committed `examples/campaigns/gst_boundary.json`
/// (a test keeps them in sync); `scripts/gst_smoke.sh` gates it in CI.
#[must_use]
pub fn gst_boundary_campaign_spec() -> CampaignSpec {
    CampaignSpec {
        name: "gst_boundary".to_string(),
        seed: 2026,
        sweeps: vec![
            SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::AsyncFlood],
                regimes: vec![
                    RegimeSpec::Sync,
                    RegimeSpec::Async {
                        scheduler: lbc_model::SchedulerKind::Fifo,
                        delay: 2,
                        seed: None,
                    },
                    RegimeSpec::PartialSync {
                        gst: 12,
                        hold: lbc_model::AdversarialSchedule::holding(&[2]),
                        scheduler: lbc_model::SchedulerKind::Fifo,
                        delay: 2,
                        seed: None,
                    },
                ],
                strategies: vec![StrategySpec::Sleeper { honest_rounds: 12 }],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Exhaustive,
            },
            SweepSpec {
                family: GraphFamily::Circulant {
                    offsets: vec![1, 2],
                },
                sizes: SizeSpec::List(vec![9]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::AsyncFlood],
                regimes: vec![
                    RegimeSpec::PartialSync {
                        gst: 12,
                        hold: lbc_model::AdversarialSchedule::holding(&[2]),
                        scheduler: lbc_model::SchedulerKind::Fifo,
                        delay: 2,
                        seed: None,
                    },
                    RegimeSpec::PartialSync {
                        gst: 8,
                        hold: lbc_model::AdversarialSchedule::holding(&[0, 4]),
                        scheduler: lbc_model::SchedulerKind::EdgeLag,
                        delay: 3,
                        seed: None,
                    },
                ],
                strategies: vec![
                    StrategySpec::TamperRelays,
                    StrategySpec::Equivocate,
                    StrategySpec::StraddleTamper,
                    StrategySpec::GstEquivocate,
                ],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Random { count: 2 },
            },
        ],
        search: Some(SearchSpec {
            budget: 800,
            beam: 4,
            mutations: 6,
            rounds: 8,
        }),
        limits: None,
        serve: None,
    }
}

/// Renders a campaign report in the tabular [`ExperimentResult`] shape the
/// rest of the harness uses, with rows sorted by
/// `(graph, f, algorithm, strategy, faulty)`.
#[must_use]
pub fn report_as_experiment(id: &str, title: &str, report: &CampaignReport) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        id,
        title,
        &[
            "graph",
            "f",
            "algorithm",
            "strategy",
            "faulty",
            "correct",
            "rounds",
            "transmissions",
        ],
    );
    let mut records: Vec<_> = report.records().iter().collect();
    records.sort_by_key(|r| {
        (
            r.graph.clone(),
            r.f,
            r.algorithm.name(),
            r.strategy.clone(),
            r.faulty.iter().collect::<Vec<_>>(),
        )
    });
    for r in records {
        result.push_row([
            r.graph.clone(),
            r.f.to_string(),
            r.algorithm.name().to_string(),
            r.strategy.clone(),
            r.faulty.to_string(),
            if r.verdict.is_correct() { "yes" } else { "no" }.to_string(),
            r.stats.rounds.to_string(),
            r.stats.transmissions.to_string(),
        ]);
    }
    result
}

/// Runs [`e1_campaign_spec`] through the campaign engine and tabulates it.
#[must_use]
pub fn e1_via_campaign() -> ExperimentResult {
    let report = run_campaign(&e1_campaign_spec(), 4).expect("E1 spec expands");
    let mut result = report_as_experiment(
        "E1c",
        "Figure 1(a) via lbc-campaign: 5-cycle, f = 1, all placements × strategies",
        &report,
    );
    result.push_note(format!(
        "campaign engine: {} scenarios, all_correct = {}",
        report.records().len(),
        report.all_correct()
    ));
    result
}

/// Runs [`e6_campaign_spec`] through the campaign engine and tabulates it.
#[must_use]
pub fn e6_via_campaign() -> ExperimentResult {
    let report = run_campaign(&e6_campaign_spec(), 4).expect("E6 spec expands");
    let mut result = report_as_experiment(
        "E6c",
        "Theorem 5.6 complexity via lbc-campaign: Algorithm 1 vs Algorithm 2",
        &report,
    );
    result.push_note(
        "Algorithm 2 runs in <= 3n rounds; Algorithm 1 in n * sum C(n,i) — same gap as E6"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_consensus::{Algorithm1Node, Algorithm2Node};

    fn committed_spec(file: &str) -> CampaignSpec {
        let path = format!(
            "{}/../../examples/campaigns/{file}",
            env!("CARGO_MANIFEST_DIR")
        );
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|err| panic!("cannot read {path}: {err}"));
        CampaignSpec::from_json_text(&text).expect("committed spec parses")
    }

    #[test]
    fn committed_e1_spec_matches_the_builder() {
        assert_eq!(committed_spec("e1_fig1a.json"), e1_campaign_spec());
    }

    #[test]
    fn committed_e6_spec_matches_the_builder() {
        assert_eq!(committed_spec("e6_complexity.json"), e6_campaign_spec());
    }

    #[test]
    fn committed_search_boundary_spec_matches_the_builder() {
        assert_eq!(
            committed_spec("search_boundary.json"),
            boundary_search_spec()
        );
    }

    #[test]
    fn committed_async_boundary_spec_matches_the_builder() {
        assert_eq!(
            committed_spec("async_boundary.json"),
            async_boundary_campaign_spec()
        );
    }

    /// The acceptance gate of the execution-regime axis, trimmed for debug
    /// builds (the CI async smoke runs the full committed spec against the
    /// release binary): above the `(2f + 1)`-connectivity threshold the
    /// async algorithm is correct under every scheduler; on the same
    /// sub-threshold cycle where synchronous Algorithm 1 is correct, the
    /// async regime reproducibly breaks agreement.
    #[test]
    fn async_boundary_separates_the_regimes() {
        let mut spec = async_boundary_campaign_spec();
        // Trim: one strategy and one input per conforming cell, a fixed
        // input pattern for the cycle sweeps.
        spec.sweeps[0].strategies = vec![StrategySpec::TamperRelays];
        spec.sweeps[0].inputs = InputPolicy::Bits(0b010110011);
        spec.sweeps[1].inputs = InputPolicy::Bits(0b11000);
        spec.sweeps[2].inputs = InputPolicy::Bits(0b11000);
        let report = run_campaign(&spec, 4).expect("async boundary spec expands");
        let mut conforming = 0;
        let mut sync_control = 0;
        let mut sub_threshold_violations = 0;
        for record in report.records() {
            match (record.family.as_str(), record.algorithm) {
                ("circulant", AlgorithmKind::AsyncFlood) => {
                    conforming += 1;
                    assert!(record.feasible, "C9(1,2) is above the async threshold");
                    assert!(
                        record.verdict.is_correct(),
                        "conforming cell violated under [{}]: faulty={} inputs={}",
                        record.regime,
                        record.faulty,
                        record.inputs
                    );
                }
                ("cycle", AlgorithmKind::Algorithm1) => {
                    sync_control += 1;
                    assert!(
                        record.verdict.is_correct(),
                        "the sync control must stay correct on the cycle"
                    );
                }
                ("cycle", AlgorithmKind::AsyncFlood) => {
                    assert!(!record.feasible, "the cycle is below the async threshold");
                    sub_threshold_violations += usize::from(!record.verdict.is_correct());
                }
                other => panic!("unexpected cell {other:?}"),
            }
        }
        assert!(conforming > 0 && sync_control > 0);
        assert!(
            sub_threshold_violations > 0,
            "the sub-threshold cycle must exhibit an async violation"
        );
    }

    #[test]
    fn committed_gst_boundary_spec_matches_the_builder() {
        assert_eq!(
            committed_spec("gst_boundary.json"),
            gst_boundary_campaign_spec()
        );
    }

    /// The acceptance gate of the partial-synchrony axis, trimmed for debug
    /// builds (the CI gst smoke runs the full committed spec against the
    /// release binary): the `sleeper(12)` cycle cell is correct under the
    /// synchronous regime AND under the plain fifo-2 asynchronous regime,
    /// but violated once a hold-until-GST schedule stretches the decision
    /// horizon past the sleeper's wake-up; the above-threshold circulant
    /// control stays correct under every GST attack.
    #[test]
    fn gst_boundary_separates_the_regimes() {
        let mut spec = gst_boundary_campaign_spec();
        // Trim the control sweep: one scheduler-aware strategy, one fixed
        // input pattern (the cycle sweep is already exhaustive and fast).
        spec.sweeps[1].strategies = vec![StrategySpec::StraddleTamper];
        spec.sweeps[1].inputs = InputPolicy::Bits(0b010110011);
        let report = run_campaign(&spec, 4).expect("gst boundary spec expands");
        let mut by_regime: std::collections::BTreeMap<String, (usize, usize)> =
            std::collections::BTreeMap::new();
        let mut control = 0;
        for record in report.records() {
            match record.family.as_str() {
                "cycle" => {
                    assert!(!record.feasible, "the cycle is below the async threshold");
                    let entry = by_regime.entry(record.regime.clone()).or_default();
                    entry.0 += 1;
                    entry.1 += usize::from(!record.verdict.is_correct());
                }
                "circulant" => {
                    control += 1;
                    assert!(record.feasible, "C9(1,2) is above the async threshold");
                    assert!(
                        record.verdict.is_correct(),
                        "above-threshold cell violated under [{}]: faulty={} inputs={}",
                        record.regime,
                        record.faulty,
                        record.inputs
                    );
                }
                other => panic!("unexpected family {other}"),
            }
        }
        assert!(control > 0);
        assert_eq!(by_regime.len(), 3, "three regimes on the cycle cell");
        for (regime, (total, violations)) in &by_regime {
            assert_eq!(*total, 160, "5 placements x 32 input patterns");
            if regime.starts_with("psync-") {
                assert!(
                    *violations > 0,
                    "the hold-until-GST schedule must break the sleeper"
                );
            } else {
                assert_eq!(
                    *violations, 0,
                    "sleeper(12) must stay correct under [{regime}]"
                );
            }
        }
    }

    /// The acceptance gate of the adversary search: a grid that *omits* the
    /// omission fault must have it rediscovered, minimized back to `silent`,
    /// and emitted as a replay fragment that re-violates under the grid
    /// executor.
    ///
    /// The unit test runs the C13 × Algorithm 2 sweep alone with a trimmed
    /// budget (debug builds make the full boundary spec minutes-slow); the
    /// CI search smoke runs the complete committed spec against the release
    /// binary.
    #[test]
    fn boundary_search_rediscovers_the_c13_omission_gap() {
        let mut spec = boundary_search_spec();
        spec.sweeps.truncate(1);
        spec.search = Some(SearchSpec {
            budget: 40,
            beam: 3,
            mutations: 4,
            rounds: 1,
        });
        let report = lbc_campaign::run_search(&spec, 4).expect("search runs");
        let c13 = report
            .cells()
            .iter()
            .find(|cell| cell.graph == "C13" && cell.algorithm == AlgorithmKind::Algorithm2)
            .expect("the C13/alg2 cell exists");
        assert!(
            c13.best().severity.is_violation(),
            "search failed to rediscover the Appendix C omission gap"
        );
        assert!(!c13.best().severity.verdict().agreement);
        let counterexample = c13.counterexample.as_ref().expect("violation is minimized");
        assert_eq!(
            counterexample.scored.candidate.strategy,
            lbc_adversary::Strategy::Silent,
            "the minimized strategy must be the omission fault itself"
        );
        assert_eq!(counterexample.scored.candidate.faulty.len(), 1);
        let replay = report.counterexample_spec().expect("replay spec exists");
        let replayed = run_campaign(&replay, 4).expect("replay spec expands");
        assert!(
            !replayed.all_correct(),
            "the minimized counterexamples must re-violate when replayed"
        );
    }

    #[test]
    fn e1_campaign_covers_the_grid_and_is_all_correct() {
        let result = e1_via_campaign();
        // 3 strategies × 5 placements (alg1) + 2 strategies × 5 (alg2).
        assert_eq!(result.rows.len(), 25);
        let correct = result.headers.iter().position(|h| h == "correct").unwrap();
        assert!(result.rows.iter().all(|row| row[correct] == "yes"));
        // Same coverage as the hardcoded E1 (which also emits 25 rows).
        assert_eq!(crate::e1_fig1a_cycle().rows.len(), 25);
    }

    #[test]
    fn e6_campaign_reproduces_the_round_complexity_gap() {
        let result = e6_via_campaign();
        let col = |name: &str| result.headers.iter().position(|h| h == name).unwrap();
        let (graph, alg, rounds) = (col("graph"), col("algorithm"), col("rounds"));
        for row in &result.rows {
            let n: usize = match row[graph].as_str() {
                "C5" | "K5" => 5,
                "C7" => 7,
                other => panic!("unexpected graph {other}"),
            };
            let f = if row[graph] == "K5" { 2 } else { 1 };
            let measured: usize = row[rounds].parse().unwrap();
            match row[alg].as_str() {
                "alg1" => assert_eq!(measured, Algorithm1Node::round_count(n, f)),
                "alg2" => assert!(measured <= Algorithm2Node::round_count(n)),
                other => panic!("unexpected algorithm {other}"),
            }
        }
    }
}
