//! The tabular result type shared by all experiments.

use lbc_model::json::{FromJson, Json, JsonError, ToJson};

/// The result of one experiment: a labelled table plus free-form notes.
///
/// Rendering is deliberately plain text so that `cargo bench`/examples can
/// print exactly the rows recorded in `EXPERIMENTS.md`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentResult {
    /// Experiment identifier ("E1" … "E8").
    pub id: String,
    /// Human-readable title referencing the paper artifact.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations (e.g. which side "wins" and by how much).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result with the given identity.
    #[must_use]
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row length must match header length"
        );
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the result as an aligned plain-text table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:width$} |", cell, width = widths[i]));
            }
            line
        };
        let mut out = String::new();
        out.push_str(&format!("{}: {}\n", self.id, self.title));
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let mut separator = String::from("|");
        for width in &widths {
            separator.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        out.push_str(&separator);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

impl ToJson for ExperimentResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("id", self.id.to_json()),
            ("title", self.title.to_json()),
            ("headers", self.headers.to_json()),
            (
                "rows",
                Json::Arr(self.rows.iter().map(ToJson::to_json).collect()),
            ),
            ("notes", self.notes.to_json()),
        ])
    }
}

impl FromJson for ExperimentResult {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value.get(key).ok_or_else(|| JsonError {
                message: format!("experiment result missing '{key}'"),
            })
        };
        Ok(ExperimentResult {
            id: String::from_json(field("id")?)?,
            title: String::from_json(field("title")?)?,
            headers: Vec::<String>::from_json(field("headers")?)?,
            rows: field("rows")?
                .as_array()
                .ok_or_else(|| JsonError {
                    message: "'rows' must be an array".to_string(),
                })?
                .iter()
                .map(Vec::<String>::from_json)
                .collect::<Result<_, _>>()?,
            notes: Vec::<String>::from_json(field("notes")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut result = ExperimentResult::new("E0", "smoke", &["graph", "f", "ok"]);
        result.push_row(["C5", "1", "yes"]);
        result.push_row(["K5", "2", "yes"]);
        result.push_note("all correct");
        let text = result.render_table();
        assert!(text.contains("E0: smoke"));
        assert!(text.contains("| C5"));
        assert!(text.contains("note: all correct"));
        assert_eq!(result.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row length must match")]
    fn mismatched_rows_are_rejected() {
        let mut result = ExperimentResult::new("E0", "smoke", &["a", "b"]);
        result.push_row(["only-one"]);
    }

    #[test]
    fn json_roundtrip() {
        let mut result = ExperimentResult::new("E1", "roundtrip", &["x"]);
        result.push_row(["1"]);
        result.push_note("note");
        let json = result.to_json().to_string();
        let back = ExperimentResult::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, result);
    }
}
