//! The tabular result type shared by all experiments.

use serde::{Deserialize, Serialize};

/// The result of one experiment: a labelled table plus free-form notes.
///
/// Rendering is deliberately plain text so that `cargo bench`/examples can
/// print exactly the rows recorded in `EXPERIMENTS.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment identifier ("E1" … "E8").
    pub id: String,
    /// Human-readable title referencing the paper artifact.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations (e.g. which side "wins" and by how much).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result with the given identity.
    #[must_use]
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row length must match header length"
        );
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the result as an aligned plain-text table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:width$} |", cell, width = widths[i]));
            }
            line
        };
        let mut out = String::new();
        out.push_str(&format!("{}: {}\n", self.id, self.title));
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let mut separator = String::from("|");
        for width in &widths {
            separator.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        out.push_str(&separator);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut result = ExperimentResult::new("E0", "smoke", &["graph", "f", "ok"]);
        result.push_row(["C5", "1", "yes"]);
        result.push_row(["K5", "2", "yes"]);
        result.push_note("all correct");
        let text = result.render_table();
        assert!(text.contains("E0: smoke"));
        assert!(text.contains("| C5"));
        assert!(text.contains("note: all correct"));
        assert_eq!(result.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row length must match")]
    fn mismatched_rows_are_rejected() {
        let mut result = ExperimentResult::new("E0", "smoke", &["a", "b"]);
        result.push_row(["only-one"]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut result = ExperimentResult::new("E1", "roundtrip", &["x"]);
        result.push_row(["1"]);
        let json = serde_json::to_string(&result).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, result);
    }
}
