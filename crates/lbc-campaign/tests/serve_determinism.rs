//! Repeated-consensus service guarantees.
//!
//! * The canonical serve report must be **byte-identical at 1, 2 and 8
//!   workers** — lanes are the parallelism unit and contribute no
//!   ordering or randomness.
//! * A long chain must keep the epoch-scoped ledger occupancy flat: at
//!   most two live sessions per tag (current + draining predecessor) and
//!   a bounded allocation high-water mark, over hundreds of instances.
//! * Chaining must not change *decisions*: every instance of a lane run
//!   over a partial-synchrony regime must decide exactly as the same
//!   configuration replayed as an independent one-shot run.

use lbc_adversary::Strategy;
use lbc_campaign::{
    run_serve, CampaignSpec, GraphFamily, InputPolicy, RegimeSpec, ServeLaneSpec, ServeSpec,
    StrategySpec,
};
use lbc_consensus::{runner, AlgorithmKind};
use lbc_graph::generators;
use lbc_model::{AdversarialSchedule, InputAssignment, NodeId, NodeSet, SchedulerKind};

fn serve_spec(name: &str, seed: u64, instances: usize, lanes: Vec<ServeLaneSpec>) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        seed,
        sweeps: Vec::new(),
        search: None,
        limits: None,
        serve: Some(ServeSpec { instances, lanes }),
    }
}

/// The psync lane the one-shot comparison replays: every knob is either
/// explicit or seed-independent, so the exact per-instance configuration
/// can be rebuilt outside the serve executor.
fn psync_lane() -> ServeLaneSpec {
    ServeLaneSpec {
        family: GraphFamily::Fig1b,
        n: 9,
        f: 1,
        algorithm: AlgorithmKind::AsyncFlood,
        regime: RegimeSpec::PartialSync {
            gst: 4,
            hold: AdversarialSchedule::holding(&[2]),
            scheduler: SchedulerKind::Fifo,
            delay: 1,
            seed: Some(5),
        },
        strategy: StrategySpec::Silent,
        faulty: vec![3],
        inputs: InputPolicy::Exhaustive,
    }
}

#[test]
fn serve_report_is_byte_identical_across_worker_counts() {
    let spec = serve_spec(
        "serve-workers",
        41,
        30,
        vec![
            ServeLaneSpec {
                family: GraphFamily::Fig1b,
                n: 9,
                f: 1,
                algorithm: AlgorithmKind::AsyncFlood,
                regime: RegimeSpec::Async {
                    scheduler: SchedulerKind::EdgeLag,
                    delay: 2,
                    seed: None,
                },
                strategy: StrategySpec::Silent,
                faulty: vec![4],
                inputs: InputPolicy::Random { count: 16 },
            },
            ServeLaneSpec {
                family: GraphFamily::Fig1a,
                n: 5,
                f: 1,
                algorithm: AlgorithmKind::Algorithm1,
                regime: RegimeSpec::Sync,
                strategy: StrategySpec::CrashAfter(3),
                faulty: vec![2],
                inputs: InputPolicy::Random { count: 8 },
            },
            psync_lane(),
        ],
    );

    let canonical = run_serve(&spec, 1).expect("serve").to_json().to_string();
    for workers in [2, 8] {
        let report = run_serve(&spec, workers).expect("serve");
        assert!(report.all_correct(), "workers={workers} not all-correct");
        assert_eq!(
            report.to_json().to_string(),
            canonical,
            "canonical serve report differs at {workers} workers"
        );
    }
}

#[test]
fn chain_channel_occupancy_stays_bounded_over_500_instances() {
    let graph = generators::cycle(5);
    let faulty = NodeSet::singleton(NodeId::new(2));
    let mut adversary = Strategy::Silent.into_adversary();
    let (results, stats) = runner::run_chain_under(
        AlgorithmKind::Algorithm1,
        &lbc_model::Regime::Synchronous,
        &graph,
        1,
        &faulty,
        500,
        |k| InputAssignment::from_bits(5, k % 32),
        &mut adversary,
    );

    assert_eq!(results.len(), 500);
    for (k, result) in results.iter().enumerate() {
        assert!(
            result.outcome.verdict().is_correct(),
            "instance {k} incorrect"
        );
    }
    // The occupancy walls the serve gate enforces: never more than the
    // current session plus its draining predecessor live per tag, and an
    // allocation high-water mark that does not grow with the chain length.
    assert!(
        stats.max_live_per_tag <= 2,
        "{} live sessions per tag",
        stats.max_live_per_tag
    );
    assert!(
        stats.max_allocated_channels <= 3 * stats.live_tags.max(1),
        "{} channels allocated across {} tags after 500 instances",
        stats.max_allocated_channels,
        stats.live_tags
    );
}

#[test]
fn psync_serve_lane_decides_like_500_one_shot_runs() {
    let lane = psync_lane();
    let spec = serve_spec("serve-psync", 97, 500, vec![lane.clone()]);
    let report = run_serve(&spec, 2).expect("serve");
    let records = &report.lanes()[0].instances;
    assert_eq!(records.len(), 500);

    // Rebuild the lane's exact per-instance configuration: the regime seed
    // is explicit, `silent` is stateless and `exhaustive` inputs ignore
    // the derived seed — the lane seed influences nothing.
    let graph = GraphFamily::Fig1b.build(9);
    let regime = lane.regime.materialize(0);
    let faulty = NodeSet::singleton(NodeId::new(3));
    let input_sets = lane.inputs.assignments(9, 0).expect("inputs");

    for (k, record) in records.iter().enumerate() {
        let mut adversary = Strategy::Silent.into_adversary();
        let (outcome, _) = runner::run_kind_under(
            AlgorithmKind::AsyncFlood,
            &regime,
            &graph,
            1,
            &input_sets[k % input_sets.len()],
            &faulty,
            &mut adversary,
        );
        assert_eq!(
            record.verdict,
            outcome.verdict(),
            "instance {k}: chained verdict differs from the one-shot run"
        );
        assert_eq!(
            record.agreed,
            outcome.agreed_value(),
            "instance {k}: chained decision differs from the one-shot run"
        );
        assert!(record.verdict.is_correct(), "instance {k} incorrect");
    }
}
