//! Determinism guarantees of the per-cell worst-case search.
//!
//! * The canonical search report must be **byte-identical at any worker
//!   count** — same counterexamples, same severity ordering, same frontier
//!   bytes whether cells run serially or on a pool.
//! * **Budget-resume equals one-shot**: running with a small budget,
//!   serializing the canonical report, and resuming it under a larger
//!   budget must produce exactly the report a one-shot run at the larger
//!   budget produces (the mutation schedule is derived per cell and per
//!   round, not from run history).

use lbc_campaign::spec::{FRange, RegimeSpec};
use lbc_campaign::{
    run_search, run_search_resumed, CampaignSpec, FaultPolicy, GraphFamily, InputPolicy,
    SearchSpec, SizeSpec, StrategySpec, SweepSpec,
};
use lbc_consensus::AlgorithmKind;
use lbc_model::json::Json;

/// A small two-cell search over a cheap algorithm/graph pair; the C7 f=2
/// cell sits past the degree boundary, so the search has a violation to
/// converge on and minimize.
fn search_spec(budget: usize) -> CampaignSpec {
    CampaignSpec {
        name: "search-determinism".to_string(),
        seed: 2025,
        sweeps: vec![SweepSpec {
            family: GraphFamily::Cycle,
            sizes: SizeSpec::List(vec![7]),
            f: FRange { from: 1, to: 2 },
            algorithms: vec![AlgorithmKind::Algorithm1],
            regimes: RegimeSpec::default_axis(),
            strategies: vec![
                StrategySpec::TamperRelays,
                StrategySpec::Random { seed: None },
            ],
            faults: FaultPolicy::WorstCase,
            inputs: InputPolicy::Alternating,
        }],
        search: Some(SearchSpec {
            budget,
            beam: 3,
            mutations: 4,
            rounds: 3,
        }),
        limits: None,
        serve: None,
    }
}

#[test]
fn search_report_is_byte_identical_across_worker_counts() {
    let spec = search_spec(70);
    let baseline = run_search(&spec, 1).unwrap().to_json().to_string();
    assert!(!baseline.is_empty());
    for workers in [2, 8] {
        let report = run_search(&spec, workers).unwrap().to_json().to_string();
        assert_eq!(
            report, baseline,
            "canonical search report differs at {workers} workers"
        );
    }
}

#[test]
fn budget_resume_equals_one_shot() {
    // The seed round must fit the small budget: resume can only continue
    // the mutation schedule, not recover truncated seeds.
    let small = search_spec(25);
    let first = run_search(&small, 2).unwrap();
    let first_json = Json::parse(&first.to_json().to_string()).unwrap();
    assert!(
        first.cells().iter().any(|cell| cell.exhausted),
        "the small budget must actually stop the search early for this \
         test to exercise resumption"
    );

    let large = search_spec(70);
    let resumed = run_search_resumed(&large, Some(&first_json), 2)
        .unwrap()
        .to_json()
        .to_string();
    let one_shot = run_search(&large, 2).unwrap().to_json().to_string();
    assert_eq!(resumed, one_shot, "resume diverged from the one-shot run");
}

#[test]
fn resume_rejects_reports_from_a_different_campaign() {
    let spec = search_spec(70);
    let report = run_search(&spec, 2).unwrap();
    let json = Json::parse(&report.to_json().to_string()).unwrap();
    let mut foreign = spec.clone();
    foreign.seed = 9999;
    let err = run_search_resumed(&foreign, Some(&json), 2).unwrap_err();
    assert!(err.message.contains("not"), "{}", err.message);
    let mut renamed = spec;
    renamed.name = "someone-else".to_string();
    assert!(run_search_resumed(&renamed, Some(&json), 2).is_err());
}

#[test]
fn resuming_under_the_same_budget_is_idempotent() {
    let spec = search_spec(70);
    let report = run_search(&spec, 2).unwrap();
    let json = Json::parse(&report.to_json().to_string()).unwrap();
    let resumed = run_search_resumed(&spec, Some(&json), 2)
        .unwrap()
        .to_json()
        .to_string();
    assert_eq!(resumed, report.to_json().to_string());
}

#[test]
fn search_finds_and_minimizes_the_boundary_violation() {
    let report = run_search(&search_spec(70), 4).unwrap();
    assert_eq!(report.cells().len(), 2);
    let feasible = &report.cells()[0];
    assert_eq!((feasible.f, feasible.feasible), (1, true));
    let boundary = &report.cells()[1];
    assert_eq!((boundary.f, boundary.feasible), (2, false));
    assert!(boundary.best().severity.is_violation());
    let counterexample = boundary
        .counterexample
        .as_ref()
        .expect("boundary violation is minimized");
    assert!(counterexample.scored.severity.is_violation());
    // The replay spec reproduces every violation under the grid executor.
    let replay = report.counterexample_spec().expect("replay spec exists");
    let replayed = lbc_campaign::run_campaign(&replay, 2).unwrap();
    assert!(!replayed.all_correct());
}

/// An asynchronous search cell: the sub-threshold cycle under the async
/// algorithm, searched over the joint strategy × schedule space.
fn async_search_spec(budget: usize) -> CampaignSpec {
    CampaignSpec {
        name: "async-search-determinism".to_string(),
        seed: 31,
        sweeps: vec![SweepSpec {
            family: GraphFamily::Cycle,
            sizes: SizeSpec::List(vec![5]),
            f: FRange::exactly(1),
            algorithms: vec![AlgorithmKind::AsyncFlood],
            regimes: vec![RegimeSpec::Async {
                scheduler: lbc_model::SchedulerKind::EdgeLag,
                delay: 3,
                seed: None,
            }],
            strategies: vec![StrategySpec::TamperRelays],
            faults: FaultPolicy::WorstCase,
            inputs: InputPolicy::Alternating,
        }],
        search: Some(SearchSpec {
            budget,
            beam: 3,
            mutations: 4,
            rounds: 2,
        }),
        limits: None,
        serve: None,
    }
}

#[test]
fn async_cells_search_deterministically_and_resume() {
    let spec = async_search_spec(60);
    let baseline = run_search(&spec, 1).unwrap().to_json().to_string();
    for workers in [2, 8] {
        assert_eq!(
            run_search(&spec, workers).unwrap().to_json().to_string(),
            baseline,
            "async search report differs at {workers} workers"
        );
    }
    // Resume under the same budget is idempotent for async cells too
    // (their resume key includes the regime label).
    let json = Json::parse(&baseline).unwrap();
    assert_eq!(
        run_search_resumed(&spec, Some(&json), 2)
            .unwrap()
            .to_json()
            .to_string(),
        baseline
    );
}

#[test]
fn async_search_finds_the_sub_threshold_violation_and_replays_it() {
    let report = run_search(&async_search_spec(60), 4).unwrap();
    assert_eq!(report.cells().len(), 1);
    let cell = &report.cells()[0];
    assert!(!cell.feasible, "the cycle is below the async threshold");
    assert_eq!(cell.regime.label(), "async-edge-lag-d3");
    assert!(
        cell.best().severity.is_violation(),
        "the search must find the async boundary violation: {:?}",
        cell.best().severity
    );
    let counterexample = cell.counterexample.as_ref().expect("violation minimized");
    let shrunk = &counterexample.scored.candidate;
    assert!(
        shrunk.schedule.is_some(),
        "async candidates carry their schedule"
    );
    // The replay fragment pins the minimized schedule (seed and all) and
    // re-violates under the grid executor.
    let replay = report.counterexample_spec().expect("replay spec exists");
    assert!(matches!(
        replay.sweeps[0].regimes[0],
        RegimeSpec::Async { seed: Some(_), .. }
    ));
    let replayed = lbc_campaign::run_campaign(&replay, 2).unwrap();
    assert!(!replayed.all_correct(), "replay fragment must re-violate");
}

#[test]
fn regime_axis_entries_differing_only_in_seed_are_distinct_cells() {
    // Two explicit schedule seeds on the same scheduler/delay share a
    // seedless label; the search must keep them as separate cells (the
    // label is a display name, the cell key is the full regime spec).
    let mut spec = async_search_spec(30);
    spec.sweeps[0].regimes = vec![
        RegimeSpec::Async {
            scheduler: lbc_model::SchedulerKind::EdgeLag,
            delay: 3,
            seed: Some(1),
        },
        RegimeSpec::Async {
            scheduler: lbc_model::SchedulerKind::EdgeLag,
            delay: 3,
            seed: Some(2),
        },
    ];
    spec.search = Some(SearchSpec {
        budget: 20,
        beam: 2,
        mutations: 2,
        rounds: 0,
    });
    let report = run_search(&spec, 2).unwrap();
    assert_eq!(
        report.cells().len(),
        2,
        "explicit schedule seeds must not merge into one cell"
    );
    // Resume still matches both cells (keys carry the full spec).
    let json = Json::parse(&report.to_json().to_string()).unwrap();
    assert_eq!(
        run_search_resumed(&spec, Some(&json), 2)
            .unwrap()
            .to_json()
            .to_string(),
        report.to_json().to_string()
    );
}
