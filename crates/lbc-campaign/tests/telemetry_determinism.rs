//! Telemetry determinism and compatibility guarantees.
//!
//! * With telemetry **enabled**, the report JSON — including the embedded
//!   `"telemetry"` section — must stay byte-identical across worker counts;
//!   wall clock is confined to the telemetry CSV and the rendered summary.
//! * With telemetry **disabled** (the default), reports must carry no
//!   `"telemetry"` key and diff byte-clean against the pre-telemetry
//!   executor paths — enabling the observer machinery must be unobservable
//!   when it is off.
//! * Replaying a cell through the event recorder must be deterministic and
//!   must agree with the campaign's record for that cell.
//! * Old reports without the adversary-visible summary fields must still
//!   parse (missing fields default to 0) and diff clean.

use proptest::prelude::*;

use lbc_campaign::spec::{FRange, RegimeSpec};
use lbc_campaign::{
    diff_report_texts, replay_scenario, run_campaign, run_campaign_opts, run_scenarios_noted,
    run_scenarios_opts, CampaignSpec, ExecOptions, FaultPolicy, GraphFamily, InputPolicy, SizeSpec,
    StrategySpec, SweepSpec,
};
use lbc_consensus::AlgorithmKind;
use lbc_model::json::{FromJson, Json, ToJson};
use lbc_sim::{RoundStats, TraceSummary};

/// A small campaign that exercises every event source telemetry taps:
/// synchronous rounds with tampering, an async scheduler, and a
/// partial-synchrony hold-then-burst regime.
fn telemetry_spec(seed: u64) -> CampaignSpec {
    CampaignSpec {
        name: "observability".to_string(),
        seed,
        sweeps: vec![
            SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![StrategySpec::TamperRelays, StrategySpec::Equivocate],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Alternating,
            },
            SweepSpec {
                family: GraphFamily::Complete,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::AsyncFlood],
                regimes: vec![
                    RegimeSpec::Async {
                        scheduler: lbc_model::SchedulerKind::EdgeLag,
                        delay: 3,
                        seed: None,
                    },
                    RegimeSpec::PartialSync {
                        gst: 6,
                        hold: lbc_model::AdversarialSchedule::holding(&[1, 3]),
                        scheduler: lbc_model::SchedulerKind::Fifo,
                        delay: 2,
                        seed: None,
                    },
                ],
                strategies: vec![StrategySpec::TamperRelays, StrategySpec::Silent],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Alternating,
            },
        ],
        search: None,
        limits: None,
        serve: None,
    }
}

fn opts(workers: usize, telemetry: bool) -> ExecOptions {
    ExecOptions {
        telemetry,
        ..ExecOptions::new(workers)
    }
}

#[test]
fn telemetry_report_is_byte_identical_across_worker_counts() {
    let spec = telemetry_spec(2026);
    let baseline = run_campaign_opts(&spec, &opts(1, true))
        .unwrap()
        .to_json()
        .to_string();
    assert!(
        baseline.contains("\"telemetry\""),
        "enabled run must embed the telemetry section"
    );
    for workers in [2, 8] {
        let report = run_campaign_opts(&spec, &opts(workers, true))
            .unwrap()
            .to_json()
            .to_string();
        assert_eq!(
            report, baseline,
            "telemetry-bearing report differs at {workers} workers"
        );
    }
}

#[test]
fn telemetry_csv_is_deterministic_except_wall_column() {
    let spec = telemetry_spec(2026);
    let strip_wall = |csv: &str| -> Vec<String> {
        csv.lines()
            .map(|line| line.rsplit_once(',').unwrap().0.to_string())
            .collect()
    };
    let csv1 = run_campaign_opts(&spec, &opts(1, true))
        .unwrap()
        .telemetry()
        .unwrap()
        .to_csv();
    let csv8 = run_campaign_opts(&spec, &opts(8, true))
        .unwrap()
        .telemetry()
        .unwrap()
        .to_csv();
    assert_eq!(strip_wall(&csv1), strip_wall(&csv8));
    // Cells appear in expansion order regardless of pool interleaving.
    let indices: Vec<&str> = csv8
        .lines()
        .skip(1)
        .map(|line| line.split_once(',').unwrap().0)
        .collect();
    let sorted = {
        let mut sorted: Vec<usize> = indices.iter().map(|s| s.parse().unwrap()).collect();
        sorted.sort_unstable();
        sorted
    };
    assert_eq!(
        indices,
        sorted.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}

/// Disabled-observer runs must produce reports byte-identical to the
/// pre-telemetry executor surface: no `"telemetry"` key, and the exact
/// bytes of the plain `run_campaign` / `run_scenarios_noted` paths.
#[test]
fn disabled_observer_reports_match_the_plain_paths() {
    let spec = telemetry_spec(7);
    let plain = run_campaign(&spec, 2).unwrap().to_json().to_string();
    assert!(!plain.contains("\"telemetry\""));
    let via_opts = run_campaign_opts(&spec, &opts(2, false))
        .unwrap()
        .to_json()
        .to_string();
    assert_eq!(plain, via_opts);
    let (scenarios, notes) = spec.expand_noted().unwrap();
    let noted = run_scenarios_noted(&spec, &scenarios, notes.clone(), 2)
        .to_json()
        .to_string();
    let opted = run_scenarios_opts(&spec, &scenarios, notes, &opts(2, false))
        .to_json()
        .to_string();
    assert_eq!(noted, opted);
}

/// The telemetry section only adds a key: stripping `"telemetry"` from an
/// enabled report yields the disabled report byte-for-byte, so canonical
/// records are untouched by observation.
#[test]
fn telemetry_section_is_purely_additive() {
    let spec = telemetry_spec(11);
    let plain = run_campaign(&spec, 2).unwrap().to_json().to_string();
    let observed = run_campaign_opts(&spec, &opts(2, true)).unwrap().to_json();
    let Json::Obj(fields) = observed else {
        panic!("report JSON must be an object");
    };
    let stripped = Json::Obj(
        fields
            .into_iter()
            .filter(|(key, _)| key != "telemetry")
            .collect(),
    );
    assert_eq!(stripped.to_string(), plain);
}

/// Replaying cells through the event recorder is deterministic (same event
/// stream every time) and agrees with the campaign's own record — the
/// recorder path and the campaign path must be the same execution.
#[test]
fn replay_event_streams_are_deterministic_and_match_campaign_records() {
    let spec = telemetry_spec(2026);
    let scenarios = spec.expand().unwrap();
    let report = run_campaign(&spec, 4).unwrap();
    for scenario in scenarios.iter().step_by(5) {
        let first = replay_scenario(scenario);
        let second = replay_scenario(scenario);
        assert_eq!(
            first.events, second.events,
            "event stream differs between replays of cell {}",
            scenario.index
        );
        assert_eq!(
            first.record.to_canonical_json().to_string(),
            report.records()[scenario.index]
                .to_canonical_json()
                .to_string(),
            "replay record diverges from campaign record for cell {}",
            scenario.index
        );
    }
}

// ---------------------------------------------------------------------------
// old-report compatibility: the adversary-visible fields default to 0
// ---------------------------------------------------------------------------

/// Recursively drops the adversary-visible keys this PR added to
/// `RoundStats` / `TraceSummary`, simulating a report written before they
/// existed.
fn strip_adversary_fields(json: Json) -> Json {
    const NEW_FIELDS: [&str; 4] = ["tampered", "omitted", "equivocated", "burst_deliveries"];
    match json {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(key, _)| !NEW_FIELDS.contains(&key.as_str()))
                .map(|(key, value)| (key, strip_adversary_fields(value)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_adversary_fields).collect()),
        other => other,
    }
}

#[test]
fn trace_summary_defaults_missing_adversary_fields_to_zero() {
    let old = Json::parse(r#"{"rounds": 3, "transmissions": 40, "deliveries": 80}"#).unwrap();
    let summary = TraceSummary::from_json(&old).unwrap();
    assert_eq!(summary.rounds, 3);
    assert_eq!(summary.tampered, 0);
    assert_eq!(summary.omitted, 0);
    assert_eq!(summary.equivocated, 0);
    assert_eq!(summary.burst_deliveries, 0);

    let old = Json::parse(r#"{"transmissions": 10, "deliveries": 20}"#).unwrap();
    let stats = RoundStats::from_json(&old).unwrap();
    assert_eq!((stats.tampered, stats.omitted), (0, 0));
    assert_eq!((stats.equivocated, stats.burst_deliveries), (0, 0));
}

/// `lbc campaign diff` against a pre-telemetry report: the old side is
/// missing every adversary-visible field, yet the diff parses and comes
/// back clean because the same execution produced both.
#[test]
fn campaign_diff_accepts_old_reports_without_adversary_fields() {
    let spec = telemetry_spec(5);
    let report = run_campaign(&spec, 2).unwrap().to_json();
    let old = strip_adversary_fields(report.clone()).to_string();
    let new = report.to_string();
    let diff = diff_report_texts(&old, &new).unwrap();
    assert!(
        diff.is_clean(),
        "adversary-field defaults must not register as drift:\n{}",
        diff.render()
    );
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(32))]

    /// The extended summary/stat structs round-trip through JSON exactly,
    /// including nonzero adversary-visible counts.
    #[test]
    fn extended_summary_roundtrips(
        rounds in 0usize..100,
        transmissions in 0usize..10_000,
        tampered in 0usize..500,
        omitted in 0usize..500,
        equivocated in 0usize..500,
        burst in 0usize..500,
    ) {
        let summary = TraceSummary {
            rounds,
            transmissions,
            deliveries: transmissions * 2,
            tampered,
            omitted,
            equivocated,
            burst_deliveries: burst,
        };
        let back = TraceSummary::from_json(
            &Json::parse(&summary.to_json().to_string()).unwrap(),
        ).unwrap();
        prop_assert_eq!(back, summary);
    }
}
