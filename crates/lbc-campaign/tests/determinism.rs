//! Campaign determinism and spec round-trip guarantees.
//!
//! * The same spec + seed must produce a **byte-identical canonical JSON
//!   report** at worker counts 1, 2 and 8 — the executor's scheduling must
//!   be unobservable in the results.
//! * Specs must survive `parse → serialize → parse` for arbitrary grids
//!   (property tests over randomly generated specs).

use proptest::prelude::*;

use lbc_campaign::spec::{FRange, RegimeSpec};
use lbc_campaign::{
    run_campaign, CampaignSpec, FaultPolicy, GraphFamily, InputPolicy, SizeSpec, StrategySpec,
    SweepSpec,
};
use lbc_consensus::AlgorithmKind;
use lbc_model::json::{FromJson, Json, ToJson};

/// A small but multi-family campaign: two sweeps, three strategies, random
/// fault placement and derived random-strategy seeds — every source of
/// campaign randomness is exercised.
fn determinism_spec(seed: u64) -> CampaignSpec {
    CampaignSpec {
        name: "determinism".to_string(),
        seed,
        sweeps: vec![
            SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![5, 7]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![
                    StrategySpec::TamperRelays,
                    StrategySpec::Random { seed: None },
                    StrategySpec::Silent,
                ],
                faults: FaultPolicy::Random { count: 2 },
                inputs: InputPolicy::Random { count: 1 },
            },
            SweepSpec {
                family: GraphFamily::Complete,
                sizes: SizeSpec::List(vec![4]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm2, AlgorithmKind::P2pBaseline],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![StrategySpec::Equivocate],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Alternating,
            },
            // The regime axis: the async algorithm across sync, derived-seed
            // edge-lag and delay-max schedules, and a partial-synchrony
            // regime (hold-until-GST burst + derived post-GST schedule
            // seed) — per-scenario schedule seeds are derived like `random`
            // strategy seeds, so this sweep exercises the regime half of the
            // determinism contract.
            SweepSpec {
                family: GraphFamily::Complete,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::AsyncFlood],
                regimes: vec![
                    RegimeSpec::Sync,
                    RegimeSpec::Async {
                        scheduler: lbc_model::SchedulerKind::EdgeLag,
                        delay: 3,
                        seed: None,
                    },
                    RegimeSpec::Async {
                        scheduler: lbc_model::SchedulerKind::DelayMax,
                        delay: 2,
                        seed: None,
                    },
                    RegimeSpec::PartialSync {
                        gst: 6,
                        hold: lbc_model::AdversarialSchedule::holding(&[1, 3]),
                        scheduler: lbc_model::SchedulerKind::Fifo,
                        delay: 2,
                        seed: None,
                    },
                ],
                strategies: vec![
                    StrategySpec::TamperRelays,
                    StrategySpec::Random { seed: None },
                ],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Alternating,
            },
        ],
        search: None,
        limits: None,
        serve: None,
    }
}

/// Pre-regime specs (no `"regimes"` key) must expand to the exact scenario
/// stream they did before the regime axis existed: same indices, same
/// derived seeds, every scenario synchronous. The derived-seed formula is
/// position-dependent, so this is the guard that the axis insertion did not
/// shift anything.
#[test]
fn pre_regime_specs_expand_unchanged() {
    let json = r#"{
        "name": "pre-regime",
        "seed": 99,
        "sweeps": [{
            "family": {"kind": "cycle"},
            "sizes": {"list": [5]},
            "f": 1,
            "algorithms": ["alg1"],
            "strategies": ["tamper-relays", "random"],
            "faults": {"policy": "exhaustive"},
            "inputs": {"policy": "alternating"}
        }]
    }"#;
    let spec = CampaignSpec::from_json_text(json).unwrap();
    assert_eq!(spec.sweeps[0].regimes, RegimeSpec::default_axis());
    let scenarios = spec.expand().unwrap();
    assert_eq!(scenarios.len(), 10);
    for (index, scenario) in scenarios.iter().enumerate() {
        assert_eq!(scenario.index, index);
        assert!(scenario.regime.is_synchronous());
        // The seed formula is unchanged from the pre-regime derivation.
        assert_eq!(
            scenario.seed,
            lbc_campaign::spec::mix_seed(&[0x5C, 99, index as u64])
        );
    }
}

/// A pre-regime spec (no `"regimes"` key) and the same spec with the sync
/// default spelled out produce **byte-identical canonical reports** — the
/// partial-synchrony axis must not leak into executions that never asked
/// for it, so reports generated before the regime/GST axes existed still
/// diff clean against today's binaries.
#[test]
fn pre_regime_reports_diff_clean_against_the_sync_default() {
    let implicit = r#"{
        "name": "pre-regime",
        "seed": 99,
        "sweeps": [{
            "family": {"kind": "cycle"},
            "sizes": {"list": [5]},
            "f": 1,
            "algorithms": ["alg1"],
            "strategies": ["tamper-relays", "random"],
            "faults": {"policy": "exhaustive"},
            "inputs": {"policy": "alternating"}
        }]
    }"#;
    let spec = CampaignSpec::from_json_text(implicit).unwrap();
    let mut explicit = spec.clone();
    explicit.sweeps[0].regimes = vec![RegimeSpec::Sync];
    let old = run_campaign(&spec, 2).unwrap().to_json().to_string();
    let new = run_campaign(&explicit, 2).unwrap().to_json().to_string();
    assert_eq!(old, new, "sync default must match the pre-regime stream");
}

/// A sync-only algorithm under an async regime is a spec error, not a
/// silent skip (a skipped cell would make a --strict campaign vacuous).
#[test]
fn round_machines_reject_async_regimes_at_expansion() {
    let mut spec = determinism_spec(1);
    spec.sweeps[0].regimes = vec![RegimeSpec::Async {
        scheduler: lbc_model::SchedulerKind::Fifo,
        delay: 2,
        seed: None,
    }];
    let err = spec.expand().unwrap_err();
    assert!(
        err.message.contains("synchronous round machine"),
        "{}",
        err.message
    );
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let spec = determinism_spec(2024);
    let baseline = run_campaign(&spec, 1).unwrap().to_json().to_string();
    assert!(!baseline.is_empty());
    for workers in [2, 8] {
        let report = run_campaign(&spec, workers).unwrap().to_json().to_string();
        assert_eq!(
            report, baseline,
            "canonical report differs at {workers} workers"
        );
    }
    // The CSV is identical too, except for the trailing wall_micros column.
    let strip_wall = |csv: &str| -> Vec<String> {
        csv.lines()
            .map(|line| {
                line.rsplit_once(',')
                    .map(|(head, _)| head.to_string())
                    .unwrap()
            })
            .collect()
    };
    let csv1 = run_campaign(&spec, 1).unwrap().to_csv();
    let csv8 = run_campaign(&spec, 8).unwrap().to_csv();
    assert_eq!(strip_wall(&csv1), strip_wall(&csv8));
}

#[test]
fn different_campaign_seeds_change_the_report() {
    let a = run_campaign(&determinism_spec(1), 2)
        .unwrap()
        .to_json()
        .to_string();
    let b = run_campaign(&determinism_spec(2), 2)
        .unwrap()
        .to_json()
        .to_string();
    assert_ne!(a, b, "campaign seed must influence derived draws");
}

#[test]
fn canonical_report_contains_no_timing() {
    let report = run_campaign(&determinism_spec(7), 2).unwrap();
    let text = report.to_json().pretty();
    assert!(!text.contains("wall"), "canonical JSON must be timing-free");
    // But the report still carries measured wall time for the CSV/summary.
    assert!(report.total_wall_micros() > 0);
    assert!(report
        .to_csv()
        .lines()
        .next()
        .unwrap()
        .ends_with("wall_micros"));
}

// ---------------------------------------------------------------------------
// spec round-trip property tests
// ---------------------------------------------------------------------------

fn family_strategy() -> impl Strategy<Value = GraphFamily> {
    (0usize..7).prop_map(|pick| match pick {
        0 => GraphFamily::Cycle,
        1 => GraphFamily::Complete,
        2 => GraphFamily::Wheel,
        3 => GraphFamily::PathGraph,
        4 => GraphFamily::Circulant {
            offsets: vec![1, 2],
        },
        5 => GraphFamily::Harary { k: 4 },
        _ => GraphFamily::Hypercube,
    })
}

fn strategy_spec_strategy() -> impl Strategy<Value = StrategySpec> {
    ((0usize..8), (0u64..100)).prop_map(|(pick, param)| match pick {
        0 => StrategySpec::Honest,
        1 => StrategySpec::Silent,
        2 => StrategySpec::CrashAfter(param),
        3 => StrategySpec::TamperAll,
        4 => StrategySpec::TamperRelays,
        5 => StrategySpec::Equivocate,
        6 => StrategySpec::Random {
            seed: (param % 2 == 0).then_some(param),
        },
        _ => StrategySpec::Sleeper {
            honest_rounds: param,
        },
    })
}

fn regime_spec_strategy() -> impl Strategy<Value = RegimeSpec> {
    ((0usize..7), (1u32..6), (0u64..100), (1u32..20)).prop_map(
        |(pick, delay, seed, gst)| match pick {
            0 => RegimeSpec::Sync,
            1..=3 => RegimeSpec::Async {
                scheduler: lbc_model::SchedulerKind::all()[pick - 1],
                delay,
                seed: (seed % 2 == 0).then_some(seed),
            },
            other => RegimeSpec::PartialSync {
                gst,
                hold: lbc_model::AdversarialSchedule::holding(&[
                    (seed % 7) as usize,
                    (seed % 23) as usize,
                ]),
                scheduler: lbc_model::SchedulerKind::all()[other - 4],
                delay,
                seed: (seed % 3 == 0).then_some(seed),
            },
        },
    )
}

fn fault_policy_strategy() -> impl Strategy<Value = FaultPolicy> {
    ((0usize..5), (1usize..6)).prop_map(|(pick, count)| match pick {
        0 => FaultPolicy::Exhaustive,
        1 => FaultPolicy::Random { count },
        2 => FaultPolicy::WorstCase,
        3 => FaultPolicy::Explicit(vec![vec![0], vec![count]]),
        _ => FaultPolicy::Fixed(vec![vec![0], vec![0, 1], vec![count]]),
    })
}

fn input_policy_strategy() -> impl Strategy<Value = InputPolicy> {
    ((0usize..7), (0u64..1024), (1usize..5)).prop_map(|(pick, bits, count)| match pick {
        0 => InputPolicy::Alternating,
        1 => InputPolicy::AllZero,
        2 => InputPolicy::AllOne,
        3 => InputPolicy::SplitHalf,
        4 => InputPolicy::Bits(bits),
        5 => InputPolicy::Random { count },
        _ => InputPolicy::Exhaustive,
    })
}

fn sweep_strategy() -> impl Strategy<Value = SweepSpec> {
    (
        family_strategy(),
        prop::collection::vec(3usize..20, 1..4),
        (0usize..3),
        (0usize..3),
        prop::collection::vec(regime_spec_strategy(), 1..3),
        prop::collection::vec(strategy_spec_strategy(), 1..4),
        fault_policy_strategy(),
        input_policy_strategy(),
    )
        .prop_map(
            |(family, sizes, f_from, f_extra, regimes, strategies, faults, inputs)| {
                // Async regimes in the generated axis force the async
                // algorithm (round machines reject them at expansion).
                let algorithms = if regimes.iter().all(RegimeSpec::is_sync) {
                    vec![AlgorithmKind::Algorithm1, AlgorithmKind::P2pBaseline]
                } else {
                    vec![AlgorithmKind::AsyncFlood]
                };
                SweepSpec {
                    family,
                    sizes: SizeSpec::List(sizes),
                    f: FRange {
                        from: f_from,
                        to: f_from + f_extra,
                    },
                    algorithms,
                    regimes,
                    strategies,
                    faults,
                    inputs,
                }
            },
        )
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(64))]

    /// parse(serialize(spec)) == spec for arbitrary grids. Seeds are
    /// bounded by 2^53: JSON numbers are f64, so larger integers would not
    /// be exactly representable in a spec file in the first place.
    #[test]
    fn spec_roundtrips_through_json(
        seed in 0u64..(1 << 53),
        sweeps in prop::collection::vec(sweep_strategy(), 1..3),
    ) {
        let spec = CampaignSpec {
            name: "prop".to_string(),
            seed,
            sweeps,
            search: None,
            limits: None,
            serve: None,
        };
        let compact = spec.to_json().to_string();
        let pretty = spec.to_json().pretty();
        let from_compact = CampaignSpec::from_json_text(&compact).unwrap();
        let from_pretty = CampaignSpec::from_json_text(&pretty).unwrap();
        prop_assert_eq!(&from_compact, &spec);
        prop_assert_eq!(&from_pretty, &spec);
        // Serialization is canonical: a second round emits the same bytes.
        prop_assert_eq!(from_compact.to_json().to_string(), compact);
    }

    /// Size ranges and lists round-trip through their JSON forms.
    #[test]
    fn size_spec_roundtrips(from in 3usize..30, span in 0usize..10, step in 1usize..4) {
        let range = SizeSpec::Range { from, to: from + span, step };
        let back = SizeSpec::from_json(&Json::parse(&range.to_json().to_string()).unwrap()).unwrap();
        prop_assert_eq!(&back, &range);
        prop_assert_eq!(back.values(), range.values());
    }
}
