//! Fault-tolerance guarantees of the campaign executor.
//!
//! * **Checkpointed resume**: a campaign killed after *any* number of
//!   journaled cells and resumed with `--resume` must reproduce the
//!   one-shot canonical report **byte-for-byte**, at any worker count.
//!   The kill is simulated by fabricating the exact journal a death at
//!   that point leaves behind (the executor writes it atomically, so a
//!   real kill leaves a valid prefix journal; the subprocess-level SIGKILL
//!   version lives in `scripts/chaos_smoke.sh`).
//! * **Panic isolation**: a chaos-injected panicking cell becomes a
//!   quarantined `failed` record; every other cell's record is exactly the
//!   record of a clean run, and the quarantined report itself is
//!   byte-identical across worker counts.
//! * **Quarantine records** (`failed` / `timeout`) round-trip through the
//!   canonical report JSON (property-based, arbitrary panic payloads).

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use lbc_campaign::checkpoint::write_atomic;
use lbc_campaign::spec::{FRange, RegimeSpec};
use lbc_campaign::{
    diff_report_texts, run_scenarios_opts, run_scenarios_resumable, CampaignSpec, CellStatus,
    ChaosPolicy, CheckpointConfig, ExecOptions, FaultPolicy, GraphFamily, InputPolicy,
    ScenarioRecord, SizeSpec, StrategySpec, SweepSpec,
};
use lbc_consensus::AlgorithmKind;
use lbc_model::json::Json;
use lbc_model::{NodeId, NodeSet, Value, Verdict};
use lbc_sim::TraceSummary;

/// A 10-cell campaign small enough to re-run dozens of times.
fn small_spec(seed: u64) -> CampaignSpec {
    CampaignSpec {
        name: "fault-tolerance".to_string(),
        seed,
        sweeps: vec![SweepSpec {
            family: GraphFamily::Fig1a,
            sizes: SizeSpec::List(vec![5]),
            f: FRange::exactly(1),
            algorithms: vec![AlgorithmKind::Algorithm1],
            regimes: RegimeSpec::default_axis(),
            strategies: vec![StrategySpec::TamperRelays, StrategySpec::Silent],
            faults: FaultPolicy::Exhaustive,
            inputs: InputPolicy::Bits(0b01101),
        }],
        search: None,
        limits: None,
        serve: None,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbc-ft-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Killing the campaign after any number of journaled cells and resuming
/// must reproduce the one-shot report byte-for-byte — at 1, 2, and 8
/// workers. The journal a kill leaves behind is fabricated directly: the
/// executor writes it atomically at batch boundaries, so a real death
/// leaves exactly such a prefix (the live SIGKILL variant is covered by
/// `scripts/chaos_smoke.sh`).
#[test]
fn resume_reproduces_the_one_shot_report_from_every_kill_point() {
    let spec = small_spec(2027);
    let scenarios = spec.expand().unwrap();
    let one_shot = run_scenarios_opts(&spec, &scenarios, Vec::new(), &ExecOptions::new(2))
        .to_json()
        .to_string();
    let records: Vec<ScenarioRecord> =
        run_scenarios_opts(&spec, &scenarios, Vec::new(), &ExecOptions::new(1))
            .records()
            .to_vec();
    let dir = scratch_dir("resume");
    let journal = dir.join("fault-tolerance.checkpoint.json");
    for workers in [1, 2, 8] {
        for completed in 0..=records.len() {
            write_atomic(
                &journal,
                &spec.name,
                spec.seed,
                scenarios.len(),
                records[..completed].iter(),
            )
            .unwrap();
            let options = ExecOptions {
                checkpoint: Some(CheckpointConfig {
                    path: journal.clone(),
                    every: 3,
                    resume: true,
                }),
                ..ExecOptions::new(workers)
            };
            let resumed = run_scenarios_resumable(&spec, &scenarios, Vec::new(), &options)
                .unwrap()
                .to_json()
                .to_string();
            assert_eq!(
                resumed,
                one_shot,
                "resume with {completed}/{} cells journaled on {workers} workers \
                 must be byte-identical to the one-shot report",
                records.len()
            );
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// A journal that does not belong to this campaign — wrong seed, wrong
/// grid size, or combined with telemetry — must refuse to resume instead
/// of silently mixing results.
#[test]
fn resume_rejects_foreign_journals_and_telemetry() {
    let spec = small_spec(2027);
    let scenarios = spec.expand().unwrap();
    let records: Vec<ScenarioRecord> =
        run_scenarios_opts(&spec, &scenarios, Vec::new(), &ExecOptions::new(1))
            .records()
            .to_vec();
    let dir = scratch_dir("reject");
    let journal = dir.join("fault-tolerance.checkpoint.json");
    let resume_with = |options: &mut ExecOptions| {
        options.checkpoint = Some(CheckpointConfig {
            path: journal.clone(),
            every: 8,
            resume: true,
        });
    };
    // Wrong seed: the fingerprint validation shared with search --resume.
    write_atomic(&journal, &spec.name, 999, scenarios.len(), records.iter()).unwrap();
    let mut options = ExecOptions::new(2);
    resume_with(&mut options);
    assert!(run_scenarios_resumable(&spec, &scenarios, Vec::new(), &options).is_err());
    // Wrong grid size: the expansion changed since the journal was written.
    write_atomic(
        &journal,
        &spec.name,
        spec.seed,
        scenarios.len() + 1,
        records.iter(),
    )
    .unwrap();
    assert!(run_scenarios_resumable(&spec, &scenarios, Vec::new(), &options).is_err());
    // Telemetry + resume: journaled cells carry no metrics.
    write_atomic(
        &journal,
        &spec.name,
        spec.seed,
        scenarios.len(),
        records.iter(),
    )
    .unwrap();
    options.telemetry = true;
    assert!(run_scenarios_resumable(&spec, &scenarios, Vec::new(), &options).is_err());
    // A missing journal is a fresh start, not an error.
    options.telemetry = false;
    fs::remove_file(&journal).unwrap();
    assert!(run_scenarios_resumable(&spec, &scenarios, Vec::new(), &options).is_ok());
    fs::remove_dir_all(&dir).unwrap();
}

/// A chaos-injected panicking cell is quarantined without perturbing any
/// other cell: the quarantined report is byte-identical across worker
/// counts, and every non-injected record equals the clean run's record.
/// `campaign diff` flags the newly failed cell as a regression.
#[test]
fn injected_panic_quarantines_exactly_one_cell() {
    let spec = small_spec(2027);
    let scenarios = spec.expand().unwrap();
    let clean = run_scenarios_opts(&spec, &scenarios, Vec::new(), &ExecOptions::new(2));
    let chaos_opts = |workers: usize| ExecOptions {
        chaos: Some(ChaosPolicy::parse("panic=4").unwrap()),
        ..ExecOptions::new(workers)
    };
    let quarantined = run_scenarios_opts(&spec, &scenarios, Vec::new(), &chaos_opts(1));
    for workers in [2, 8] {
        assert_eq!(
            run_scenarios_opts(&spec, &scenarios, Vec::new(), &chaos_opts(workers))
                .to_json()
                .to_string(),
            quarantined.to_json().to_string(),
            "quarantined report must be byte-identical on {workers} workers"
        );
    }
    assert!(matches!(
        quarantined.records()[4].status,
        CellStatus::Failed { .. }
    ));
    for (index, (clean_record, chaos_record)) in clean
        .records()
        .iter()
        .zip(quarantined.records())
        .enumerate()
    {
        if index == 4 {
            continue;
        }
        assert_eq!(
            clean_record.to_canonical_json().to_string(),
            chaos_record.to_canonical_json().to_string(),
            "cell {index} must be untouched by the quarantine of cell 4"
        );
    }
    // The diff gate treats the newly failed cell as a regression.
    let diff = diff_report_texts(
        &clean.to_json().to_string(),
        &quarantined.to_json().to_string(),
    )
    .unwrap();
    assert!(diff.has_regressions(), "{}", diff.render());
}

fn record_with_status(index: usize, seed: u64, status: CellStatus) -> ScenarioRecord {
    let quarantined = !status.is_completed();
    ScenarioRecord {
        index,
        family: "cycle".to_string(),
        graph: "C5".to_string(),
        n: 5,
        f: 1,
        algorithm: AlgorithmKind::Algorithm1,
        regime: "sync".to_string(),
        strategy: "tamper-relays".to_string(),
        faulty: NodeSet::singleton(NodeId::new(index % 5)),
        inputs: "01101".to_string(),
        seed,
        feasible: true,
        verdict: Verdict {
            agreement: !quarantined,
            validity: !quarantined,
            termination: !quarantined,
        },
        agreed: (!quarantined).then_some(Value::One),
        stats: TraceSummary {
            rounds: usize::from(!quarantined) * 3,
            transmissions: usize::from(!quarantined) * 42,
            deliveries: usize::from(!quarantined) * 84,
            ..TraceSummary::default()
        },
        wall_micros: 0,
        status,
    }
}

/// Derives a panic payload from a seed, drawing from a palette of the
/// characters most likely to break JSON escaping (quotes, backslashes,
/// control characters, braces, non-ASCII).
fn panic_payload(seed: u64) -> String {
    const PALETTE: [char; 8] = ['a', '"', '\\', 'π', '\n', ' ', '{', ':'];
    let mut text = String::new();
    let mut state = seed;
    for _ in 0..(seed % 24) {
        text.push(PALETTE[(state % PALETTE.len() as u64) as usize]);
        state = state / PALETTE.len() as u64 + 1;
    }
    text
}

proptest! {
    /// Failure and timeout records survive the canonical-JSON round trip
    /// (the same path checkpoint journals and `--resume` rely on), for
    /// arbitrary panic payloads and budgets.
    #[test]
    fn quarantine_records_roundtrip_through_canonical_json(
        index in 0usize..1000,
        seed in 0u64..(1 << 53),
        budget in 0u64..600_000_000,
        kind in 0u8..3,
        panic_seed in 0u64..(1 << 40),
    ) {
        let status = match kind {
            0 => CellStatus::Completed,
            1 => CellStatus::Failed { panic: panic_payload(panic_seed) },
            _ => CellStatus::TimedOut { budget_micros: budget },
        };
        let record = record_with_status(index, seed, status);
        let text = record.to_canonical_json().to_string();
        let back = ScenarioRecord::from_canonical_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&back.status, &record.status);
        prop_assert_eq!(back.to_canonical_json().to_string(), text);
    }
}
