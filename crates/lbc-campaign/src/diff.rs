//! Cell-by-cell comparison of two canonical campaign (or search) reports.
//!
//! `lbc campaign diff <old.json> <new.json>` guards against silent
//! regressions when the engines underneath the campaign executor change
//! (new flood engine, new scheduler, …): scenarios are matched by their
//! full identity — `(family, graph, n, f, algorithm, regime, strategy,
//! faulty, inputs, seed)` — and every deterministic result cell is
//! compared. Reports written before the regime axis existed carry no
//! `regime` field; it defaults to `"sync"` on both sides, so a pre-regime
//! report diffs cleanly against a post-regime run of the same spec. A
//! **verdict regression** (a scenario that was correct in the old report
//! and is incorrect in the new one) makes the comparison fail; any other
//! difference (round counts, transmissions, newly appearing or disappearing
//! scenarios, even incorrect→correct flips) is reported but does not fail
//! the diff.
//!
//! With `--cross-spec` ([`DiffOptions::cross_spec`]) scenarios are matched
//! by their **coordinates** — the identity *without* the derived `seed` —
//! so two reports produced by different spec revisions (renamed grids,
//! added sweeps) still align cell-for-cell: added scenarios are tolerated
//! silently and removed ones demoted to warnings.
//!
//! Canonical **search** reports diff too ([`diff_search_reports`]): cells
//! are matched by `(graph, f, algorithm)` and a cell whose previously-found
//! violation is no longer found (or whose counterexample disappeared) is a
//! regression — the wall that keeps a refactor from quietly losing the
//! ability to rediscover a known violation.

use std::fmt::Write as _;

use lbc_model::json::Json;

/// One differing result cell of a matched scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellChange {
    /// The scenario's identity line (human-readable).
    pub scenario: String,
    /// Name of the differing cell (`correct`, `rounds`, …).
    pub cell: String,
    /// The old report's value, rendered.
    pub old: String,
    /// The new report's value, rendered.
    pub new: String,
    /// Whether this change is a verdict regression (correct → incorrect).
    pub regression: bool,
}

/// Options controlling how two reports are matched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffOptions {
    /// Match scenarios by coordinates (identity without the derived `seed`)
    /// instead of full grid identity, tolerate scenarios that only the new
    /// report has, and demote removed scenarios to warnings. Use when the
    /// two reports come from different revisions of a spec.
    pub cross_spec: bool,
}

/// The outcome of comparing two canonical reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignDiff {
    /// Scenarios present in both reports whose result cells differ.
    pub changed: Vec<CellChange>,
    /// Identities present only in the old report.
    pub only_old: Vec<String>,
    /// Identities present only in the new report.
    pub only_new: Vec<String>,
    /// Number of scenarios compared cell-by-cell.
    pub matched: usize,
    /// The options the comparison ran under (affects rendering).
    pub options: DiffOptions,
}

impl CampaignDiff {
    /// Whether any matched scenario regressed from correct to incorrect.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.changed.iter().any(|c| c.regression)
    }

    /// Whether the two reports are cell-identical over the matched
    /// scenarios and cover the same scenario set.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.changed.is_empty() && self.only_old.is_empty() && self.only_new.is_empty()
    }

    /// A human-readable summary, one line per difference. In cross-spec
    /// mode removed scenarios render as warnings and added ones are
    /// expected (a grown spec), so they are only counted.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for change in &self.changed {
            let marker = if change.regression {
                "REGRESSION"
            } else {
                "changed"
            };
            let _ = writeln!(
                out,
                "{marker}: {} {}: {} -> {}",
                change.scenario, change.cell, change.old, change.new
            );
        }
        let removed_marker = if self.options.cross_spec {
            "warning: removed"
        } else {
            "removed"
        };
        for id in &self.only_old {
            let _ = writeln!(out, "{removed_marker}: {id}");
        }
        if !self.options.cross_spec {
            for id in &self.only_new {
                let _ = writeln!(out, "added: {id}");
            }
        }
        let regressions = self.changed.iter().filter(|c| c.regression).count();
        let _ = writeln!(
            out,
            "{} scenarios matched, {} cells changed ({} regressions), {} removed, {} added",
            self.matched,
            self.changed.len(),
            regressions,
            self.only_old.len(),
            self.only_new.len()
        );
        out
    }
}

/// The result cells compared per matched scenario, in report column order.
/// `outcome` is the executor's quarantine label — absent for completed
/// cells (so pre-fault-tolerance reports align), `failed` / `timeout` for
/// quarantined ones.
const CELLS: [&str; 10] = [
    "feasible",
    "agreement",
    "validity",
    "termination",
    "correct",
    "agreed",
    "rounds",
    "transmissions",
    "deliveries",
    "outcome",
];

/// Compares two canonical reports parsed from their JSON text, matching
/// scenarios by full grid identity.
///
/// # Errors
///
/// Returns a message when either document is not a canonical campaign
/// report (missing or malformed `records`).
pub fn diff_reports(old: &Json, new: &Json) -> Result<CampaignDiff, String> {
    diff_reports_with(old, new, DiffOptions::default())
}

/// Compares two canonical reports under the given matching options.
///
/// # Errors
///
/// Returns a message when either document is not a canonical campaign
/// report (missing or malformed `records`).
pub fn diff_reports_with(
    old: &Json,
    new: &Json,
    options: DiffOptions,
) -> Result<CampaignDiff, String> {
    let old_records = indexed_records(old, "old", options)?;
    let new_records = indexed_records(new, "new", options)?;
    let new_by_identity: lbc_model::fx::FxHashMap<&str, &Json> = new_records
        .iter()
        .map(|(identity, record)| (identity.as_str(), *record))
        .collect();
    let old_identities: std::collections::HashSet<&str> = old_records
        .iter()
        .map(|(identity, _)| identity.as_str())
        .collect();

    let mut diff = CampaignDiff {
        options,
        ..CampaignDiff::default()
    };
    for (identity, old_record) in &old_records {
        let Some(new_record) = new_by_identity.get(identity.as_str()) else {
            diff.only_old.push(identity.clone());
            continue;
        };
        diff.matched += 1;
        for cell in CELLS {
            let old_value = render_cell(old_record.get(cell));
            let new_value = render_cell(new_record.get(cell));
            if old_value != new_value {
                let regression = match cell {
                    "correct" => {
                        old_record.get(cell).and_then(Json::as_bool) == Some(true)
                            && new_record.get(cell).and_then(Json::as_bool) == Some(false)
                    }
                    // A cell that used to complete (no outcome field, or an
                    // explicit "completed") and now fails or times out is
                    // infrastructure rot, walled like a verdict flip.
                    "outcome" => {
                        matches!(
                            old_record.get(cell).and_then(Json::as_str),
                            None | Some("completed")
                        ) && matches!(
                            new_record.get(cell).and_then(Json::as_str),
                            Some("failed" | "timeout")
                        )
                    }
                    _ => false,
                };
                diff.changed.push(CellChange {
                    scenario: identity.clone(),
                    cell: cell.to_string(),
                    old: old_value,
                    new: new_value,
                    regression,
                });
            }
        }
    }
    for (identity, _) in &new_records {
        if !old_identities.contains(identity.as_str()) {
            diff.only_new.push(identity.clone());
        }
    }
    Ok(diff)
}

/// Convenience: parse both texts and diff, auto-detecting the report kind
/// (a canonical search report carries a `cells` array, a campaign report a
/// `records` array).
///
/// # Errors
///
/// Returns a message when either text fails to parse, the two documents are
/// different report kinds, or neither is a canonical report.
pub fn diff_report_texts(old: &str, new: &str) -> Result<CampaignDiff, String> {
    diff_report_texts_with(old, new, DiffOptions::default())
}

/// Like [`diff_report_texts`], with explicit matching options.
///
/// # Errors
///
/// Same conditions as [`diff_report_texts`].
pub fn diff_report_texts_with(
    old: &str,
    new: &str,
    options: DiffOptions,
) -> Result<CampaignDiff, String> {
    let old = Json::parse(old).map_err(|e| format!("old report: {e}"))?;
    let new = Json::parse(new).map_err(|e| format!("new report: {e}"))?;
    let is_search = |doc: &Json| doc.get("cells").is_some() && doc.get("records").is_none();
    match (is_search(&old), is_search(&new)) {
        (true, true) => diff_search_reports(&old, &new, options),
        (false, false) => diff_reports_with(&old, &new, options),
        _ => Err("cannot diff a search report against a campaign report".to_string()),
    }
}

/// The per-cell result fields compared between two search reports.
const SEARCH_CELLS: [&str; 3] = ["violation", "feasible", "counterexample_found"];

/// Compares two canonical **search** reports cell-by-cell. Cells are
/// matched by `(graph, f, algorithm)` coordinates (search cells have no
/// derived seed in their identity, so the cross-spec option only affects
/// how removed cells render). A cell whose previously-found violation is no
/// longer found — or whose minimized counterexample disappeared — is a
/// **regression**; severity shifts within the same verdict are reported as
/// plain changes.
///
/// # Errors
///
/// Returns a message when either document is not a canonical search report.
pub fn diff_search_reports(
    old: &Json,
    new: &Json,
    options: DiffOptions,
) -> Result<CampaignDiff, String> {
    let old_cells = indexed_search_cells(old, "old")?;
    let new_cells = indexed_search_cells(new, "new")?;
    let new_by_identity: lbc_model::fx::FxHashMap<&str, &Json> = new_cells
        .iter()
        .map(|(identity, cell)| (identity.as_str(), *cell))
        .collect();
    let old_identities: std::collections::HashSet<&str> = old_cells
        .iter()
        .map(|(identity, _)| identity.as_str())
        .collect();

    let flattened = |cell: &Json, field: &str| -> String {
        match field {
            "counterexample_found" => render_cell(Some(&Json::Bool(!matches!(
                cell.get("counterexample"),
                None | Some(Json::Null)
            )))),
            _ => render_cell(cell.get(field)),
        }
    };

    let mut diff = CampaignDiff {
        options,
        ..CampaignDiff::default()
    };
    for (identity, old_cell) in &old_cells {
        let Some(new_cell) = new_by_identity.get(identity.as_str()) else {
            diff.only_old.push(identity.clone());
            continue;
        };
        diff.matched += 1;
        for field in SEARCH_CELLS {
            let old_value = flattened(old_cell, field);
            let new_value = flattened(new_cell, field);
            if old_value != new_value {
                // Losing a found violation (or its counterexample) is the
                // regression; *gaining* one is the search getting stronger.
                let regression = (field == "violation" || field == "counterexample_found")
                    && old_value == "true"
                    && new_value == "false";
                diff.changed.push(CellChange {
                    scenario: identity.clone(),
                    cell: field.to_string(),
                    old: old_value,
                    new: new_value,
                    regression,
                });
            }
        }
        // The violation *bitmask* is also walled: a qualitative downgrade
        // (e.g. an agreement break, weight 4, replaced by a mere
        // termination failure, weight 1) keeps the boolean `violation` flag
        // true in both reports, yet the original violation was lost.
        // Dissent/rounds/volume drifts are informational.
        fn severity_path<'a>(cell: &'a Json, field: &str) -> Option<&'a Json> {
            cell.get("best")
                .and_then(|best| best.get("severity"))
                .and_then(|severity| severity.get(field))
        }
        for severity_field in ["violation", "dissent", "rounds", "volume"] {
            let old_raw = severity_path(old_cell, severity_field);
            let new_raw = severity_path(new_cell, severity_field);
            let old_value = render_cell(old_raw);
            let new_value = render_cell(new_raw);
            if old_value != new_value {
                let regression = severity_field == "violation"
                    && match (
                        old_raw.and_then(Json::as_u64),
                        new_raw.and_then(Json::as_u64),
                    ) {
                        (Some(old_mask), Some(new_mask)) => new_mask < old_mask && old_mask > 0,
                        _ => false,
                    };
                diff.changed.push(CellChange {
                    scenario: identity.clone(),
                    cell: format!("severity.{severity_field}"),
                    old: old_value,
                    new: new_value,
                    regression,
                });
            }
        }
    }
    for (identity, _) in &new_cells {
        if !old_identities.contains(identity.as_str()) {
            diff.only_new.push(identity.clone());
        }
    }
    Ok(diff)
}

/// Extracts `(identity, cell)` pairs from a canonical search report, in
/// cell order, keyed by `(graph, f, algorithm)`.
fn indexed_search_cells<'a>(
    report: &'a Json,
    label: &str,
) -> Result<Vec<(String, &'a Json)>, String> {
    let cells = report
        .get("cells")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{label} report: missing 'cells' array"))?;
    let mut indexed = Vec::with_capacity(cells.len());
    for cell in cells {
        let mut identity = String::new();
        for field in ["graph", "f", "algorithm", "regime"] {
            let value = match cell.get(field) {
                Some(value) => render_cell(Some(value)),
                // Pre-regime search reports have no regime column; every
                // cell they contain ran synchronously.
                None if field == "regime" => "\"sync\"".to_string(),
                None => {
                    return Err(format!("{label} report: search cell missing '{field}'"));
                }
            };
            let _ = write!(identity, "{field}={value} ");
        }
        indexed.push((identity.trim_end().to_string(), cell));
    }
    Ok(indexed)
}

/// Extracts `(identity, record)` pairs from a canonical report, in record
/// order. The identity covers every cell that determines the scenario, so
/// two reports produced from the same spec (even by different engine
/// versions) match record-for-record; in cross-spec mode the derived `seed`
/// is excluded so reports from different spec revisions still align by
/// coordinates. Records with byte-identical identities (a spec can repeat
/// a grid cell) are disambiguated by an occurrence counter, so a lost
/// duplicate shows up as removed instead of silently aliasing onto its
/// twin.
fn indexed_records<'a>(
    report: &'a Json,
    label: &str,
    options: DiffOptions,
) -> Result<Vec<(String, &'a Json)>, String> {
    let records = report
        .get("records")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{label} report: missing 'records' array"))?;
    let mut indexed: Vec<(String, &Json)> = Vec::with_capacity(records.len());
    let mut occurrences: lbc_model::fx::FxHashMap<String, usize> = Default::default();
    let identity_fields: &[&str] = if options.cross_spec {
        &[
            "family",
            "graph",
            "n",
            "f",
            "algorithm",
            "regime",
            "strategy",
            "faulty",
            "inputs",
        ]
    } else {
        &[
            "family",
            "graph",
            "n",
            "f",
            "algorithm",
            "regime",
            "strategy",
            "faulty",
            "inputs",
            "seed",
        ]
    };
    for record in records {
        let mut identity = String::new();
        for &field in identity_fields {
            let value = match record.get(field) {
                Some(value) => render_cell(Some(value)),
                // Pre-regime reports carry no regime field: every record
                // they contain ran synchronously, so the identities still
                // align against a post-regime run of the same spec.
                None if field == "regime" => "\"sync\"".to_string(),
                None => {
                    return Err(format!("{label} report: record missing '{field}'"));
                }
            };
            let _ = write!(identity, "{field}={value} ");
        }
        let mut identity = identity.trim_end().to_string();
        let occurrence = occurrences.entry(identity.clone()).or_insert(0);
        *occurrence += 1;
        if *occurrence > 1 {
            let _ = write!(identity, " (occurrence {occurrence})");
        }
        indexed.push((identity, record));
    }
    Ok(indexed)
}

fn render_cell(value: Option<&Json>) -> String {
    match value {
        None => "<missing>".to_string(),
        Some(json) => json.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_campaign;
    use crate::spec::{
        CampaignSpec, FRange, FaultPolicy, GraphFamily, InputPolicy, RegimeSpec, SizeSpec,
        StrategySpec, SweepSpec,
    };
    use lbc_consensus::AlgorithmKind;

    fn sample_report_json() -> Json {
        let spec = CampaignSpec {
            name: "diff-unit".to_string(),
            seed: 11,
            sweeps: vec![SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![StrategySpec::TamperRelays],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Alternating,
            }],
            search: None,
            limits: None,
            serve: None,
        };
        let text = run_campaign(&spec, 2).unwrap().to_json().to_string();
        Json::parse(&text).unwrap()
    }

    #[test]
    fn self_diff_is_clean() {
        let report = sample_report_json();
        let diff = diff_reports(&report, &report).unwrap();
        assert!(diff.is_clean());
        assert!(!diff.has_regressions());
        assert_eq!(diff.matched, 5);
        assert!(diff
            .render()
            .contains("5 scenarios matched, 0 cells changed"));
    }

    /// Mutates a cell of the first record of a parsed report.
    fn patch_first_record(report: &mut Json, cell: &str, value: Json) {
        let Json::Obj(fields) = report else {
            panic!("report is an object");
        };
        for (key, field) in fields.iter_mut() {
            if key == "records" {
                let Json::Arr(records) = field else {
                    panic!("records is an array");
                };
                let Json::Obj(record) = &mut records[0] else {
                    panic!("record is an object");
                };
                for (record_key, record_value) in record.iter_mut() {
                    if record_key == cell {
                        *record_value = value;
                        return;
                    }
                }
            }
        }
        panic!("cell {cell} not found");
    }

    #[test]
    fn verdict_regressions_are_flagged() {
        let old = sample_report_json();
        let mut new = old.clone();
        patch_first_record(&mut new, "correct", Json::Bool(false));
        patch_first_record(&mut new, "agreement", Json::Bool(false));
        let diff = diff_reports(&old, &new).unwrap();
        assert!(diff.has_regressions());
        assert!(!diff.is_clean());
        assert!(diff.render().contains("REGRESSION"));
        // Exactly one regression (`correct`); `agreement` is a plain change.
        assert_eq!(diff.changed.iter().filter(|c| c.regression).count(), 1);
        assert_eq!(diff.changed.len(), 2);
        // An incorrect→correct flip is *not* a regression.
        let recovered = diff_reports(&new, &old).unwrap();
        assert!(!recovered.has_regressions());
        assert_eq!(recovered.changed.len(), 2);
    }

    #[test]
    fn newly_quarantined_cells_are_regressions() {
        let old = sample_report_json();
        let mut new = old.clone();
        // Quarantined records carry an explicit outcome field; completed
        // records omit it, so the old side renders as <missing>.
        if let Json::Obj(fields) = &mut new {
            for (key, value) in fields.iter_mut() {
                if key == "records" {
                    if let Json::Arr(records) = value {
                        if let Json::Obj(record) = &mut records[0] {
                            record.push(("outcome".to_string(), Json::Str("failed".to_string())));
                        }
                    }
                }
            }
        }
        let diff = diff_reports(&old, &new).unwrap();
        assert!(diff.has_regressions(), "{}", diff.render());
        assert!(diff
            .changed
            .iter()
            .any(|c| c.cell == "outcome" && c.regression));
        // The recovery direction (failed -> completed) is not a regression.
        let recovered = diff_reports(&new, &old).unwrap();
        assert!(!recovered.has_regressions());
    }

    #[test]
    fn non_regression_changes_do_not_fail() {
        let old = sample_report_json();
        let mut new = old.clone();
        patch_first_record(&mut new, "rounds", Json::Num(31.0));
        let diff = diff_reports(&old, &new).unwrap();
        assert!(!diff.has_regressions());
        assert!(!diff.is_clean());
        assert!(diff.changed.iter().all(|c| c.cell == "rounds"));
    }

    #[test]
    fn added_and_removed_scenarios_are_reported() {
        let old = sample_report_json();
        // Drop the last record from the new report by slicing the parsed doc.
        let mut new = old.clone();
        if let Json::Obj(fields) = &mut new {
            for (key, value) in fields.iter_mut() {
                if key == "records" {
                    if let Json::Arr(records) = value {
                        records.pop();
                    }
                }
            }
        }
        let diff = diff_reports(&old, &new).unwrap();
        assert_eq!(diff.only_old.len(), 1);
        assert!(diff.only_new.is_empty());
        assert!(!diff.has_regressions());
        assert!(diff.render().contains("removed: "));
    }

    #[test]
    fn duplicate_identities_do_not_alias() {
        let old = sample_report_json();
        // Duplicate every record (as a spec repeating a grid cell would),
        // then drop one duplicate from the new report: the loss must show
        // up as a removed scenario, not vanish into its twin.
        let mut doubled = old.clone();
        if let Json::Obj(fields) = &mut doubled {
            for (key, value) in fields.iter_mut() {
                if key == "records" {
                    if let Json::Arr(records) = value {
                        let copy = records.clone();
                        records.extend(copy);
                    }
                }
            }
        }
        let mut shrunk = doubled.clone();
        if let Json::Obj(fields) = &mut shrunk {
            for (key, value) in fields.iter_mut() {
                if key == "records" {
                    if let Json::Arr(records) = value {
                        records.pop();
                    }
                }
            }
        }
        let clean = diff_reports(&doubled, &doubled).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.matched, 10);
        let lossy = diff_reports(&doubled, &shrunk).unwrap();
        assert_eq!(lossy.only_old.len(), 1);
        assert!(lossy.only_old[0].contains("(occurrence 2)"));
    }

    #[test]
    fn malformed_reports_error() {
        assert!(diff_report_texts("{}", "{}").is_err());
        assert!(diff_report_texts("not json", "{}").is_err());
        // Mixed report kinds are rejected, not silently mismatched.
        assert!(diff_report_texts_with(
            r#"{"cells": []}"#,
            r#"{"records": []}"#,
            DiffOptions::default()
        )
        .is_err());
    }

    /// Re-runs the sample spec with a different campaign seed: every derived
    /// scenario seed changes, so the strict identity match finds nothing
    /// while the cross-spec coordinate match aligns all cells.
    #[test]
    fn cross_spec_matches_by_coordinates_not_seed() {
        let old = sample_report_json();
        let reseeded = {
            let spec = CampaignSpec {
                name: "diff-unit".to_string(),
                seed: 12, // the sample uses seed 11
                sweeps: vec![SweepSpec {
                    family: GraphFamily::Cycle,
                    sizes: SizeSpec::List(vec![5]),
                    f: FRange::exactly(1),
                    algorithms: vec![AlgorithmKind::Algorithm1],
                    regimes: RegimeSpec::default_axis(),
                    strategies: vec![StrategySpec::TamperRelays],
                    faults: FaultPolicy::Exhaustive,
                    inputs: InputPolicy::Alternating,
                }],
                search: None,
                limits: None,
                serve: None,
            };
            let text = run_campaign(&spec, 2).unwrap().to_json().to_string();
            Json::parse(&text).unwrap()
        };
        let strict = diff_reports(&old, &reseeded).unwrap();
        assert_eq!(strict.matched, 0, "derived seeds differ, nothing matches");
        assert_eq!(strict.only_old.len(), 5);
        let cross = diff_reports_with(&old, &reseeded, DiffOptions { cross_spec: true }).unwrap();
        assert_eq!(cross.matched, 5);
        assert!(cross.only_old.is_empty());
        assert!(!cross.has_regressions());
    }

    #[test]
    fn cross_spec_tolerates_added_grids_and_warns_on_removed_cells() {
        let old = sample_report_json();
        let mut grown = old.clone();
        // Duplicate the records under fresh identities by renaming the graph
        // (an added grid), and drop one original record (a removed cell).
        if let Json::Obj(fields) = &mut grown {
            for (key, value) in fields.iter_mut() {
                if key == "records" {
                    if let Json::Arr(records) = value {
                        let mut added = records[0].clone();
                        if let Json::Obj(record) = &mut added {
                            for (record_key, record_value) in record.iter_mut() {
                                if record_key == "graph" {
                                    *record_value = Json::Str("C9".to_string());
                                }
                            }
                        }
                        records.pop();
                        records.push(added);
                    }
                }
            }
        }
        let cross = diff_reports_with(&old, &grown, DiffOptions { cross_spec: true }).unwrap();
        assert_eq!(cross.matched, 4);
        assert_eq!(cross.only_old.len(), 1);
        assert_eq!(cross.only_new.len(), 1);
        assert!(!cross.has_regressions());
        let rendered = cross.render();
        assert!(rendered.contains("warning: removed"), "{rendered}");
        assert!(!rendered.contains("added: "), "{rendered}");
    }

    fn sample_search_report_json() -> Json {
        let spec = CampaignSpec {
            name: "search-diff-unit".to_string(),
            seed: 3,
            sweeps: vec![SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![5]),
                f: FRange { from: 1, to: 2 },
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![StrategySpec::TamperRelays],
                faults: FaultPolicy::WorstCase,
                inputs: InputPolicy::Alternating,
            }],
            search: Some(crate::search::SearchSpec {
                budget: 20,
                beam: 2,
                mutations: 2,
                rounds: 1,
            }),
            limits: None,
            serve: None,
        };
        let text = crate::run_search(&spec, 2).unwrap().to_json().to_string();
        Json::parse(&text).unwrap()
    }

    #[test]
    fn search_self_diff_is_clean_and_lost_violations_regress() {
        let report = sample_search_report_json();
        let clean = diff_search_reports(&report, &report, DiffOptions::default()).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.matched, 2);

        // Fabricate a lost violation: flip the f=2 cell's flag and null its
        // counterexample.
        let mut lost = report.clone();
        if let Json::Obj(fields) = &mut lost {
            for (key, value) in fields.iter_mut() {
                if key == "cells" {
                    if let Json::Arr(cells) = value {
                        for cell in cells.iter_mut() {
                            let Json::Obj(cell_fields) = cell else {
                                panic!("cell is an object")
                            };
                            let violating = cell_fields
                                .iter()
                                .any(|(k, v)| k == "violation" && *v == Json::Bool(true));
                            if !violating {
                                continue;
                            }
                            for (cell_key, cell_value) in cell_fields.iter_mut() {
                                if cell_key == "violation" {
                                    *cell_value = Json::Bool(false);
                                }
                                if cell_key == "counterexample" {
                                    *cell_value = Json::Null;
                                }
                            }
                        }
                    }
                }
            }
        }
        let diff = diff_search_reports(&report, &lost, DiffOptions::default()).unwrap();
        assert!(diff.has_regressions(), "{}", diff.render());
        // Gaining a violation is an improvement, not a regression.
        let improved = diff_search_reports(&lost, &report, DiffOptions::default()).unwrap();
        assert!(!improved.has_regressions());
        assert!(!improved.is_clean());
    }
}
