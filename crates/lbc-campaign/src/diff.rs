//! Cell-by-cell comparison of two canonical campaign reports.
//!
//! `lbc campaign diff <old.json> <new.json>` guards against silent
//! regressions when the engines underneath the campaign executor change
//! (new flood engine, new scheduler, …): scenarios are matched by their
//! full identity — `(family, graph, n, f, algorithm, strategy, faulty,
//! inputs, seed)` — and every deterministic result cell is compared. A
//! **verdict regression** (a scenario that was correct in the old report
//! and is incorrect in the new one) makes the comparison fail; any other
//! difference (round counts, transmissions, newly appearing or disappearing
//! scenarios, even incorrect→correct flips) is reported but does not fail
//! the diff.

use std::fmt::Write as _;

use lbc_model::json::Json;

/// One differing result cell of a matched scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellChange {
    /// The scenario's identity line (human-readable).
    pub scenario: String,
    /// Name of the differing cell (`correct`, `rounds`, …).
    pub cell: String,
    /// The old report's value, rendered.
    pub old: String,
    /// The new report's value, rendered.
    pub new: String,
    /// Whether this change is a verdict regression (correct → incorrect).
    pub regression: bool,
}

/// The outcome of comparing two canonical reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignDiff {
    /// Scenarios present in both reports whose result cells differ.
    pub changed: Vec<CellChange>,
    /// Identities present only in the old report.
    pub only_old: Vec<String>,
    /// Identities present only in the new report.
    pub only_new: Vec<String>,
    /// Number of scenarios compared cell-by-cell.
    pub matched: usize,
}

impl CampaignDiff {
    /// Whether any matched scenario regressed from correct to incorrect.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.changed.iter().any(|c| c.regression)
    }

    /// Whether the two reports are cell-identical over the matched
    /// scenarios and cover the same scenario set.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.changed.is_empty() && self.only_old.is_empty() && self.only_new.is_empty()
    }

    /// A human-readable summary, one line per difference.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for change in &self.changed {
            let marker = if change.regression {
                "REGRESSION"
            } else {
                "changed"
            };
            let _ = writeln!(
                out,
                "{marker}: {} {}: {} -> {}",
                change.scenario, change.cell, change.old, change.new
            );
        }
        for id in &self.only_old {
            let _ = writeln!(out, "removed: {id}");
        }
        for id in &self.only_new {
            let _ = writeln!(out, "added: {id}");
        }
        let regressions = self.changed.iter().filter(|c| c.regression).count();
        let _ = writeln!(
            out,
            "{} scenarios matched, {} cells changed ({} regressions), {} removed, {} added",
            self.matched,
            self.changed.len(),
            regressions,
            self.only_old.len(),
            self.only_new.len()
        );
        out
    }
}

/// The result cells compared per matched scenario, in report column order.
const CELLS: [&str; 9] = [
    "feasible",
    "agreement",
    "validity",
    "termination",
    "correct",
    "agreed",
    "rounds",
    "transmissions",
    "deliveries",
];

/// Compares two canonical reports parsed from their JSON text.
///
/// # Errors
///
/// Returns a message when either document is not a canonical campaign
/// report (missing or malformed `records`).
pub fn diff_reports(old: &Json, new: &Json) -> Result<CampaignDiff, String> {
    let old_records = indexed_records(old, "old")?;
    let new_records = indexed_records(new, "new")?;
    let new_by_identity: lbc_model::fx::FxHashMap<&str, &Json> = new_records
        .iter()
        .map(|(identity, record)| (identity.as_str(), *record))
        .collect();
    let old_identities: std::collections::HashSet<&str> = old_records
        .iter()
        .map(|(identity, _)| identity.as_str())
        .collect();

    let mut diff = CampaignDiff::default();
    for (identity, old_record) in &old_records {
        let Some(new_record) = new_by_identity.get(identity.as_str()) else {
            diff.only_old.push(identity.clone());
            continue;
        };
        diff.matched += 1;
        for cell in CELLS {
            let old_value = render_cell(old_record.get(cell));
            let new_value = render_cell(new_record.get(cell));
            if old_value != new_value {
                let regression = cell == "correct"
                    && old_record.get(cell).and_then(Json::as_bool) == Some(true)
                    && new_record.get(cell).and_then(Json::as_bool) == Some(false);
                diff.changed.push(CellChange {
                    scenario: identity.clone(),
                    cell: cell.to_string(),
                    old: old_value,
                    new: new_value,
                    regression,
                });
            }
        }
    }
    for (identity, _) in &new_records {
        if !old_identities.contains(identity.as_str()) {
            diff.only_new.push(identity.clone());
        }
    }
    Ok(diff)
}

/// Convenience: parse both texts and diff.
///
/// # Errors
///
/// Returns a message when either text fails to parse or is not a canonical
/// report.
pub fn diff_report_texts(old: &str, new: &str) -> Result<CampaignDiff, String> {
    let old = Json::parse(old).map_err(|e| format!("old report: {e}"))?;
    let new = Json::parse(new).map_err(|e| format!("new report: {e}"))?;
    diff_reports(&old, &new)
}

/// Extracts `(identity, record)` pairs from a canonical report, in record
/// order. The identity covers every cell that determines the scenario, so
/// two reports produced from the same spec (even by different engine
/// versions) match record-for-record. Records with byte-identical
/// identities (a spec can repeat a grid cell) are disambiguated by an
/// occurrence counter, so a lost duplicate shows up as removed instead of
/// silently aliasing onto its twin.
fn indexed_records<'a>(report: &'a Json, label: &str) -> Result<Vec<(String, &'a Json)>, String> {
    let records = report
        .get("records")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{label} report: missing 'records' array"))?;
    let mut indexed: Vec<(String, &Json)> = Vec::with_capacity(records.len());
    let mut occurrences: lbc_model::fx::FxHashMap<String, usize> = Default::default();
    for record in records {
        let mut identity = String::new();
        for field in [
            "family",
            "graph",
            "n",
            "f",
            "algorithm",
            "strategy",
            "faulty",
            "inputs",
            "seed",
        ] {
            let value = record
                .get(field)
                .ok_or_else(|| format!("{label} report: record missing '{field}'"))?;
            let _ = write!(identity, "{}={} ", field, render_cell(Some(value)));
        }
        let mut identity = identity.trim_end().to_string();
        let occurrence = occurrences.entry(identity.clone()).or_insert(0);
        *occurrence += 1;
        if *occurrence > 1 {
            let _ = write!(identity, " (occurrence {occurrence})");
        }
        indexed.push((identity, record));
    }
    Ok(indexed)
}

fn render_cell(value: Option<&Json>) -> String {
    match value {
        None => "<missing>".to_string(),
        Some(json) => json.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_campaign;
    use crate::spec::{
        CampaignSpec, FRange, FaultPolicy, GraphFamily, InputPolicy, SizeSpec, StrategySpec,
        SweepSpec,
    };
    use lbc_consensus::AlgorithmKind;

    fn sample_report_json() -> Json {
        let spec = CampaignSpec {
            name: "diff-unit".to_string(),
            seed: 11,
            sweeps: vec![SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm1],
                strategies: vec![StrategySpec::TamperRelays],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Alternating,
            }],
        };
        let text = run_campaign(&spec, 2).unwrap().to_json().to_string();
        Json::parse(&text).unwrap()
    }

    #[test]
    fn self_diff_is_clean() {
        let report = sample_report_json();
        let diff = diff_reports(&report, &report).unwrap();
        assert!(diff.is_clean());
        assert!(!diff.has_regressions());
        assert_eq!(diff.matched, 5);
        assert!(diff
            .render()
            .contains("5 scenarios matched, 0 cells changed"));
    }

    /// Mutates a cell of the first record of a parsed report.
    fn patch_first_record(report: &mut Json, cell: &str, value: Json) {
        let Json::Obj(fields) = report else {
            panic!("report is an object");
        };
        for (key, field) in fields.iter_mut() {
            if key == "records" {
                let Json::Arr(records) = field else {
                    panic!("records is an array");
                };
                let Json::Obj(record) = &mut records[0] else {
                    panic!("record is an object");
                };
                for (record_key, record_value) in record.iter_mut() {
                    if record_key == cell {
                        *record_value = value;
                        return;
                    }
                }
            }
        }
        panic!("cell {cell} not found");
    }

    #[test]
    fn verdict_regressions_are_flagged() {
        let old = sample_report_json();
        let mut new = old.clone();
        patch_first_record(&mut new, "correct", Json::Bool(false));
        patch_first_record(&mut new, "agreement", Json::Bool(false));
        let diff = diff_reports(&old, &new).unwrap();
        assert!(diff.has_regressions());
        assert!(!diff.is_clean());
        assert!(diff.render().contains("REGRESSION"));
        // Exactly one regression (`correct`); `agreement` is a plain change.
        assert_eq!(diff.changed.iter().filter(|c| c.regression).count(), 1);
        assert_eq!(diff.changed.len(), 2);
        // An incorrect→correct flip is *not* a regression.
        let recovered = diff_reports(&new, &old).unwrap();
        assert!(!recovered.has_regressions());
        assert_eq!(recovered.changed.len(), 2);
    }

    #[test]
    fn non_regression_changes_do_not_fail() {
        let old = sample_report_json();
        let mut new = old.clone();
        patch_first_record(&mut new, "rounds", Json::Num(31.0));
        let diff = diff_reports(&old, &new).unwrap();
        assert!(!diff.has_regressions());
        assert!(!diff.is_clean());
        assert!(diff.changed.iter().all(|c| c.cell == "rounds"));
    }

    #[test]
    fn added_and_removed_scenarios_are_reported() {
        let old = sample_report_json();
        // Drop the last record from the new report by slicing the parsed doc.
        let mut new = old.clone();
        if let Json::Obj(fields) = &mut new {
            for (key, value) in fields.iter_mut() {
                if key == "records" {
                    if let Json::Arr(records) = value {
                        records.pop();
                    }
                }
            }
        }
        let diff = diff_reports(&old, &new).unwrap();
        assert_eq!(diff.only_old.len(), 1);
        assert!(diff.only_new.is_empty());
        assert!(!diff.has_regressions());
        assert!(diff.render().contains("removed: "));
    }

    #[test]
    fn duplicate_identities_do_not_alias() {
        let old = sample_report_json();
        // Duplicate every record (as a spec repeating a grid cell would),
        // then drop one duplicate from the new report: the loss must show
        // up as a removed scenario, not vanish into its twin.
        let mut doubled = old.clone();
        if let Json::Obj(fields) = &mut doubled {
            for (key, value) in fields.iter_mut() {
                if key == "records" {
                    if let Json::Arr(records) = value {
                        let copy = records.clone();
                        records.extend(copy);
                    }
                }
            }
        }
        let mut shrunk = doubled.clone();
        if let Json::Obj(fields) = &mut shrunk {
            for (key, value) in fields.iter_mut() {
                if key == "records" {
                    if let Json::Arr(records) = value {
                        records.pop();
                    }
                }
            }
        }
        let clean = diff_reports(&doubled, &doubled).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.matched, 10);
        let lossy = diff_reports(&doubled, &shrunk).unwrap();
        assert_eq!(lossy.only_old.len(), 1);
        assert!(lossy.only_old[0].contains("(occurrence 2)"));
    }

    #[test]
    fn malformed_reports_error() {
        assert!(diff_report_texts("{}", "{}").is_err());
        assert!(diff_report_texts("not json", "{}").is_err());
    }
}
