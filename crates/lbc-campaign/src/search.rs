//! Per-cell worst-case adversary search.
//!
//! The grid executor ([`crate::executor`]) evaluates the *declared* strategy
//! × placement × input grid of a spec. The paper's impossibility results are
//! statements about the **worst** adversary, though — a fixed grid only ever
//! witnesses the adversaries someone thought to write down. This module
//! hunts for the worst adversary of every `(graph, f, algorithm)` **cell**:
//!
//! * **Seeded frontier** — the sweep's declared strategies (materialized
//!   with derived seeds), the full built-in [`Strategy::all`] catalogue, the
//!   worst-case boundary placement plus the sweep's own placements, and the
//!   sweep's input assignments (always including the alternating pattern).
//! * **Beam search** — each round mutates every frontier survivor
//!   [`SearchSpec::mutations`] times (swap a faulty node, tweak or switch
//!   the strategy via [`Strategy::mutations`], flip one input bit; async
//!   cells add the schedule knobs, partial-sync cells additionally co-mutate
//!   the GST and the pre-GST hold-set via
//!   [`schedule::gst_mutations`]), scores
//!   the batch, and keeps the [`SearchSpec::beam`] most severe candidates.
//! * **Severity** — executions are ranked by [`Severity`]: consensus
//!   violations first (agreement over validity over termination), then the
//!   near-miss dissent margin (honest nodes outside the largest agreeing
//!   bloc), then rounds-to-decide, then message volume.
//! * **Determinism** — every random draw comes from seeds derived per cell
//!   (and per round) from the campaign seed, so the canonical report is
//!   byte-identical at any worker count, and a resumed search replays the
//!   exact mutation schedule a one-shot run would have produced.
//! * **Budget & resume** — the per-cell evaluation budget is spent in whole
//!   rounds (a round that would overshoot is not started, and the cell is
//!   marked `exhausted`). The canonical report serializes each cell's
//!   frontier, so `lbc search --resume` continues exactly where the budget
//!   ran out: resuming with a larger budget equals the one-shot run at that
//!   budget whenever the seed round fit the original budget.
//! * **Minimization** — the best violating candidate is greedily shrunk
//!   (drop faulty nodes, simplify the strategy along
//!   [`Strategy::simplifications`], clear input bits) into a minimal
//!   counterexample, emitted as a **replayable spec fragment**: a one-cell
//!   sweep with fixed faults, explicit strategy seed and a `bits` input
//!   that `lbc campaign` re-executes verbatim.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lbc_adversary::{schedule, Strategy};
use lbc_consensus::{conditions, runner, AlgorithmKind};
use lbc_graph::Graph;
use lbc_model::fx::{FxHashMap, FxHashSet};
use lbc_model::json::{u64_from_number_or_string, FromJson, Json, JsonError, ToJson};
use lbc_model::{
    AsyncRegime, ConsensusOutcome, InputAssignment, NodeId, NodeSet, Regime, Value, Verdict,
};
use lbc_sim::TraceSummary;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::spec::{
    mix_seed, CampaignSpec, FRange, FaultPolicy, GraphFamily, InputPolicy, RegimeSpec, SizeSpec,
    SpecError, StrategySpec, SweepSpec,
};

/// Hard cap on the per-cell evaluation budget, protecting against runaway
/// specs the same way [`crate::spec::MAX_SCENARIOS`] protects grids.
pub const MAX_SEARCH_BUDGET: usize = 100_000;

/// How many of a sweep's fault placements seed the frontier (the worst-case
/// boundary placement is always added on top).
const MAX_SEED_PLACEMENTS: usize = 4;

/// How many of a sweep's input assignments seed the frontier (the
/// alternating pattern is always added on top).
const MAX_SEED_INPUTS: usize = 3;

const SALT_CELL: u64 = 0x5EA0;
const SALT_SCHEDULE: u64 = 0x5EA5;
const SALT_ROUND: u64 = 0x5EA1;
const SALT_STRATEGY: u64 = 0x5EA2;
const SALT_FAULTS: u64 = 0x5EA3;
const SALT_INPUTS: u64 = 0x5EA4;

// ---------------------------------------------------------------------------
// search configuration
// ---------------------------------------------------------------------------

/// The `search` block of a campaign spec: per-cell search knobs.
///
/// JSON: `{"budget": 160, "beam": 4, "mutations": 6, "rounds": 8}` — every
/// field optional, defaulting to the values of [`SearchSpec::default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchSpec {
    /// Maximum scored executions per cell (seed round + mutation rounds;
    /// counterexample shrinking has its own budget of the same size).
    pub budget: usize,
    /// Frontier width kept between mutation rounds.
    pub beam: usize,
    /// Mutated candidates derived from each frontier entry per round.
    pub mutations: usize,
    /// Maximum number of mutation rounds after the seed round.
    pub rounds: usize,
}

impl Default for SearchSpec {
    fn default() -> Self {
        SearchSpec {
            budget: 160,
            beam: 4,
            mutations: 6,
            rounds: 8,
        }
    }
}

impl SearchSpec {
    /// Validates the knobs against zero values and [`MAX_SEARCH_BUDGET`].
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending knob.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.budget == 0 || self.beam == 0 || self.mutations == 0 {
            return Err(SpecError::new(
                "search requires budget, beam and mutations >= 1",
            ));
        }
        if self.budget > MAX_SEARCH_BUDGET {
            return Err(SpecError::new(format!(
                "search budget {} exceeds the cap of {MAX_SEARCH_BUDGET}",
                self.budget
            )));
        }
        Ok(())
    }
}

impl ToJson for SearchSpec {
    fn to_json(&self) -> Json {
        Json::object([
            ("budget", self.budget.to_json()),
            ("beam", self.beam.to_json()),
            ("mutations", self.mutations.to_json()),
            ("rounds", self.rounds.to_json()),
        ])
    }
}

impl FromJson for SearchSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let defaults = SearchSpec::default();
        let knob =
            |key: &str, fallback: usize| value.get(key).map_or(Ok(fallback), usize::from_json);
        Ok(SearchSpec {
            budget: knob("budget", defaults.budget)?,
            beam: knob("beam", defaults.beam)?,
            mutations: knob("mutations", defaults.mutations)?,
            rounds: knob("rounds", defaults.rounds)?,
        })
    }
}

// ---------------------------------------------------------------------------
// severity
// ---------------------------------------------------------------------------

/// The worst-case ranking of one execution, ordered lexicographically worst
/// first: `violation` (weighted bitmask: missing agreement 4, validity 2,
/// termination 1), then `dissent` (the near-miss margin: honest nodes
/// outside the largest agreeing bloc — undecided honest nodes count), then
/// `rounds`, then `volume` (transmissions + deliveries). The derived `Ord`
/// *is* the severity order: `a > b` means `a` is more severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Severity {
    /// Weighted bitmask of violated consensus conditions.
    pub violation: u8,
    /// Honest nodes outside the largest agreeing bloc.
    pub dissent: usize,
    /// Rounds the execution took.
    pub rounds: usize,
    /// Total transmissions plus deliveries.
    pub volume: usize,
}

impl Severity {
    /// Whether the execution violated at least one consensus condition.
    #[must_use]
    pub fn is_violation(&self) -> bool {
        self.violation != 0
    }

    /// Derives the severity of one judged execution.
    #[must_use]
    pub fn of(outcome: &ConsensusOutcome, stats: TraceSummary) -> Self {
        let verdict = outcome.verdict();
        let violation = (u8::from(!verdict.agreement) << 2)
            | (u8::from(!verdict.validity) << 1)
            | u8::from(!verdict.termination);
        let honest = outcome.non_faulty_nodes().len();
        let mut zeros = 0usize;
        let mut ones = 0usize;
        for (_, value) in outcome.non_faulty_outputs() {
            match value {
                Value::Zero => zeros += 1,
                Value::One => ones += 1,
            }
        }
        Severity {
            violation,
            dissent: honest.saturating_sub(zeros.max(ones)),
            rounds: stats.rounds,
            volume: stats.transmissions + stats.deliveries,
        }
    }

    /// The verdict encoded in the `violation` bitmask.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        Verdict {
            agreement: self.violation & 4 == 0,
            validity: self.violation & 2 == 0,
            termination: self.violation & 1 == 0,
        }
    }
}

impl ToJson for Severity {
    fn to_json(&self) -> Json {
        Json::object([
            ("violation", u64::from(self.violation).to_json()),
            ("dissent", self.dissent.to_json()),
            ("rounds", self.rounds.to_json()),
            ("volume", self.volume.to_json()),
        ])
    }
}

impl FromJson for Severity {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value.get(key).ok_or_else(|| JsonError {
                message: format!("severity missing '{key}'"),
            })
        };
        Ok(Severity {
            violation: u8::try_from(u64::from_json(field("violation")?)?).map_err(|_| {
                JsonError {
                    message: "severity 'violation' out of range".to_string(),
                }
            })?,
            dissent: usize::from_json(field("dissent")?)?,
            rounds: usize::from_json(field("rounds")?)?,
            volume: usize::from_json(field("volume")?)?,
        })
    }
}

// ---------------------------------------------------------------------------
// candidates
// ---------------------------------------------------------------------------

/// One point of the joint adversary space: a concrete (pre-seeded) strategy,
/// a fault placement, an input assignment, and — for asynchronous and
/// partially synchronous cells — a concrete delivery schedule, plus the
/// timing attack (GST + pre-GST hold-set) for partial synchrony.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The concrete adversary strategy.
    pub strategy: Strategy,
    /// The faulty set (size at most the cell's declared `f`).
    pub faulty: NodeSet,
    /// The input assignment.
    pub inputs: InputAssignment,
    /// The concrete asynchronous schedule (always `Some` for async and
    /// partial-sync cells — the post-GST schedule for the latter — `None`
    /// for synchronous ones). The schedule is part of the adversary:
    /// mutation rounds turn its knobs exactly like strategy knobs.
    pub schedule: Option<AsyncRegime>,
    /// The timing attack (always `Some` for partial-sync cells, `None`
    /// otherwise): the adversary's GST and pre-GST hold-set, co-mutated by
    /// the search toward the violation boundary.
    pub timing: Option<schedule::GstAttack>,
}

impl Candidate {
    /// A canonical identity string, used for deduplication and stable
    /// tie-breaking of equally severe candidates.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.strategy.to_json(),
            self.faulty,
            self.inputs,
            self.regime().to_json(),
        )
    }

    /// The regime this candidate executes under.
    #[must_use]
    pub fn regime(&self) -> Regime {
        match (self.schedule, self.timing) {
            (None, _) => Regime::Synchronous,
            (Some(config), None) => Regime::Asynchronous(config),
            (Some(config), Some(attack)) => schedule::gst_as_regime(&attack, &config),
        }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("strategy", self.strategy.to_json()),
            ("faulty", self.faulty.to_json()),
            ("inputs", Json::Str(self.inputs.to_string())),
        ];
        if self.schedule.is_some() {
            fields.push(("schedule", self.regime().to_json()));
        }
        Json::object(fields)
    }

    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value.get(key).ok_or_else(|| JsonError {
                message: format!("candidate missing '{key}'"),
            })
        };
        let (schedule, timing) = match value.get("schedule") {
            None | Some(Json::Null) => (None, None),
            Some(json) => match Regime::from_json(json)? {
                Regime::Synchronous => (None, None),
                Regime::Asynchronous(config) => (Some(config), None),
                Regime::PartialSync { gst, pre, post } => (
                    Some(post),
                    Some(schedule::GstAttack {
                        gst,
                        hold: pre.hold,
                    }),
                ),
            },
        };
        Ok(Candidate {
            strategy: Strategy::from_json(field("strategy")?)?,
            faulty: NodeSet::from_json(field("faulty")?)?,
            inputs: inputs_from_str(field("inputs")?.as_str().ok_or_else(|| JsonError {
                message: "candidate 'inputs' must be a bit string".to_string(),
            })?)?,
            schedule,
            timing,
        })
    }
}

/// Parses the bit-string form of an input assignment (node 0 first), the
/// inverse of its `Display`.
fn inputs_from_str(text: &str) -> Result<InputAssignment, JsonError> {
    let values = text
        .chars()
        .map(|c| match c {
            '0' => Ok(Value::Zero),
            '1' => Ok(Value::One),
            other => Err(JsonError {
                message: format!("invalid input bit '{other}'"),
            }),
        })
        .collect::<Result<Vec<Value>, JsonError>>()?;
    Ok(InputAssignment::from_values(values))
}

/// A candidate together with its measured severity.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored {
    /// The evaluated candidate.
    pub candidate: Candidate,
    /// Its severity under the cell's algorithm.
    pub severity: Severity,
    /// The agreed value, when agreement held.
    pub agreed: Option<Value>,
}

impl Scored {
    fn to_json(&self) -> Json {
        let mut fields = match self.candidate.to_json() {
            Json::Obj(fields) => fields,
            _ => unreachable!("candidates serialize to objects"),
        };
        fields.push(("severity".to_string(), self.severity.to_json()));
        fields.push((
            "agreed".to_string(),
            self.agreed.map_or(Json::Null, |value| value.to_json()),
        ));
        Json::Obj(fields)
    }

    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Scored {
            candidate: Candidate::from_json(value)?,
            severity: Severity::from_json(value.get("severity").ok_or_else(|| JsonError {
                message: "scored candidate missing 'severity'".to_string(),
            })?)?,
            agreed: match value.get("agreed") {
                None | Some(Json::Null) => None,
                Some(json) => Some(match json.as_u64() {
                    Some(0) => Value::Zero,
                    Some(1) => Value::One,
                    _ => {
                        return Err(JsonError {
                            message: "'agreed' must be 0, 1 or null".to_string(),
                        })
                    }
                }),
            },
        })
    }
}

// ---------------------------------------------------------------------------
// cells
// ---------------------------------------------------------------------------

/// One search cell: a concrete `(graph instance, f, algorithm)` with its
/// seeded frontier, assembled deterministically from the spec's sweeps
/// (cells repeated by several sweeps are merged, first appearance wins the
/// position).
#[derive(Debug, Clone)]
struct CellPlan {
    family: GraphFamily,
    label: String,
    n: usize,
    f: usize,
    algorithm: AlgorithmKind,
    /// The declared regime of the cell; async cells additionally explore
    /// the schedule space through their candidates.
    regime: RegimeSpec,
    feasible: bool,
    cell_seed: u64,
    seeds: Vec<Candidate>,
}

impl CellPlan {
    /// The base schedule async (and partial-sync: the post-GST half)
    /// candidates start from (the cell's declared regime materialized with
    /// a cell-derived seed).
    fn base_schedule(&self) -> Option<AsyncRegime> {
        match self
            .regime
            .materialize(mix_seed(&[SALT_SCHEDULE, self.cell_seed]))
        {
            Regime::Synchronous => None,
            Regime::Asynchronous(config) => Some(config),
            Regime::PartialSync { post, .. } => Some(post),
        }
    }

    /// The base timing attack partial-sync candidates start from (the
    /// cell's declared GST and hold-set); `None` for the other regimes.
    fn base_timing(&self) -> Option<schedule::GstAttack> {
        match self
            .regime
            .materialize(mix_seed(&[SALT_SCHEDULE, self.cell_seed]))
        {
            Regime::PartialSync { gst, pre, .. } => Some(schedule::GstAttack {
                gst,
                hold: pre.hold,
            }),
            Regime::Synchronous | Regime::Asynchronous(_) => None,
        }
    }
}

/// The serializable per-cell search state: everything needed to continue
/// the mutation schedule exactly where a budgeted run stopped.
#[derive(Debug, Clone, PartialEq)]
struct CellState {
    frontier: Vec<Scored>,
    evals: usize,
    rounds_done: usize,
}

/// The final outcome of one cell's search.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The graph family (kept for replay fragments).
    pub family: GraphFamily,
    /// The instance label (e.g. `C13`).
    pub graph: String,
    /// Number of nodes.
    pub n: usize,
    /// Declared fault bound.
    pub f: usize,
    /// The algorithm under attack.
    pub algorithm: AlgorithmKind,
    /// The declared regime of the cell.
    pub regime: RegimeSpec,
    /// Whether the paper's conditions admit this cell.
    pub feasible: bool,
    /// Scored executions spent (seed + mutation rounds).
    pub evals: usize,
    /// Mutation rounds completed after the seed round.
    pub rounds_done: usize,
    /// Whether the budget stopped the search before the round cap.
    pub exhausted: bool,
    /// The frontier, most severe first.
    pub frontier: Vec<Scored>,
    /// The minimized counterexample, when the best candidate violates.
    pub counterexample: Option<Counterexample>,
}

impl CellOutcome {
    /// The most severe candidate found.
    #[must_use]
    pub fn best(&self) -> &Scored {
        &self.frontier[0]
    }

    /// The replayable one-cell sweep reproducing the minimized
    /// counterexample, if one was found. `lbc campaign` executes it
    /// verbatim (sizes are far below the `bits` policy's 53-bit limit).
    #[must_use]
    pub fn replay_fragment(&self) -> Option<SweepSpec> {
        let shrunk = &self.counterexample.as_ref()?.scored.candidate;
        if self.n > 64 {
            // The `bits` input policy carries at most 64 nodes; beyond that
            // there is no replayable encoding, so the counterexample ships
            // in the report without a fragment rather than with a corrupt
            // one (a shift past bit 63 would wrap).
            return None;
        }
        let bits = (0..self.n)
            .filter(|&i| shrunk.inputs.get(NodeId::new(i)) == Value::One)
            .fold(0u64, |acc, i| acc | (1 << i));
        Some(SweepSpec {
            family: self.family.clone(),
            sizes: SizeSpec::List(vec![self.n]),
            f: FRange::exactly(self.f),
            algorithms: vec![self.algorithm],
            // The minimized schedule replays with its seed pinned, so the
            // fragment is self-contained for async cells too.
            regimes: vec![match (shrunk.schedule, shrunk.timing) {
                (None, _) => RegimeSpec::Sync,
                (Some(config), None) => RegimeSpec::Async {
                    scheduler: config.scheduler,
                    delay: config.delay,
                    seed: Some(config.seed),
                },
                (Some(config), Some(attack)) => RegimeSpec::PartialSync {
                    gst: attack.gst,
                    hold: attack.schedule(),
                    scheduler: config.scheduler,
                    delay: config.delay,
                    seed: Some(config.seed),
                },
            }],
            strategies: vec![strategy_to_spec(&shrunk.strategy)],
            // `explicit`, not `fixed`: the minimized fault set is usually
            // smaller than the cell's declared `f`, which the algorithm must
            // still be configured with to reproduce the run.
            faults: FaultPolicy::Explicit(vec![shrunk.faulty.iter().map(NodeId::index).collect()]),
            inputs: InputPolicy::Bits(bits),
        })
    }
}

/// A minimized violating candidate and the shrinking cost.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The greedily minimized candidate (still violating).
    pub scored: Scored,
    /// Extra evaluations spent shrinking (outside the search budget).
    pub shrink_evals: usize,
}

/// Converts a concrete strategy back into its declarative spec form with
/// every seed explicit, so replay fragments are self-contained.
#[must_use]
pub fn strategy_to_spec(strategy: &Strategy) -> StrategySpec {
    match strategy {
        Strategy::Honest => StrategySpec::Honest,
        Strategy::Silent => StrategySpec::Silent,
        Strategy::CrashAfter(round) => StrategySpec::CrashAfter(*round),
        Strategy::TamperAll => StrategySpec::TamperAll,
        Strategy::TamperRelays => StrategySpec::TamperRelays,
        Strategy::Equivocate => StrategySpec::Equivocate,
        Strategy::Random { seed } => StrategySpec::Random { seed: Some(*seed) },
        Strategy::SleeperTamper { honest_rounds } => StrategySpec::Sleeper {
            honest_rounds: *honest_rounds,
        },
        Strategy::StraddleTamper => StrategySpec::StraddleTamper,
        Strategy::GstEquivocate => StrategySpec::GstEquivocate,
        Strategy::CrashRecover {
            down_from,
            down_for,
        } => StrategySpec::CrashRecover {
            down_from: *down_from,
            down_for: *down_for,
        },
    }
}

// ---------------------------------------------------------------------------
// cell construction
// ---------------------------------------------------------------------------

fn build_cells(spec: &CampaignSpec) -> Result<Vec<CellPlan>, SpecError> {
    if spec.sweeps.is_empty() {
        return Err(SpecError::new("campaign has no sweeps"));
    }
    let mut cells: Vec<CellPlan> = Vec::new();
    let mut index_of: FxHashMap<(String, usize, &'static str, String), usize> =
        FxHashMap::default();
    let mut seen_keys: Vec<FxHashSet<String>> = Vec::new();
    for sweep in &spec.sweeps {
        if sweep.algorithms.is_empty() {
            return Err(SpecError::new("sweep needs at least one algorithm"));
        }
        if sweep.regimes.is_empty() {
            return Err(SpecError::new("sweep has an empty regime list"));
        }
        if sweep.sizes.values().is_empty() {
            return Err(SpecError::new("sweep has an empty size list"));
        }
        for n in sweep.sizes.values() {
            sweep.family.check(n)?;
            let graph = sweep.family.build(n);
            for f in sweep.f.from..=sweep.f.to {
                for &algorithm in &sweep.algorithms {
                    for regime in &sweep.regimes {
                        if !regime.is_sync() && !algorithm.supports_regime(&regime.materialize(0)) {
                            return Err(SpecError::new(format!(
                                "algorithm '{}' cannot run under regime '{}'",
                                algorithm.name(),
                                regime.label()
                            )));
                        }
                        let label = sweep.family.label(n);
                        // Cells dedup on the *full* regime spec (canonical
                        // JSON), not the seedless label: two axis entries
                        // differing only in their explicit schedule seed are
                        // distinct search cells, not duplicates.
                        let key = (
                            label.clone(),
                            f,
                            algorithm.name(),
                            regime.to_json().to_string(),
                        );
                        let cell_index = *index_of.entry(key).or_insert_with(|| {
                            let cell_seed = mix_seed(&[
                                SALT_CELL,
                                spec.seed,
                                cells.len() as u64,
                                n as u64,
                                f as u64,
                            ]);
                            cells.push(CellPlan {
                                family: sweep.family.clone(),
                                label,
                                n,
                                f,
                                algorithm,
                                regime: regime.clone(),
                                feasible: feasibility(&graph, f, algorithm),
                                cell_seed,
                                seeds: Vec::new(),
                            });
                            seen_keys.push(FxHashSet::default());
                            cells.len() - 1
                        });
                        seed_cell(
                            &mut cells[cell_index],
                            &mut seen_keys[cell_index],
                            sweep,
                            &graph,
                        )?;
                    }
                }
            }
        }
    }
    Ok(cells)
}

fn feasibility(graph: &Graph, f: usize, algorithm: AlgorithmKind) -> bool {
    match algorithm {
        AlgorithmKind::Algorithm1 => conditions::local_broadcast_feasible(graph, f),
        AlgorithmKind::Algorithm2 => conditions::efficient_algorithm_applicable(graph, f),
        AlgorithmKind::P2pBaseline => conditions::point_to_point_feasible(graph, f),
        AlgorithmKind::AsyncFlood => conditions::asynchronous_feasible(graph, f),
    }
}

/// Appends one sweep's contribution to a cell's seeded frontier: declared
/// strategies plus the built-in catalogue, the worst-case placement plus the
/// sweep's own placements, and the sweep's inputs plus the alternating
/// pattern — deduplicated against everything already seeded.
fn seed_cell(
    cell: &mut CellPlan,
    seen: &mut FxHashSet<String>,
    sweep: &SweepSpec,
    graph: &Graph,
) -> Result<(), SpecError> {
    let cell_seed = cell.cell_seed;
    let mut strategies: Vec<Strategy> = Vec::new();
    for (position, declared) in sweep.strategies.iter().enumerate() {
        let seed = mix_seed(&[SALT_STRATEGY, cell_seed, position as u64]);
        let strategy = declared.materialize(seed);
        if !strategies.contains(&strategy) {
            strategies.push(strategy);
        }
    }
    for built_in in Strategy::all(mix_seed(&[SALT_STRATEGY, cell_seed, u64::MAX])) {
        if !strategies.contains(&built_in) {
            strategies.push(built_in);
        }
    }
    // Partial-sync cells are the only ones where the scheduler-aware
    // strategies differ from their fixed catalogue cousins; seeding them
    // elsewhere would only burn budget on duplicates.
    let base_timing = cell.base_timing();
    if base_timing.is_some() {
        for gst_strategy in Strategy::gst_aware() {
            if !strategies.contains(&gst_strategy) {
                strategies.push(gst_strategy);
            }
        }
    }

    let mut placements: Vec<NodeSet> = Vec::new();
    let (worst, _) = FaultPolicy::WorstCase.placements_noted(
        graph,
        cell.f,
        mix_seed(&[SALT_FAULTS, cell_seed]),
    )?;
    placements.extend(worst);
    // Declared-policy errors propagate: a spec whose placements `lbc
    // campaign` would reject must not silently degrade to a worst-case-only
    // frontier under `lbc search`.
    let (declared, _) =
        sweep
            .faults
            .placements_noted(graph, cell.f, mix_seed(&[SALT_FAULTS, cell_seed]))?;
    for placement in declared.into_iter().take(MAX_SEED_PLACEMENTS) {
        if !placements.contains(&placement) {
            placements.push(placement);
        }
    }

    let mut inputs: Vec<InputAssignment> = Vec::new();
    let declared_inputs = sweep
        .inputs
        .assignments(cell.n, mix_seed(&[SALT_INPUTS, cell_seed]))?;
    for assignment in declared_inputs.into_iter().take(MAX_SEED_INPUTS) {
        if !inputs.contains(&assignment) {
            inputs.push(assignment);
        }
    }
    // One definition of "alternating": the policy's own expansion (the
    // seed argument is unused by this deterministic policy).
    let mut alternating = InputPolicy::Alternating.assignments(cell.n, 0)?;
    let alternating = alternating.remove(0);
    if !inputs.contains(&alternating) {
        inputs.push(alternating);
    }

    // Async cells additionally seed the schedule dimension: the cell's own
    // declared schedule first, then the adversarial schedule catalogue.
    let mut schedules: Vec<Option<AsyncRegime>> = vec![cell.base_schedule()];
    if let Some(base) = cell.base_schedule() {
        for extra in schedule::catalogue(mix_seed(&[SALT_SCHEDULE, cell_seed, 1])) {
            let extra = Some(extra);
            if extra != Some(base) && !schedules.contains(&extra) {
                schedules.push(extra);
            }
        }
    }

    // Partial-sync cells seed the timing dimension on top: the declared
    // attack plus its catalogue variants. For the other regimes the axis is
    // the single `None`, leaving their seed order untouched.
    let timings: Vec<Option<schedule::GstAttack>> = match base_timing {
        None => vec![None],
        Some(base) => schedule::gst_catalogue(&base)
            .into_iter()
            .map(Some)
            .collect(),
    };

    for strategy in &strategies {
        for placement in &placements {
            for assignment in &inputs {
                for schedule in &schedules {
                    for timing in &timings {
                        let candidate = Candidate {
                            strategy: strategy.clone(),
                            faulty: placement.clone(),
                            inputs: assignment.clone(),
                            schedule: *schedule,
                            timing: *timing,
                        };
                        if seen.insert(candidate.key()) {
                            cell.seeds.push(candidate);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// evaluation and mutation
// ---------------------------------------------------------------------------

fn evaluate(graph: &Graph, cell: &CellPlan, candidate: Candidate) -> Scored {
    let mut adversary = candidate.strategy.clone().into_adversary();
    let (outcome, trace) = runner::run_kind_under(
        cell.algorithm,
        &candidate.regime(),
        graph,
        cell.f,
        &candidate.inputs,
        &candidate.faulty,
        &mut adversary,
    );
    Scored {
        severity: Severity::of(&outcome, trace.summary()),
        agreed: outcome.agreed_value(),
        candidate,
    }
}

/// Derives one mutated candidate. Every RNG draw happens unconditionally for
/// the chosen operator, so the schedule is identical whether or not the
/// result later turns out to be a duplicate.
fn mutate(cell: &CellPlan, rng: &mut ChaCha8Rng, parent: &Candidate) -> Candidate {
    let n = cell.n;
    let mut candidate = parent.clone();
    // Sync cells draw from the original three operators so pre-regime
    // searches replay identically; async cells add the schedule knobs as a
    // fourth dimension of the same joint space, and partial-sync cells add
    // the GST/hold-set co-mutation as a fifth. The count is a function of
    // the cell kind alone, so every regime's mutation schedule stays
    // replayable.
    let operators = if parent.timing.is_some() {
        5u32
    } else if parent.schedule.is_some() {
        4u32
    } else {
        3u32
    };
    match rng.gen_range(0..operators) {
        // Swap one faulty node for a currently honest one.
        0 => {
            let members: Vec<NodeId> = candidate.faulty.iter().collect();
            let outsiders: Vec<NodeId> = (0..n)
                .map(NodeId::new)
                .filter(|&v| !candidate.faulty.contains(v))
                .collect();
            if members.is_empty() || outsiders.is_empty() {
                // Degenerate placements (no faults, or all faulty): fall
                // through to an input flip so the draw still perturbs.
                let node = NodeId::new(rng.gen_range(0..n));
                candidate
                    .inputs
                    .set(node, candidate.inputs.get(node).flipped());
            } else {
                let out = members[rng.gen_range(0..members.len())];
                let into = outsiders[rng.gen_range(0..outsiders.len())];
                candidate.faulty.remove(out);
                candidate.faulty.insert(into);
            }
        }
        // Tweak a strategy knob or switch the strategy kind.
        1 => {
            let reseed = rng.next_u64();
            let neighborhood = candidate.strategy.mutations(reseed);
            candidate.strategy = neighborhood[rng.gen_range(0..neighborhood.len())].clone();
        }
        // Flip one input bit.
        2 => {
            let node = NodeId::new(rng.gen_range(0..n));
            candidate
                .inputs
                .set(node, candidate.inputs.get(node).flipped());
        }
        // Turn a schedule knob (async and partial-sync cells): delay,
        // scheduler kind, or the schedule seed.
        3 => {
            let reseed = rng.next_u64();
            let current = candidate.schedule.expect("operator 3 requires a schedule");
            let neighborhood = schedule::mutations(&current, reseed);
            candidate.schedule = Some(neighborhood[rng.gen_range(0..neighborhood.len())]);
        }
        // Co-mutate the timing attack (partial-sync cells only): move the
        // GST and flip hold bits toward the violation boundary.
        _ => {
            let reseed = rng.next_u64();
            let current = candidate
                .timing
                .expect("operator 4 requires a timing attack");
            let neighborhood = schedule::gst_mutations(&current, n, reseed);
            candidate.timing = Some(neighborhood[rng.gen_range(0..neighborhood.len())]);
        }
    }
    candidate
}

/// Merges scored candidates into a beam: most severe first, key order as the
/// deterministic tie-break, duplicates dropped. Keys are rendered once per
/// element, not per comparison.
fn select_beam(pool: Vec<Scored>, beam: usize) -> Vec<Scored> {
    let mut keyed: Vec<(String, Scored)> = pool
        .into_iter()
        .map(|scored| (scored.candidate.key(), scored))
        .collect();
    keyed.sort_by(|(a_key, a), (b_key, b)| {
        b.severity.cmp(&a.severity).then_with(|| a_key.cmp(b_key))
    });
    let mut seen: FxHashSet<String> = FxHashSet::default();
    keyed.retain(|(key, _)| seen.insert(key.clone()));
    keyed.truncate(beam);
    keyed.into_iter().map(|(_, scored)| scored).collect()
}

// ---------------------------------------------------------------------------
// the per-cell search
// ---------------------------------------------------------------------------

fn search_cell(cell: &CellPlan, search: &SearchSpec, resume: Option<CellState>) -> CellOutcome {
    let graph = cell.family.build(cell.n);
    let mut state = resume.unwrap_or_else(|| {
        // Seed round: evaluate the seeded frontier (truncated to the budget;
        // resume cannot recover seeds a smaller original budget skipped).
        let seeds: Vec<Candidate> = cell.seeds.iter().take(search.budget).cloned().collect();
        let evals = seeds.len();
        let scored: Vec<Scored> = seeds
            .into_iter()
            .map(|candidate| evaluate(&graph, cell, candidate))
            .collect();
        CellState {
            frontier: select_beam(scored, search.beam),
            evals,
            rounds_done: 0,
        }
    });

    let mut exhausted = false;
    while state.rounds_done < search.rounds && !state.frontier.is_empty() {
        let round = state.rounds_done + 1;
        let mut rng =
            ChaCha8Rng::seed_from_u64(mix_seed(&[SALT_ROUND, cell.cell_seed, round as u64]));
        let mut seen: FxHashSet<String> = state
            .frontier
            .iter()
            .map(|scored| scored.candidate.key())
            .collect();
        let mut batch: Vec<Candidate> = Vec::new();
        for scored in &state.frontier {
            for _ in 0..search.mutations {
                let candidate = mutate(cell, &mut rng, &scored.candidate);
                if seen.insert(candidate.key()) {
                    batch.push(candidate);
                }
            }
        }
        if batch.is_empty() {
            // Every mutation re-derived a frontier member; the round is done
            // (and cost nothing).
            state.rounds_done = round;
            continue;
        }
        if state.evals + batch.len() > search.budget {
            // Budget is spent in whole rounds so a resumed run replays the
            // identical schedule; a partial round would make resume depend
            // on where exactly the cut fell.
            exhausted = true;
            break;
        }
        state.evals += batch.len();
        let mut pool = state.frontier.clone();
        pool.extend(
            batch
                .into_iter()
                .map(|candidate| evaluate(&graph, cell, candidate)),
        );
        state.frontier = select_beam(pool, search.beam);
        state.rounds_done = round;
    }

    let counterexample = state
        .frontier
        .first()
        .filter(|best| best.severity.is_violation())
        .map(|best| minimize(&graph, cell, best, search.budget));

    CellOutcome {
        family: cell.family.clone(),
        graph: cell.label.clone(),
        n: cell.n,
        f: cell.f,
        algorithm: cell.algorithm,
        regime: cell.regime.clone(),
        feasible: cell.feasible,
        evals: state.evals,
        rounds_done: state.rounds_done,
        exhausted,
        frontier: state.frontier,
        counterexample,
    }
}

/// Greedily shrinks a violating candidate: drop faulty nodes, simplify the
/// strategy along [`Strategy::simplifications`], then clear input bits
/// low-index first — accepting each step only if the execution still
/// violates. Wholly deterministic, bounded by `shrink_budget` evaluations.
fn minimize(graph: &Graph, cell: &CellPlan, best: &Scored, shrink_budget: usize) -> Counterexample {
    let mut current = best.clone();
    let mut evals = 0usize;

    // 1. Drop faulty nodes one at a time while the violation survives.
    loop {
        let mut shrunk = false;
        for node in current.candidate.faulty.iter().collect::<Vec<_>>() {
            if current.candidate.faulty.len() <= 1 || evals >= shrink_budget {
                break;
            }
            let mut trial = current.candidate.clone();
            trial.faulty.remove(node);
            let scored = evaluate(graph, cell, trial);
            evals += 1;
            if scored.severity.is_violation() {
                current = scored;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }

    // 2. Substitute strictly simpler strategies, simplest first; the first
    //    one that still violates is minimal for this fault set.
    for simpler in current.candidate.strategy.simplifications() {
        if evals >= shrink_budget {
            break;
        }
        let mut trial = current.candidate.clone();
        trial.strategy = simpler;
        let scored = evaluate(graph, cell, trial);
        evals += 1;
        if scored.severity.is_violation() {
            current = scored;
            break;
        }
    }

    // 3. Substitute strictly simpler schedules (toward lag-1 FIFO) while
    //    the violation survives — a violation surviving the trivial
    //    schedule is schedule-independent, the strongest finding.
    if let Some(current_schedule) = current.candidate.schedule {
        for simpler in schedule::simplifications(&current_schedule) {
            if evals >= shrink_budget {
                break;
            }
            let mut trial = current.candidate.clone();
            trial.schedule = Some(simpler);
            let scored = evaluate(graph, cell, trial);
            evals += 1;
            if scored.severity.is_violation() {
                current = scored;
                break;
            }
        }
    }

    // 4. Shrink the timing attack toward the earliest GST and the smallest
    //    hold-set that still violate. Each accepted step strictly lowers
    //    [`schedule::gst_complexity_rank`], so the loop terminates.
    while let Some(current_timing) = current.candidate.timing {
        let mut shrunk = false;
        for simpler in schedule::gst_simplifications(&current_timing) {
            if evals >= shrink_budget {
                break;
            }
            let mut trial = current.candidate.clone();
            trial.timing = Some(simpler);
            let scored = evaluate(graph, cell, trial);
            evals += 1;
            if scored.severity.is_violation() {
                current = scored;
                shrunk = true;
                break;
            }
        }
        if !shrunk || evals >= shrink_budget {
            break;
        }
    }

    // 5. Clear set input bits low-index first while the violation survives.
    for index in 0..cell.n {
        if evals >= shrink_budget {
            break;
        }
        let node = NodeId::new(index);
        if current.candidate.inputs.get(node) != Value::One {
            continue;
        }
        let mut trial = current.candidate.clone();
        trial.inputs.set(node, Value::Zero);
        let scored = evaluate(graph, cell, trial);
        evals += 1;
        if scored.severity.is_violation() {
            current = scored;
        }
    }

    Counterexample {
        scored: current,
        shrink_evals: evals,
    }
}

// ---------------------------------------------------------------------------
// the search report
// ---------------------------------------------------------------------------

/// The aggregated, canonical result of one `lbc search` run.
#[derive(Debug, Clone)]
pub struct SearchReport {
    name: String,
    seed: u64,
    search: SearchSpec,
    cells: Vec<CellOutcome>,
}

impl SearchReport {
    /// The campaign name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-cell outcomes, in cell order.
    #[must_use]
    pub fn cells(&self) -> &[CellOutcome] {
        &self.cells
    }

    /// Cells whose best candidate violates a consensus condition.
    #[must_use]
    pub fn violations(&self) -> Vec<&CellOutcome> {
        self.cells
            .iter()
            .filter(|cell| cell.best().severity.is_violation())
            .collect()
    }

    /// A replayable campaign spec containing one sweep per minimized
    /// counterexample, or `None` when no cell violated. Running it through
    /// `lbc campaign --strict` re-exhibits every violation.
    #[must_use]
    pub fn counterexample_spec(&self) -> Option<CampaignSpec> {
        let sweeps: Vec<SweepSpec> = self
            .cells
            .iter()
            .filter_map(CellOutcome::replay_fragment)
            .collect();
        (!sweeps.is_empty()).then(|| CampaignSpec {
            name: format!("{}_counterexamples", self.name),
            seed: self.seed,
            sweeps,
            search: None,
            limits: None,
            serve: None,
        })
    }

    /// The canonical JSON report: spec echo, per-cell frontiers (the resume
    /// state), severities and minimized counterexamples with replay
    /// fragments — no wall-clock fields, byte-identical at any worker count.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("seed", self.seed.to_json()),
            ("kind", Json::Str("search".to_string())),
            ("search", self.search.to_json()),
            (
                "cells",
                Json::Arr(self.cells.iter().map(cell_to_json).collect()),
            ),
            ("violations", self.violations().len().to_json()),
        ])
    }

    /// A human-readable per-cell summary table.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "search '{}' (seed {}): {} cells, {} with violations",
            self.name,
            self.seed,
            self.cells.len(),
            self.violations().len()
        );
        for cell in &self.cells {
            let best = cell.best();
            let verdict = best.severity.verdict();
            let status = if best.severity.is_violation() {
                let mut broken = Vec::new();
                if !verdict.agreement {
                    broken.push("agreement");
                }
                if !verdict.validity {
                    broken.push("validity");
                }
                if !verdict.termination {
                    broken.push("termination");
                }
                format!("VIOLATION ({})", broken.join("+"))
            } else {
                "correct".to_string()
            };
            let _ = writeln!(
                out,
                "  {} f={} {} [{}]: {} | dissent={} rounds={} evals={}{} | worst: {} faulty={} inputs={}",
                cell.graph,
                cell.f,
                cell.algorithm.name(),
                cell.regime.label(),
                status,
                best.severity.dissent,
                best.severity.rounds,
                cell.evals,
                if cell.exhausted { " (budget exhausted)" } else { "" },
                best.candidate.strategy.name(),
                best.candidate.faulty,
                best.candidate.inputs,
            );
            if let Some(counterexample) = &cell.counterexample {
                let shrunk = &counterexample.scored.candidate;
                let _ = writeln!(
                    out,
                    "    minimized: {} faulty={} inputs={} ({} shrink evals)",
                    shrunk.strategy.name(),
                    shrunk.faulty,
                    shrunk.inputs,
                    counterexample.shrink_evals
                );
            }
        }
        out
    }
}

fn cell_to_json(cell: &CellOutcome) -> Json {
    let best = cell.best();
    Json::object([
        ("family", Json::Str(cell.family.name().to_string())),
        ("graph", cell.graph.to_json()),
        ("n", cell.n.to_json()),
        ("f", cell.f.to_json()),
        ("algorithm", Json::Str(cell.algorithm.name().to_string())),
        ("regime", Json::Str(cell.regime.label())),
        ("regime_spec", cell.regime.to_json()),
        ("feasible", Json::Bool(cell.feasible)),
        ("evals", cell.evals.to_json()),
        ("rounds_done", cell.rounds_done.to_json()),
        ("exhausted", Json::Bool(cell.exhausted)),
        ("violation", Json::Bool(best.severity.is_violation())),
        ("best", best.to_json()),
        (
            "frontier",
            Json::Arr(cell.frontier.iter().map(Scored::to_json).collect()),
        ),
        (
            "counterexample",
            cell.counterexample.as_ref().map_or(Json::Null, |cx| {
                Json::object([
                    ("candidate", cx.scored.to_json()),
                    ("shrink_evals", cx.shrink_evals.to_json()),
                    (
                        "replay",
                        cell.replay_fragment()
                            .map_or(Json::Null, |fragment| fragment.to_json()),
                    ),
                ])
            }),
        ),
    ])
}

// ---------------------------------------------------------------------------
// entry points
// ---------------------------------------------------------------------------

/// Runs the per-cell worst-case search for `spec` on `workers` threads.
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec's sweeps are invalid or the search
/// knobs fail [`SearchSpec::validate`].
pub fn run_search(spec: &CampaignSpec, workers: usize) -> Result<SearchReport, SpecError> {
    run_search_resumed(spec, None, workers)
}

/// Renders the expanded cell table of a search spec **without executing
/// anything** — the `lbc search --list` debugging view: one row per cell
/// with its coordinates, regime, feasibility and seeded-frontier size.
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec's sweeps are invalid.
pub fn render_search_plan(spec: &CampaignSpec) -> Result<String, SpecError> {
    let search = spec.search.unwrap_or_default();
    search.validate()?;
    let cells = build_cells(spec)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "search '{}' (seed {}): {} cells, budget {} × beam {} × {} mutations × {} rounds",
        spec.name,
        spec.seed,
        cells.len(),
        search.budget,
        search.beam,
        search.mutations,
        search.rounds
    );
    for cell in &cells {
        let _ = writeln!(
            out,
            "  {} n={} f={} {} [{}] feasible={} seeds={}",
            cell.label,
            cell.n,
            cell.f,
            cell.algorithm.name(),
            cell.regime.label(),
            cell.feasible,
            cell.seeds.len()
        );
    }
    Ok(out)
}

/// Like [`run_search`], but restores per-cell frontiers from a prior
/// canonical search report: cells are matched by `(graph, f, algorithm)`
/// coordinates, matched cells skip their seed round and continue the
/// mutation schedule, and unmatched cells search from scratch.
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec is invalid, `prior` is not a
/// canonical search report, or `prior` was produced by a different campaign
/// (its `name`/`seed` must match the spec — a foreign frontier would make
/// the resumed report unreproducible from the spec alone).
pub fn run_search_resumed(
    spec: &CampaignSpec,
    prior: Option<&Json>,
    workers: usize,
) -> Result<SearchReport, SpecError> {
    let search = spec.search.unwrap_or_default();
    search.validate()?;
    let cells = build_cells(spec)?;
    let mut resumes: FxHashMap<CellKey, CellState> = match prior {
        Some(report) => {
            let prior_name = report.get("name").and_then(Json::as_str).unwrap_or("");
            let prior_seed = report
                .get("seed")
                .map(u64_from_number_or_string)
                .transpose()
                .ok()
                .flatten();
            crate::spec::validate_resume_fingerprint(
                prior_name,
                prior_seed,
                spec,
                "resume report",
            )?;
            restore_states(report).map_err(SpecError::new)?
        }
        None => FxHashMap::default(),
    };
    let plans: Vec<(CellPlan, Option<CellState>)> = cells
        .into_iter()
        .map(|plan| {
            let state = resumes.remove(&(
                plan.label.clone(),
                plan.f,
                plan.algorithm.name().to_string(),
                plan.regime.to_json().to_string(),
            ));
            (plan, state)
        })
        .collect();

    let workers = workers.max(1).min(plans.len().max(1));
    let outcomes: Vec<CellOutcome> = if workers == 1 {
        plans
            .iter()
            .map(|(plan, state)| search_cell(plan, &search, state.clone()))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellOutcome>>> =
            plans.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some((plan, state)) = plans.get(index) else {
                        break;
                    };
                    let outcome = search_cell(plan, &search, state.clone());
                    *slots[index].lock().expect("no panics while holding slot") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker panicked")
                    .expect("every slot is filled once the pool drains")
            })
            .collect()
    };

    Ok(SearchReport {
        name: spec.name.clone(),
        seed: spec.seed,
        search,
        cells: outcomes,
    })
}

/// Extracts the per-cell resume states from a canonical search report.
type CellKey = (String, usize, String, String);

fn restore_states(report: &Json) -> Result<FxHashMap<CellKey, CellState>, String> {
    let cells = report
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("resume document is not a canonical search report (missing 'cells')")?;
    let mut states = FxHashMap::default();
    for cell in cells {
        let graph = cell
            .get("graph")
            .and_then(Json::as_str)
            .ok_or("search cell missing 'graph'")?
            .to_string();
        let f = cell
            .get("f")
            .and_then(Json::as_u64)
            .ok_or("search cell missing 'f'")? as usize;
        let algorithm = cell
            .get("algorithm")
            .and_then(Json::as_str)
            .ok_or("search cell missing 'algorithm'")?
            .to_string();
        // The resume key carries the cell's full regime spec (canonical
        // JSON); pre-regime search reports have none — sync throughout.
        let regime = cell
            .get("regime_spec")
            .map_or_else(|| RegimeSpec::Sync.to_json(), Json::clone)
            .to_string();
        let evals = cell
            .get("evals")
            .and_then(Json::as_u64)
            .ok_or("search cell missing 'evals'")? as usize;
        let rounds_done = cell
            .get("rounds_done")
            .and_then(Json::as_u64)
            .ok_or("search cell missing 'rounds_done'")? as usize;
        let frontier = cell
            .get("frontier")
            .and_then(Json::as_array)
            .ok_or("search cell missing 'frontier'")?
            .iter()
            .map(Scored::from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|err| err.to_string())?;
        states.insert(
            (graph, f, algorithm, regime),
            CellState {
                frontier,
                evals,
                rounds_done,
            },
        );
    }
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultPolicy, GraphFamily, InputPolicy, SizeSpec, StrategySpec};
    use lbc_consensus::AlgorithmKind;

    fn c13_alg2_spec(budget: usize, rounds: usize) -> CampaignSpec {
        CampaignSpec {
            name: "search-unit".to_string(),
            seed: 41,
            sweeps: vec![SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![13]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm2],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![StrategySpec::TamperRelays],
                faults: FaultPolicy::WorstCase,
                inputs: InputPolicy::Alternating,
            }],
            search: Some(SearchSpec {
                budget,
                beam: 3,
                mutations: 4,
                rounds,
            }),
            limits: None,
            serve: None,
        }
    }

    #[test]
    fn search_rediscovers_the_c13_omission_gap_and_minimizes_it() {
        let report = run_search(&c13_alg2_spec(80, 2), 2).unwrap();
        assert_eq!(report.cells().len(), 1);
        let cell = &report.cells()[0];
        assert_eq!(cell.graph, "C13");
        let best = cell.best();
        assert!(
            best.severity.is_violation(),
            "search missed the omission gap: {:?}",
            best.severity
        );
        assert!(!best.severity.verdict().agreement);
        let counterexample = cell
            .counterexample
            .as_ref()
            .expect("violation is minimized");
        // The minimized strategy is the simplest that still violates —
        // omission (silent) on the exactly-2f-connected cycle.
        assert_eq!(counterexample.scored.candidate.strategy, Strategy::Silent);
        assert_eq!(counterexample.scored.candidate.faulty.len(), 1);
        // The replay fragment re-executes to the same violation.
        let replay = report.counterexample_spec().expect("replay spec exists");
        let replayed = crate::run_campaign(&replay, 1).unwrap();
        assert!(!replayed.all_correct(), "replay fragment must re-violate");
    }

    #[test]
    fn severity_orders_violation_over_margin_over_rounds() {
        let violating = Severity {
            violation: 4,
            dissent: 1,
            rounds: 10,
            volume: 10,
        };
        let near_miss = Severity {
            violation: 0,
            dissent: 2,
            rounds: 50,
            volume: 999,
        };
        let slow = Severity {
            violation: 0,
            dissent: 0,
            rounds: 60,
            volume: 1,
        };
        let busy = Severity {
            violation: 0,
            dissent: 0,
            rounds: 60,
            volume: 2,
        };
        assert!(violating > near_miss);
        assert!(near_miss > slow);
        assert!(busy > slow);
        assert!(!violating.verdict().agreement);
        assert!(violating.verdict().validity);
    }

    #[test]
    fn scored_candidates_roundtrip_through_json() {
        let scored = Scored {
            candidate: Candidate {
                strategy: Strategy::Random { seed: u64::MAX - 7 },
                faulty: NodeSet::singleton(NodeId::new(3)),
                inputs: InputAssignment::from_bits(5, 0b10110),
                schedule: Some(AsyncRegime {
                    scheduler: lbc_model::SchedulerKind::EdgeLag,
                    delay: 4,
                    seed: u64::MAX - 11,
                }),
                timing: None,
            },
            severity: Severity {
                violation: 5,
                dissent: 2,
                rounds: 31,
                volume: 812,
            },
            agreed: None,
        };
        let text = scored.to_json().to_string();
        let back = Scored::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, scored);
    }

    #[test]
    fn psync_candidates_carry_the_timing_axis_and_roundtrip() {
        let post = AsyncRegime {
            scheduler: lbc_model::SchedulerKind::Fifo,
            delay: 2,
            seed: u64::MAX - 3,
        };
        let scored = Scored {
            candidate: Candidate {
                strategy: Strategy::StraddleTamper,
                faulty: NodeSet::singleton(NodeId::new(1)),
                inputs: InputAssignment::from_bits(5, 0b01010),
                schedule: Some(post),
                timing: Some(schedule::GstAttack {
                    gst: 12,
                    hold: 0b100,
                }),
            },
            severity: Severity {
                violation: 4,
                dissent: 1,
                rounds: 24,
                volume: 90,
            },
            agreed: None,
        };
        // The candidate executes under the partial-sync regime assembled
        // from its (schedule, timing) pair…
        assert_eq!(
            scored.candidate.regime(),
            Regime::PartialSync {
                gst: 12,
                pre: lbc_model::AdversarialSchedule { hold: 0b100 },
                post,
            }
        );
        // …its key embeds that regime (so resume/dedup see the timing)…
        assert!(scored.candidate.key().contains("partial-sync"));
        // …and the JSON round-trip preserves both halves exactly.
        let text = scored.to_json().to_string();
        let back = Scored::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, scored);
    }

    #[test]
    fn cells_merge_across_sweeps_and_seed_deterministically() {
        let mut spec = c13_alg2_spec(40, 0);
        // A second sweep over the same cell must merge, not duplicate.
        spec.sweeps.push(spec.sweeps[0].clone());
        let cells = build_cells(&spec).unwrap();
        assert_eq!(cells.len(), 1);
        let again = build_cells(&spec).unwrap();
        assert_eq!(cells[0].seeds.len(), again[0].seeds.len());
        for (a, b) in cells[0].seeds.iter().zip(&again[0].seeds) {
            assert_eq!(a.key(), b.key());
        }
    }

    #[test]
    fn search_spec_validation_rejects_degenerate_knobs() {
        assert!(SearchSpec {
            budget: 0,
            ..SearchSpec::default()
        }
        .validate()
        .is_err());
        assert!(SearchSpec {
            beam: 0,
            ..SearchSpec::default()
        }
        .validate()
        .is_err());
        assert!(SearchSpec {
            budget: MAX_SEARCH_BUDGET + 1,
            ..SearchSpec::default()
        }
        .validate()
        .is_err());
        assert!(SearchSpec::default().validate().is_ok());
    }
}
