//! The deterministic parallel sweep executor.
//!
//! A campaign's scenarios are embarrassingly parallel: each one is
//! self-contained (own graph build, own pre-seeded adversary, own inputs),
//! so the executor is a plain `std::thread` worker pool pulling scenario
//! indices off an atomic counter and writing records into per-scenario
//! slots. Records are collected *by index*, not by completion order, so the
//! report is byte-identical for any worker count — the pool affects wall
//! time only.
//!
//! The executor is **fault-tolerant** end to end:
//!
//! * **Panic isolation** — every cell body runs under `catch_unwind`; a
//!   panicking scenario becomes a quarantined `failed` record (all-false
//!   verdict, panic payload in the canonical JSON) instead of killing the
//!   worker and the run.
//! * **Watchdogs** — an optional per-cell wall-clock budget
//!   ([`ExecOptions::cell_timeout_micros`], or the spec's `limits` block)
//!   is enforced by a monitor thread through the cooperative
//!   [`CancelToken`] the network checks at every step; a cell over budget
//!   degrades to a `timeout` record carrying the partial trace.
//! * **Checkpointed resume** — with a [`CheckpointConfig`] attached,
//!   completed records are journaled atomically in batches; a killed
//!   campaign resumes by re-running only the incomplete cells, and the
//!   resumed canonical report is byte-identical to the one-shot report.
//! * **Chaos self-injection** — a test-only [`ChaosPolicy`] injects
//!   panics, stalls, and process kills at chosen cells to prove the three
//!   mechanisms above under fire.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

use lbc_consensus::runner;
use lbc_model::{ConsensusOutcome, Verdict};
use lbc_sim::cancel::{install_ambient, CancelToken};
use lbc_sim::ObserverHandle;
use lbc_telemetry::MetricsCollector;

use crate::chaos::ChaosPolicy;
use crate::checkpoint::{self, Checkpoint, CheckpointConfig};
use crate::report::{CampaignReport, CellStatus, ScenarioRecord};
use crate::spec::{CampaignSpec, Scenario, SpecError};
use crate::telemetry::{CampaignTelemetry, CellTelemetry};

/// How a campaign executes beyond the spec itself: pool width, the opt-in
/// telemetry collectors, the stderr progress ticker, and the
/// fault-tolerance knobs (watchdog budget, checkpoint journal, chaos).
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker-pool width (clamped to at least 1).
    pub workers: usize,
    /// Attach a per-cell [`MetricsCollector`] and carry a
    /// [`CampaignTelemetry`] section on the report.
    pub telemetry: bool,
    /// Emit per-cell progress ticks with an ETA on **stderr** (stdout and
    /// the report bytes are unaffected; `--quiet` keeps this off).
    pub progress: bool,
    /// Per-cell wall-clock budget in microseconds, enforced by a watchdog
    /// monitor thread through cooperative cancellation. `None` falls back
    /// to the spec's `limits.cell-timeout-ms` (or no budget at all).
    pub cell_timeout_micros: Option<u64>,
    /// Journal completed records to disk at batch boundaries so a killed
    /// campaign can resume. Ignored under `telemetry` (journaled cells
    /// carry no metrics, so a resumed telemetry section could not match a
    /// one-shot run).
    pub checkpoint: Option<CheckpointConfig>,
    /// Test-only fault self-injection; `None` in production runs.
    pub chaos: Option<ChaosPolicy>,
}

impl ExecOptions {
    /// Options for a plain run on `workers` threads: no telemetry, no
    /// progress ticks, no watchdog, no journal — the exact pre-existing
    /// executor behavior.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        ExecOptions {
            workers,
            telemetry: false,
            progress: false,
            cell_timeout_micros: None,
            checkpoint: None,
            chaos: None,
        }
    }
}

/// The stderr progress ticker: carriage-return ticks with an ETA derived
/// from the mean per-cell wall time so far. Lives entirely on stderr; the
/// deterministic surfaces never see it.
struct Progress {
    started: Instant,
    total: usize,
    completed: AtomicUsize,
}

impl Progress {
    fn new(total: usize) -> Self {
        Progress {
            started: Instant::now(),
            total,
            completed: AtomicUsize::new(0),
        }
    }

    fn tick(&self) {
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = self.started.elapsed().as_secs_f64();
        let eta = if done == 0 {
            0.0
        } else {
            elapsed / done as f64 * (self.total - done) as f64
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r[{done}/{}] {:.0}% eta {eta:.1}s   ",
            self.total,
            done as f64 / self.total.max(1) as f64 * 100.0,
        );
        if done == self.total {
            let _ = writeln!(err, "\r[{done}/{}] done in {elapsed:.1}s   ", self.total);
        }
    }
}

/// Expands `spec` and executes every scenario on `workers` threads,
/// returning the aggregated report.
///
/// `workers` is clamped to at least 1; `workers == 1` runs everything on
/// the calling thread (no pool), which the campaign bench uses as the
/// serial baseline.
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec fails to expand. Execution itself
/// cannot fail: every scenario produces a record (a scenario that exceeds
/// its round budget simply records a non-terminating verdict, and a
/// panicking or over-budget scenario is quarantined as a `failed` /
/// `timeout` record).
pub fn run_campaign(spec: &CampaignSpec, workers: usize) -> Result<CampaignReport, SpecError> {
    run_campaign_opts(spec, &ExecOptions::new(workers))
}

/// [`run_campaign`] with full [`ExecOptions`]: optional per-cell telemetry
/// collection, stderr progress ticks, watchdog budget, and checkpointed
/// resume.
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec fails to expand, or when resuming
/// and the checkpoint journal exists but does not belong to this campaign.
pub fn run_campaign_opts(
    spec: &CampaignSpec,
    options: &ExecOptions,
) -> Result<CampaignReport, SpecError> {
    let expand_started = Instant::now();
    let (scenarios, notes) = spec.expand_noted()?;
    let expand_micros = phase_micros(expand_started);
    let prefill = load_prefill(spec, &scenarios, options)?;
    Ok(run_scenarios_full(
        spec,
        &scenarios,
        notes,
        options,
        Some(expand_micros),
        prefill,
    ))
}

/// Executes already-expanded scenarios (from [`CampaignSpec::expand`] on
/// the same spec) on `workers` threads. Callers that need the scenario
/// list up front — the CLI prints its length before running — use this to
/// avoid expanding twice.
#[must_use]
pub fn run_scenarios(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    workers: usize,
) -> CampaignReport {
    run_scenarios_noted(spec, scenarios, Vec::new(), workers)
}

/// Like [`run_scenarios`], but attaches the expansion notes from
/// [`CampaignSpec::expand_noted`] to the report's metadata.
#[must_use]
pub fn run_scenarios_noted(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    notes: Vec<String>,
    workers: usize,
) -> CampaignReport {
    run_scenarios_opts(spec, scenarios, notes, &ExecOptions::new(workers))
}

/// Like [`run_scenarios_noted`], but honoring full [`ExecOptions`] except
/// [`CheckpointConfig::resume`] (journaling still happens; use
/// [`run_scenarios_resumable`] when a prior journal should be loaded —
/// loading can fail, which this infallible entry point cannot express).
#[must_use]
pub fn run_scenarios_opts(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    notes: Vec<String>,
    options: &ExecOptions,
) -> CampaignReport {
    let prefill = vec![None; scenarios.len()];
    run_scenarios_full(spec, scenarios, notes, options, None, prefill)
}

/// Like [`run_scenarios_opts`], but honoring [`CheckpointConfig::resume`]:
/// when the journal file exists, its completed cells are validated against
/// the spec's fingerprint and skipped, and only the incomplete cells run.
/// The resumed canonical report is byte-identical to the one-shot report.
///
/// # Errors
///
/// Returns a [`SpecError`] when the journal exists but belongs to a
/// different campaign or expansion, or when combined with telemetry.
pub fn run_scenarios_resumable(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    notes: Vec<String>,
    options: &ExecOptions,
) -> Result<CampaignReport, SpecError> {
    let prefill = load_prefill(spec, scenarios, options)?;
    Ok(run_scenarios_full(
        spec, scenarios, notes, options, None, prefill,
    ))
}

/// Loads the checkpoint journal into a by-index prefill vector when
/// resuming; otherwise an all-`None` vector (run everything).
fn load_prefill(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    options: &ExecOptions,
) -> Result<Vec<Option<ScenarioRecord>>, SpecError> {
    let fresh = || vec![None; scenarios.len()];
    let Some(config) = &options.checkpoint else {
        return Ok(fresh());
    };
    if !config.resume {
        return Ok(fresh());
    }
    if options.telemetry {
        return Err(SpecError::new(
            "resume cannot be combined with telemetry: journaled cells carry no metrics, \
             so the resumed telemetry section could not match a one-shot run",
        ));
    }
    if !config.path.exists() {
        return Ok(fresh());
    }
    let loaded = Checkpoint::load(&config.path)?;
    loaded.validate(spec, scenarios.len())?;
    let prefill = loaded.into_prefill(scenarios.len());
    for (index, slot) in prefill.iter().enumerate() {
        if let Some(record) = slot {
            if record.seed != scenarios[index].seed {
                return Err(SpecError::new(format!(
                    "checkpoint journal's cell {index} carries seed {} but the spec derives \
                     {} — the journal is not from this expansion",
                    record.seed, scenarios[index].seed
                )));
            }
        }
    }
    Ok(prefill)
}

fn run_scenarios_full(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    notes: Vec<String>,
    options: &ExecOptions,
    expand_micros: Option<u64>,
    prefill: Vec<Option<ScenarioRecord>>,
) -> CampaignReport {
    let execute_started = Instant::now();
    let (records, cells) = execute_scenarios_opts(spec, scenarios, options, prefill);
    let execute_micros = phase_micros(execute_started);
    let aggregate_started = Instant::now();
    let report = CampaignReport::with_notes(spec.name.clone(), spec.seed, notes, records);
    let Some(cells) = cells else {
        return report;
    };
    // Force the rollup aggregation so the `aggregate` phase measures the
    // report-assembly cost rather than deferring it to the first renderer.
    let _ = report.rollups();
    let mut phase_micros_list = Vec::new();
    if let Some(micros) = expand_micros {
        phase_micros_list.push(("expand".to_string(), micros));
    }
    phase_micros_list.push(("execute".to_string(), execute_micros));
    phase_micros_list.push(("aggregate".to_string(), phase_micros(aggregate_started)));
    report.with_telemetry(CampaignTelemetry {
        cells,
        phase_micros: phase_micros_list,
    })
}

fn phase_micros(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Runs one scenario to completion and records the outcome.
///
/// This is the **raw** runner: no panic isolation, no watchdog — those
/// wrap it inside the campaign executor. A caller replaying a single
/// scenario gets the undecorated behavior (a panic propagates).
#[must_use]
pub fn run_scenario(scenario: &Scenario) -> ScenarioRecord {
    let graph = scenario.build_graph();
    let mut adversary = scenario.strategy.clone().into_adversary();
    let started = Instant::now();
    let (outcome, trace) = runner::run_kind_under(
        scenario.algorithm,
        &scenario.regime,
        &graph,
        scenario.f,
        &scenario.inputs,
        &scenario.faulty,
        &mut adversary,
    );
    let wall_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    record_outcome(scenario, &outcome, trace.summary(), wall_micros)
}

/// Runs one scenario with a [`MetricsCollector`] attached, returning the
/// record plus the cell's tallied metrics.
#[must_use]
pub fn run_scenario_observed(scenario: &Scenario) -> (ScenarioRecord, CellTelemetry) {
    let collector = Rc::new(RefCell::new(MetricsCollector::new()));
    let observer = ObserverHandle::from_shared(Rc::clone(&collector));
    let graph = scenario.build_graph();
    let mut adversary = scenario.strategy.clone().into_adversary();
    let started = Instant::now();
    let (outcome, trace) = runner::run_kind_observed(
        scenario.algorithm,
        &scenario.regime,
        &graph,
        scenario.f,
        &scenario.inputs,
        &scenario.faulty,
        &mut adversary,
        observer,
    );
    let wall_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let record = record_outcome(scenario, &outcome, trace.summary(), wall_micros);
    // The network normally drops its observer handle at run end, leaving
    // this Rc exclusive. An engine leaking a handle used to kill the whole
    // campaign here; degrade to a cloned snapshot of the registries and
    // note the degradation instead.
    let (metrics, note) = match Rc::try_unwrap(collector) {
        Ok(exclusive) => (exclusive.into_inner().finish(), None),
        Err(shared) => {
            let metrics = shared.borrow().clone().finish();
            (
                metrics,
                Some(
                    "an observer handle outlived the run; metrics are a recovered snapshot"
                        .to_string(),
                ),
            )
        }
    };
    (
        record,
        CellTelemetry {
            index: scenario.index,
            metrics,
            wall_micros,
            note,
        },
    )
}

pub(crate) fn record_outcome(
    scenario: &Scenario,
    outcome: &ConsensusOutcome,
    stats: lbc_sim::TraceSummary,
    wall_micros: u64,
) -> ScenarioRecord {
    ScenarioRecord {
        index: scenario.index,
        family: scenario.family.name().to_string(),
        graph: scenario.graph.clone(),
        n: scenario.n,
        f: scenario.f,
        algorithm: scenario.algorithm,
        regime: scenario.regime.label(),
        strategy: scenario.strategy_name.to_string(),
        faulty: scenario.faulty.clone(),
        inputs: scenario.inputs.to_string(),
        seed: scenario.seed,
        feasible: scenario.feasible,
        verdict: outcome.verdict(),
        agreed: outcome.agreed_value(),
        stats,
        wall_micros,
        status: CellStatus::Completed,
    }
}

/// The quarantine record for a cell whose body panicked: scenario
/// coordinates intact, all-false verdict, zeroed stats, the payload in
/// `status`.
fn failure_record(scenario: &Scenario, panic: String, wall_micros: u64) -> ScenarioRecord {
    ScenarioRecord {
        index: scenario.index,
        family: scenario.family.name().to_string(),
        graph: scenario.graph.clone(),
        n: scenario.n,
        f: scenario.f,
        algorithm: scenario.algorithm,
        regime: scenario.regime.label(),
        strategy: scenario.strategy_name.to_string(),
        faulty: scenario.faulty.clone(),
        inputs: scenario.inputs.to_string(),
        seed: scenario.seed,
        feasible: scenario.feasible,
        verdict: Verdict {
            agreement: false,
            validity: false,
            termination: false,
        },
        agreed: None,
        stats: lbc_sim::TraceSummary::default(),
        wall_micros,
        status: CellStatus::Failed { panic },
    }
}

/// One scenario's execution result: its record plus, with telemetry
/// enabled, the cell's metrics.
type CellResult = (ScenarioRecord, Option<CellTelemetry>);

thread_local! {
    /// Set while a quarantined cell body runs: panics raised under this
    /// flag are caught and recorded by the executor, so the global hook
    /// stays quiet for them instead of spamming stderr with backtraces of
    /// expected (or chaos-injected) failures.
    static IN_CELL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once per process) a panic hook that suppresses the default
/// report for panics the executor is about to catch and quarantine,
/// delegating everything else to the previously installed hook.
fn install_cell_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_CELL.with(std::cell::Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Renders a caught panic payload (`&str` and `String` payloads carry
/// their message; anything else degrades to a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// One worker's watch slot: the armed cell's deadline and cancel token.
type WatchSlot = Mutex<Option<(Instant, CancelToken)>>;

/// The per-cell wall-clock budget enforcer: workers arm their slot before
/// each cell, a monitor thread cancels tokens whose deadline passed.
struct Watchdog {
    budget: Duration,
    slots: Vec<WatchSlot>,
    done: AtomicBool,
}

impl Watchdog {
    fn new(workers: usize, budget: Duration) -> Self {
        Watchdog {
            budget,
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
            done: AtomicBool::new(false),
        }
    }

    fn arm(&self, worker: usize, token: CancelToken) {
        *self.slots[worker].lock().expect("watchdog slot") =
            Some((Instant::now() + self.budget, token));
    }

    fn disarm(&self, worker: usize) {
        *self.slots[worker].lock().expect("watchdog slot") = None;
    }

    fn stop(&self) {
        self.done.store(true, Ordering::Relaxed);
    }

    /// The monitor loop: poll at an eighth of the budget (clamped to
    /// [1ms, 250ms]) and cancel any armed cell past its deadline. A fired
    /// cell stays armed until its worker disarms it — cancellation is
    /// cooperative, the monitor never blocks on the cell.
    fn monitor(&self) {
        let poll = (self.budget / 8).clamp(Duration::from_millis(1), Duration::from_millis(250));
        while !self.done.load(Ordering::Relaxed) {
            std::thread::sleep(poll);
            let now = Instant::now();
            for slot in &self.slots {
                if let Some((deadline, token)) = &*slot.lock().expect("watchdog slot") {
                    if now >= *deadline {
                        token.cancel();
                    }
                }
            }
        }
    }
}

/// The checkpoint journal shared by the workers: completed records keyed
/// by index, rewritten atomically to disk at batch boundaries.
struct Journal<'a> {
    config: &'a CheckpointConfig,
    name: &'a str,
    seed: u64,
    total: usize,
    /// Chaos: abort the process after this many records are journaled.
    kill_after: Option<usize>,
    state: Mutex<JournalState>,
}

struct JournalState {
    records: BTreeMap<usize, ScenarioRecord>,
    pending_batch: usize,
}

impl<'a> Journal<'a> {
    fn new<'r>(
        config: &'a CheckpointConfig,
        spec: &'a CampaignSpec,
        total: usize,
        resumed: impl Iterator<Item = &'r ScenarioRecord>,
        kill_after: Option<usize>,
    ) -> Self {
        Journal {
            config,
            name: &spec.name,
            seed: spec.seed,
            total,
            kill_after,
            state: Mutex::new(JournalState {
                records: resumed.map(|r| (r.index, r.clone())).collect(),
                pending_batch: 0,
            }),
        }
    }

    fn record(&self, record: &ScenarioRecord) {
        let mut state = self.state.lock().expect("journal lock");
        state.records.insert(record.index, record.clone());
        state.pending_batch += 1;
        let kill = self.kill_after.is_some_and(|k| state.records.len() >= k);
        if state.pending_batch >= self.config.every.max(1) || kill {
            state.pending_batch = 0;
            self.write(&state);
        }
        if kill {
            // Chaos: simulate a hard kill right after a batch boundary —
            // no unwinding, no Drop, exactly what SIGKILL leaves behind.
            std::process::abort();
        }
    }

    fn write(&self, state: &JournalState) {
        if let Err(error) = checkpoint::write_atomic(
            &self.config.path,
            self.name,
            self.seed,
            self.total,
            state.records.values(),
        ) {
            // Durability is best-effort: never sacrifice the in-memory run
            // to a journal I/O failure.
            eprintln!(
                "warning: checkpoint write to {} failed: {error}",
                self.config.path.display()
            );
        }
    }
}

/// Runs one cell with the full fault-tolerance wrapper: watchdog arming,
/// chaos injection, ambient cancellation, and panic quarantine.
fn run_cell(
    scenario: &Scenario,
    telemetry: bool,
    budget_micros: Option<u64>,
    watchdog: Option<(&Watchdog, usize)>,
    chaos: &ChaosPolicy,
) -> CellResult {
    let token = CancelToken::new();
    if let Some((watchdog, worker)) = watchdog {
        watchdog.arm(worker, token.clone());
    }
    // An injected stall sits inside the armed window on purpose: with a
    // budget below the delay, the monitor cancels before the run's first
    // step, so the chaos timeout record is deterministic (empty trace).
    if let Some(ms) = chaos.delay_ms(scenario.index) {
        std::thread::sleep(Duration::from_millis(ms));
    }
    let started = Instant::now();
    let ambient = watchdog.is_some().then(|| install_ambient(token.clone()));
    IN_CELL.with(|flag| flag.set(true));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if chaos.panics(scenario.index) {
            panic!("chaos: injected panic in cell {}", scenario.index);
        }
        if telemetry {
            let (record, cell) = run_scenario_observed(scenario);
            (record, Some(cell))
        } else {
            (run_scenario(scenario), None)
        }
    }));
    IN_CELL.with(|flag| flag.set(false));
    drop(ambient);
    if let Some((watchdog, worker)) = watchdog {
        watchdog.disarm(worker);
    }
    let wall_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    match result {
        Ok((mut record, mut cell)) => {
            if token.is_cancelled() {
                record.status = CellStatus::TimedOut {
                    budget_micros: budget_micros.unwrap_or(0),
                };
                record.verdict = Verdict {
                    agreement: false,
                    validity: false,
                    termination: false,
                };
                record.agreed = None;
                if let Some(cell) = &mut cell {
                    cell.note = Some(
                        "cell timed out; metrics are the partial pre-cancellation tallies"
                            .to_string(),
                    );
                }
            }
            (record, cell)
        }
        Err(payload) => {
            let record = failure_record(scenario, panic_message(payload.as_ref()), wall_micros);
            let cell = telemetry.then(|| CellTelemetry {
                index: scenario.index,
                metrics: lbc_telemetry::MetricsRegistry::default(),
                wall_micros,
                note: Some(
                    "cell panicked; its metrics were lost with the unwound stack".to_string(),
                ),
            });
            (record, cell)
        }
    }
}

/// Executes scenarios over a worker pool, returning records — and, with
/// telemetry enabled, per-cell metrics — in scenario (expansion) order
/// regardless of completion order. `prefill` carries checkpoint-restored
/// records; only the `None` cells run.
fn execute_scenarios_opts(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    options: &ExecOptions,
    prefill: Vec<Option<ScenarioRecord>>,
) -> (Vec<ScenarioRecord>, Option<Vec<CellTelemetry>>) {
    debug_assert_eq!(prefill.len(), scenarios.len());
    let pending: Vec<usize> = prefill
        .iter()
        .enumerate()
        .filter_map(|(index, slot)| slot.is_none().then_some(index))
        .collect();
    let workers = options.workers.max(1).min(pending.len().max(1));
    let progress = options.progress.then(|| Progress::new(pending.len()));
    let chaos = options.chaos.clone().unwrap_or_default();
    let budget_micros = options.cell_timeout_micros.or_else(|| {
        spec.limits
            .and_then(|limits| limits.cell_timeout_ms.map(|ms| ms.saturating_mul(1000)))
    });
    // Journaling is off under telemetry: journaled cells carry no metrics,
    // so a resumed telemetry section could not match a one-shot run.
    let journal = if options.telemetry {
        None
    } else {
        options.checkpoint.as_ref()
    }
    .map(|config| {
        Journal::new(
            config,
            spec,
            scenarios.len(),
            prefill.iter().flatten(),
            chaos.kill_after,
        )
    });
    let slots: Vec<Mutex<Option<CellResult>>> = prefill
        .into_iter()
        .map(|record| Mutex::new(record.map(|r| (r, None))))
        .collect();
    if !pending.is_empty() {
        install_cell_panic_hook();
        let next = AtomicUsize::new(0);
        let watchdog =
            budget_micros.map(|micros| Watchdog::new(workers, Duration::from_micros(micros)));
        let worker_loop = |worker: usize| loop {
            let claim = next.fetch_add(1, Ordering::Relaxed);
            let Some(&index) = pending.get(claim) else {
                break;
            };
            let result = run_cell(
                &scenarios[index],
                options.telemetry,
                budget_micros,
                watchdog.as_ref().map(|w| (w, worker)),
                &chaos,
            );
            if let Some(journal) = &journal {
                journal.record(&result.0);
            }
            *slots[index].lock().expect("no panics while holding slot") = Some(result);
            if let Some(progress) = &progress {
                progress.tick();
            }
        };
        if workers == 1 && watchdog.is_none() {
            // The serial baseline: everything on the calling thread.
            worker_loop(0);
        } else {
            std::thread::scope(|scope| {
                let monitor = watchdog
                    .as_ref()
                    .map(|watchdog| scope.spawn(|| watchdog.monitor()));
                if workers == 1 {
                    worker_loop(0);
                } else {
                    let handles: Vec<_> = (0..workers)
                        .map(|worker| scope.spawn(move || worker_loop(worker)))
                        .collect();
                    for handle in handles {
                        let _ = handle.join();
                    }
                }
                if let Some(watchdog) = &watchdog {
                    watchdog.stop();
                }
                drop(monitor);
            });
        }
    }
    let mut records = Vec::with_capacity(slots.len());
    let mut cells = options.telemetry.then(Vec::new);
    for slot in slots {
        let (record, cell) = slot
            .into_inner()
            .expect("worker panicked")
            .expect("every slot is filled once the pool drains");
        records.push(record);
        if let (Some(cells), Some(cell)) = (&mut cells, cell) {
            cells.push(cell);
        }
    }
    (records, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        FRange, FaultPolicy, GraphFamily, InputPolicy, RegimeSpec, SizeSpec, StrategySpec,
        SweepSpec,
    };
    use lbc_consensus::AlgorithmKind;

    fn tiny_spec(seed: u64) -> CampaignSpec {
        CampaignSpec {
            name: "executor-unit".to_string(),
            seed,
            sweeps: vec![SweepSpec {
                family: GraphFamily::Fig1a,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![StrategySpec::TamperRelays, StrategySpec::Silent],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Bits(0b01101),
            }],
            search: None,
            limits: None,
            serve: None,
        }
    }

    #[test]
    fn campaign_runs_and_judges_all_scenarios() {
        let report = run_campaign(&tiny_spec(42), 2).unwrap();
        assert_eq!(report.records().len(), 10);
        assert!(report.all_correct());
        for record in report.records() {
            assert!(record.verdict.is_correct());
            assert!(record.stats.rounds > 0);
            assert!(record.stats.transmissions > 0);
        }
    }

    #[test]
    fn records_come_back_in_expansion_order() {
        let report = run_campaign(&tiny_spec(42), 4).unwrap();
        for (i, record) in report.records().iter().enumerate() {
            assert_eq!(record.index, i);
        }
    }

    #[test]
    fn single_scenario_roundtrip() {
        let scenarios = tiny_spec(1).expand().unwrap();
        let record = run_scenario(&scenarios[0]);
        assert_eq!(record.index, 0);
        assert_eq!(record.family, "fig1a");
        assert_eq!(record.n, 5);
        assert!(record.verdict.is_correct());
    }

    #[test]
    fn chaos_panic_is_quarantined_not_fatal() {
        let spec = tiny_spec(42);
        let scenarios = spec.expand().unwrap();
        let mut options = ExecOptions::new(2);
        options.chaos = Some(ChaosPolicy::parse("panic=3").unwrap());
        let report = run_scenarios_opts(&spec, &scenarios, Vec::new(), &options);
        assert_eq!(report.records().len(), 10);
        assert_eq!(report.quarantined().len(), 1);
        let failed = &report.records()[3];
        match &failed.status {
            CellStatus::Failed { panic } => assert_eq!(panic, "chaos: injected panic in cell 3"),
            other => panic!("expected a failed record, got {other:?}"),
        }
        assert!(!failed.verdict.is_correct());
        assert!(failed.agreed.is_none());
        // Every other cell is untouched by the quarantine.
        for (index, record) in report.records().iter().enumerate() {
            if index != 3 {
                assert!(record.status.is_completed());
                assert!(record.verdict.is_correct());
            }
        }
    }

    #[test]
    fn chaos_delay_trips_the_watchdog() {
        let spec = tiny_spec(42);
        let scenarios = spec.expand().unwrap();
        let mut options = ExecOptions::new(2);
        options.cell_timeout_micros = Some(20_000);
        options.chaos = Some(ChaosPolicy::parse("delay=2:300").unwrap());
        let report = run_scenarios_opts(&spec, &scenarios, Vec::new(), &options);
        let timed_out = &report.records()[2];
        assert_eq!(
            timed_out.status,
            CellStatus::TimedOut {
                budget_micros: 20_000
            }
        );
        assert!(!timed_out.verdict.is_correct());
        // Cancellation fired during the injected stall, before the run's
        // first step: the partial trace is empty.
        assert_eq!(timed_out.stats.rounds, 0);
        // The fast cells finish far inside the budget and are untouched.
        assert_eq!(report.quarantined().len(), 1);
    }

    #[test]
    fn spec_limits_provide_the_default_budget() {
        let mut spec = tiny_spec(42);
        spec.limits = Some(crate::spec::LimitsSpec {
            cell_timeout_ms: Some(20),
        });
        let scenarios = spec.expand().unwrap();
        let mut options = ExecOptions::new(1);
        options.chaos = Some(ChaosPolicy::parse("delay=0:300").unwrap());
        let report = run_scenarios_opts(&spec, &scenarios, Vec::new(), &options);
        assert_eq!(
            report.records()[0].status,
            CellStatus::TimedOut {
                budget_micros: 20_000
            }
        );
    }
}
