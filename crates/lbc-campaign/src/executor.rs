//! The deterministic parallel sweep executor.
//!
//! A campaign's scenarios are embarrassingly parallel: each one is
//! self-contained (own graph build, own pre-seeded adversary, own inputs),
//! so the executor is a plain `std::thread` worker pool pulling scenario
//! indices off an atomic counter and writing records into per-scenario
//! slots. Records are collected *by index*, not by completion order, so the
//! report is byte-identical for any worker count — the pool affects wall
//! time only.

use std::cell::RefCell;
use std::io::Write as _;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lbc_consensus::runner;
use lbc_model::ConsensusOutcome;
use lbc_sim::ObserverHandle;
use lbc_telemetry::MetricsCollector;

use crate::report::{CampaignReport, ScenarioRecord};
use crate::spec::{CampaignSpec, Scenario, SpecError};
use crate::telemetry::{CampaignTelemetry, CellTelemetry};

/// How a campaign executes beyond the spec itself: pool width, the opt-in
/// telemetry collectors, and the stderr progress ticker.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker-pool width (clamped to at least 1).
    pub workers: usize,
    /// Attach a per-cell [`MetricsCollector`] and carry a
    /// [`CampaignTelemetry`] section on the report.
    pub telemetry: bool,
    /// Emit per-cell progress ticks with an ETA on **stderr** (stdout and
    /// the report bytes are unaffected; `--quiet` keeps this off).
    pub progress: bool,
}

impl ExecOptions {
    /// Options for a plain run on `workers` threads: no telemetry, no
    /// progress ticks — the exact pre-existing executor behavior.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        ExecOptions {
            workers,
            telemetry: false,
            progress: false,
        }
    }
}

/// The stderr progress ticker: carriage-return ticks with an ETA derived
/// from the mean per-cell wall time so far. Lives entirely on stderr; the
/// deterministic surfaces never see it.
struct Progress {
    started: Instant,
    total: usize,
    completed: AtomicUsize,
}

impl Progress {
    fn new(total: usize) -> Self {
        Progress {
            started: Instant::now(),
            total,
            completed: AtomicUsize::new(0),
        }
    }

    fn tick(&self) {
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = self.started.elapsed().as_secs_f64();
        let eta = if done == 0 {
            0.0
        } else {
            elapsed / done as f64 * (self.total - done) as f64
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r[{done}/{}] {:.0}% eta {eta:.1}s   ",
            self.total,
            done as f64 / self.total.max(1) as f64 * 100.0,
        );
        if done == self.total {
            let _ = writeln!(err, "\r[{done}/{}] done in {elapsed:.1}s   ", self.total);
        }
    }
}

/// Expands `spec` and executes every scenario on `workers` threads,
/// returning the aggregated report.
///
/// `workers` is clamped to at least 1; `workers == 1` runs everything on
/// the calling thread (no pool), which the campaign bench uses as the
/// serial baseline.
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec fails to expand. Execution itself
/// cannot fail: every scenario produces a record (a scenario that exceeds
/// its round budget simply records a non-terminating verdict).
pub fn run_campaign(spec: &CampaignSpec, workers: usize) -> Result<CampaignReport, SpecError> {
    run_campaign_opts(spec, &ExecOptions::new(workers))
}

/// [`run_campaign`] with full [`ExecOptions`]: optional per-cell telemetry
/// collection and stderr progress ticks.
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec fails to expand.
pub fn run_campaign_opts(
    spec: &CampaignSpec,
    options: &ExecOptions,
) -> Result<CampaignReport, SpecError> {
    let expand_started = Instant::now();
    let (scenarios, notes) = spec.expand_noted()?;
    let expand_micros = phase_micros(expand_started);
    Ok(run_scenarios_full(
        spec,
        &scenarios,
        notes,
        options,
        Some(expand_micros),
    ))
}

/// Executes already-expanded scenarios (from [`CampaignSpec::expand`] on
/// the same spec) on `workers` threads. Callers that need the scenario
/// list up front — the CLI prints its length before running — use this to
/// avoid expanding twice.
#[must_use]
pub fn run_scenarios(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    workers: usize,
) -> CampaignReport {
    run_scenarios_noted(spec, scenarios, Vec::new(), workers)
}

/// Like [`run_scenarios`], but attaches the expansion notes from
/// [`CampaignSpec::expand_noted`] to the report's metadata.
#[must_use]
pub fn run_scenarios_noted(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    notes: Vec<String>,
    workers: usize,
) -> CampaignReport {
    run_scenarios_full(spec, scenarios, notes, &ExecOptions::new(workers), None)
}

/// Like [`run_scenarios_noted`], but honoring full [`ExecOptions`].
#[must_use]
pub fn run_scenarios_opts(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    notes: Vec<String>,
    options: &ExecOptions,
) -> CampaignReport {
    run_scenarios_full(spec, scenarios, notes, options, None)
}

fn run_scenarios_full(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    notes: Vec<String>,
    options: &ExecOptions,
    expand_micros: Option<u64>,
) -> CampaignReport {
    let execute_started = Instant::now();
    let (records, cells) = execute_scenarios_opts(scenarios, options);
    let execute_micros = phase_micros(execute_started);
    let aggregate_started = Instant::now();
    let report = CampaignReport::with_notes(spec.name.clone(), spec.seed, notes, records);
    let Some(cells) = cells else {
        return report;
    };
    // Force the rollup aggregation so the `aggregate` phase measures the
    // report-assembly cost rather than deferring it to the first renderer.
    let _ = report.rollups();
    let mut phase_micros_list = Vec::new();
    if let Some(micros) = expand_micros {
        phase_micros_list.push(("expand".to_string(), micros));
    }
    phase_micros_list.push(("execute".to_string(), execute_micros));
    phase_micros_list.push(("aggregate".to_string(), phase_micros(aggregate_started)));
    report.with_telemetry(CampaignTelemetry {
        cells,
        phase_micros: phase_micros_list,
    })
}

fn phase_micros(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Runs one scenario to completion and records the outcome.
#[must_use]
pub fn run_scenario(scenario: &Scenario) -> ScenarioRecord {
    let graph = scenario.build_graph();
    let mut adversary = scenario.strategy.clone().into_adversary();
    let started = Instant::now();
    let (outcome, trace) = runner::run_kind_under(
        scenario.algorithm,
        &scenario.regime,
        &graph,
        scenario.f,
        &scenario.inputs,
        &scenario.faulty,
        &mut adversary,
    );
    let wall_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    record_outcome(scenario, &outcome, trace.summary(), wall_micros)
}

/// Runs one scenario with a [`MetricsCollector`] attached, returning the
/// record plus the cell's tallied metrics.
#[must_use]
pub fn run_scenario_observed(scenario: &Scenario) -> (ScenarioRecord, CellTelemetry) {
    let collector = Rc::new(RefCell::new(MetricsCollector::new()));
    let observer = ObserverHandle::from_shared(Rc::clone(&collector));
    let graph = scenario.build_graph();
    let mut adversary = scenario.strategy.clone().into_adversary();
    let started = Instant::now();
    let (outcome, trace) = runner::run_kind_observed(
        scenario.algorithm,
        &scenario.regime,
        &graph,
        scenario.f,
        &scenario.inputs,
        &scenario.faulty,
        &mut adversary,
        observer,
    );
    let wall_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let record = record_outcome(scenario, &outcome, trace.summary(), wall_micros);
    let metrics = Rc::try_unwrap(collector)
        .expect("the network dropped its observer handle at run end")
        .into_inner()
        .finish();
    (
        record,
        CellTelemetry {
            index: scenario.index,
            metrics,
            wall_micros,
        },
    )
}

pub(crate) fn record_outcome(
    scenario: &Scenario,
    outcome: &ConsensusOutcome,
    stats: lbc_sim::TraceSummary,
    wall_micros: u64,
) -> ScenarioRecord {
    ScenarioRecord {
        index: scenario.index,
        family: scenario.family.name().to_string(),
        graph: scenario.graph.clone(),
        n: scenario.n,
        f: scenario.f,
        algorithm: scenario.algorithm,
        regime: scenario.regime.label(),
        strategy: scenario.strategy_name.to_string(),
        faulty: scenario.faulty.clone(),
        inputs: scenario.inputs.to_string(),
        seed: scenario.seed,
        feasible: scenario.feasible,
        verdict: outcome.verdict(),
        agreed: outcome.agreed_value(),
        stats,
        wall_micros,
    }
}

/// One scenario's execution result: its record plus, with telemetry
/// enabled, the cell's metrics.
type CellResult = (ScenarioRecord, Option<CellTelemetry>);

/// Executes scenarios over a worker pool, returning records — and, with
/// telemetry enabled, per-cell metrics — in scenario (expansion) order
/// regardless of completion order.
fn execute_scenarios_opts(
    scenarios: &[Scenario],
    options: &ExecOptions,
) -> (Vec<ScenarioRecord>, Option<Vec<CellTelemetry>>) {
    let workers = options.workers.max(1).min(scenarios.len().max(1));
    let progress = options.progress.then(|| Progress::new(scenarios.len()));
    let run_one = |scenario: &Scenario| -> CellResult {
        let result = if options.telemetry {
            let (record, cell) = run_scenario_observed(scenario);
            (record, Some(cell))
        } else {
            (run_scenario(scenario), None)
        };
        if let Some(progress) = &progress {
            progress.tick();
        }
        result
    };
    let results: Vec<CellResult> = if workers == 1 {
        scenarios.iter().map(run_one).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellResult>>> =
            scenarios.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(scenario) = scenarios.get(index) else {
                        break;
                    };
                    let result = run_one(scenario);
                    *slots[index].lock().expect("no panics while holding slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker panicked")
                    .expect("every slot is filled once the pool drains")
            })
            .collect()
    };
    let mut records = Vec::with_capacity(results.len());
    let mut cells = options.telemetry.then(Vec::new);
    for (record, cell) in results {
        records.push(record);
        if let (Some(cells), Some(cell)) = (&mut cells, cell) {
            cells.push(cell);
        }
    }
    (records, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        FRange, FaultPolicy, GraphFamily, InputPolicy, RegimeSpec, SizeSpec, StrategySpec,
        SweepSpec,
    };
    use lbc_consensus::AlgorithmKind;

    fn tiny_spec(seed: u64) -> CampaignSpec {
        CampaignSpec {
            name: "executor-unit".to_string(),
            seed,
            sweeps: vec![SweepSpec {
                family: GraphFamily::Fig1a,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![StrategySpec::TamperRelays, StrategySpec::Silent],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Bits(0b01101),
            }],
            search: None,
        }
    }

    #[test]
    fn campaign_runs_and_judges_all_scenarios() {
        let report = run_campaign(&tiny_spec(42), 2).unwrap();
        assert_eq!(report.records().len(), 10);
        assert!(report.all_correct());
        for record in report.records() {
            assert!(record.verdict.is_correct());
            assert!(record.stats.rounds > 0);
            assert!(record.stats.transmissions > 0);
        }
    }

    #[test]
    fn records_come_back_in_expansion_order() {
        let report = run_campaign(&tiny_spec(42), 4).unwrap();
        for (i, record) in report.records().iter().enumerate() {
            assert_eq!(record.index, i);
        }
    }

    #[test]
    fn single_scenario_roundtrip() {
        let scenarios = tiny_spec(1).expand().unwrap();
        let record = run_scenario(&scenarios[0]);
        assert_eq!(record.index, 0);
        assert_eq!(record.family, "fig1a");
        assert_eq!(record.n, 5);
        assert!(record.verdict.is_correct());
    }
}
