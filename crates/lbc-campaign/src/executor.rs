//! The deterministic parallel sweep executor.
//!
//! A campaign's scenarios are embarrassingly parallel: each one is
//! self-contained (own graph build, own pre-seeded adversary, own inputs),
//! so the executor is a plain `std::thread` worker pool pulling scenario
//! indices off an atomic counter and writing records into per-scenario
//! slots. Records are collected *by index*, not by completion order, so the
//! report is byte-identical for any worker count — the pool affects wall
//! time only.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lbc_consensus::runner;
use lbc_model::ConsensusOutcome;

use crate::report::{CampaignReport, ScenarioRecord};
use crate::spec::{CampaignSpec, Scenario, SpecError};

/// Expands `spec` and executes every scenario on `workers` threads,
/// returning the aggregated report.
///
/// `workers` is clamped to at least 1; `workers == 1` runs everything on
/// the calling thread (no pool), which the campaign bench uses as the
/// serial baseline.
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec fails to expand. Execution itself
/// cannot fail: every scenario produces a record (a scenario that exceeds
/// its round budget simply records a non-terminating verdict).
pub fn run_campaign(spec: &CampaignSpec, workers: usize) -> Result<CampaignReport, SpecError> {
    let (scenarios, notes) = spec.expand_noted()?;
    Ok(run_scenarios_noted(spec, &scenarios, notes, workers))
}

/// Executes already-expanded scenarios (from [`CampaignSpec::expand`] on
/// the same spec) on `workers` threads. Callers that need the scenario
/// list up front — the CLI prints its length before running — use this to
/// avoid expanding twice.
#[must_use]
pub fn run_scenarios(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    workers: usize,
) -> CampaignReport {
    run_scenarios_noted(spec, scenarios, Vec::new(), workers)
}

/// Like [`run_scenarios`], but attaches the expansion notes from
/// [`CampaignSpec::expand_noted`] to the report's metadata.
#[must_use]
pub fn run_scenarios_noted(
    spec: &CampaignSpec,
    scenarios: &[Scenario],
    notes: Vec<String>,
    workers: usize,
) -> CampaignReport {
    let records = execute_scenarios(scenarios, workers);
    CampaignReport::with_notes(spec.name.clone(), spec.seed, notes, records)
}

/// Runs one scenario to completion and records the outcome.
#[must_use]
pub fn run_scenario(scenario: &Scenario) -> ScenarioRecord {
    let graph = scenario.build_graph();
    let mut adversary = scenario.strategy.clone().into_adversary();
    let started = Instant::now();
    let (outcome, trace) = runner::run_kind_under(
        scenario.algorithm,
        &scenario.regime,
        &graph,
        scenario.f,
        &scenario.inputs,
        &scenario.faulty,
        &mut adversary,
    );
    let wall_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    record_outcome(scenario, &outcome, trace.summary(), wall_micros)
}

fn record_outcome(
    scenario: &Scenario,
    outcome: &ConsensusOutcome,
    stats: lbc_sim::TraceSummary,
    wall_micros: u64,
) -> ScenarioRecord {
    ScenarioRecord {
        index: scenario.index,
        family: scenario.family.name().to_string(),
        graph: scenario.graph.clone(),
        n: scenario.n,
        f: scenario.f,
        algorithm: scenario.algorithm,
        regime: scenario.regime.label(),
        strategy: scenario.strategy_name.to_string(),
        faulty: scenario.faulty.clone(),
        inputs: scenario.inputs.to_string(),
        seed: scenario.seed,
        feasible: scenario.feasible,
        verdict: outcome.verdict(),
        agreed: outcome.agreed_value(),
        stats,
        wall_micros,
    }
}

/// Executes scenarios over a worker pool, returning records in scenario
/// (expansion) order regardless of completion order.
fn execute_scenarios(scenarios: &[Scenario], workers: usize) -> Vec<ScenarioRecord> {
    let workers = workers.max(1).min(scenarios.len().max(1));
    if workers == 1 {
        return scenarios.iter().map(run_scenario).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ScenarioRecord>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(scenario) = scenarios.get(index) else {
                    break;
                };
                let record = run_scenario(scenario);
                *slots[index].lock().expect("no panics while holding slot") = Some(record);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker panicked")
                .expect("every slot is filled once the pool drains")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        FRange, FaultPolicy, GraphFamily, InputPolicy, RegimeSpec, SizeSpec, StrategySpec,
        SweepSpec,
    };
    use lbc_consensus::AlgorithmKind;

    fn tiny_spec(seed: u64) -> CampaignSpec {
        CampaignSpec {
            name: "executor-unit".to_string(),
            seed,
            sweeps: vec![SweepSpec {
                family: GraphFamily::Fig1a,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![StrategySpec::TamperRelays, StrategySpec::Silent],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Bits(0b01101),
            }],
            search: None,
        }
    }

    #[test]
    fn campaign_runs_and_judges_all_scenarios() {
        let report = run_campaign(&tiny_spec(42), 2).unwrap();
        assert_eq!(report.records().len(), 10);
        assert!(report.all_correct());
        for record in report.records() {
            assert!(record.verdict.is_correct());
            assert!(record.stats.rounds > 0);
            assert!(record.stats.transmissions > 0);
        }
    }

    #[test]
    fn records_come_back_in_expansion_order() {
        let report = run_campaign(&tiny_spec(42), 4).unwrap();
        for (i, record) in report.records().iter().enumerate() {
            assert_eq!(record.index, i);
        }
    }

    #[test]
    fn single_scenario_roundtrip() {
        let scenarios = tiny_spec(1).expand().unwrap();
        let record = run_scenario(&scenarios[0]);
        assert_eq!(record.index, 0);
        assert_eq!(record.family, "fig1a");
        assert_eq!(record.n, 5);
        assert!(record.verdict.is_correct());
    }
}
