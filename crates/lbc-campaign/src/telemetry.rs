//! The campaign's opt-in telemetry surface.
//!
//! When a campaign runs with telemetry enabled (`--telemetry` on the CLI,
//! [`crate::executor::ExecOptions::telemetry`] programmatically), every cell
//! executes with a [`lbc_telemetry::MetricsCollector`] attached and the
//! per-cell registries are carried here. Two output surfaces follow the
//! report's existing split:
//!
//! * [`CampaignTelemetry::to_json`] — the **deterministic** section embedded
//!   in the report JSON under `"telemetry"`. Only event-derived metrics; no
//!   wall-clock quantity ever appears here, so the report stays
//!   byte-identical for any worker count.
//! * [`CampaignTelemetry::to_csv`] — the per-cell metrics table, which (like
//!   the scenario CSV) *does* carry the measured `wall_micros` column.
//!
//! Phase wall timings (expand / execute / aggregate) are measured by the
//! executor and surface only in the rendered summary, mirroring the
//! wall-time line the campaign CLI already prints.

use std::fmt::Write as _;

use lbc_model::json::{Json, ToJson};
use lbc_telemetry::MetricsRegistry;

/// The metrics one cell's run produced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CellTelemetry {
    /// The cell's position in the campaign's expansion order.
    pub index: usize,
    /// The deterministic metrics tallied from the cell's event stream.
    pub metrics: MetricsRegistry,
    /// Measured wall time of the cell in microseconds (CSV/summary only;
    /// never serialized into the report JSON).
    pub wall_micros: u64,
    /// Diagnostic note attached by the executor when the cell's metrics are
    /// degraded (e.g. recovered from a shared collector, or absent because
    /// the cell panicked). Serialized only when present, so failure-free
    /// telemetry sections keep their exact prior bytes.
    pub note: Option<String>,
}

/// The fixed counter columns of the per-cell telemetry CSV, in order.
const CSV_COUNTERS: [&str; 11] = [
    "transmissions",
    "deliveries",
    "tampered",
    "omitted",
    "equivocated",
    "held",
    "bursts",
    "burst_deliveries",
    "channels_opened",
    "channels_retired",
    "decisions",
];

/// The fixed gauge columns of the per-cell telemetry CSV, in order.
const CSV_GAUGES: [&str; 4] = [
    "rounds",
    "arena_paths",
    "ledger_occupancy_peak",
    "ledger_allocated_channels",
];

/// The per-campaign telemetry aggregate: one entry per cell plus the
/// executor's phase wall timings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CampaignTelemetry {
    /// Per-cell metrics, in expansion order.
    pub cells: Vec<CellTelemetry>,
    /// `(phase, micros)` wall timings measured by the executor
    /// (summary-only; never serialized into the report JSON).
    pub phase_micros: Vec<(String, u64)>,
}

impl CampaignTelemetry {
    /// Folds every cell's registry into one campaign-wide aggregate
    /// (counters add, gauges keep the high-water mark, histograms merge).
    #[must_use]
    pub fn aggregate(&self) -> MetricsRegistry {
        let mut aggregate = MetricsRegistry::new();
        for cell in &self.cells {
            aggregate.merge(&cell.metrics);
        }
        aggregate
    }

    /// The deterministic JSON section embedded in the campaign report under
    /// `"telemetry"`: the aggregate registry plus every cell's registry.
    /// Contains no wall-clock field, so report byte-identity across worker
    /// counts is preserved.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object([
            ("aggregate", self.aggregate().to_json()),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|cell| {
                            let mut fields = vec![
                                ("index", cell.index.to_json()),
                                ("metrics", cell.metrics.to_json()),
                            ];
                            if let Some(note) = &cell.note {
                                fields.push(("note", note.to_json()));
                            }
                            Json::object(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The per-cell metrics CSV, including the measured `wall_micros`
    /// column (explicitly outside the byte-identity contract, like the
    /// scenario CSV's wall column).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("index");
        for name in CSV_COUNTERS {
            let _ = write!(out, ",{name}");
        }
        for name in CSV_GAUGES {
            let _ = write!(out, ",{name}");
        }
        out.push_str(",inbox_depth_max,queue_depth_max,wall_micros\n");
        for cell in &self.cells {
            let _ = write!(out, "{}", cell.index);
            for name in CSV_COUNTERS {
                let _ = write!(out, ",{}", cell.metrics.counter(name));
            }
            for name in CSV_GAUGES {
                let _ = write!(out, ",{}", cell.metrics.gauge(name).unwrap_or(0));
            }
            let _ = writeln!(
                out,
                ",{},{},{}",
                cell.metrics.histogram("inbox_depth").map_or(0, |h| h.max),
                cell.metrics.histogram("queue_depth").map_or(0, |h| h.max),
                cell.wall_micros,
            );
        }
        out
    }

    /// Renders the executor's phase wall timings for the summary.
    #[must_use]
    pub fn render_phases(&self) -> String {
        let mut out = String::new();
        if self.phase_micros.is_empty() {
            return out;
        }
        out.push_str("phases:");
        for (phase, micros) in &self.phase_micros {
            let _ = write!(out, " {phase}={:.3}s", *micros as f64 / 1e6);
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(index: usize, transmissions: u64, wall: u64) -> CellTelemetry {
        let mut metrics = MetricsRegistry::new();
        metrics.inc("transmissions", transmissions);
        metrics.set_gauge("rounds", 7);
        metrics.observe("inbox_depth", 3);
        CellTelemetry {
            index,
            metrics,
            wall_micros: wall,
            note: None,
        }
    }

    #[test]
    fn note_is_serialized_only_when_present() {
        let clean = CampaignTelemetry {
            cells: vec![cell(0, 1, 0)],
            phase_micros: Vec::new(),
        };
        assert!(!clean.to_json().to_string().contains("\"note\""));
        let mut degraded = cell(0, 1, 0);
        degraded.note = Some("metrics recovered via clone".to_string());
        let noted = CampaignTelemetry {
            cells: vec![degraded],
            phase_micros: Vec::new(),
        };
        assert!(noted
            .to_json()
            .to_string()
            .contains("\"note\":\"metrics recovered via clone\""));
    }

    #[test]
    fn aggregate_sums_counters() {
        let telemetry = CampaignTelemetry {
            cells: vec![cell(0, 10, 5), cell(1, 20, 9)],
            phase_micros: Vec::new(),
        };
        assert_eq!(telemetry.aggregate().counter("transmissions"), 30);
        assert_eq!(telemetry.aggregate().gauge("rounds"), Some(7));
    }

    #[test]
    fn json_has_no_wall_clock() {
        let telemetry = CampaignTelemetry {
            cells: vec![cell(0, 10, 987_654)],
            phase_micros: vec![("execute".to_string(), 123_456)],
        };
        let text = telemetry.to_json().to_string();
        assert!(!text.contains("wall"));
        assert!(!text.contains("987654"));
        assert!(!text.contains("123456"));
        assert!(text.contains("\"aggregate\""));
        assert!(text.contains("\"transmissions\""));
    }

    #[test]
    fn csv_carries_wall_micros() {
        let telemetry = CampaignTelemetry {
            cells: vec![cell(3, 10, 42)],
            phase_micros: Vec::new(),
        };
        let csv = telemetry.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("index,transmissions,"));
        assert!(header.ends_with("wall_micros"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("3,10,"));
        assert!(row.ends_with(",42"));
    }

    #[test]
    fn phases_render_in_seconds() {
        let telemetry = CampaignTelemetry {
            cells: Vec::new(),
            phase_micros: vec![
                ("expand".to_string(), 1_000),
                ("execute".to_string(), 2_500_000),
            ],
        };
        let rendered = telemetry.render_phases();
        assert!(rendered.contains("expand=0.001s"));
        assert!(rendered.contains("execute=2.500s"));
    }
}
