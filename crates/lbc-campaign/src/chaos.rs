//! Test-only fault self-injection for the campaign executor.
//!
//! A [`ChaosPolicy`] makes the executor hurt itself on purpose — panic
//! inside chosen cells, stall chosen cells past their watchdog budget,
//! abort the whole process after a number of journaled records — so the
//! fault-tolerance machinery (panic isolation, watchdogs, checkpointed
//! resume) is provable under fire rather than only in unit tests. It is
//! env-gated (`LBC_CHAOS`) and deterministic: injection is keyed on the
//! cell's expansion index, never on timing or randomness, so a chaos run
//! produces the same quarantine records at any worker count.

use std::collections::{BTreeMap, BTreeSet};

/// The environment variable the CLI reads chaos directives from.
pub const CHAOS_ENV: &str = "LBC_CHAOS";

/// Deterministic per-cell fault injection, parsed from a directive string
/// like `panic=3,7;delay=5:200;kill=12`:
///
/// * `panic=I,J,…` — cells with these expansion indices panic instead of
///   running (exercises `catch_unwind` isolation).
/// * `delay=I:MS,…` — these cells sleep `MS` milliseconds inside their
///   armed watchdog window before running (exercises the timeout path:
///   with a budget below the delay, cancellation fires before step 0 and
///   the timeout record is deterministic).
/// * `kill=N` — the process aborts right after the checkpoint journal has
///   recorded `N` cells (exercises `--resume`; only meaningful with a
///   journal, and only used by subprocess-level tests).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosPolicy {
    /// Expansion indices of cells that panic instead of running.
    pub panic_cells: BTreeSet<usize>,
    /// Expansion index → milliseconds to stall before running.
    pub delay_cells: BTreeMap<usize, u64>,
    /// Abort the process after this many cells have been journaled.
    pub kill_after: Option<usize>,
}

impl ChaosPolicy {
    /// Whether the policy injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.panic_cells.is_empty() && self.delay_cells.is_empty() && self.kill_after.is_none()
    }

    /// Whether the cell at `index` must panic.
    #[must_use]
    pub fn panics(&self, index: usize) -> bool {
        self.panic_cells.contains(&index)
    }

    /// The injected stall for the cell at `index`, in milliseconds.
    #[must_use]
    pub fn delay_ms(&self, index: usize) -> Option<u64> {
        self.delay_cells.get(&index).copied()
    }

    /// Reads the policy from [`CHAOS_ENV`]. Returns `None` when the
    /// variable is unset or empty; a malformed directive is reported on
    /// stderr and ignored entirely (chaos is a test aid — it must never
    /// make a production run fail to start).
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let text = std::env::var(CHAOS_ENV).ok()?;
        if text.trim().is_empty() {
            return None;
        }
        match ChaosPolicy::parse(&text) {
            Ok(policy) => Some(policy),
            Err(message) => {
                eprintln!("warning: ignoring malformed {CHAOS_ENV}: {message}");
                None
            }
        }
    }

    /// Parses a directive string (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending directive.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut policy = ChaosPolicy::default();
        for directive in text.split(';').filter(|d| !d.trim().is_empty()) {
            let (key, spec) = directive
                .split_once('=')
                .ok_or_else(|| format!("directive '{directive}' is not key=value"))?;
            match key.trim() {
                "panic" => {
                    for index in spec.split(',') {
                        policy.panic_cells.insert(parse_index(index)?);
                    }
                }
                "delay" => {
                    for entry in spec.split(',') {
                        let (index, ms) = entry
                            .split_once(':')
                            .ok_or_else(|| format!("delay entry '{entry}' is not index:ms"))?;
                        policy.delay_cells.insert(
                            parse_index(index)?,
                            ms.trim()
                                .parse()
                                .map_err(|_| format!("delay '{ms}' is not milliseconds"))?,
                        );
                    }
                }
                "kill" => {
                    policy.kill_after = Some(parse_index(spec)?);
                }
                other => return Err(format!("unknown chaos directive '{other}'")),
            }
        }
        Ok(policy)
    }
}

fn parse_index(text: &str) -> Result<usize, String> {
    text.trim()
        .parse()
        .map_err(|_| format!("'{text}' is not a cell index"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let policy = ChaosPolicy::parse("panic=3,7;delay=5:200,9:50;kill=12").unwrap();
        assert!(policy.panics(3) && policy.panics(7) && !policy.panics(5));
        assert_eq!(policy.delay_ms(5), Some(200));
        assert_eq!(policy.delay_ms(9), Some(50));
        assert_eq!(policy.delay_ms(3), None);
        assert_eq!(policy.kill_after, Some(12));
        assert!(!policy.is_empty());
        assert!(ChaosPolicy::default().is_empty());
    }

    #[test]
    fn rejects_malformed_directives() {
        assert!(ChaosPolicy::parse("panic").is_err());
        assert!(ChaosPolicy::parse("panic=x").is_err());
        assert!(ChaosPolicy::parse("delay=5").is_err());
        assert!(ChaosPolicy::parse("explode=1").is_err());
    }
}
