//! Run explainability: replay one campaign cell with a recording observer
//! and render a per-step timeline plus a violation post-mortem.
//!
//! This is the engine behind `lbc trace <spec.json> --cell <id>`. The replay
//! is the exact deterministic execution the campaign executor performed for
//! that cell (same derived seed, same pre-seeded adversary and regime), so
//! the rendered timeline *is* the run that produced the report row — not a
//! reconstruction. Counterexample specs emitted by `lbc search`
//! (`<name>.counterexamples.json`) are plain campaign specs, so minimized
//! search fragments replay through the same path.
//!
//! The post-mortem names the injected attack (strategy, GST, hold-set),
//! lists every adversary interference and GST burst, reconstructs tamper
//! provenance chains from delivery path annotations, and shows which honest
//! node decided on what evidence — including the first divergent decision
//! when agreement breaks.

use std::fmt::Write as _;

use lbc_consensus::runner;
use lbc_model::{NodeId, Regime, Value};
use lbc_sim::{Event, Moment, ObserverHandle};

use crate::executor::record_outcome;
use crate::report::ScenarioRecord;
use crate::spec::Scenario;

/// Cap on fully-rendered tamper provenance chains in the post-mortem; the
/// remainder is summarized as a count so huge cells stay readable.
const MAX_PROVENANCE_LINES: usize = 12;

/// The replayed cell: its judged record plus the full recorded event stream.
#[derive(Debug)]
pub struct TraceReplay {
    /// The record the replay produced (identical to the campaign's row for
    /// this cell).
    pub record: ScenarioRecord,
    /// Every event the instrumented execution emitted, in order.
    pub events: Vec<Event>,
}

/// Replays `scenario` with a recording observer attached.
#[must_use]
pub fn replay_scenario(scenario: &Scenario) -> TraceReplay {
    let (observer, recorder) = ObserverHandle::recorder();
    let graph = scenario.build_graph();
    let mut adversary = scenario.strategy.clone().into_adversary();
    let (outcome, trace) = runner::run_kind_observed(
        scenario.algorithm,
        &scenario.regime,
        &graph,
        scenario.f,
        &scenario.inputs,
        &scenario.faulty,
        &mut adversary,
        observer,
    );
    let record = record_outcome(scenario, &outcome, trace.summary(), 0);
    let events = std::rc::Rc::try_unwrap(recorder)
        .expect("the network dropped its observer handle at run end")
        .into_inner()
        .into_events();
    TraceReplay { record, events }
}

impl TraceReplay {
    /// Renders the header, attack setup, per-step timeline, and post-mortem
    /// as one deterministic text document.
    #[must_use]
    pub fn render(&self, scenario: &Scenario) -> String {
        self.render_with(scenario, true)
    }

    /// Like [`TraceReplay::render`], optionally suppressing the per-step
    /// timeline (the header and post-mortem alone summarize large cells).
    #[must_use]
    pub fn render_with(&self, scenario: &Scenario, include_timeline: bool) -> String {
        let mut out = String::new();
        out.push_str(&self.render_header(scenario));
        if include_timeline {
            out.push_str(&self.render_timeline());
        }
        out.push_str(&self.render_post_mortem(scenario));
        out
    }

    fn render_header(&self, scenario: &Scenario) -> String {
        let r = &self.record;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cell #{}: {} n={} f={} {} [{}]",
            r.index,
            r.graph,
            r.n,
            r.f,
            r.algorithm.name(),
            r.regime,
        );
        let _ = writeln!(
            out,
            "  strategy={} faulty={} inputs={} seed={} feasible={}",
            r.strategy, r.faulty, r.inputs, r.seed, r.feasible,
        );
        out.push_str(&render_attack_setup(scenario));
        out.push('\n');
        out
    }

    fn render_timeline(&self) -> String {
        let mut out = String::from("timeline:\n");
        for event in &self.events {
            out.push_str(&event.render());
            out.push('\n');
        }
        out.push('\n');
        out
    }

    fn render_post_mortem(&self, scenario: &Scenario) -> String {
        let r = &self.record;
        let mut out = String::from("post-mortem:\n");
        let verdict = if r.verdict.is_correct() {
            "correct (agreement + validity + termination)".to_string()
        } else {
            let mut broken = Vec::new();
            if !r.verdict.agreement {
                broken.push("agreement");
            }
            if !r.verdict.validity {
                broken.push("validity");
            }
            if !r.verdict.termination {
                broken.push("termination");
            }
            format!("VIOLATION: {} broken", broken.join(" + "))
        };
        let _ = writeln!(out, "  verdict: {verdict}");
        out.push_str(&render_attack_summary(scenario, &self.events));
        out.push_str(&self.render_decisions(scenario));
        out.push_str(&self.render_provenance(scenario));
        out
    }

    /// Decisions with evidence, plus the first honest divergence when
    /// agreement breaks.
    fn render_decisions(&self, scenario: &Scenario) -> String {
        let mut out = String::new();
        let mut honest_decisions: Vec<(Moment, NodeId, Value)> = Vec::new();
        for event in &self.events {
            let Event::NodeDecided {
                at,
                node,
                value,
                evidence,
            } = event
            else {
                continue;
            };
            let role = if scenario.faulty.contains(*node) {
                " (faulty)"
            } else {
                ""
            };
            let _ = write!(
                out,
                "  decision: {node}{role} -> {} at {}",
                value.as_u8(),
                at.token(),
            );
            if evidence.is_empty() {
                out.push('\n');
            } else {
                let rendered: Vec<String> = evidence
                    .iter()
                    .map(|(origin, v)| format!("{origin}:{}", v.as_u8()))
                    .collect();
                let _ = writeln!(out, " on evidence [{}]", rendered.join(" "));
            }
            if !scenario.faulty.contains(*node) {
                honest_decisions.push((*at, *node, *value));
            }
        }
        if let Some(&(_, first_node, first_value)) = honest_decisions.first() {
            if let Some(&(at, node, value)) = honest_decisions
                .iter()
                .find(|(_, _, value)| *value != first_value)
            {
                let _ = writeln!(
                    out,
                    "  first divergent value: {node} decided {} at {}, diverging from \
                     {first_node}'s {}",
                    value.as_u8(),
                    at.token(),
                    first_value.as_u8(),
                );
            }
        }
        let undecided: Vec<String> = (0..scenario.n)
            .map(NodeId::new)
            .filter(|node| {
                !scenario.faulty.contains(*node)
                    && !honest_decisions.iter().any(|(_, n, _)| n == node)
            })
            .map(|node| node.to_string())
            .collect();
        if !undecided.is_empty() {
            let _ = writeln!(out, "  undecided honest nodes: {}", undecided.join(" "));
        }
        out
    }

    /// Tamper provenance: deliveries whose claimed value contradicts the
    /// honest origin's input, with the relay chain and its faulty members.
    fn render_provenance(&self, scenario: &Scenario) -> String {
        let mut chains: Vec<String> = Vec::new();
        for event in &self.events {
            let Event::Delivery {
                step,
                to,
                from,
                meta,
                ..
            } = event
            else {
                continue;
            };
            let (Some(value), Some(origin)) = (meta.value, meta.origin()) else {
                continue;
            };
            if scenario.faulty.contains(origin) || origin.index() >= scenario.n {
                continue;
            }
            if value == scenario.inputs.get(origin) {
                continue;
            }
            // The claimed relay path excludes the current transmitter, so
            // append the delivering neighbor — often the tamperer itself.
            let chain: Vec<String> = meta
                .path_nodes
                .iter()
                .chain(std::iter::once(from))
                .map(|node| {
                    if scenario.faulty.contains(*node) {
                        format!("{node}*")
                    } else {
                        node.to_string()
                    }
                })
                .collect();
            chains.push(format!(
                "  tampered in flight: origin {origin} input {} delivered to {to} as {} \
                 at s{step} via [{}] (* = faulty relay)",
                scenario.inputs.get(origin).as_u8(),
                value.as_u8(),
                chain.join(">"),
            ));
        }
        if chains.is_empty() {
            return String::new();
        }
        let mut out = String::from("  tamper provenance:\n");
        let total = chains.len();
        for chain in chains.iter().take(MAX_PROVENANCE_LINES) {
            out.push(' ');
            out.push(' ');
            out.push_str(chain.trim_start());
            out.push('\n');
        }
        if total > MAX_PROVENANCE_LINES {
            let _ = writeln!(
                out,
                "    (+{} more tampered deliveries)",
                total - MAX_PROVENANCE_LINES
            );
        }
        out
    }
}

/// The injected attack, from the scenario's own configuration: strategy,
/// and for partial synchrony the GST and hold-set of the pre-GST schedule.
fn render_attack_setup(scenario: &Scenario) -> String {
    let mut out = String::new();
    match &scenario.regime {
        Regime::Synchronous => {
            let _ = writeln!(out, "  regime: synchronous lockstep rounds");
        }
        Regime::Asynchronous(asynch) => {
            let _ = writeln!(
                out,
                "  regime: asynchronous, scheduler={} delay={} seed={}",
                asynch.scheduler.name(),
                asynch.delay,
                asynch.seed,
            );
        }
        Regime::PartialSync { gst, pre, post } => {
            let held: Vec<String> = pre
                .held_nodes()
                .into_iter()
                .map(|node| NodeId::new(node).to_string())
                .collect();
            let _ = writeln!(
                out,
                "  regime: partial synchrony, gst={gst} hold-set=[{}] \
                 (held senders burst-release at GST), post: scheduler={} delay={}",
                held.join(" "),
                post.scheduler.name(),
                post.delay,
            );
        }
    }
    out
}

/// What the attack *did* during the replay: per-node interference totals,
/// hold counts, and the GST burst step.
fn render_attack_summary(scenario: &Scenario, events: &[Event]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  injected attack: strategy={} on faulty={}",
        scenario.strategy_name, scenario.faulty,
    );
    if let Regime::PartialSync { gst, pre, .. } = &scenario.regime {
        let held: Vec<String> = pre
            .held_nodes()
            .into_iter()
            .map(|node| NodeId::new(node).to_string())
            .collect();
        let _ = writeln!(
            out,
            "  schedule attack: gst={gst} hold-set=[{}]",
            held.join(" ")
        );
    }
    let mut per_node: Vec<(NodeId, usize, usize, usize)> = Vec::new();
    let mut held_count = 0usize;
    for event in events {
        match event {
            Event::AdversaryAction {
                node,
                tampered,
                omitted,
                equivocated,
                ..
            } => match per_node.iter_mut().find(|(n, ..)| n == node) {
                Some(entry) => {
                    entry.1 += tampered;
                    entry.2 += omitted;
                    entry.3 += equivocated;
                }
                None => per_node.push((*node, *tampered, *omitted, *equivocated)),
            },
            Event::Held { .. } => held_count += 1,
            Event::BurstRelease { step, count } => {
                let _ = writeln!(
                    out,
                    "  GST burst: step s{step} released {count} held deliveries",
                );
            }
            _ => {}
        }
    }
    for (node, tampered, omitted, equivocated) in per_node {
        let _ = writeln!(
            out,
            "  interference by {node}: tampered={tampered} omitted={omitted} \
             equivocated={equivocated}",
        );
    }
    if held_count > 0 {
        let _ = writeln!(out, "  held deliveries (pre-GST): {held_count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        CampaignSpec, FRange, FaultPolicy, GraphFamily, InputPolicy, RegimeSpec, SizeSpec,
        StrategySpec, SweepSpec,
    };
    use lbc_consensus::AlgorithmKind;

    fn spec_with(regimes: Vec<RegimeSpec>, strategies: Vec<StrategySpec>) -> CampaignSpec {
        CampaignSpec {
            name: "explain-unit".to_string(),
            seed: 7,
            sweeps: vec![SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::AsyncFlood],
                regimes,
                strategies,
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Bits(0b01101),
            }],
            search: None,
            limits: None,
            serve: None,
        }
    }

    #[test]
    fn replay_matches_the_campaign_record() {
        let spec = spec_with(RegimeSpec::default_axis(), vec![StrategySpec::TamperRelays]);
        let scenarios = spec.expand().unwrap();
        let replay = replay_scenario(&scenarios[0]);
        let campaign_record = crate::executor::run_scenario(&scenarios[0]);
        assert_eq!(replay.record.verdict, campaign_record.verdict);
        // The canonical surfaces agree byte-for-byte. The full stats differ
        // only in the interference counters, which the unobserved campaign
        // path skips (they cost a quadratic diff per faulty node).
        assert_eq!(
            replay.record.to_canonical_json().to_string(),
            campaign_record.to_canonical_json().to_string()
        );
        assert_eq!(replay.record.stats.rounds, campaign_record.stats.rounds);
        assert_eq!(
            replay.record.stats.transmissions,
            campaign_record.stats.transmissions
        );
        assert_eq!(
            replay.record.stats.deliveries,
            campaign_record.stats.deliveries
        );
        assert!(
            replay.record.stats.tampered > 0,
            "the observed replay must measure the tamper interference"
        );
        assert!(!replay.events.is_empty());
        assert!(matches!(replay.events[0], Event::RunStart { .. }));
        assert!(matches!(replay.events.last(), Some(Event::RunEnd { .. })));
    }

    #[test]
    fn rendering_names_the_attack() {
        let spec = spec_with(RegimeSpec::default_axis(), vec![StrategySpec::TamperRelays]);
        let scenarios = spec.expand().unwrap();
        let replay = replay_scenario(&scenarios[0]);
        let rendered = replay.render(&scenarios[0]);
        assert!(rendered.contains("cell #0"));
        assert!(rendered.contains("timeline:"));
        assert!(rendered.contains("post-mortem:"));
        assert!(rendered.contains("strategy=tamper-relays"));
        assert!(rendered.contains("injected attack"));
    }

    #[test]
    fn replay_is_deterministic() {
        let spec = spec_with(RegimeSpec::default_axis(), vec![StrategySpec::TamperRelays]);
        let scenarios = spec.expand().unwrap();
        let a = replay_scenario(&scenarios[0]);
        let b = replay_scenario(&scenarios[0]);
        assert_eq!(a.events, b.events);
        assert_eq!(a.render(&scenarios[0]), b.render(&scenarios[0]));
    }
}
