//! The campaign results store: per-scenario records, rollups, and writers.
//!
//! Two serializations exist on purpose:
//!
//! * [`CampaignReport::to_json`] — the **canonical** report. It contains
//!   every deterministic field and *no wall-clock measurements*, so the
//!   bytes are identical for any worker count (the determinism tests and
//!   `scripts/campaign_smoke.sh` rely on this).
//! * [`CampaignReport::to_csv`] — the flat per-scenario table for
//!   spreadsheets/plotting, including the measured `wall_micros` column
//!   (explicitly outside the byte-identical contract).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use lbc_consensus::AlgorithmKind;
use lbc_model::json::{u64_from_number_or_string, FromJson, Json, ToJson};
use lbc_model::{NodeSet, Value, Verdict};
use lbc_sim::TraceSummary;

use crate::telemetry::CampaignTelemetry;

/// How a cell's execution ended.
///
/// Anything but [`CellStatus::Completed`] is an **infrastructure** outcome:
/// the executor quarantined the cell (panic caught, watchdog fired) instead
/// of letting it kill the campaign. Quarantined records carry an all-false
/// verdict and surface in the canonical JSON through the additive `outcome`
/// field, so failure-free reports keep their exact pre-fault-tolerance
/// bytes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CellStatus {
    /// The scenario ran to completion; its verdict is the judge's.
    #[default]
    Completed,
    /// The scenario panicked; the worker caught the unwind and recorded the
    /// payload instead of dying.
    Failed {
        /// The panic payload (its string form, when it had one).
        panic: String,
    },
    /// The watchdog cancelled the scenario after its wall-clock budget; the
    /// record's stats are the partial trace accumulated before the cut.
    TimedOut {
        /// The exceeded per-cell budget, in microseconds.
        budget_micros: u64,
    },
}

impl CellStatus {
    /// The canonical `outcome` label: `completed`, `failed`, or `timeout`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CellStatus::Completed => "completed",
            CellStatus::Failed { .. } => "failed",
            CellStatus::TimedOut { .. } => "timeout",
        }
    }

    /// Whether the cell ran to completion (no quarantine).
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, CellStatus::Completed)
    }
}

/// The recorded outcome of one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRecord {
    /// Position in the campaign's expansion order.
    pub index: usize,
    /// Graph family name.
    pub family: String,
    /// Graph instance label (e.g. `C9(1,2)`).
    pub graph: String,
    /// Number of nodes.
    pub n: usize,
    /// Declared fault bound.
    pub f: usize,
    /// Algorithm executed.
    pub algorithm: AlgorithmKind,
    /// The execution regime's grouping label (`sync`, or
    /// `async-<scheduler>-d<delay>`; the schedule seed is derived from the
    /// record's `seed`).
    pub regime: String,
    /// Strategy name driving the faulty nodes.
    pub strategy: String,
    /// The faulty set.
    pub faulty: NodeSet,
    /// The input assignment, as a bit string (node 0 first).
    pub inputs: String,
    /// The derived per-scenario seed.
    pub seed: u64,
    /// Whether the paper's conditions admit this configuration.
    pub feasible: bool,
    /// The judged verdict.
    pub verdict: Verdict,
    /// The agreed value, when agreement holds.
    pub agreed: Option<Value>,
    /// Rounds/transmissions/deliveries of the execution.
    pub stats: TraceSummary,
    /// Measured wall time in microseconds (CSV only; never in the
    /// canonical JSON).
    pub wall_micros: u64,
    /// How the execution ended; anything but `Completed` means the executor
    /// quarantined the cell.
    pub status: CellStatus,
}

impl ScenarioRecord {
    /// The canonical (timing-free) JSON object for this record.
    #[must_use]
    pub fn to_canonical_json(&self) -> Json {
        let mut fields = vec![
            ("index", self.index.to_json()),
            ("family", self.family.to_json()),
            ("graph", self.graph.to_json()),
            ("n", self.n.to_json()),
            ("f", self.f.to_json()),
            ("algorithm", Json::Str(self.algorithm.name().to_string())),
            ("regime", self.regime.to_json()),
            ("strategy", self.strategy.to_json()),
            ("faulty", self.faulty.to_json()),
            ("inputs", self.inputs.to_json()),
            // As a string: derived seeds use all 64 bits, which a JSON f64
            // number would round (and a reader could then not reproduce the
            // scenario from the report).
            ("seed", Json::Str(self.seed.to_string())),
            ("feasible", Json::Bool(self.feasible)),
            ("agreement", Json::Bool(self.verdict.agreement)),
            ("validity", Json::Bool(self.verdict.validity)),
            ("termination", Json::Bool(self.verdict.termination)),
            ("correct", Json::Bool(self.verdict.is_correct())),
            (
                "agreed",
                self.agreed.map_or(Json::Null, |value| value.to_json()),
            ),
            ("rounds", self.stats.rounds.to_json()),
            ("transmissions", self.stats.transmissions.to_json()),
            ("deliveries", self.stats.deliveries.to_json()),
        ];
        // Additive: quarantine fields appear only on quarantined cells, so
        // failure-free reports keep their exact pre-fault-tolerance bytes
        // (and `campaign diff` sees old reports as all-completed).
        match &self.status {
            CellStatus::Completed => {}
            CellStatus::Failed { panic } => {
                fields.push(("outcome", Json::Str(self.status.label().to_string())));
                fields.push(("panic", panic.to_json()));
            }
            CellStatus::TimedOut { budget_micros } => {
                fields.push(("outcome", Json::Str(self.status.label().to_string())));
                fields.push(("budget_micros", budget_micros.to_json()));
            }
        }
        Json::object(fields)
    }

    /// Parses a record back from its canonical JSON object — the checkpoint
    /// journal's storage format.
    ///
    /// The canonical form intentionally omits `wall_micros` and the
    /// adversary-interference counters, so those come back zeroed; a report
    /// re-serialized from restored records is still byte-identical to the
    /// one-shot report because [`ScenarioRecord::to_canonical_json`] never
    /// reads them (only the CSV's wall column differs, and that surface is
    /// explicitly outside the byte contract).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_canonical_json(json: &Json) -> Result<Self, String> {
        let field = |name: &str| -> Result<&Json, String> {
            json.get(name)
                .ok_or_else(|| format!("record missing '{name}'"))
        };
        let str_field = |name: &str| -> Result<String, String> {
            field(name)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("record field '{name}' is not a string"))
        };
        let usize_field = |name: &str| -> Result<usize, String> {
            field(name)?
                .as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("record field '{name}' is not an integer"))
        };
        let bool_field = |name: &str| -> Result<bool, String> {
            field(name)?
                .as_bool()
                .ok_or_else(|| format!("record field '{name}' is not a boolean"))
        };
        let algorithm_name = str_field("algorithm")?;
        let algorithm = AlgorithmKind::from_name(&algorithm_name)
            .ok_or_else(|| format!("record names unknown algorithm '{algorithm_name}'"))?;
        let faulty = NodeSet::from_json(field("faulty")?).map_err(|e| e.to_string())?;
        let seed = u64_from_number_or_string(field("seed")?).map_err(|e| e.to_string())?;
        let agreed = match field("agreed")? {
            Json::Null => None,
            value => Some(Value::from_json(value).map_err(|e| e.to_string())?),
        };
        let status = match json.get("outcome").and_then(Json::as_str) {
            None => CellStatus::Completed,
            Some("failed") => CellStatus::Failed {
                panic: json
                    .get("panic")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            },
            Some("timeout") => CellStatus::TimedOut {
                budget_micros: json
                    .get("budget_micros")
                    .map(u64_from_number_or_string)
                    .transpose()
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0),
            },
            Some(other) => return Err(format!("record has unknown outcome '{other}'")),
        };
        Ok(ScenarioRecord {
            index: usize_field("index")?,
            family: str_field("family")?,
            graph: str_field("graph")?,
            n: usize_field("n")?,
            f: usize_field("f")?,
            algorithm,
            regime: str_field("regime")?,
            strategy: str_field("strategy")?,
            faulty,
            inputs: str_field("inputs")?,
            seed,
            feasible: bool_field("feasible")?,
            verdict: Verdict {
                agreement: bool_field("agreement")?,
                validity: bool_field("validity")?,
                termination: bool_field("termination")?,
            },
            agreed,
            stats: TraceSummary {
                rounds: usize_field("rounds")?,
                transmissions: usize_field("transmissions")?,
                deliveries: usize_field("deliveries")?,
                ..TraceSummary::default()
            },
            wall_micros: 0,
            status,
        })
    }
}

/// One rollup group: the aggregate over every record sharing
/// `(family, n, f, strategy)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupRow {
    /// Graph family name.
    pub family: String,
    /// Number of nodes.
    pub n: usize,
    /// Declared fault bound.
    pub f: usize,
    /// Execution-regime label.
    pub regime: String,
    /// Strategy name.
    pub strategy: String,
    /// Number of scenarios in the group.
    pub runs: usize,
    /// How many of them satisfied all three consensus conditions.
    pub correct: usize,
    /// Smallest measured round count in the group.
    pub rounds_min: usize,
    /// Largest measured round count in the group.
    pub rounds_max: usize,
    /// Total transmissions across the group.
    pub transmissions: usize,
    /// Total deliveries across the group.
    pub deliveries: usize,
}

impl RollupRow {
    fn to_canonical_json(&self) -> Json {
        Json::object([
            ("family", self.family.to_json()),
            ("n", self.n.to_json()),
            ("f", self.f.to_json()),
            ("regime", self.regime.to_json()),
            ("strategy", self.strategy.to_json()),
            ("runs", self.runs.to_json()),
            ("correct", self.correct.to_json()),
            ("rounds_min", self.rounds_min.to_json()),
            ("rounds_max", self.rounds_max.to_json()),
            ("transmissions", self.transmissions.to_json()),
            ("deliveries", self.deliveries.to_json()),
        ])
    }
}

/// The aggregated result of one campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    name: String,
    seed: u64,
    notes: Vec<String>,
    records: Vec<ScenarioRecord>,
    telemetry: Option<CampaignTelemetry>,
}

impl CampaignReport {
    /// Assembles a report from executed records (already in expansion
    /// order) with no expansion notes.
    #[must_use]
    pub fn new(name: String, seed: u64, records: Vec<ScenarioRecord>) -> Self {
        CampaignReport::with_notes(name, seed, Vec::new(), records)
    }

    /// Assembles a report carrying the expansion's policy-degradation notes
    /// (e.g. a `random` fault policy that enumerated exhaustively because
    /// its `count` covered the whole population).
    #[must_use]
    pub fn with_notes(
        name: String,
        seed: u64,
        notes: Vec<String>,
        records: Vec<ScenarioRecord>,
    ) -> Self {
        CampaignReport {
            name,
            seed,
            notes,
            records,
            telemetry: None,
        }
    }

    /// Attaches the opt-in telemetry section (per-cell metrics + phase
    /// timings). Only its deterministic part enters [`CampaignReport::to_json`].
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: CampaignTelemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The attached telemetry, when the campaign ran with it enabled.
    #[must_use]
    pub fn telemetry(&self) -> Option<&CampaignTelemetry> {
        self.telemetry.as_ref()
    }

    /// The campaign name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expansion's policy-degradation notes (empty when every policy
    /// behaved as declared).
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// The per-scenario records, in expansion order.
    #[must_use]
    pub fn records(&self) -> &[ScenarioRecord] {
        &self.records
    }

    /// Whether every scenario satisfied agreement, validity and
    /// termination.
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.records.iter().all(|r| r.verdict.is_correct())
    }

    /// The records that violated at least one consensus condition.
    #[must_use]
    pub fn incorrect(&self) -> Vec<&ScenarioRecord> {
        self.records
            .iter()
            .filter(|r| !r.verdict.is_correct())
            .collect()
    }

    /// The records the executor quarantined (caught panic or watchdog
    /// timeout) instead of completing — infrastructure failures, as opposed
    /// to consensus-verdict violations.
    #[must_use]
    pub fn quarantined(&self) -> Vec<&ScenarioRecord> {
        self.records
            .iter()
            .filter(|r| !r.status.is_completed())
            .collect()
    }

    /// Total measured wall time across all scenarios (the *serial* cost;
    /// the pool divides it across workers).
    #[must_use]
    pub fn total_wall_micros(&self) -> u64 {
        self.records.iter().map(|r| r.wall_micros).sum()
    }

    /// Aggregates the records per `(family, n, f, regime, strategy)` group,
    /// in sorted group order.
    #[must_use]
    pub fn rollups(&self) -> Vec<RollupRow> {
        let mut groups: BTreeMap<(String, usize, usize, String, String), RollupRow> =
            BTreeMap::new();
        for record in &self.records {
            let key = (
                record.family.clone(),
                record.n,
                record.f,
                record.regime.clone(),
                record.strategy.clone(),
            );
            let entry = groups.entry(key).or_insert_with(|| RollupRow {
                family: record.family.clone(),
                n: record.n,
                f: record.f,
                regime: record.regime.clone(),
                strategy: record.strategy.clone(),
                runs: 0,
                correct: 0,
                rounds_min: usize::MAX,
                rounds_max: 0,
                transmissions: 0,
                deliveries: 0,
            });
            entry.runs += 1;
            entry.correct += usize::from(record.verdict.is_correct());
            entry.rounds_min = entry.rounds_min.min(record.stats.rounds);
            entry.rounds_max = entry.rounds_max.max(record.stats.rounds);
            entry.transmissions += record.stats.transmissions;
            entry.deliveries += record.stats.deliveries;
        }
        groups.into_values().collect()
    }

    /// The canonical JSON report: name, seed, rollups, and every record —
    /// no wall-clock fields, byte-identical for any worker count.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", self.name.to_json()),
            ("seed", self.seed.to_json()),
            ("scenarios", self.records.len().to_json()),
            ("all_correct", Json::Bool(self.all_correct())),
            (
                "notes",
                Json::Arr(self.notes.iter().map(ToJson::to_json).collect()),
            ),
            (
                "rollups",
                Json::Arr(
                    self.rollups()
                        .iter()
                        .map(RollupRow::to_canonical_json)
                        .collect(),
                ),
            ),
            (
                "records",
                Json::Arr(
                    self.records
                        .iter()
                        .map(ScenarioRecord::to_canonical_json)
                        .collect(),
                ),
            ),
        ];
        // Opt-in: present only when the campaign ran with telemetry, so
        // telemetry-off reports stay byte-identical to earlier versions.
        // The section itself carries no wall-clock field, preserving
        // worker-count byte-identity when it *is* present.
        if let Some(telemetry) = &self.telemetry {
            fields.push(("telemetry", telemetry.to_json()));
        }
        Json::object(fields)
    }

    /// The per-scenario CSV table, **including** the measured
    /// `wall_micros` column.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "index,family,graph,n,f,algorithm,regime,strategy,faulty,inputs,seed,feasible,\
             agreement,validity,termination,correct,agreed,rounds,transmissions,\
             deliveries,wall_micros\n",
        );
        for r in &self.records {
            let faulty: Vec<String> = r.faulty.iter().map(|v| v.index().to_string()).collect();
            let agreed = r.agreed.map_or_else(|| "-".to_string(), |v| v.to_string());
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.index,
                r.family,
                csv_escape(&r.graph),
                r.n,
                r.f,
                r.algorithm.name(),
                r.regime,
                r.strategy,
                csv_escape(&faulty.join(" ")),
                r.inputs,
                r.seed,
                r.feasible,
                r.verdict.agreement,
                r.verdict.validity,
                r.verdict.termination,
                r.verdict.is_correct(),
                agreed,
                r.stats.rounds,
                r.stats.transmissions,
                r.stats.deliveries,
                r.wall_micros,
            );
        }
        out
    }

    /// A human-readable rollup summary for terminals.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign '{}' (seed {}): {} scenarios, {} incorrect, {:.3}s total sim time",
            self.name,
            self.seed,
            self.records.len(),
            self.records.len()
                - self
                    .records
                    .iter()
                    .filter(|r| r.verdict.is_correct())
                    .count(),
            self.total_wall_micros() as f64 / 1e6,
        );
        let quarantined = self.quarantined();
        if !quarantined.is_empty() {
            let failed = quarantined
                .iter()
                .filter(|r| matches!(r.status, CellStatus::Failed { .. }))
                .count();
            let _ = writeln!(
                out,
                "quarantined: {failed} failed, {} timed out",
                quarantined.len() - failed
            );
        }
        let rollups = self.rollups();
        let header = [
            "family",
            "n",
            "f",
            "regime",
            "strategy",
            "runs",
            "correct",
            "rounds",
            "transmissions",
        ];
        let mut rows: Vec<[String; 9]> = Vec::new();
        for r in &rollups {
            let rounds = if r.rounds_min == r.rounds_max {
                r.rounds_min.to_string()
            } else {
                format!("{}..{}", r.rounds_min, r.rounds_max)
            };
            rows.push([
                r.family.clone(),
                r.n.to_string(),
                r.f.to_string(),
                r.regime.clone(),
                r.strategy.clone(),
                r.runs.to_string(),
                r.correct.to_string(),
                rounds,
                r.transmissions.to_string(),
            ]);
        }
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(line, " {:width$} |", cell, width = widths[i]);
            }
            line
        };
        let header_row: Vec<String> = header.iter().map(|h| (*h).to_string()).collect();
        let _ = writeln!(out, "{}", render(&header_row));
        let mut separator = String::from("|");
        for width in &widths {
            let _ = write!(separator, "{}|", "-".repeat(width + 2));
        }
        let _ = writeln!(out, "{separator}");
        for row in rows {
            let _ = writeln!(out, "{}", render(&row));
        }
        out.push_str(&self.render_slowest(5));
        if let Some(telemetry) = &self.telemetry {
            out.push_str(&telemetry.render_phases());
        }
        out
    }

    /// Renders the `k` slowest cells by measured wall time (wall clock is a
    /// summary/CSV-only surface, so this never touches the canonical JSON).
    fn render_slowest(&self, k: usize) -> String {
        let mut out = String::new();
        if self.records.is_empty() || k == 0 {
            return out;
        }
        let mut by_wall: Vec<&ScenarioRecord> = self.records.iter().collect();
        by_wall.sort_by(|a, b| {
            b.wall_micros
                .cmp(&a.wall_micros)
                .then(a.index.cmp(&b.index))
        });
        let _ = writeln!(out, "slowest cells (wall time):");
        for record in by_wall.into_iter().take(k) {
            let _ = writeln!(
                out,
                "  #{} {} {} [{}] {} — {:.3}s",
                record.index,
                record.graph,
                record.algorithm.name(),
                record.regime,
                record.strategy,
                record.wall_micros as f64 / 1e6,
            );
        }
        out
    }
}

/// Quotes a CSV cell when it contains a comma or a quote.
fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, family: &str, correct: bool, rounds: usize) -> ScenarioRecord {
        ScenarioRecord {
            index,
            family: family.to_string(),
            graph: format!("{family}5"),
            n: 5,
            f: 1,
            algorithm: AlgorithmKind::Algorithm1,
            regime: "sync".to_string(),
            strategy: "tamper-relays".to_string(),
            faulty: NodeSet::singleton(lbc_model::NodeId::new(0)),
            inputs: "01101".to_string(),
            seed: 9,
            feasible: true,
            verdict: Verdict {
                agreement: correct,
                validity: true,
                termination: true,
            },
            agreed: correct.then_some(Value::One),
            stats: TraceSummary {
                rounds,
                transmissions: 10 * rounds,
                deliveries: 20 * rounds,
                ..TraceSummary::default()
            },
            wall_micros: 1234,
            status: CellStatus::Completed,
        }
    }

    #[test]
    fn quarantine_fields_are_additive_and_roundtrip() {
        // A completed record serializes without any quarantine field…
        let completed = record(0, "cycle", true, 30);
        let json = completed.to_canonical_json();
        assert!(json.get("outcome").is_none());
        assert!(json.get("panic").is_none());

        // …and every status round-trips through the canonical form (the
        // checkpoint journal's storage format).
        let mut failed = record(1, "cycle", false, 0);
        failed.verdict = Verdict {
            agreement: false,
            validity: false,
            termination: false,
        };
        failed.agreed = None;
        failed.status = CellStatus::Failed {
            panic: "chaos: injected panic in cell 1".to_string(),
        };
        let mut timed_out = record(2, "wheel", false, 4);
        timed_out.status = CellStatus::TimedOut {
            budget_micros: 50_000,
        };
        assert_eq!(
            timed_out.to_canonical_json().get("outcome").unwrap(),
            &Json::Str("timeout".to_string())
        );
        for original in [completed, failed, timed_out] {
            let restored = ScenarioRecord::from_canonical_json(&original.to_canonical_json())
                .expect("canonical records parse back");
            assert_eq!(restored.status, original.status);
            assert_eq!(
                restored.to_canonical_json(),
                original.to_canonical_json(),
                "restoring and re-serializing must be byte-stable"
            );
            assert_eq!(restored.wall_micros, 0, "wall time is outside the canon");
        }
    }

    #[test]
    fn rollups_group_and_aggregate() {
        let report = CampaignReport::new(
            "t".to_string(),
            1,
            vec![
                record(0, "cycle", true, 30),
                record(1, "cycle", false, 32),
                record(2, "wheel", true, 12),
            ],
        );
        let rollups = report.rollups();
        assert_eq!(rollups.len(), 2);
        let cycle = &rollups[0];
        assert_eq!(cycle.family, "cycle");
        assert_eq!(cycle.runs, 2);
        assert_eq!(cycle.correct, 1);
        assert_eq!(cycle.rounds_min, 30);
        assert_eq!(cycle.rounds_max, 32);
        assert_eq!(cycle.transmissions, 620);
        assert!(!report.all_correct());
        assert_eq!(report.incorrect().len(), 1);
    }

    #[test]
    fn canonical_json_has_no_wall_clock() {
        let report = CampaignReport::new("t".to_string(), 1, vec![record(0, "cycle", true, 30)]);
        let text = report.to_json().to_string();
        assert!(!text.contains("wall"));
        assert!(!text.contains("1234"));
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("scenarios").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("all_correct").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn csv_includes_wall_micros_and_escapes() {
        let mut r = record(0, "circulant", true, 30);
        r.graph = "C9(1,2)".to_string();
        let report = CampaignReport::new("t".to_string(), 1, vec![r]);
        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().ends_with("wall_micros"));
        let row = lines.next().unwrap();
        assert!(row.contains("1234"));
        assert!(row.contains("C9(1,2)"));
    }

    #[test]
    fn summary_renders_a_table() {
        let report = CampaignReport::new(
            "smoke".to_string(),
            7,
            vec![record(0, "cycle", true, 30), record(1, "wheel", true, 12)],
        );
        let summary = report.render_summary();
        assert!(summary.contains("campaign 'smoke'"));
        assert!(summary.contains("| cycle"));
        assert!(summary.contains("| wheel"));
        assert!(summary.contains("0 incorrect"));
    }
}
