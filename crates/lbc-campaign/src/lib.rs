//! # lbc-campaign
//!
//! Declarative **scenario specs** and a **deterministic parallel sweep
//! executor** for the local-broadcast consensus workspace.
//!
//! The paper's claims are quantified over *families* of executions — every
//! fault placement × adversary strategy × graph × `f` — but replaying
//! hardcoded experiment functions one at a time does not scale past a
//! handful of configurations. This crate treats "which executions to run"
//! as *data*:
//!
//! * [`spec`] — a JSON-serializable [`CampaignSpec`]: a list of sweep
//!   grids (graph family + size range, `f` range, algorithms, adversary
//!   strategies, fault-placement policy, input-assignment policy) expanded
//!   deterministically into a flat list of concrete [`Scenario`]s.
//! * [`executor`] — a `std::thread` worker pool running scenarios in
//!   parallel. Every scenario is self-contained and carries its own seed,
//!   derived from the campaign seed and the scenario's position in the
//!   expansion order, so the produced report is **byte-identical regardless
//!   of worker count or scheduling**.
//! * [`report`] — the results store: per-scenario records (verdict, rounds,
//!   transmissions, deliveries, wall time) aggregated into a
//!   [`CampaignReport`] with JSON and CSV writers plus summary rollups per
//!   `(family, n, f, strategy)` group.
//! * [`search`] — the per-cell **worst-case adversary search**
//!   (`lbc search spec.json`): a budgeted, resumable beam search over the
//!   joint strategy × fault-placement × input space of every
//!   `(graph, f, algorithm)` cell, ranked by a [`Severity`] metric
//!   (violation > dissent margin > rounds > volume), with greedy
//!   counterexample minimization into replayable spec fragments.
//! * [`diff`] — cell-by-cell comparison of two canonical reports
//!   (`lbc campaign diff old.json new.json`, campaign or search, optionally
//!   `--cross-spec`), failing on verdict regressions and lost violations —
//!   the guard that lets the engines underneath change (e.g. the shared
//!   flood fabric) without silently changing results.
//!
//! ## Determinism contract
//!
//! Everything that influences an outcome is fixed at *expansion* time, on a
//! single thread: graph construction, fault placements (including the
//! `random` policy, seeded from the campaign seed), input assignments, and
//! the per-scenario adversary seed
//! (`scenario.seed = mix_seed([SALT_SCENARIO, campaign_seed, index])`; see
//! [`spec::mix_seed`] for the exact derivation). Workers only
//! *evaluate* scenarios; they contribute no randomness and no ordering.
//! The canonical JSON report therefore contains no wall-clock fields — the
//! measured `wall_micros` travels in the CSV rows and the stdout summary,
//! which are explicitly outside the byte-identical contract. The search
//! engine extends the same contract with per-cell and per-round derived
//! seeds, making its canonical report additionally stable under
//! budget-resume (`lbc search --resume`).
//!
//! ## Example
//!
//! ```
//! use lbc_campaign::{run_campaign, CampaignSpec};
//! use lbc_model::json::Json;
//!
//! let spec = CampaignSpec::from_json_text(
//!     r#"{
//!       "name": "doc-smoke",
//!       "seed": 7,
//!       "sweeps": [{
//!         "family": {"kind": "cycle"},
//!         "sizes": {"list": [5]},
//!         "f": 1,
//!         "algorithms": ["alg1"],
//!         "strategies": ["tamper-relays"],
//!         "faults": {"policy": "exhaustive"},
//!         "inputs": {"policy": "alternating"}
//!       }]
//!     }"#,
//! )
//! .unwrap();
//! let report = run_campaign(&spec, 2).unwrap();
//! assert_eq!(report.records().len(), 5); // 5 fault placements on C5
//! assert!(report.all_correct());
//! // The canonical JSON is independent of the worker count:
//! assert_eq!(
//!     Json::parse(&report.to_json().to_string()).unwrap(),
//!     run_campaign(&spec, 1).unwrap().to_json()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod checkpoint;
pub mod diff;
pub mod executor;
pub mod explain;
pub mod report;
pub mod search;
pub mod serve;
pub mod spec;
pub mod telemetry;

pub use chaos::ChaosPolicy;
pub use checkpoint::{Checkpoint, CheckpointConfig};
pub use diff::{diff_report_texts, diff_reports, CampaignDiff, CellChange, DiffOptions};
pub use executor::{
    run_campaign, run_campaign_opts, run_scenario, run_scenario_observed, run_scenarios,
    run_scenarios_noted, run_scenarios_opts, run_scenarios_resumable, ExecOptions,
};
pub use explain::{replay_scenario, TraceReplay};
pub use report::{CampaignReport, CellStatus, RollupRow, ScenarioRecord};
pub use search::{
    render_search_plan, run_search, run_search_resumed, CellOutcome, Counterexample, SearchReport,
    SearchSpec, Severity,
};
pub use serve::{
    run_serve, run_serve_opts, InstanceRecord, LaneReport, ServeLaneSpec, ServeReport, ServeSpec,
};
pub use spec::{
    CampaignSpec, FaultPolicy, GraphFamily, InputPolicy, LimitsSpec, RegimeSpec, Scenario,
    SizeSpec, SpecError, StrategySpec, SweepSpec,
};
pub use telemetry::{CampaignTelemetry, CellTelemetry};
