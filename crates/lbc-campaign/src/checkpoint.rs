//! The campaign executor's periodic checkpoint journal.
//!
//! With a [`CheckpointConfig`] attached, the executor journals every
//! completed cell record to `<name>.checkpoint.json` in batches: the whole
//! file is rewritten to a temp sibling, fsync'd, and atomically renamed
//! into place at each batch boundary, so a kill at any moment leaves either
//! the previous or the new journal — never a torn one. `lbc campaign
//! --resume` loads the journal, validates its fingerprint against the spec
//! (the same name/seed machinery as `lbc search --resume`), pre-fills the
//! completed cells, and re-runs only the incomplete ones; records travel as
//! their **canonical report JSON**, so the resumed report is byte-identical
//! to the one-shot report. The journal is deleted once the campaign
//! finishes and its report is written.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use lbc_model::json::{u64_from_number_or_string, Json};

use crate::report::ScenarioRecord;
use crate::spec::{validate_resume_fingerprint, CampaignSpec, SpecError};

/// How (and whether) the executor journals completed cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// The journal file (conventionally `<campaign-name>.checkpoint.json`).
    pub path: PathBuf,
    /// Batch size: the journal is rewritten and fsync'd after every `every`
    /// newly completed cells (clamped to at least 1).
    pub every: usize,
    /// Load `path` before executing and skip its completed cells. The file
    /// not existing is fine (fresh start); a fingerprint mismatch is an
    /// error.
    pub resume: bool,
}

impl CheckpointConfig {
    /// A journal at `path` with the default batch size of 8, not resuming.
    #[must_use]
    pub fn new(path: PathBuf) -> Self {
        CheckpointConfig {
            path,
            every: 8,
            resume: false,
        }
    }
}

/// A loaded checkpoint journal: the producing campaign's fingerprint plus
/// every record completed before the interruption.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The campaign name the journal was written under.
    pub name: String,
    /// The campaign seed the journal was written under.
    pub seed: u64,
    /// The total scenario count of the producing expansion.
    pub scenarios: usize,
    /// The completed records, in journal order (canonical-JSON restored, so
    /// `wall_micros` is zeroed — wall time is outside the byte contract).
    pub records: Vec<ScenarioRecord>,
}

impl Checkpoint {
    /// Loads and parses a journal file.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the file cannot be read or does not
    /// parse as a checkpoint journal.
    pub fn load(path: &Path) -> Result<Self, SpecError> {
        let text = fs::read_to_string(path).map_err(|error| {
            SpecError::new(format!(
                "cannot read checkpoint {}: {error}",
                path.display()
            ))
        })?;
        let json = Json::parse(&text).map_err(|error| {
            SpecError::new(format!(
                "checkpoint {} is not JSON: {error}",
                path.display()
            ))
        })?;
        Checkpoint::from_json(&json)
            .map_err(|message| SpecError::new(format!("checkpoint {}: {message}", path.display())))
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing 'name'")?
            .to_string();
        let seed = u64_from_number_or_string(json.get("seed").ok_or("missing 'seed'")?)
            .map_err(|error| error.to_string())?;
        let scenarios = json
            .get("scenarios")
            .and_then(Json::as_u64)
            .ok_or("missing 'scenarios'")? as usize;
        let records = json
            .get("records")
            .and_then(Json::as_array)
            .ok_or("missing 'records'")?
            .iter()
            .map(ScenarioRecord::from_canonical_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Checkpoint {
            name,
            seed,
            scenarios,
            records,
        })
    }

    /// Validates that this journal belongs to `spec`'s campaign (name +
    /// seed fingerprint, shared with `lbc search --resume`) and to the same
    /// expansion (`scenarios` cells, every record index in range).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the mismatch.
    pub fn validate(&self, spec: &CampaignSpec, scenarios: usize) -> Result<(), SpecError> {
        validate_resume_fingerprint(&self.name, Some(self.seed), spec, "checkpoint journal")?;
        if self.scenarios != scenarios {
            return Err(SpecError::new(format!(
                "checkpoint journal covers {} scenarios but the spec expands to {scenarios} — \
                 the grid changed since the journal was written",
                self.scenarios
            )));
        }
        if let Some(record) = self.records.iter().find(|r| r.index >= scenarios) {
            return Err(SpecError::new(format!(
                "checkpoint journal records cell {} beyond the {scenarios}-cell grid",
                record.index
            )));
        }
        Ok(())
    }

    /// Spreads the journaled records over a by-index slot vector of the
    /// full grid: `Some` for completed cells, `None` for the ones a resume
    /// still has to run.
    #[must_use]
    pub fn into_prefill(self, scenarios: usize) -> Vec<Option<ScenarioRecord>> {
        let mut slots = vec![None; scenarios];
        for record in self.records {
            let index = record.index;
            if index < scenarios {
                slots[index] = Some(record);
            }
        }
        slots
    }
}

/// Writes a journal snapshot atomically: serialize to `<path>.tmp`, fsync,
/// rename over `path`. Records are stored as their canonical report JSON.
///
/// # Errors
///
/// Returns the underlying I/O error (the executor downgrades journal write
/// failures to stderr warnings — durability is best-effort, the in-memory
/// run is never sacrificed to it).
pub fn write_atomic<'a>(
    path: &Path,
    name: &str,
    seed: u64,
    scenarios: usize,
    records: impl Iterator<Item = &'a ScenarioRecord>,
) -> std::io::Result<()> {
    let json = Json::object([
        ("name", Json::Str(name.to_string())),
        ("seed", Json::Num(seed as f64)),
        ("scenarios", Json::Num(scenarios as f64)),
        (
            "records",
            Json::Arr(records.map(ScenarioRecord::to_canonical_json).collect()),
        ),
    ]);
    let tmp = path.with_extension("tmp");
    let mut file = fs::File::create(&tmp)?;
    file.write_all(json.to_string().as_bytes())?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CellStatus;
    use lbc_consensus::AlgorithmKind;
    use lbc_model::{NodeSet, Verdict};
    use lbc_sim::TraceSummary;

    fn record(index: usize) -> ScenarioRecord {
        ScenarioRecord {
            index,
            family: "cycle".to_string(),
            graph: "C5".to_string(),
            n: 5,
            f: 1,
            algorithm: AlgorithmKind::Algorithm1,
            regime: "sync".to_string(),
            strategy: "silent".to_string(),
            faulty: NodeSet::singleton(lbc_model::NodeId::new(index % 5)),
            inputs: "01101".to_string(),
            seed: 77,
            feasible: true,
            verdict: Verdict {
                agreement: true,
                validity: true,
                termination: true,
            },
            agreed: Some(lbc_model::Value::One),
            stats: TraceSummary {
                rounds: 3,
                transmissions: 30,
                deliveries: 60,
                ..TraceSummary::default()
            },
            wall_micros: 500,
            status: CellStatus::Completed,
        }
    }

    fn spec(name: &str, seed: u64) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            seed,
            sweeps: Vec::new(),
            search: None,
            limits: None,
            serve: None,
        }
    }

    #[test]
    fn journal_roundtrips_and_validates_the_fingerprint() {
        let dir = std::env::temp_dir().join(format!("lbc-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.checkpoint.json");
        write_atomic(&path, "unit", 9, 4, [record(0), record(2)].iter()).unwrap();
        let checkpoint = Checkpoint::load(&path).unwrap();
        assert_eq!(checkpoint.name, "unit");
        assert_eq!(checkpoint.seed, 9);
        assert_eq!(checkpoint.scenarios, 4);
        assert_eq!(checkpoint.records.len(), 2);
        checkpoint.validate(&spec("unit", 9), 4).unwrap();
        assert!(checkpoint.validate(&spec("other", 9), 4).is_err());
        assert!(checkpoint.validate(&spec("unit", 8), 4).is_err());
        assert!(checkpoint.validate(&spec("unit", 9), 5).is_err());
        let prefill = checkpoint.into_prefill(4);
        assert!(prefill[0].is_some() && prefill[2].is_some());
        assert!(prefill[1].is_none() && prefill[3].is_none());
        // Restored records re-serialize to the exact canonical bytes.
        assert_eq!(
            prefill[0].as_ref().unwrap().to_canonical_json().to_string(),
            record(0).to_canonical_json().to_string()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_records_are_rejected() {
        let dir = std::env::temp_dir().join(format!("lbc-ckpt-oob-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oob.checkpoint.json");
        write_atomic(&path, "unit", 9, 2, [record(3)].iter()).unwrap();
        let checkpoint = Checkpoint::load(&path).unwrap();
        assert!(checkpoint.validate(&spec("unit", 9), 2).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
