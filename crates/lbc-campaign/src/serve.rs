//! The repeated-consensus **service core** (`lbc serve`): chained
//! multi-instance lanes, each pumped over one long-lived network.
//!
//! A campaign cell answers "does one execution decide correctly?"; a serve
//! lane answers "what does it cost to decide *again and again*?". Each
//! [`ServeLaneSpec`] fixes one `(graph, f, algorithm, regime, strategy,
//! faults)` configuration and runs `instances` consecutive consensus
//! instances through [`lbc_consensus::runner::run_chain_under`]: instance
//! `k + 1` starts while instance `k`'s flood tail drains, every instance is
//! isolated on its own `(tag, epoch)` ledger session, and the path arena,
//! disjoint-path plans, and pair-path memos stay warm across instances.
//!
//! The determinism contract matches the campaign executor's: lanes are the
//! worker-parallelism unit, every lane derives its seeds from the campaign
//! seed and its own index at expansion time, and the canonical JSON report
//! ([`ServeReport::to_json`]) carries no wall-clock fields — it is
//! byte-identical at any worker count. Measured per-instance latencies and
//! decisions/sec travel in the CSV and the stdout summary only.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lbc_adversary::Strategy;
use lbc_consensus::runner::{self, AlgorithmKind};
use lbc_graph::Graph;
use lbc_model::json::{FromJson, Json, JsonError, ToJson};
use lbc_model::{InputAssignment, NodeId, NodeSet, Regime, Value, Verdict};
use lbc_sim::ChainStats;

use crate::spec::{
    mix_seed, CampaignSpec, GraphFamily, InputPolicy, RegimeSpec, SpecError, StrategySpec,
    SALT_SERVE,
};

/// Hard cap on `lanes × instances`, guarding against accidentally huge
/// service runs the same way [`crate::spec::MAX_SCENARIOS`] guards grids.
pub const MAX_SERVE_INSTANCES: usize = 1_000_000;

// ---------------------------------------------------------------------------
// spec
// ---------------------------------------------------------------------------

/// The `"serve"` block of a campaign spec: how many consecutive consensus
/// instances to pump through each lane.
///
/// JSON: `{"instances": 200, "lanes": [{...}, ...]}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSpec {
    /// Consecutive instances per lane (the CLI `--instances` flag
    /// overrides this).
    pub instances: usize,
    /// The lane configurations, run in parallel across workers.
    pub lanes: Vec<ServeLaneSpec>,
}

/// One service lane: a fixed `(graph, f, algorithm, regime, strategy,
/// faults, inputs)` configuration whose instances share one long-lived
/// network.
///
/// JSON: `{"family": {"kind": "fig1b"}, "n": 9, "f": 1, "algorithm":
/// "async", "regime": "sync", "strategy": "silent", "faulty": [3],
/// "inputs": {"policy": "random", "count": 64}}` — `regime` defaults to
/// `"sync"`, `strategy` to `"honest"`, `faulty` to `[]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeLaneSpec {
    /// The graph family.
    pub family: GraphFamily,
    /// The instance size.
    pub n: usize,
    /// The declared fault bound.
    pub f: usize,
    /// The algorithm every instance runs.
    pub algorithm: AlgorithmKind,
    /// The execution regime (seedless specs derive the schedule seed from
    /// the lane seed).
    pub regime: RegimeSpec,
    /// The adversary strategy driving the faulty nodes across *all*
    /// instances of the lane.
    pub strategy: StrategySpec,
    /// The faulty node indices.
    pub faulty: Vec<usize>,
    /// The input-assignment policy; instance `k` uses assignment
    /// `k mod |assignments|` of the policy's deterministic expansion.
    pub inputs: InputPolicy,
}

impl ToJson for ServeLaneSpec {
    fn to_json(&self) -> Json {
        Json::object([
            ("family", self.family.to_json()),
            ("n", self.n.to_json()),
            ("f", self.f.to_json()),
            ("algorithm", Json::Str(self.algorithm.name().to_string())),
            ("regime", self.regime.to_json()),
            ("strategy", self.strategy.to_json()),
            (
                "faulty",
                Json::Arr(self.faulty.iter().map(|v| (*v as u64).to_json()).collect()),
            ),
            ("inputs", self.inputs.to_json()),
        ])
    }
}

impl FromJson for ServeLaneSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value.get(key).ok_or_else(|| JsonError {
                message: format!("serve lane missing '{key}'"),
            })
        };
        let algorithm_name = field("algorithm")?.as_str().ok_or_else(|| JsonError {
            message: "serve lane 'algorithm' must be a string".to_string(),
        })?;
        Ok(ServeLaneSpec {
            family: GraphFamily::from_json(field("family")?)?,
            n: usize::from_json(field("n")?)?,
            f: usize::from_json(field("f")?)?,
            algorithm: AlgorithmKind::from_name(algorithm_name).ok_or_else(|| JsonError {
                message: format!("serve lane names unknown algorithm '{algorithm_name}'"),
            })?,
            regime: value
                .get("regime")
                .map_or(Ok(RegimeSpec::Sync), RegimeSpec::from_json)?,
            strategy: value
                .get("strategy")
                .map_or(Ok(StrategySpec::Honest), StrategySpec::from_json)?,
            faulty: value
                .get("faulty")
                .map_or(Ok(Vec::new()), Vec::<usize>::from_json)?,
            inputs: InputPolicy::from_json(field("inputs")?)?,
        })
    }
}

impl ToJson for ServeSpec {
    fn to_json(&self) -> Json {
        Json::object([
            ("instances", self.instances.to_json()),
            (
                "lanes",
                Json::Arr(self.lanes.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for ServeSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value.get(key).ok_or_else(|| JsonError {
                message: format!("serve block missing '{key}'"),
            })
        };
        Ok(ServeSpec {
            instances: usize::from_json(field("instances")?)?,
            lanes: Vec::<ServeLaneSpec>::from_json(field("lanes")?)?,
        })
    }
}

// ---------------------------------------------------------------------------
// expansion
// ---------------------------------------------------------------------------

/// A fully materialized lane, fixed at expansion time on one thread:
/// everything a worker needs, no shared mutable state.
struct LaneJob {
    index: usize,
    family: String,
    label: String,
    graph: Graph,
    n: usize,
    f: usize,
    algorithm: AlgorithmKind,
    regime: Regime,
    regime_label: String,
    strategy: Strategy,
    strategy_name: &'static str,
    faulty: NodeSet,
    input_sets: Vec<InputAssignment>,
    seed: u64,
}

fn expand_lanes(
    spec: &CampaignSpec,
    serve: &ServeSpec,
    instances: usize,
) -> Result<Vec<LaneJob>, SpecError> {
    if instances == 0 {
        return Err(SpecError::new("serve requires at least one instance"));
    }
    if serve.lanes.is_empty() {
        return Err(SpecError::new("serve block has no lanes"));
    }
    if serve
        .lanes
        .len()
        .checked_mul(instances)
        .is_none_or(|total| total > MAX_SERVE_INSTANCES)
    {
        return Err(SpecError::new(format!(
            "serve expands past {MAX_SERVE_INSTANCES} total instances"
        )));
    }
    let mut jobs = Vec::with_capacity(serve.lanes.len());
    for (index, lane) in serve.lanes.iter().enumerate() {
        lane.family.check(lane.n)?;
        let seed = mix_seed(&[SALT_SERVE, spec.seed, index as u64]);
        let regime = lane.regime.materialize(seed);
        if !lane.algorithm.supports_regime(&regime) {
            return Err(SpecError::new(format!(
                "serve lane {index}: algorithm '{}' is a synchronous round machine and \
                 cannot run under regime '{}'",
                lane.algorithm.name(),
                lane.regime.label()
            )));
        }
        let mut faulty = NodeSet::new();
        for &node in &lane.faulty {
            if node >= lane.n {
                return Err(SpecError::new(format!(
                    "serve lane {index}: faulty node {node} is out of range for n = {}",
                    lane.n
                )));
            }
            faulty.insert(NodeId::new(node));
        }
        let input_sets = lane
            .inputs
            .assignments(lane.n, mix_seed(&[SALT_SERVE, spec.seed, index as u64, 1]))?;
        jobs.push(LaneJob {
            index,
            family: lane.family.name().to_string(),
            label: lane.family.label(lane.n),
            graph: lane.family.build(lane.n),
            n: lane.n,
            f: lane.f,
            algorithm: lane.algorithm,
            regime,
            regime_label: lane.regime.label(),
            strategy: lane.strategy.materialize(seed),
            strategy_name: lane.strategy.name(),
            faulty,
            input_sets,
            seed,
        });
    }
    Ok(jobs)
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

/// One judged instance of a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceRecord {
    /// The judged verdict.
    pub verdict: Verdict,
    /// The agreed value, when agreement holds.
    pub agreed: Option<Value>,
    /// Steps (lockstep rounds or scheduler steps) the instance consumed.
    pub steps: usize,
    /// Transmissions emitted by the instance, including its drain tail.
    pub transmissions: usize,
    /// Deliveries of the instance's transmissions.
    pub deliveries: usize,
    /// Measured instance latency in microseconds (CSV/summary only; never
    /// in the canonical JSON).
    pub wall_micros: u64,
}

impl InstanceRecord {
    fn to_canonical_json(&self) -> Json {
        Json::object([
            ("agreement", Json::Bool(self.verdict.agreement)),
            ("validity", Json::Bool(self.verdict.validity)),
            ("termination", Json::Bool(self.verdict.termination)),
            ("correct", Json::Bool(self.verdict.is_correct())),
            (
                "agreed",
                self.agreed.map_or(Json::Null, |value| value.to_json()),
            ),
            ("steps", self.steps.to_json()),
            ("transmissions", self.transmissions.to_json()),
            ("deliveries", self.deliveries.to_json()),
        ])
    }
}

/// The completed run of one lane: per-instance records plus the chain-wide
/// resource high-water marks.
#[derive(Debug, Clone)]
pub struct LaneReport {
    /// Lane position in the spec.
    pub index: usize,
    /// Graph family name.
    pub family: String,
    /// Graph instance label (e.g. `C9(1,2)`).
    pub graph: String,
    /// Number of nodes.
    pub n: usize,
    /// Declared fault bound.
    pub f: usize,
    /// Algorithm executed.
    pub algorithm: AlgorithmKind,
    /// The regime's grouping label.
    pub regime: String,
    /// Strategy name driving the faulty nodes.
    pub strategy: String,
    /// The faulty set.
    pub faulty: NodeSet,
    /// The derived lane seed.
    pub seed: u64,
    /// The per-instance records, in instance order.
    pub instances: Vec<InstanceRecord>,
    /// The chain's resource high-water marks (all deterministic).
    pub stats: ChainStats,
    /// Measured lane wall time in microseconds (CSV/summary only).
    pub wall_micros: u64,
}

impl LaneReport {
    /// How many instances decided correctly.
    #[must_use]
    pub fn correct(&self) -> usize {
        self.instances
            .iter()
            .filter(|record| record.verdict.is_correct())
            .count()
    }

    /// Whether every instance decided correctly.
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.correct() == self.instances.len()
    }

    /// The cross-instance channel-isolation check: per-tag live channels
    /// bounded by the two-epoch retirement window (≤ 2) and total allocated
    /// slots bounded by 3 per tag — recycling, not growth, across the chain.
    #[must_use]
    pub fn channels_bounded(&self) -> bool {
        self.stats.max_live_per_tag <= 2
            && self.stats.max_allocated_channels <= 3 * self.stats.live_tags.max(1)
    }

    /// The `p`-th percentile (nearest-rank) of per-instance step counts —
    /// deterministic, so it lives in the canonical report.
    #[must_use]
    pub fn steps_percentile(&self, p: usize) -> usize {
        percentile(self.instances.iter().map(|record| record.steps), p)
    }

    /// The `p`-th percentile (nearest-rank) of measured per-instance
    /// latencies in microseconds (summary/CSV surface only).
    #[must_use]
    pub fn latency_percentile(&self, p: usize) -> u64 {
        percentile(self.instances.iter().map(|record| record.wall_micros), p)
    }

    fn to_canonical_json(&self) -> Json {
        Json::object([
            ("lane", self.index.to_json()),
            ("family", self.family.to_json()),
            ("graph", self.graph.to_json()),
            ("n", self.n.to_json()),
            ("f", self.f.to_json()),
            ("algorithm", Json::Str(self.algorithm.name().to_string())),
            ("regime", self.regime.to_json()),
            ("strategy", self.strategy.to_json()),
            ("faulty", self.faulty.to_json()),
            // A string, like every other 64-bit seed in report surfaces.
            ("seed", Json::Str(self.seed.to_string())),
            ("correct", self.correct().to_json()),
            ("all_correct", Json::Bool(self.all_correct())),
            ("steps_p50", self.steps_percentile(50).to_json()),
            ("steps_p99", self.steps_percentile(99).to_json()),
            (
                "chain",
                Json::object([
                    ("max_live_channels", self.stats.max_live_channels.to_json()),
                    (
                        "max_allocated_channels",
                        self.stats.max_allocated_channels.to_json(),
                    ),
                    ("max_live_per_tag", self.stats.max_live_per_tag.to_json()),
                    ("live_tags", self.stats.live_tags.to_json()),
                    ("arena_paths", self.stats.arena_paths.to_json()),
                    ("drained_steps", self.stats.drained_steps.to_json()),
                    ("channels_bounded", Json::Bool(self.channels_bounded())),
                ]),
            ),
            (
                "instances",
                Json::Arr(
                    self.instances
                        .iter()
                        .map(InstanceRecord::to_canonical_json)
                        .collect(),
                ),
            ),
        ])
    }
}

/// The completed service run: every lane's report under one name and seed.
#[derive(Debug, Clone)]
pub struct ServeReport {
    name: String,
    seed: u64,
    instances: usize,
    lanes: Vec<LaneReport>,
    /// Overall run wall time (all lanes, as scheduled) in microseconds.
    wall_micros: u64,
}

impl ServeReport {
    /// The campaign name the run was configured from.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instances pumped per lane.
    #[must_use]
    pub fn instances_per_lane(&self) -> usize {
        self.instances
    }

    /// The per-lane reports, in spec order.
    #[must_use]
    pub fn lanes(&self) -> &[LaneReport] {
        &self.lanes
    }

    /// Whether every instance of every lane decided correctly.
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.lanes.iter().all(LaneReport::all_correct)
    }

    /// Whether every lane kept its ledger channels bounded across the chain.
    #[must_use]
    pub fn channels_bounded(&self) -> bool {
        self.lanes.iter().all(LaneReport::channels_bounded)
    }

    /// Total correctly decided instances across all lanes.
    #[must_use]
    pub fn total_decisions(&self) -> usize {
        self.lanes.iter().map(LaneReport::correct).sum()
    }

    /// The overall measured wall time in microseconds (summary only).
    #[must_use]
    pub fn total_wall_micros(&self) -> u64 {
        self.wall_micros
    }

    /// The **canonical** report: every deterministic field, no wall-clock
    /// measurements — byte-identical at any worker count.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("seed", Json::Str(self.seed.to_string())),
            ("instances", self.instances.to_json()),
            ("all_correct", Json::Bool(self.all_correct())),
            ("channels_bounded", Json::Bool(self.channels_bounded())),
            (
                "lanes",
                Json::Arr(
                    self.lanes
                        .iter()
                        .map(LaneReport::to_canonical_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// The flat per-instance CSV, including the measured `wall_micros`
    /// column (explicitly outside the byte-identical contract).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "lane,instance,family,graph,n,f,algorithm,regime,strategy,correct,agreed,\
             steps,transmissions,deliveries,wall_micros\n",
        );
        for lane in &self.lanes {
            for (k, record) in lane.instances.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    lane.index,
                    k,
                    lane.family,
                    lane.graph,
                    lane.n,
                    lane.f,
                    lane.algorithm.name(),
                    lane.regime,
                    lane.strategy,
                    record.verdict.is_correct(),
                    record
                        .agreed
                        .map_or_else(|| "-".to_string(), |value| value.to_string()),
                    record.steps,
                    record.transmissions,
                    record.deliveries,
                    record.wall_micros,
                );
            }
        }
        out
    }

    /// The human-facing stdout summary: per-lane verdict tallies, step and
    /// latency percentiles, and decisions/sec (wall-clock based, outside
    /// the byte-identical contract).
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve '{}' (seed {}): {} lanes x {} instances",
            self.name,
            self.seed,
            self.lanes.len(),
            self.instances
        );
        for lane in &self.lanes {
            let secs = lane.wall_micros as f64 / 1e6;
            let rate = if secs > 0.0 {
                lane.correct() as f64 / secs
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  lane {} {} {} {} {} f={}: {}/{} correct, steps p50={} p99={}, \
                 latency p50={}us p99={}us, {:.1} decisions/s, channels \
                 live/tag<={} alloc<={}{}",
                lane.index,
                lane.graph,
                lane.algorithm.name(),
                lane.regime,
                lane.strategy,
                lane.f,
                lane.correct(),
                lane.instances.len(),
                lane.steps_percentile(50),
                lane.steps_percentile(99),
                lane.latency_percentile(50),
                lane.latency_percentile(99),
                rate,
                lane.stats.max_live_per_tag,
                lane.stats.max_allocated_channels,
                if lane.channels_bounded() {
                    ""
                } else {
                    " [UNBOUNDED]"
                },
            );
        }
        let secs = self.wall_micros as f64 / 1e6;
        let rate = if secs > 0.0 {
            self.total_decisions() as f64 / secs
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  total: {} decisions in {:.2}s - {:.1} decisions/s",
            self.total_decisions(),
            secs,
            rate
        );
        out
    }
}

/// Nearest-rank percentile of an unsorted sequence (0 for an empty one).
fn percentile<T: Ord + Copy + Default>(values: impl Iterator<Item = T>, p: usize) -> T {
    let mut sorted: Vec<T> = values.collect();
    if sorted.is_empty() {
        return T::default();
    }
    sorted.sort_unstable();
    let rank = (p * sorted.len()).div_ceil(100).clamp(1, sorted.len());
    sorted[rank - 1]
}

// ---------------------------------------------------------------------------
// execution
// ---------------------------------------------------------------------------

/// Runs the spec's `"serve"` block with the configured instance count.
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec has no serve block or a lane is
/// invalid (bad family/size, out-of-range fault, regime mismatch).
pub fn run_serve(spec: &CampaignSpec, workers: usize) -> Result<ServeReport, SpecError> {
    run_serve_opts(spec, workers, None)
}

/// Runs the spec's `"serve"` block, optionally overriding the per-lane
/// instance count (the CLI `--instances` flag).
///
/// # Errors
///
/// Same conditions as [`run_serve`].
pub fn run_serve_opts(
    spec: &CampaignSpec,
    workers: usize,
    instances_override: Option<usize>,
) -> Result<ServeReport, SpecError> {
    let serve = spec
        .serve
        .as_ref()
        .ok_or_else(|| SpecError::new("spec has no 'serve' block"))?;
    let instances = instances_override.unwrap_or(serve.instances);
    let jobs = expand_lanes(spec, serve, instances)?;
    let workers = workers.max(1).min(jobs.len());
    let started = Instant::now();
    let slots: Vec<Mutex<Option<LaneReport>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let worker_loop = || loop {
        let claim = next.fetch_add(1, Ordering::Relaxed);
        let Some(job) = jobs.get(claim) else {
            break;
        };
        let report = run_lane(job, instances);
        *slots[claim].lock().expect("no panics while holding slot") = Some(report);
    };
    if workers == 1 {
        worker_loop();
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker_loop)).collect();
            for handle in handles {
                let _ = handle.join();
            }
        });
    }
    let lanes = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker panicked")
                .expect("every lane slot is filled once the pool drains")
        })
        .collect();
    Ok(ServeReport {
        name: spec.name.clone(),
        seed: spec.seed,
        instances,
        lanes,
        wall_micros: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
    })
}

/// Pumps one lane's chain to completion and judges every instance.
fn run_lane(job: &LaneJob, instances: usize) -> LaneReport {
    let mut adversary = job.strategy.clone().into_adversary();
    let sets = &job.input_sets;
    // Instance-boundary timestamps: the chain driver calls the re-arm
    // closure once per instance (k = 0 before the network spins up, then at
    // every handover), so consecutive marks bracket one instance's wall
    // time — including its share of the previous tail's overlap drain.
    let mut marks: Vec<Instant> = Vec::with_capacity(instances);
    let started = Instant::now();
    let (results, stats) = runner::run_chain_under(
        job.algorithm,
        &job.regime,
        &job.graph,
        job.f,
        &job.faulty,
        instances,
        |k| {
            marks.push(Instant::now());
            sets[(k as usize) % sets.len()].clone()
        },
        &mut adversary,
    );
    let finished = Instant::now();
    let records = results
        .into_iter()
        .enumerate()
        .map(|(k, result)| {
            let from = marks.get(k).copied().unwrap_or(started);
            let to = marks.get(k + 1).copied().unwrap_or(finished);
            InstanceRecord {
                verdict: result.outcome.verdict(),
                agreed: result.outcome.agreed_value(),
                steps: result.steps,
                transmissions: result.transmissions,
                deliveries: result.deliveries,
                wall_micros: u64::try_from(to.duration_since(from).as_micros()).unwrap_or(u64::MAX),
            }
        })
        .collect();
    LaneReport {
        index: job.index,
        family: job.family.clone(),
        graph: job.label.clone(),
        n: job.n,
        f: job.f,
        algorithm: job.algorithm,
        regime: job.regime_label.clone(),
        strategy: job.strategy_name.to_string(),
        faulty: job.faulty.clone(),
        seed: job.seed,
        instances: records,
        stats,
        wall_micros: u64::try_from(finished.duration_since(started).as_micros())
            .unwrap_or(u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FRange, FaultPolicy, SizeSpec, SweepSpec};

    fn serve_spec() -> CampaignSpec {
        CampaignSpec {
            name: "serve-unit".to_string(),
            seed: 21,
            sweeps: vec![SweepSpec {
                family: GraphFamily::Fig1a,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm2],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![StrategySpec::Honest],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Alternating,
            }],
            search: None,
            limits: None,
            serve: Some(ServeSpec {
                instances: 6,
                lanes: vec![
                    ServeLaneSpec {
                        family: GraphFamily::Fig1a,
                        n: 5,
                        f: 1,
                        algorithm: AlgorithmKind::Algorithm1,
                        regime: RegimeSpec::Sync,
                        strategy: StrategySpec::Silent,
                        faulty: vec![2],
                        inputs: InputPolicy::Random { count: 4 },
                    },
                    ServeLaneSpec {
                        family: GraphFamily::Fig1b,
                        n: 9,
                        f: 1,
                        algorithm: AlgorithmKind::AsyncFlood,
                        regime: RegimeSpec::Async {
                            scheduler: lbc_model::SchedulerKind::EdgeLag,
                            delay: 3,
                            seed: None,
                        },
                        strategy: StrategySpec::Honest,
                        faulty: vec![4],
                        inputs: InputPolicy::SplitHalf,
                    },
                ],
            }),
        }
    }

    #[test]
    fn serve_spec_roundtrips_through_json() {
        let spec = serve_spec();
        let json = spec.to_json().to_string();
        let reparsed = CampaignSpec::from_json_text(&json).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn serve_runs_every_lane_and_instance_correctly() {
        let report = run_serve(&serve_spec(), 2).unwrap();
        assert_eq!(report.lanes().len(), 2);
        for lane in report.lanes() {
            assert_eq!(lane.instances.len(), 6);
            assert!(lane.all_correct(), "lane {}", lane.index);
            assert!(
                lane.channels_bounded(),
                "lane {}: {:?}",
                lane.index,
                lane.stats
            );
        }
        assert!(report.all_correct());
        assert_eq!(report.total_decisions(), 12);
    }

    #[test]
    fn serve_canonical_report_is_worker_count_invariant() {
        let spec = serve_spec();
        let one = run_serve(&spec, 1).unwrap().to_json().to_string();
        let many = run_serve(&spec, 8).unwrap().to_json().to_string();
        assert_eq!(one, many);
    }

    #[test]
    fn serve_instances_override_and_errors() {
        let spec = serve_spec();
        let report = run_serve_opts(&spec, 1, Some(2)).unwrap();
        assert_eq!(report.instances_per_lane(), 2);
        assert!(run_serve_opts(&spec, 1, Some(0)).is_err());
        let mut bare = spec.clone();
        bare.serve = None;
        assert!(run_serve(&bare, 1).is_err());
        let mut bad = spec.clone();
        bad.serve.as_mut().unwrap().lanes[0].faulty = vec![99];
        assert!(run_serve(&bad, 1).is_err());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile([1usize, 2, 3, 4].into_iter(), 50), 2);
        assert_eq!(percentile([1usize, 2, 3, 4].into_iter(), 99), 4);
        assert_eq!(percentile(std::iter::empty::<usize>(), 50), 0);
        assert_eq!(percentile([7u64].into_iter(), 99), 7);
    }
}
