//! Declarative campaign specifications and their deterministic expansion.
//!
//! A [`CampaignSpec`] is a JSON document describing *grids* of executions:
//! each [`SweepSpec`] names a graph family with a size range, an `f` range,
//! a set of algorithms, a set of adversary strategies, a fault-placement
//! policy and an input-assignment policy. [`CampaignSpec::expand`] unrolls
//! the grids — on one thread, with all randomness drawn from seeds derived
//! from the campaign seed — into a flat list of self-contained
//! [`Scenario`]s, which is what the executor parallelizes over.
//!
//! The JSON schema is documented field-by-field on each type and
//! illustrated by the committed specs under `examples/campaigns/`.

use lbc_adversary::Strategy;
use lbc_consensus::{conditions, AlgorithmKind};
use lbc_graph::{combinatorics, generators, Graph};
use lbc_model::fx::FxHashSet;
use lbc_model::json::{u64_from_number_or_string, FromJson, Json, JsonError, ToJson};
use lbc_model::{
    AdversarialSchedule, AsyncRegime, CommModel, InputAssignment, NodeId, NodeSet, Regime,
    SchedulerKind,
};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use std::fmt;

/// Hard cap on the number of scenarios one spec may expand into, as a guard
/// against accidentally exponential grids (`exhaustive` × `exhaustive`).
pub const MAX_SCENARIOS: usize = 250_000;

/// Cap on the number of fault placements the `exhaustive` policy enumerates
/// for a single `(graph, f)` cell.
pub const MAX_EXHAUSTIVE_PLACEMENTS: u128 = 20_000;

/// Cap on the `count` of the `random` fault/input policies for a single
/// cell — rejection sampling of distinct draws degrades as the count
/// approaches the population, so grids past this size must be expressed
/// with explicit/exhaustive policies (and would blow [`MAX_SCENARIOS`]
/// anyway).
pub const MAX_RANDOM_DRAWS: u64 = 8_192;

/// Error produced when parsing or expanding a campaign spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description of what is wrong with the spec.
    pub message: String,
}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(err: JsonError) -> Self {
        SpecError::new(err.to_string())
    }
}

// ---------------------------------------------------------------------------
// seed derivation
// ---------------------------------------------------------------------------

/// Mixes a sequence of words into one 64-bit seed (SplitMix64 finalizer per
/// word; the fold is order-sensitive). This is the documented derivation
/// for every seed the campaign subsystem draws — salt word first:
///
/// * fault placements: `mix_seed([SALT_FAULTS, campaign_seed, sweep, n, f])`
/// * input assignments: `mix_seed([SALT_INPUTS, campaign_seed, sweep, n, f])`
/// * per-scenario adversary seed:
///   `mix_seed([SALT_SCENARIO, campaign_seed, index])`
///
/// with `SALT_FAULTS = 0xFA`, `SALT_INPUTS = 0x1A`, `SALT_SCENARIO = 0x5C`.
#[must_use]
pub fn mix_seed(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &part in parts {
        let mut z = h ^ part.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

const SALT_FAULTS: u64 = 0xFA;
const SALT_INPUTS: u64 = 0x1A;
const SALT_SCENARIO: u64 = 0x5C;
const SALT_REGIME: u64 = 0xD1;
pub(crate) const SALT_SERVE: u64 = 0x5E;

// ---------------------------------------------------------------------------
// graph families
// ---------------------------------------------------------------------------

/// A parameterized graph family, instantiated at each size of a sweep.
///
/// JSON: `{"kind": "cycle"}`, `{"kind": "circulant", "offsets": [1, 2]}`,
/// `{"kind": "harary", "k": 4}`, `{"kind": "complete" | "wheel" | "path" |
/// "hypercube" | "fig1a" | "fig1b"}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphFamily {
    /// The cycle `C_n` (`n ≥ 3`).
    Cycle,
    /// The complete graph `K_n`.
    Complete,
    /// The wheel `W_n`: hub + `(n−1)`-cycle rim (`n ≥ 4`).
    Wheel,
    /// The path graph `P_n` (always infeasible for `f ≥ 1`; boundary sweeps).
    PathGraph,
    /// The circulant `C_n(offsets)` (`n ≥ 2·max(offsets)+1`).
    Circulant {
        /// The circulant connection offsets (e.g. `[1, 2]`).
        offsets: Vec<usize>,
    },
    /// The Harary graph `H_{k,n}`: `k`-connected on `n` nodes (`n > k ≥ 2`).
    Harary {
        /// The connectivity parameter `k`.
        k: usize,
    },
    /// The hypercube `Q_d`; the sweep size `n` must be `2^d`.
    Hypercube,
    /// The paper's Figure 1(a) 5-cycle (fixed `n = 5`).
    Fig1a,
    /// The paper's Figure 1(b) circulant `C_9(1,2)` (fixed `n = 9`).
    Fig1b,
}

impl GraphFamily {
    /// The family name used in reports and rollups.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            GraphFamily::Cycle => "cycle",
            GraphFamily::Complete => "complete",
            GraphFamily::Wheel => "wheel",
            GraphFamily::PathGraph => "path",
            GraphFamily::Circulant { .. } => "circulant",
            GraphFamily::Harary { .. } => "harary",
            GraphFamily::Hypercube => "hypercube",
            GraphFamily::Fig1a => "fig1a",
            GraphFamily::Fig1b => "fig1b",
        }
    }

    /// The label of the size-`n` instance (e.g. `C9(1,2)`, `H4,13`).
    #[must_use]
    pub fn label(&self, n: usize) -> String {
        match self {
            GraphFamily::Cycle => format!("C{n}"),
            GraphFamily::Complete => format!("K{n}"),
            GraphFamily::Wheel => format!("W{n}"),
            GraphFamily::PathGraph => format!("P{n}"),
            GraphFamily::Circulant { offsets } => {
                let offs: Vec<String> = offsets.iter().map(ToString::to_string).collect();
                format!("C{n}({})", offs.join(","))
            }
            GraphFamily::Harary { k } => format!("H{k},{n}"),
            GraphFamily::Hypercube => format!("Q{}", n.trailing_zeros()),
            GraphFamily::Fig1a => "fig1a".to_string(),
            GraphFamily::Fig1b => "fig1b".to_string(),
        }
    }

    /// Validates that the family can be instantiated at size `n`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the violated constraint.
    pub fn check(&self, n: usize) -> Result<(), SpecError> {
        let reject = |constraint: &str| {
            Err(SpecError::new(format!(
                "{} cannot be built at n = {n}: requires {constraint}",
                self.name()
            )))
        };
        match self {
            GraphFamily::Cycle if n < 3 => reject("n >= 3"),
            GraphFamily::Complete if n < 1 => reject("n >= 1"),
            GraphFamily::Wheel if n < 4 => reject("n >= 4"),
            GraphFamily::PathGraph if n < 2 => reject("n >= 2"),
            GraphFamily::Circulant { offsets } => {
                if offsets.is_empty() {
                    return Err(SpecError::new("circulant requires non-empty offsets"));
                }
                let max = offsets.iter().copied().max().unwrap_or(0);
                if offsets.contains(&0) || n < 2 * max + 1 {
                    reject("positive offsets and n >= 2*max(offsets)+1")
                } else {
                    Ok(())
                }
            }
            GraphFamily::Harary { k } => {
                if *k < 2 || n <= *k {
                    reject("n > k >= 2")
                } else {
                    Ok(())
                }
            }
            GraphFamily::Hypercube if !n.is_power_of_two() || n < 2 => {
                reject("n = 2^d with d >= 1")
            }
            GraphFamily::Fig1a if n != 5 => reject("n = 5 (fixed-size family)"),
            GraphFamily::Fig1b if n != 9 => reject("n = 9 (fixed-size family)"),
            _ => Ok(()),
        }
    }

    /// Builds the size-`n` instance. Call [`GraphFamily::check`] first.
    #[must_use]
    pub fn build(&self, n: usize) -> Graph {
        match self {
            GraphFamily::Cycle => generators::cycle(n),
            GraphFamily::Complete => generators::complete(n),
            GraphFamily::Wheel => generators::wheel(n),
            GraphFamily::PathGraph => generators::path_graph(n),
            GraphFamily::Circulant { offsets } => generators::circulant(n, offsets),
            GraphFamily::Harary { k } => generators::harary(*k, n),
            GraphFamily::Hypercube => generators::hypercube(n.trailing_zeros()),
            GraphFamily::Fig1a => generators::paper_fig1a(),
            GraphFamily::Fig1b => generators::paper_fig1b(),
        }
    }
}

impl ToJson for GraphFamily {
    fn to_json(&self) -> Json {
        let mut fields = vec![("kind", Json::Str(self.name().to_string()))];
        match self {
            GraphFamily::Circulant { offsets } => fields.push(("offsets", offsets.to_json())),
            GraphFamily::Harary { k } => fields.push(("k", k.to_json())),
            _ => {}
        }
        Json::object(fields)
    }
}

impl FromJson for GraphFamily {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError {
                message: "graph family requires a 'kind' string".to_string(),
            })?;
        Ok(match kind {
            "cycle" => GraphFamily::Cycle,
            "complete" => GraphFamily::Complete,
            "wheel" => GraphFamily::Wheel,
            "path" => GraphFamily::PathGraph,
            "circulant" => GraphFamily::Circulant {
                offsets: match value.get("offsets") {
                    Some(offsets) => Vec::<usize>::from_json(offsets)?,
                    None => vec![1, 2],
                },
            },
            "harary" => GraphFamily::Harary {
                k: usize::from_json(value.get("k").ok_or_else(|| JsonError {
                    message: "harary family requires 'k'".to_string(),
                })?)?,
            },
            "hypercube" => GraphFamily::Hypercube,
            "fig1a" => GraphFamily::Fig1a,
            "fig1b" => GraphFamily::Fig1b,
            other => {
                return Err(JsonError {
                    message: format!("unknown graph family kind '{other}'"),
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// size and f ranges
// ---------------------------------------------------------------------------

/// The sizes a sweep instantiates its family at.
///
/// JSON: `{"list": [5, 7, 9]}` or `{"from": 5, "to": 9, "step": 2}`
/// (`step` defaults to 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SizeSpec {
    /// An explicit list of sizes, in the given order.
    List(Vec<usize>),
    /// An inclusive arithmetic range.
    Range {
        /// First size.
        from: usize,
        /// Last size (inclusive).
        to: usize,
        /// Increment (must be ≥ 1).
        step: usize,
    },
}

impl SizeSpec {
    /// The concrete sizes, in expansion order.
    #[must_use]
    pub fn values(&self) -> Vec<usize> {
        match self {
            SizeSpec::List(sizes) => sizes.clone(),
            SizeSpec::Range { from, to, step } => (*from..=*to).step_by((*step).max(1)).collect(),
        }
    }
}

impl ToJson for SizeSpec {
    fn to_json(&self) -> Json {
        match self {
            SizeSpec::List(sizes) => Json::object([("list", sizes.to_json())]),
            SizeSpec::Range { from, to, step } => Json::object([
                ("from", from.to_json()),
                ("to", to.to_json()),
                ("step", step.to_json()),
            ]),
        }
    }
}

impl FromJson for SizeSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Some(list) = value.get("list") {
            return Ok(SizeSpec::List(Vec::<usize>::from_json(list)?));
        }
        match (value.get("from"), value.get("to")) {
            (Some(from), Some(to)) => Ok(SizeSpec::Range {
                from: usize::from_json(from)?,
                to: usize::from_json(to)?,
                step: value.get("step").map_or(Ok(1), usize::from_json)?,
            }),
            _ => Err(JsonError {
                message: "sizes require either 'list' or 'from'/'to'".to_string(),
            }),
        }
    }
}

/// The inclusive range of fault bounds `f` a sweep covers.
///
/// JSON: a bare number (`"f": 1`) or `{"from": 1, "to": 2}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FRange {
    /// Smallest `f`.
    pub from: usize,
    /// Largest `f` (inclusive).
    pub to: usize,
}

impl FRange {
    /// The single-point range `f..=f`.
    #[must_use]
    pub fn exactly(f: usize) -> Self {
        FRange { from: f, to: f }
    }
}

impl ToJson for FRange {
    fn to_json(&self) -> Json {
        if self.from == self.to {
            self.from.to_json()
        } else {
            Json::object([("from", self.from.to_json()), ("to", self.to.to_json())])
        }
    }
}

impl FromJson for FRange {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Some(f) = value.as_u64() {
            return Ok(FRange::exactly(f as usize));
        }
        match (value.get("from"), value.get("to")) {
            (Some(from), Some(to)) => Ok(FRange {
                from: usize::from_json(from)?,
                to: usize::from_json(to)?,
            }),
            _ => Err(JsonError {
                message: "'f' must be a number or {from, to}".to_string(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------------

/// A declarative adversary strategy, materialized per scenario.
///
/// JSON: a bare name (`"tamper-relays"`, `"random"`, …) or a parameterized
/// object (`{"kind": "random", "seed": 7}`, `{"kind": "crash-after",
/// "round": 2}`, `{"kind": "sleeper", "honest-rounds": 3}`).
///
/// `"random"` without an explicit seed is the interesting case: each
/// scenario materializes it with the scenario's own derived seed, so a grid
/// of 500 scenarios exercises 500 *different* (but each reproducible) coin
/// sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategySpec {
    /// [`Strategy::Honest`].
    Honest,
    /// [`Strategy::Silent`].
    Silent,
    /// [`Strategy::CrashAfter`] with the given round.
    CrashAfter(u64),
    /// [`Strategy::CrashRecover`] — silent for a window, then honest again.
    CrashRecover {
        /// First round of the silent window.
        down_from: u64,
        /// Length of the silent window in rounds.
        down_for: u64,
    },
    /// [`Strategy::TamperAll`].
    TamperAll,
    /// [`Strategy::TamperRelays`].
    TamperRelays,
    /// [`Strategy::Equivocate`].
    Equivocate,
    /// [`Strategy::Random`]; `None` derives the seed per scenario.
    Random {
        /// Explicit seed, or `None` for the per-scenario derived seed.
        seed: Option<u64>,
    },
    /// [`Strategy::SleeperTamper`] with the given honest prefix.
    Sleeper {
        /// Number of initial honest rounds.
        honest_rounds: u64,
    },
    /// [`Strategy::StraddleTamper`] — scheduler-aware, honest strictly
    /// before the regime's stabilization time.
    StraddleTamper,
    /// [`Strategy::GstEquivocate`] — scheduler-aware equivocation from the
    /// stabilization time onwards.
    GstEquivocate,
}

impl StrategySpec {
    /// The stable strategy name (matches [`Strategy::name`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::Honest => "honest",
            StrategySpec::Silent => "silent",
            StrategySpec::CrashAfter(_) => "crash-after",
            StrategySpec::CrashRecover { .. } => "crash-recover",
            StrategySpec::TamperAll => "tamper-all",
            StrategySpec::TamperRelays => "tamper-relays",
            StrategySpec::Equivocate => "equivocate",
            StrategySpec::Random { .. } => "random",
            StrategySpec::Sleeper { .. } => "sleeper-tamper",
            StrategySpec::StraddleTamper => "straddle-tamper",
            StrategySpec::GstEquivocate => "gst-equivocate",
        }
    }

    /// Materializes the executable [`Strategy`] for a scenario with the
    /// given derived seed.
    #[must_use]
    pub fn materialize(&self, scenario_seed: u64) -> Strategy {
        match self {
            StrategySpec::Honest => Strategy::Honest,
            StrategySpec::Silent => Strategy::Silent,
            StrategySpec::CrashAfter(round) => Strategy::CrashAfter(*round),
            StrategySpec::CrashRecover {
                down_from,
                down_for,
            } => Strategy::CrashRecover {
                down_from: *down_from,
                down_for: *down_for,
            },
            StrategySpec::TamperAll => Strategy::TamperAll,
            StrategySpec::TamperRelays => Strategy::TamperRelays,
            StrategySpec::Equivocate => Strategy::Equivocate,
            StrategySpec::Random { seed } => Strategy::Random {
                seed: seed.unwrap_or(scenario_seed),
            },
            StrategySpec::Sleeper { honest_rounds } => Strategy::SleeperTamper {
                honest_rounds: *honest_rounds,
            },
            StrategySpec::StraddleTamper => Strategy::StraddleTamper,
            StrategySpec::GstEquivocate => Strategy::GstEquivocate,
        }
    }
}

impl ToJson for StrategySpec {
    fn to_json(&self) -> Json {
        match self {
            StrategySpec::CrashAfter(round) => Json::object([
                ("kind", Json::Str("crash-after".to_string())),
                ("round", round.to_json()),
            ]),
            StrategySpec::CrashRecover {
                down_from,
                down_for,
            } => Json::object([
                ("kind", Json::Str("crash-recover".to_string())),
                ("down-from", down_from.to_json()),
                ("down-for", down_for.to_json()),
            ]),
            // Explicit seeds serialize as strings: derived seeds use all 64
            // bits, which a JSON f64 number would silently round (and a
            // replayed counterexample would then diverge).
            StrategySpec::Random { seed: Some(seed) } => Json::object([
                ("kind", Json::Str("random".to_string())),
                ("seed", Json::Str(seed.to_string())),
            ]),
            StrategySpec::Sleeper { honest_rounds } => Json::object([
                ("kind", Json::Str("sleeper".to_string())),
                ("honest-rounds", honest_rounds.to_json()),
            ]),
            plain => Json::Str(plain.name().to_string()),
        }
    }
}

impl FromJson for StrategySpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = value
            .as_str()
            .or_else(|| value.get("kind").and_then(Json::as_str))
            .ok_or_else(|| JsonError {
                message: "strategy must be a name or an object with 'kind'".to_string(),
            })?;
        Ok(match kind {
            "honest" => StrategySpec::Honest,
            "silent" => StrategySpec::Silent,
            "tamper-all" => StrategySpec::TamperAll,
            "tamper-relays" => StrategySpec::TamperRelays,
            "equivocate" => StrategySpec::Equivocate,
            "crash-after" => {
                StrategySpec::CrashAfter(value.get("round").map_or(Ok(2), u64::from_json)?)
            }
            "crash-recover" => StrategySpec::CrashRecover {
                down_from: value.get("down-from").map_or(Ok(2), u64::from_json)?,
                down_for: value.get("down-for").map_or(Ok(2), u64::from_json)?,
            },
            "random" => StrategySpec::Random {
                seed: value
                    .get("seed")
                    .map(u64_from_number_or_string)
                    .transpose()?,
            },
            "sleeper" | "sleeper-tamper" => StrategySpec::Sleeper {
                honest_rounds: value.get("honest-rounds").map_or(Ok(3), u64::from_json)?,
            },
            "straddle-tamper" => StrategySpec::StraddleTamper,
            "gst-equivocate" => StrategySpec::GstEquivocate,
            other => {
                return Err(JsonError {
                    message: format!("unknown strategy '{other}'"),
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// regimes
// ---------------------------------------------------------------------------

/// A declarative execution regime, materialized per scenario.
///
/// JSON: the bare name `"sync"`, an async object
/// (`{"kind": "async", "scheduler": "edge-lag", "delay": 3}`), or a
/// partial-synchrony object (`{"kind": "partial-sync", "gst": 12,
/// "hold": [2], "scheduler": "fifo", "delay": 2}`); async and partial-sync
/// objects optionally carry an explicit `"seed"`.
///
/// Like [`StrategySpec::Random`], an async regime without an explicit seed
/// is materialized with each scenario's own derived seed, so a grid of
/// scenarios exercises many *different* (but each reproducible) schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegimeSpec {
    /// The synchronous lockstep regime (the default axis value).
    Sync,
    /// An asynchronous regime under a deterministic scheduler.
    Async {
        /// The deterministic schedule family.
        scheduler: SchedulerKind,
        /// The eventual-fairness bound `D ≥ 1`.
        delay: u32,
        /// Explicit seed, or `None` for the per-scenario derived seed.
        seed: Option<u64>,
    },
    /// A partially synchronous regime: an adversary-held prefix up to `gst`,
    /// then the post-GST asynchronous schedule.
    PartialSync {
        /// The Global Stabilization Time, `1..=`[`lbc_model::MAX_GST`].
        gst: u32,
        /// The pre-GST hold-set (senders whose transmissions burst at GST).
        hold: AdversarialSchedule,
        /// The post-GST deterministic schedule family.
        scheduler: SchedulerKind,
        /// The post-GST eventual-fairness bound `D ≥ 1`.
        delay: u32,
        /// Explicit seed, or `None` for the per-scenario derived seed.
        seed: Option<u64>,
    },
}

impl RegimeSpec {
    /// The default regime axis: synchronous only (what every spec without a
    /// `"regimes"` key gets, keeping pre-regime specs' expansion identical).
    #[must_use]
    pub fn default_axis() -> Vec<RegimeSpec> {
        vec![RegimeSpec::Sync]
    }

    /// Whether this is the synchronous regime.
    #[must_use]
    pub fn is_sync(&self) -> bool {
        matches!(self, RegimeSpec::Sync)
    }

    /// Materializes the concrete [`Regime`] for a scenario with the given
    /// derived seed.
    #[must_use]
    pub fn materialize(&self, scenario_seed: u64) -> Regime {
        match self {
            RegimeSpec::Sync => Regime::Synchronous,
            RegimeSpec::Async {
                scheduler,
                delay,
                seed,
            } => Regime::Asynchronous(AsyncRegime {
                scheduler: *scheduler,
                // No `max(1)` safety net: a zero delay is rejected at parse
                // time, and materializing a hand-built zero-delay spec
                // should fail loudly (the model asserts) rather than run a
                // silently different regime.
                delay: *delay,
                seed: seed.unwrap_or_else(|| mix_seed(&[SALT_REGIME, scenario_seed])),
            }),
            RegimeSpec::PartialSync {
                gst,
                hold,
                scheduler,
                delay,
                seed,
            } => Regime::PartialSync {
                gst: *gst,
                pre: *hold,
                post: AsyncRegime {
                    scheduler: *scheduler,
                    delay: *delay,
                    seed: seed.unwrap_or_else(|| mix_seed(&[SALT_REGIME, scenario_seed])),
                },
            },
        }
    }

    /// The seedless grouping label (matches [`Regime::label`], through
    /// which it is derived — the seed never appears in labels).
    #[must_use]
    pub fn label(&self) -> String {
        self.materialize(0).label()
    }
}

impl ToJson for RegimeSpec {
    fn to_json(&self) -> Json {
        match self {
            RegimeSpec::Sync => Json::Str("sync".to_string()),
            RegimeSpec::Async {
                scheduler,
                delay,
                seed,
            } => {
                let mut fields = vec![
                    ("kind", Json::Str("async".to_string())),
                    ("scheduler", Json::Str(scheduler.name().to_string())),
                    ("delay", u64::from(*delay).to_json()),
                ];
                if let Some(seed) = seed {
                    // Strings for the same reason strategy seeds are
                    // strings: all 64 bits must survive the JSON round-trip.
                    fields.push(("seed", Json::Str(seed.to_string())));
                }
                Json::object(fields)
            }
            RegimeSpec::PartialSync {
                gst,
                hold,
                scheduler,
                delay,
                seed,
            } => {
                let mut fields = vec![
                    ("kind", Json::Str("partial-sync".to_string())),
                    ("gst", u64::from(*gst).to_json()),
                    (
                        "hold",
                        Json::Arr(
                            hold.held_nodes()
                                .into_iter()
                                .map(|node| (node as u64).to_json())
                                .collect(),
                        ),
                    ),
                    ("scheduler", Json::Str(scheduler.name().to_string())),
                    ("delay", u64::from(*delay).to_json()),
                ];
                if let Some(seed) = seed {
                    fields.push(("seed", Json::Str(seed.to_string())));
                }
                Json::object(fields)
            }
        }
    }
}

impl FromJson for RegimeSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = value
            .as_str()
            .or_else(|| value.get("kind").and_then(Json::as_str))
            .ok_or_else(|| JsonError {
                message: "regime must be a name or an object with 'kind'".to_string(),
            })?;
        match kind {
            "sync" | "synchronous" => Ok(RegimeSpec::Sync),
            // The object fields parse through the same helpers Regime's own
            // parser uses (scheduler default, delay default + MAX_DELAY
            // cap), so the spec schema cannot drift from the model schema;
            // the only spec-level difference is that the seed stays
            // optional (derived per scenario when absent).
            "async" | "asynchronous" => Ok(RegimeSpec::Async {
                scheduler: lbc_model::regime::scheduler_from_json(value)?,
                delay: lbc_model::regime::delay_from_json(value)?,
                seed: value
                    .get("seed")
                    .map(u64_from_number_or_string)
                    .transpose()?,
            }),
            "partial-sync" | "psync" => Ok(RegimeSpec::PartialSync {
                gst: lbc_model::regime::gst_from_json(value)?,
                hold: lbc_model::regime::hold_from_json(value)?,
                scheduler: lbc_model::regime::scheduler_from_json(value)?,
                delay: lbc_model::regime::delay_from_json(value)?,
                seed: value
                    .get("seed")
                    .map(u64_from_number_or_string)
                    .transpose()?,
            }),
            other => Err(JsonError {
                message: format!("unknown regime '{other}' (use sync, async or partial-sync)"),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// fault placement policies
// ---------------------------------------------------------------------------

/// How the faulty sets of a sweep cell `(graph, f)` are chosen.
///
/// JSON: `{"policy": "exhaustive"}`, `{"policy": "random", "count": 3}`,
/// `{"policy": "worst-case"}`,
/// `{"policy": "fixed", "sets": [[1], [0, 2]]}`, or
/// `{"policy": "explicit", "sets": [[1]]}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Every `C(n, f)` placement of exactly `f` faults
    /// (capped at [`MAX_EXHAUSTIVE_PLACEMENTS`]).
    Exhaustive,
    /// `count` distinct placements sampled with the derived cell seed.
    /// Asking for at least `C(n, f)` placements enumerates them all
    /// instead (subject to [`MAX_EXHAUSTIVE_PLACEMENTS`]); `count` must be
    /// at least 1.
    Random {
        /// How many distinct placements to draw.
        count: usize,
    },
    /// One placement from a worst-case heuristic: faults packed around a
    /// minimum-degree victim (the victim's lowest-degree neighbors first,
    /// then the remaining lowest-degree nodes).
    WorstCase,
    /// Explicit placements by node index; sets whose size differs from the
    /// cell's `f` are skipped, so one list serves a whole `f` range.
    Fixed(Vec<Vec<usize>>),
    /// Explicit placements used verbatim as long as each set has at most
    /// `f` nodes (an adversary may use fewer faults than the declared
    /// bound). This is the policy minimized search counterexamples replay
    /// under: the cell's `f` stays what the algorithm was configured with
    /// while the shrunken fault set keeps its (smaller) size.
    Explicit(Vec<Vec<usize>>),
}

impl FaultPolicy {
    /// The concrete fault placements for one `(graph, f)` cell, in
    /// deterministic order. Discards the policy-degradation note; campaign
    /// expansion uses [`FaultPolicy::placements_noted`] so the note reaches
    /// the report metadata.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when exhaustive enumeration would exceed
    /// [`MAX_EXHAUSTIVE_PLACEMENTS`] or when a fixed set is out of range.
    pub fn placements(
        &self,
        graph: &Graph,
        f: usize,
        cell_seed: u64,
    ) -> Result<Vec<NodeSet>, SpecError> {
        Ok(self.placements_noted(graph, f, cell_seed)?.0)
    }

    /// Like [`FaultPolicy::placements`], but also returns a note when the
    /// policy silently degraded — today the one case is `random` with
    /// `count >= C(n, f)`, which enumerates every placement exhaustively
    /// instead of sampling. The note travels into the campaign report's
    /// metadata so a reader can tell sampled cells from enumerated ones.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FaultPolicy::placements`].
    pub fn placements_noted(
        &self,
        graph: &Graph,
        f: usize,
        cell_seed: u64,
    ) -> Result<(Vec<NodeSet>, Option<String>), SpecError> {
        let n = graph.node_count();
        if f > n {
            return Err(SpecError::new(format!("f = {f} exceeds n = {n}")));
        }
        let nodes: Vec<NodeId> = graph.nodes().collect();
        match self {
            FaultPolicy::Exhaustive => {
                let total = combinatorics::binomial(n, f);
                if total > MAX_EXHAUSTIVE_PLACEMENTS {
                    return Err(SpecError::new(format!(
                        "exhaustive fault placement would enumerate {total} sets \
                         (> {MAX_EXHAUSTIVE_PLACEMENTS}); use the random policy"
                    )));
                }
                Ok((
                    combinatorics::subsets_of_size(&nodes, f)
                        .into_iter()
                        .map(|subset| subset.into_iter().collect())
                        .collect(),
                    None,
                ))
            }
            FaultPolicy::Random { count } => {
                if *count == 0 {
                    return Err(SpecError::new("random fault policy requires count >= 1"));
                }
                if u64::try_from(*count).is_ok_and(|c| c > MAX_RANDOM_DRAWS) {
                    return Err(SpecError::new(format!(
                        "random fault policy count {count} exceeds the per-cell cap \
                         of {MAX_RANDOM_DRAWS}"
                    )));
                }
                let total = combinatorics::binomial(n, f);
                if u128::try_from(*count).is_ok_and(|c| c >= total) {
                    if total <= MAX_EXHAUSTIVE_PLACEMENTS {
                        // Asking for at least all of them: enumerate instead,
                        // and say so — a report claiming `count` sampled
                        // placements when the cell was actually enumerated
                        // would misrepresent the coverage.
                        let (all, _) =
                            FaultPolicy::Exhaustive.placements_noted(graph, f, cell_seed)?;
                        let note = format!(
                            "random fault policy count {count} >= C({n}, {f}) = {total}: \
                             enumerated all placements exhaustively instead of sampling"
                        );
                        return Ok((all, Some(note)));
                    }
                    return Err(SpecError::new(format!(
                        "random fault policy asks for {count} of {total} placements; \
                         sampling that many distinct sets is not supported \
                         (> {MAX_EXHAUSTIVE_PLACEMENTS}) — lower the count"
                    )));
                }
                // count < total from here on, so sampling terminates; the
                // hash set makes each distinctness test O(1) while `chosen`
                // keeps the deterministic draw order.
                let mut rng = ChaCha8Rng::seed_from_u64(cell_seed);
                let mut chosen: Vec<NodeSet> = Vec::new();
                let mut seen: FxHashSet<NodeSet> = FxHashSet::default();
                while chosen.len() < *count {
                    let mut set = NodeSet::new();
                    while set.len() < f {
                        set.insert(nodes[rng.gen_range(0..n)]);
                    }
                    if seen.insert(set.clone()) {
                        chosen.push(set);
                    }
                }
                Ok((chosen, None))
            }
            FaultPolicy::WorstCase => {
                let degree = |v: NodeId| graph.neighbors(v).count();
                let victim = nodes
                    .iter()
                    .copied()
                    .min_by_key(|&v| (degree(v), v.index()))
                    .ok_or_else(|| SpecError::new("worst-case policy on an empty graph"))?;
                let mut ranked: Vec<NodeId> = graph.neighbors(victim).collect();
                ranked.sort_by_key(|&v| (degree(v), v.index()));
                let mut rest: Vec<NodeId> = nodes
                    .iter()
                    .copied()
                    .filter(|&v| v != victim && !graph.has_edge(victim, v))
                    .collect();
                rest.sort_by_key(|&v| (degree(v), v.index()));
                ranked.extend(rest);
                if ranked.len() < f {
                    return Err(SpecError::new(format!(
                        "worst-case policy cannot place {f} faults on {n} nodes"
                    )));
                }
                Ok((vec![ranked.into_iter().take(f).collect()], None))
            }
            FaultPolicy::Fixed(sets) => {
                let mut placements = Vec::new();
                for set in sets {
                    if set.len() != f {
                        continue;
                    }
                    if set.iter().any(|&v| v >= n) {
                        return Err(SpecError::new(format!(
                            "fixed fault set {set:?} is out of range for n = {n}"
                        )));
                    }
                    placements.push(set.iter().copied().map(NodeId::new).collect());
                }
                if placements.is_empty() {
                    return Err(SpecError::new(format!(
                        "fixed fault policy has no set of size f = {f}"
                    )));
                }
                Ok((placements, None))
            }
            FaultPolicy::Explicit(sets) => {
                let mut placements = Vec::new();
                for set in sets {
                    if set.len() > f {
                        return Err(SpecError::new(format!(
                            "explicit fault set {set:?} has more than f = {f} nodes"
                        )));
                    }
                    if set.iter().any(|&v| v >= n) {
                        return Err(SpecError::new(format!(
                            "explicit fault set {set:?} is out of range for n = {n}"
                        )));
                    }
                    placements.push(set.iter().copied().map(NodeId::new).collect());
                }
                if placements.is_empty() {
                    return Err(SpecError::new("explicit fault policy has no sets"));
                }
                Ok((placements, None))
            }
        }
    }
}

impl ToJson for FaultPolicy {
    fn to_json(&self) -> Json {
        match self {
            FaultPolicy::Exhaustive => {
                Json::object([("policy", Json::Str("exhaustive".to_string()))])
            }
            FaultPolicy::Random { count } => Json::object([
                ("policy", Json::Str("random".to_string())),
                ("count", count.to_json()),
            ]),
            FaultPolicy::WorstCase => {
                Json::object([("policy", Json::Str("worst-case".to_string()))])
            }
            FaultPolicy::Fixed(sets) => Json::object([
                ("policy", Json::Str("fixed".to_string())),
                (
                    "sets",
                    Json::Arr(sets.iter().map(ToJson::to_json).collect()),
                ),
            ]),
            FaultPolicy::Explicit(sets) => Json::object([
                ("policy", Json::Str("explicit".to_string())),
                (
                    "sets",
                    Json::Arr(sets.iter().map(ToJson::to_json).collect()),
                ),
            ]),
        }
    }
}

impl FromJson for FaultPolicy {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let policy = value
            .get("policy")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError {
                message: "fault policy requires a 'policy' string".to_string(),
            })?;
        Ok(match policy {
            "exhaustive" => FaultPolicy::Exhaustive,
            "random" => FaultPolicy::Random {
                count: usize::from_json(value.get("count").ok_or_else(|| JsonError {
                    message: "random fault policy requires 'count'".to_string(),
                })?)?,
            },
            "worst-case" => FaultPolicy::WorstCase,
            "fixed" | "explicit" => {
                let sets = value
                    .get("sets")
                    .and_then(Json::as_array)
                    .ok_or_else(|| JsonError {
                        message: format!("{policy} fault policy requires 'sets'"),
                    })?
                    .iter()
                    .map(Vec::<usize>::from_json)
                    .collect::<Result<_, _>>()?;
                if policy == "fixed" {
                    FaultPolicy::Fixed(sets)
                } else {
                    FaultPolicy::Explicit(sets)
                }
            }
            other => {
                return Err(JsonError {
                    message: format!("unknown fault policy '{other}'"),
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// input assignment policies
// ---------------------------------------------------------------------------

/// How the binary input assignments of a sweep cell are chosen.
///
/// JSON: `{"policy": "alternating" | "all-zero" | "all-one" | "split-half" |
/// "exhaustive"}`, `{"policy": "bits", "bits": 13}`, or
/// `{"policy": "random", "count": 2}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputPolicy {
    /// `0101…` by node index.
    Alternating,
    /// Every node holds `0` (tests validity under unanimity).
    AllZero,
    /// Every node holds `1`.
    AllOne,
    /// First `⌈n/2⌉` nodes hold `0`, the rest `1`.
    SplitHalf,
    /// An explicit bit pattern (bit `i` is node `i`'s input; `n ≤ 64`).
    Bits(u64),
    /// `count` distinct assignments sampled with the derived cell seed.
    Random {
        /// How many assignments to draw (clamped to `2^n`).
        count: usize,
    },
    /// All `2^n` assignments (`n ≤ 12`).
    Exhaustive,
}

impl InputPolicy {
    /// The concrete input assignments for an `n`-node cell, in
    /// deterministic order.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when `n` is too large for the policy.
    pub fn assignments(&self, n: usize, cell_seed: u64) -> Result<Vec<InputAssignment>, SpecError> {
        match self {
            InputPolicy::Alternating => Ok(vec![InputAssignment::from_values(
                (0..n).map(|i| lbc_model::Value::from(i % 2 == 1)).collect(),
            )]),
            InputPolicy::AllZero => Ok(vec![InputAssignment::all_zero(n)]),
            InputPolicy::AllOne => Ok(vec![InputAssignment::all_one(n)]),
            InputPolicy::SplitHalf => Ok(vec![InputAssignment::from_values(
                (0..n)
                    .map(|i| lbc_model::Value::from(i >= n.div_ceil(2)))
                    .collect(),
            )]),
            InputPolicy::Bits(bits) => {
                if n > 64 {
                    return Err(SpecError::new("bits input policy requires n <= 64"));
                }
                Ok(vec![InputAssignment::from_bits(n, *bits)])
            }
            InputPolicy::Random { count } => {
                if *count == 0 {
                    return Err(SpecError::new("random input policy requires count >= 1"));
                }
                if u64::try_from(*count).is_ok_and(|c| c > MAX_RANDOM_DRAWS) {
                    return Err(SpecError::new(format!(
                        "random input policy count {count} exceeds the per-cell cap \
                         of {MAX_RANDOM_DRAWS}"
                    )));
                }
                if n > 64 {
                    return Err(SpecError::new("random input policy requires n <= 64"));
                }
                let distinct = if n >= 64 { u64::MAX } else { 1u64 << n };
                if u64::try_from(*count).is_ok_and(|c| c >= distinct) {
                    // Asking for at least all of them: enumerate instead
                    // (the draw cap bounds this at 2^13 assignments).
                    return Ok((0..distinct)
                        .map(|bits| InputAssignment::from_bits(n, bits))
                        .collect());
                }
                let mut rng = ChaCha8Rng::seed_from_u64(cell_seed);
                let mut ordered: Vec<u64> = Vec::new();
                let mut seen: FxHashSet<u64> = FxHashSet::default();
                while ordered.len() < *count {
                    let bits = if n >= 64 {
                        // A full random word: `gen_range(0..u64::MAX)` would
                        // exclude the all-ones assignment.
                        rng.next_u64()
                    } else {
                        rng.gen_range(0..distinct)
                    };
                    if seen.insert(bits) {
                        ordered.push(bits);
                    }
                }
                Ok(ordered
                    .into_iter()
                    .map(|bits| InputAssignment::from_bits(n, bits))
                    .collect())
            }
            InputPolicy::Exhaustive => {
                if n > 12 {
                    return Err(SpecError::new(
                        "exhaustive input policy requires n <= 12; use random",
                    ));
                }
                Ok((0..(1u64 << n))
                    .map(|bits| InputAssignment::from_bits(n, bits))
                    .collect())
            }
        }
    }
}

impl ToJson for InputPolicy {
    fn to_json(&self) -> Json {
        let plain = |name: &str| Json::object([("policy", Json::Str(name.to_string()))]);
        match self {
            InputPolicy::Alternating => plain("alternating"),
            InputPolicy::AllZero => plain("all-zero"),
            InputPolicy::AllOne => plain("all-one"),
            InputPolicy::SplitHalf => plain("split-half"),
            InputPolicy::Exhaustive => plain("exhaustive"),
            // Bit patterns above 2^53 (n >= 54 with a high bit set) are not
            // exactly representable as JSON f64 numbers; emit those as
            // decimal strings, mirroring the seed handling.
            InputPolicy::Bits(bits) => Json::object([
                ("policy", Json::Str("bits".to_string())),
                (
                    "bits",
                    if *bits < (1 << 53) {
                        bits.to_json()
                    } else {
                        Json::Str(bits.to_string())
                    },
                ),
            ]),
            InputPolicy::Random { count } => Json::object([
                ("policy", Json::Str("random".to_string())),
                ("count", count.to_json()),
            ]),
        }
    }
}

impl FromJson for InputPolicy {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let policy = value
            .get("policy")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError {
                message: "input policy requires a 'policy' string".to_string(),
            })?;
        Ok(match policy {
            "alternating" => InputPolicy::Alternating,
            "all-zero" => InputPolicy::AllZero,
            "all-one" => InputPolicy::AllOne,
            "split-half" => InputPolicy::SplitHalf,
            "exhaustive" => InputPolicy::Exhaustive,
            "bits" => InputPolicy::Bits(u64_from_number_or_string(value.get("bits").ok_or_else(
                || JsonError {
                    message: "bits input policy requires 'bits'".to_string(),
                },
            )?)?),
            "random" => InputPolicy::Random {
                count: usize::from_json(value.get("count").ok_or_else(|| JsonError {
                    message: "random input policy requires 'count'".to_string(),
                })?)?,
            },
            other => {
                return Err(JsonError {
                    message: format!("unknown input policy '{other}'"),
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// sweeps and campaigns
// ---------------------------------------------------------------------------

/// One grid of the campaign: a family × sizes × `f` × algorithms ×
/// strategies × fault placements × input assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// The graph family.
    pub family: GraphFamily,
    /// The sizes to instantiate the family at.
    pub sizes: SizeSpec,
    /// The fault bounds to sweep.
    pub f: FRange,
    /// The algorithms to run (`"alg1"`, `"alg2"`, `"p2p"`, `"async"`).
    pub algorithms: Vec<AlgorithmKind>,
    /// The execution regimes to run each algorithm under (defaults to
    /// `["sync"]`; round-machine algorithms reject async regimes at
    /// expansion).
    pub regimes: Vec<RegimeSpec>,
    /// The adversary strategies to drive faulty nodes with.
    pub strategies: Vec<StrategySpec>,
    /// How faulty sets are placed.
    pub faults: FaultPolicy,
    /// How input assignments are chosen.
    pub inputs: InputPolicy,
}

impl ToJson for SweepSpec {
    fn to_json(&self) -> Json {
        Json::object([
            ("family", self.family.to_json()),
            ("sizes", self.sizes.to_json()),
            ("f", self.f.to_json()),
            (
                "algorithms",
                Json::Arr(
                    self.algorithms
                        .iter()
                        .map(|kind| Json::Str(kind.name().to_string()))
                        .collect(),
                ),
            ),
            (
                "regimes",
                Json::Arr(self.regimes.iter().map(ToJson::to_json).collect()),
            ),
            (
                "strategies",
                Json::Arr(self.strategies.iter().map(ToJson::to_json).collect()),
            ),
            ("faults", self.faults.to_json()),
            ("inputs", self.inputs.to_json()),
        ])
    }
}

impl FromJson for SweepSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value.get(key).ok_or_else(|| JsonError {
                message: format!("sweep missing '{key}'"),
            })
        };
        let algorithms = field("algorithms")?
            .as_array()
            .ok_or_else(|| JsonError {
                message: "'algorithms' must be an array".to_string(),
            })?
            .iter()
            .map(|entry| {
                entry
                    .as_str()
                    .and_then(AlgorithmKind::from_name)
                    .ok_or_else(|| JsonError {
                        message: format!("unknown algorithm '{entry}' (use alg1/alg2/p2p)"),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepSpec {
            family: GraphFamily::from_json(field("family")?)?,
            sizes: SizeSpec::from_json(field("sizes")?)?,
            f: FRange::from_json(field("f")?)?,
            algorithms,
            regimes: match value.get("regimes") {
                None => RegimeSpec::default_axis(),
                Some(json) => Vec::<RegimeSpec>::from_json(json)?,
            },
            strategies: Vec::<StrategySpec>::from_json(field("strategies")?)?,
            faults: FaultPolicy::from_json(field("faults")?)?,
            inputs: InputPolicy::from_json(field("inputs")?)?,
        })
    }
}

/// Spec-level execution limits (the optional `"limits"` block): defaults
/// for the fault-tolerance knobs the CLI flags can override per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LimitsSpec {
    /// Per-cell wall-clock budget in milliseconds; a cell exceeding it is
    /// cancelled cooperatively and recorded as a timeout. `None` leaves
    /// cells unbounded.
    pub cell_timeout_ms: Option<u64>,
}

impl ToJson for LimitsSpec {
    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(ms) = self.cell_timeout_ms {
            fields.push(("cell-timeout-ms", ms.to_json()));
        }
        Json::object(fields)
    }
}

impl FromJson for LimitsSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(LimitsSpec {
            cell_timeout_ms: value
                .get("cell-timeout-ms")
                .map(u64_from_number_or_string)
                .transpose()?,
        })
    }
}

/// A whole campaign: named, seeded, and made of sweeps, with an optional
/// per-cell adversary-search configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// The campaign name (used for report file names and titles).
    pub name: String,
    /// The campaign master seed every derived seed mixes in. Keep it below
    /// `2^53` in spec files: JSON numbers are `f64`, so larger integers are
    /// not exactly representable.
    pub seed: u64,
    /// The sweep grids, expanded in order.
    pub sweeps: Vec<SweepSpec>,
    /// The worst-case search configuration (`lbc search`); `None` makes
    /// `lbc search` fall back to [`crate::search::SearchSpec::default`].
    /// Ignored by the grid executor (`lbc campaign`).
    pub search: Option<crate::search::SearchSpec>,
    /// Optional execution limits (per-cell watchdog budget). `None` keeps
    /// the pre-existing unbounded behaviour.
    pub limits: Option<LimitsSpec>,
    /// The repeated-consensus service configuration (`lbc serve`); `None`
    /// makes `lbc serve` reject the spec. Ignored by the grid executor.
    pub serve: Option<crate::serve::ServeSpec>,
}

/// Validates that a resume artifact (a prior search report or a checkpoint
/// journal) was produced by **this** campaign: its `name` and `seed` must
/// match the spec's, otherwise the restored state would not be reproducible
/// from the spec alone. `what` names the artifact in the error message.
///
/// # Errors
///
/// Returns a [`SpecError`] naming both fingerprints on a mismatch.
pub fn validate_resume_fingerprint(
    prior_name: &str,
    prior_seed: Option<u64>,
    spec: &CampaignSpec,
    what: &str,
) -> Result<(), SpecError> {
    if prior_name != spec.name || prior_seed != Some(spec.seed) {
        return Err(SpecError::new(format!(
            "{what} is from campaign '{prior_name}' (seed {prior_seed:?}), \
             not '{}' (seed {}) — its state would not be reproducible \
             from this spec",
            spec.name, spec.seed
        )));
    }
    Ok(())
}

impl CampaignSpec {
    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on malformed JSON or an invalid schema.
    pub fn from_json_text(text: &str) -> Result<Self, SpecError> {
        Ok(CampaignSpec::from_json(&Json::parse(text)?)?)
    }

    /// Deterministically expands every sweep into concrete scenarios,
    /// discarding policy-degradation notes. Callers that surface report
    /// metadata use [`CampaignSpec::expand_noted`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CampaignSpec::expand_noted`].
    pub fn expand(&self) -> Result<Vec<Scenario>, SpecError> {
        Ok(self.expand_noted()?.0)
    }

    /// Deterministically expands every sweep into concrete scenarios,
    /// collecting per-cell policy-degradation notes (e.g. a `random` fault
    /// policy that fell back to exhaustive enumeration) for the report
    /// metadata.
    ///
    /// Expansion order is the nesting order `sweep → size → f → algorithm →
    /// strategy → fault placement → input assignment`; the scenario index is
    /// the position in that order and feeds the per-scenario seed.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when a family/size combination is invalid,
    /// a policy cap is exceeded, the grid exceeds [`MAX_SCENARIOS`], or a
    /// sweep dimension is empty — an empty grid would make a `--strict`
    /// campaign pass vacuously, so it is rejected rather than ignored.
    pub fn expand_noted(&self) -> Result<(Vec<Scenario>, Vec<String>), SpecError> {
        let mut notes = Vec::new();
        if self.sweeps.is_empty() {
            return Err(SpecError::new("campaign has no sweeps"));
        }
        let mut scenarios = Vec::new();
        for (sweep_index, sweep) in self.sweeps.iter().enumerate() {
            if sweep.algorithms.is_empty() || sweep.strategies.is_empty() {
                return Err(SpecError::new(format!(
                    "sweep {sweep_index} needs at least one algorithm and one strategy"
                )));
            }
            if sweep.regimes.is_empty() {
                return Err(SpecError::new(format!(
                    "sweep {sweep_index} has an empty regime list"
                )));
            }
            for &algorithm in &sweep.algorithms {
                for regime in &sweep.regimes {
                    if !regime.is_sync() && !algorithm.supports_regime(&regime.materialize(0)) {
                        return Err(SpecError::new(format!(
                            "sweep {sweep_index}: algorithm '{}' is a synchronous round \
                             machine and cannot run under regime '{}' (use the 'async' \
                             algorithm for asynchronous regimes)",
                            algorithm.name(),
                            regime.label()
                        )));
                    }
                }
            }
            if sweep.sizes.values().is_empty() {
                return Err(SpecError::new(format!(
                    "sweep {sweep_index} has an empty size list"
                )));
            }
            if sweep.f.from > sweep.f.to {
                return Err(SpecError::new(format!(
                    "sweep {sweep_index} has an inverted f range ({}..{})",
                    sweep.f.from, sweep.f.to
                )));
            }
            for n in sweep.sizes.values() {
                sweep.family.check(n)?;
                let graph = sweep.family.build(n);
                for f in sweep.f.from..=sweep.f.to {
                    let cell = [self.seed, sweep_index as u64, n as u64, f as u64];
                    let (placements, fault_note) = sweep.faults.placements_noted(
                        &graph,
                        f,
                        mix_seed(&[SALT_FAULTS, cell[0], cell[1], cell[2], cell[3]]),
                    )?;
                    if let Some(note) = fault_note {
                        notes.push(format!(
                            "sweep {sweep_index} {} f={f}: {note}",
                            sweep.family.label(n)
                        ));
                    }
                    let input_sets = sweep.inputs.assignments(
                        n,
                        mix_seed(&[SALT_INPUTS, cell[0], cell[1], cell[2], cell[3]]),
                    )?;
                    for &algorithm in &sweep.algorithms {
                        let feasible = match algorithm {
                            AlgorithmKind::Algorithm1 => {
                                conditions::local_broadcast_feasible(&graph, f)
                            }
                            AlgorithmKind::Algorithm2 => {
                                conditions::efficient_algorithm_applicable(&graph, f)
                            }
                            AlgorithmKind::P2pBaseline => {
                                conditions::point_to_point_feasible(&graph, f)
                            }
                            AlgorithmKind::AsyncFlood => {
                                conditions::asynchronous_feasible(&graph, f)
                            }
                        };
                        for regime in &sweep.regimes {
                            for strategy in &sweep.strategies {
                                for faulty in &placements {
                                    for inputs in &input_sets {
                                        let index = scenarios.len();
                                        if index >= MAX_SCENARIOS {
                                            return Err(SpecError::new(format!(
                                                "campaign expands past {MAX_SCENARIOS} scenarios"
                                            )));
                                        }
                                        let seed =
                                            mix_seed(&[SALT_SCENARIO, self.seed, index as u64]);
                                        scenarios.push(Scenario {
                                            index,
                                            family: sweep.family.clone(),
                                            graph: sweep.family.label(n),
                                            n,
                                            f,
                                            algorithm,
                                            regime: regime.materialize(seed),
                                            strategy: strategy.materialize(seed),
                                            strategy_name: strategy.name(),
                                            faulty: faulty.clone(),
                                            inputs: inputs.clone(),
                                            seed,
                                            feasible,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok((scenarios, notes))
    }
}

impl ToJson for CampaignSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", self.name.to_json()),
            ("seed", self.seed.to_json()),
            (
                "sweeps",
                Json::Arr(self.sweeps.iter().map(ToJson::to_json).collect()),
            ),
        ];
        if let Some(search) = &self.search {
            fields.push(("search", search.to_json()));
        }
        if let Some(limits) = &self.limits {
            fields.push(("limits", limits.to_json()));
        }
        if let Some(serve) = &self.serve {
            fields.push(("serve", serve.to_json()));
        }
        Json::object(fields)
    }
}

impl FromJson for CampaignSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value.get(key).ok_or_else(|| JsonError {
                message: format!("campaign missing '{key}'"),
            })
        };
        Ok(CampaignSpec {
            name: String::from_json(field("name")?)?,
            seed: u64::from_json(field("seed")?)?,
            sweeps: Vec::<SweepSpec>::from_json(field("sweeps")?)?,
            search: value
                .get("search")
                .map(crate::search::SearchSpec::from_json)
                .transpose()?,
            limits: value.get("limits").map(LimitsSpec::from_json).transpose()?,
            serve: value
                .get("serve")
                .map(crate::serve::ServeSpec::from_json)
                .transpose()?,
        })
    }
}

// ---------------------------------------------------------------------------
// concrete scenarios
// ---------------------------------------------------------------------------

/// One fully concrete execution: everything the executor needs, fixed at
/// expansion time. Scenarios are self-contained (they rebuild their graph
/// locally), so workers share no mutable state.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in the campaign's expansion order.
    pub index: usize,
    /// The family this scenario instantiates.
    pub family: GraphFamily,
    /// The instance label (e.g. `C9(1,2)`).
    pub graph: String,
    /// Number of nodes.
    pub n: usize,
    /// The declared fault bound the algorithm is configured with.
    pub f: usize,
    /// The algorithm to run.
    pub algorithm: AlgorithmKind,
    /// The materialized (pre-seeded) execution regime.
    pub regime: Regime,
    /// The materialized (pre-seeded) adversary strategy.
    pub strategy: Strategy,
    /// The stable strategy name for grouping.
    pub strategy_name: &'static str,
    /// The faulty set of this execution.
    pub faulty: NodeSet,
    /// The input assignment of this execution.
    pub inputs: InputAssignment,
    /// The derived per-scenario seed (drives `random` strategies).
    pub seed: u64,
    /// Whether the paper's conditions admit this `(graph, f, algorithm)`.
    pub feasible: bool,
}

impl Scenario {
    /// Builds this scenario's graph instance.
    #[must_use]
    pub fn build_graph(&self) -> Graph {
        self.family.build(self.n)
    }

    /// The communication model the scenario's algorithm runs under.
    #[must_use]
    pub fn comm_model(&self) -> CommModel {
        match self.algorithm {
            AlgorithmKind::P2pBaseline => CommModel::PointToPoint,
            _ => CommModel::LocalBroadcast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_spec() -> CampaignSpec {
        CampaignSpec {
            name: "unit".to_string(),
            seed: 11,
            sweeps: vec![SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![5]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: vec![
                    StrategySpec::TamperRelays,
                    StrategySpec::Random { seed: None },
                ],
                faults: FaultPolicy::Exhaustive,
                inputs: InputPolicy::Alternating,
            }],
            search: None,
            limits: None,
            serve: None,
        }
    }

    #[test]
    fn expansion_counts_and_indexes() {
        let scenarios = minimal_spec().expand().unwrap();
        // 1 size × 1 f × 1 algorithm × 2 strategies × 5 placements × 1 input.
        assert_eq!(scenarios.len(), 10);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.n, 5);
            assert_eq!(s.faulty.len(), 1);
            assert!(s.feasible);
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let a = minimal_spec().expand().unwrap();
        let b = minimal_spec().expand().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.faulty, y.faulty);
            assert_eq!(x.inputs, y.inputs);
            assert_eq!(x.strategy, y.strategy);
        }
    }

    #[test]
    fn derived_random_seeds_differ_per_scenario() {
        let scenarios = minimal_spec().expand().unwrap();
        let seeds: Vec<u64> = scenarios
            .iter()
            .filter(|s| s.strategy_name == "random")
            .map(|s| match s.strategy {
                Strategy::Random { seed } => seed,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seeds.len(), 5);
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn campaign_seed_changes_derived_draws() {
        let mut other = minimal_spec();
        other.seed = 12;
        let a = minimal_spec().expand().unwrap();
        let b = other.expand().unwrap();
        assert!(a.iter().zip(&b).any(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn random_fault_policy_is_seeded_and_distinct() {
        let graph = generators::cycle(9);
        let policy = FaultPolicy::Random { count: 4 };
        let a = policy.placements(&graph, 2, 77).unwrap();
        let b = policy.placements(&graph, 2, 77).unwrap();
        let c = policy.placements(&graph, 2, 78).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 4);
        for (i, x) in a.iter().enumerate() {
            assert_eq!(x.len(), 2);
            for y in &a[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn worst_case_policy_packs_faults_around_the_min_degree_victim() {
        // Wheel W6: hub 0 has degree 5, rim nodes degree 3. The victim is a
        // rim node; its rim neighbors come before the hub.
        let graph = generators::wheel(6);
        let placements = FaultPolicy::WorstCase.placements(&graph, 2, 0).unwrap();
        assert_eq!(placements.len(), 1);
        let set = &placements[0];
        assert_eq!(set.len(), 2);
        assert!(!set.contains(NodeId::new(0)), "hub chosen over rim: {set}");
    }

    #[test]
    fn fixed_policy_filters_by_f_and_validates_range() {
        let graph = generators::cycle(5);
        let policy = FaultPolicy::Fixed(vec![vec![1], vec![0, 2], vec![4]]);
        let f1 = policy.placements(&graph, 1, 0).unwrap();
        assert_eq!(f1.len(), 2);
        let f2 = policy.placements(&graph, 2, 0).unwrap();
        assert_eq!(f2.len(), 1);
        let bad = FaultPolicy::Fixed(vec![vec![9]]);
        assert!(bad.placements(&graph, 1, 0).is_err());
    }

    #[test]
    fn explicit_policy_accepts_sets_below_f_and_rejects_oversized_ones() {
        let graph = generators::cycle(5);
        // A single fault under a declared bound of f = 2: exactly the shape
        // a minimized search counterexample replays.
        let policy = FaultPolicy::Explicit(vec![vec![1]]);
        let placements = policy.placements(&graph, 2, 0).unwrap();
        assert_eq!(placements.len(), 1);
        assert_eq!(placements[0].len(), 1);
        assert!(FaultPolicy::Explicit(vec![vec![0, 1, 2]])
            .placements(&graph, 2, 0)
            .is_err());
        assert!(FaultPolicy::Explicit(vec![vec![9]])
            .placements(&graph, 2, 0)
            .is_err());
        assert!(FaultPolicy::Explicit(vec![])
            .placements(&graph, 2, 0)
            .is_err());
    }

    #[test]
    fn bits_input_policy_roundtrips_past_the_f64_limit() {
        // Bit 63 set: a JSON number would round this; the string form must
        // carry it exactly, and small patterns stay plain numbers.
        let wide = InputPolicy::Bits(1u64 << 63 | 0b101);
        let text = wide.to_json().to_string();
        assert!(text.contains('"'), "wide bits must serialize as a string");
        assert_eq!(
            InputPolicy::from_json(&Json::parse(&text).unwrap()).unwrap(),
            wide
        );
        let narrow = InputPolicy::Bits(13);
        let text = narrow.to_json().to_string();
        assert!(text.contains("13"));
        assert_eq!(
            InputPolicy::from_json(&Json::parse(&text).unwrap()).unwrap(),
            narrow
        );
    }

    #[test]
    fn random_fallback_to_exhaustive_is_noted() {
        let graph = generators::cycle(5);
        let (all, note) = FaultPolicy::Random { count: 10 }
            .placements_noted(&graph, 1, 0)
            .unwrap();
        assert_eq!(all.len(), 5);
        let note = note.expect("exhaustive fallback must be noted");
        assert!(note.contains("enumerated all placements"), "{note}");
        // Genuine sampling carries no note.
        let (sampled, none) = FaultPolicy::Random { count: 2 }
            .placements_noted(&graph, 1, 0)
            .unwrap();
        assert_eq!(sampled.len(), 2);
        assert!(none.is_none());
    }

    #[test]
    fn input_policies_produce_expected_shapes() {
        assert_eq!(
            InputPolicy::Alternating.assignments(4, 0).unwrap()[0].to_string(),
            "0101"
        );
        assert_eq!(
            InputPolicy::SplitHalf.assignments(5, 0).unwrap()[0].to_string(),
            "00011"
        );
        assert_eq!(InputPolicy::Exhaustive.assignments(3, 0).unwrap().len(), 8);
        assert!(InputPolicy::Exhaustive.assignments(13, 0).is_err());
        let random = InputPolicy::Random { count: 3 }.assignments(6, 5).unwrap();
        assert_eq!(random.len(), 3);
        assert_eq!(
            random,
            InputPolicy::Random { count: 3 }.assignments(6, 5).unwrap()
        );
    }

    #[test]
    fn exhaustive_fault_cap_is_enforced() {
        let graph = generators::complete(40);
        assert!(FaultPolicy::Exhaustive.placements(&graph, 12, 0).is_err());
    }

    #[test]
    fn random_fault_policy_rejects_unsatisfiable_counts_instead_of_spinning() {
        // C(20, 6) = 38,760 > MAX_EXHAUSTIVE_PLACEMENTS: a count >= total
        // must error (it can neither be sampled to completion nor
        // enumerated), not loop forever.
        let graph = generators::complete(20);
        assert!(FaultPolicy::Random { count: 40_000 }
            .placements(&graph, 6, 0)
            .is_err());
        assert!(FaultPolicy::Random { count: 0 }
            .placements(&graph, 1, 0)
            .is_err());
        // Asking for >= all of a small cell still enumerates exhaustively.
        let small = generators::cycle(5);
        let all = FaultPolicy::Random { count: 10 }
            .placements(&small, 1, 0)
            .unwrap();
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn empty_grid_dimensions_are_rejected_not_vacuous() {
        let mut spec = minimal_spec();
        spec.sweeps[0].sizes = SizeSpec::List(vec![]);
        assert!(spec.expand().is_err());

        let mut spec = minimal_spec();
        spec.sweeps[0].f = FRange { from: 2, to: 1 };
        assert!(spec.expand().is_err());

        let mut spec = minimal_spec();
        spec.sweeps.clear();
        assert!(spec.expand().is_err());

        assert!(InputPolicy::Random { count: 0 }.assignments(5, 0).is_err());
    }

    #[test]
    fn random_draw_caps_are_enforced() {
        let graph = generators::complete(30);
        assert!(FaultPolicy::Random { count: 9_000 }
            .placements(&graph, 3, 0)
            .is_err());
        assert!(InputPolicy::Random { count: 9_000 }
            .assignments(30, 0)
            .is_err());
        // Asking for at least all 2^n inputs of a small cell enumerates.
        let all = InputPolicy::Random { count: 100 }
            .assignments(4, 0)
            .unwrap();
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn spec_json_roundtrip_with_every_policy_flavour() {
        let spec = CampaignSpec {
            name: "roundtrip".to_string(),
            seed: 99,
            sweeps: vec![
                SweepSpec {
                    family: GraphFamily::Circulant {
                        offsets: vec![1, 2],
                    },
                    sizes: SizeSpec::Range {
                        from: 9,
                        to: 13,
                        step: 2,
                    },
                    f: FRange { from: 1, to: 2 },
                    algorithms: vec![AlgorithmKind::Algorithm1, AlgorithmKind::Algorithm2],
                    regimes: RegimeSpec::default_axis(),
                    strategies: vec![
                        StrategySpec::Silent,
                        StrategySpec::CrashAfter(4),
                        StrategySpec::Random { seed: Some(3) },
                        StrategySpec::Random { seed: None },
                        StrategySpec::Sleeper { honest_rounds: 2 },
                    ],
                    faults: FaultPolicy::Random { count: 3 },
                    inputs: InputPolicy::Bits(0b1011),
                },
                SweepSpec {
                    family: GraphFamily::Harary { k: 4 },
                    sizes: SizeSpec::List(vec![9, 11]),
                    f: FRange::exactly(2),
                    algorithms: vec![AlgorithmKind::P2pBaseline],
                    regimes: RegimeSpec::default_axis(),
                    strategies: vec![StrategySpec::Equivocate],
                    faults: FaultPolicy::Fixed(vec![vec![0, 1]]),
                    inputs: InputPolicy::Random { count: 2 },
                },
            ],
            search: Some(crate::search::SearchSpec {
                budget: 64,
                beam: 3,
                mutations: 5,
                rounds: 4,
            }),
            limits: None,
            serve: None,
        };
        let text = spec.to_json().pretty();
        let back = CampaignSpec::from_json_text(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn family_constraints_are_validated() {
        assert!(GraphFamily::Cycle.check(2).is_err());
        assert!(GraphFamily::Hypercube.check(6).is_err());
        assert!(GraphFamily::Hypercube.check(8).is_ok());
        assert!(GraphFamily::Fig1a.check(6).is_err());
        assert!(GraphFamily::Harary { k: 4 }.check(4).is_err());
        assert!(GraphFamily::Circulant { offsets: vec![] }.check(9).is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(GraphFamily::Cycle.label(7), "C7");
        assert_eq!(
            GraphFamily::Circulant {
                offsets: vec![1, 2]
            }
            .label(9),
            "C9(1,2)"
        );
        assert_eq!(GraphFamily::Harary { k: 4 }.label(13), "H4,13");
        assert_eq!(GraphFamily::Hypercube.label(8), "Q3");
    }
}
