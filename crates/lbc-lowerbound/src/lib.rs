//! # lbc-lowerbound
//!
//! Executable versions of the paper's impossibility arguments (Appendix A):
//! the *doubled network* indistinguishability constructions of Figures 2
//! and 3.
//!
//! Given a graph that **violates** one of the conditions of Theorem 4.1 —
//! minimum degree `< 2f` or vertex connectivity `< ⌊3f/2⌋ + 1` — the
//! construction builds a larger network `𝔾` containing two copies of part of
//! the node set, wired with one-way edges so that every copy of a node
//! receives messages from exactly one copy of each original neighbor. Running
//! *any* consensus protocol on `𝔾` (each copy runs the original node's
//! program, believing it is in `G`) then yields three executions `E1`, `E2`,
//! `E3` of that protocol on `G`; if the protocol were correct on `G`
//! tolerating `f` faults, validity in `E1`/`E3` would force outputs that make
//! `E2` violate agreement. The [`ImpossibilityReport`] returned by
//! [`DoubledNetwork::demonstrate`] exhibits the violation concretely.
//!
//! # Example
//!
//! ```
//! use lbc_consensus::Algorithm1Node;
//! use lbc_graph::generators;
//! use lbc_lowerbound::degree_construction;
//!
//! // A 4-cycle has minimum degree 2 < 2f for f = 2 (its connectivity, 2,
//! // also falls short, but the degree construction only needs the degree
//! // deficiency).
//! let graph = generators::cycle(4);
//! let construction = degree_construction(&graph, 2).expect("degree is deficient");
//! let report = construction.demonstrate(|_id, input| Algorithm1Node::new(input), 400);
//! assert!(report.exhibits_violation());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod construction;
mod split;

pub use construction::{
    connectivity_construction, degree_construction, Construction, ImpossibilityReport,
    ProjectedExecution,
};
pub use split::{CopyIndex, DoubledNetwork, SplitNodeId};
