//! The doubled network `𝔾` and its execution engine.

use std::collections::BTreeMap;

use lbc_graph::Graph;
use lbc_model::{NodeId, Regime, Round, SharedFloodLedger, SharedPathArena, Value};
use lbc_sim::{Delivery, Inbox, NodeContext, Outgoing, Protocol};

/// Which copy of an original node a `𝔾`-node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CopyIndex {
    /// The only copy (for nodes that are not duplicated), or the "0" copy.
    Zero,
    /// The "1" copy of a duplicated node.
    One,
}

/// A node of the doubled network: an original node identity plus a copy index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SplitNodeId {
    /// The original node this copy simulates.
    pub original: NodeId,
    /// Which copy this is.
    pub copy: CopyIndex,
}

impl SplitNodeId {
    /// Convenience constructor for the zero/only copy.
    #[must_use]
    pub fn zero(original: NodeId) -> Self {
        SplitNodeId {
            original,
            copy: CopyIndex::Zero,
        }
    }

    /// Convenience constructor for the one copy.
    #[must_use]
    pub fn one(original: NodeId) -> Self {
        SplitNodeId {
            original,
            copy: CopyIndex::One,
        }
    }
}

/// The doubled network `𝔾` used by the impossibility constructions.
///
/// Each `𝔾`-node runs the protocol of its original node (believing it lives
/// in the original graph `G`); transmissions are delivered along the
/// (possibly one-way) edges of `𝔾`, and the sender is identified to the
/// receiver by its *original* identity. The construction guarantees that each
/// copy receives messages from exactly one copy of each original neighbor, so
/// this identification is unambiguous.
#[derive(Debug, Clone)]
pub struct DoubledNetwork {
    graph: Graph,
    f: usize,
    /// The execution regime reported to the protocol instances. The doubled
    /// engine itself always delivers in lockstep — the indistinguishability
    /// argument of the constructions is about *views*, not timing — but
    /// regime-aware protocols still read their fairness bound from here.
    regime: Regime,
    nodes: Vec<SplitNodeId>,
    index: BTreeMap<SplitNodeId, usize>,
    /// `receivers[i]` lists the `𝔾`-node indices that hear node `i`'s
    /// transmissions.
    receivers: Vec<Vec<usize>>,
    /// Binary input of each `𝔾`-node.
    inputs: Vec<Value>,
}

impl DoubledNetwork {
    /// Creates an empty doubled network over the original `graph` with the
    /// declared fault tolerance `f`.
    #[must_use]
    pub fn new(graph: Graph, f: usize) -> Self {
        DoubledNetwork {
            graph,
            f,
            regime: Regime::Synchronous,
            nodes: Vec::new(),
            index: BTreeMap::new(),
            receivers: Vec::new(),
            inputs: Vec::new(),
        }
    }

    /// The original communication graph `G`.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The declared fault tolerance `f`.
    #[must_use]
    pub fn f(&self) -> usize {
        self.f
    }

    /// Overrides the regime reported to protocol instances (the default is
    /// [`Regime::Synchronous`]).
    #[must_use]
    pub fn with_regime(mut self, regime: Regime) -> Self {
        self.regime = regime;
        self
    }

    /// The regime reported to protocol instances.
    #[must_use]
    pub fn regime(&self) -> &Regime {
        &self.regime
    }

    /// The nodes of `𝔾`, in insertion order.
    #[must_use]
    pub fn nodes(&self) -> &[SplitNodeId] {
        &self.nodes
    }

    /// Adds a `𝔾`-node with the given input. Returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the node was already added.
    pub fn add_node(&mut self, node: SplitNodeId, input: Value) -> usize {
        assert!(
            !self.index.contains_key(&node),
            "𝔾-node {node:?} added twice"
        );
        let idx = self.nodes.len();
        self.nodes.push(node);
        self.index.insert(node, idx);
        self.receivers.push(Vec::new());
        self.inputs.push(input);
        idx
    }

    /// Whether the `𝔾`-node exists.
    #[must_use]
    pub fn contains(&self, node: SplitNodeId) -> bool {
        self.index.contains_key(&node)
    }

    /// Adds a directed communication edge: every transmission by `from` is
    /// received by `to`.
    ///
    /// # Panics
    ///
    /// Panics if either node is missing.
    pub fn add_directed(&mut self, from: SplitNodeId, to: SplitNodeId) {
        let from_idx = self.index[&from];
        let to_idx = self.index[&to];
        if !self.receivers[from_idx].contains(&to_idx) {
            self.receivers[from_idx].push(to_idx);
        }
    }

    /// Adds an undirected communication edge (both directions).
    pub fn add_undirected(&mut self, a: SplitNodeId, b: SplitNodeId) {
        self.add_directed(a, b);
        self.add_directed(b, a);
    }

    /// The input value of a `𝔾`-node.
    ///
    /// # Panics
    ///
    /// Panics if the node is missing.
    #[must_use]
    pub fn input_of(&self, node: SplitNodeId) -> Value {
        self.inputs[self.index[&node]]
    }

    /// Runs one protocol instance per `𝔾`-node for at most `max_rounds`
    /// rounds and returns each node's decided output (if any).
    ///
    /// `make` constructs the protocol instance for a `𝔾`-node from its
    /// original identity and its input; the instance's context reports the
    /// *original* graph and node id.
    pub fn run<P, F>(&self, mut make: F, max_rounds: usize) -> BTreeMap<SplitNodeId, Option<Value>>
    where
        P: Protocol,
        F: FnMut(NodeId, Value) -> P,
    {
        let mut protocols: Vec<P> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| make(node.original, self.inputs[i]))
            .collect();

        // One shared path arena and flood ledger for the doubled execution,
        // as the real simulator has one of each per run. The construction
        // deliberately gives the two copies of a node inconsistent views —
        // exactly the situation the ledger's per-node overrides absorb, so
        // the shared fabric stays sound even here.
        let arena = SharedPathArena::new();
        let ledger = SharedFloodLedger::new();
        let observer = lbc_sim::ObserverHandle::disabled();

        // Start-of-execution transmissions.
        let mut pending: Vec<Vec<Outgoing<P::Message>>> = Vec::with_capacity(self.nodes.len());
        for (i, protocol) in protocols.iter_mut().enumerate() {
            let ctx = NodeContext {
                id: self.nodes[i].original,
                graph: &self.graph,
                f: self.f,
                regime: &self.regime,
                step: None,
                arena: &arena,
                ledger: &ledger,
                observer: &observer,
            };
            pending.push(protocol.on_start(&ctx));
        }

        for round_index in 0..max_rounds {
            if protocols.iter().all(Protocol::has_terminated) {
                break;
            }
            // Deliver: under the local broadcast physics of 𝔾, every
            // transmission (broadcast or unicast alike) is heard by every
            // receiver wired to the sender.
            let mut inboxes: Vec<Vec<Delivery<P::Message>>> = vec![Vec::new(); self.nodes.len()];
            for (sender_idx, outgoing) in pending.iter().enumerate() {
                let sender_original = self.nodes[sender_idx].original;
                for o in outgoing {
                    let message = o.message().clone();
                    for &receiver in &self.receivers[sender_idx] {
                        inboxes[receiver].push(Delivery {
                            from: sender_original,
                            message: message.clone(),
                        });
                    }
                }
            }
            // Step every protocol.
            let round = Round::new(round_index as u64);
            let mut next_pending = Vec::with_capacity(self.nodes.len());
            for (i, protocol) in protocols.iter_mut().enumerate() {
                let ctx = NodeContext {
                    id: self.nodes[i].original,
                    graph: &self.graph,
                    f: self.f,
                    regime: &self.regime,
                    step: Some(round),
                    arena: &arena,
                    ledger: &ledger,
                    observer: &observer,
                };
                next_pending.push(protocol.on_round(&ctx, round, Inbox::direct(&inboxes[i])));
            }
            pending = next_pending;
        }

        self.nodes
            .iter()
            .enumerate()
            .map(|(i, node)| (*node, protocols[i].output()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;
    use lbc_sim::EchoOnce;

    fn split_zero(i: usize) -> SplitNodeId {
        SplitNodeId::zero(NodeId::new(i))
    }

    #[test]
    fn add_nodes_and_edges() {
        let graph = generators::cycle(3);
        let mut net = DoubledNetwork::new(graph, 1);
        let a = split_zero(0);
        let b = split_zero(1);
        net.add_node(a, Value::Zero);
        net.add_node(b, Value::One);
        net.add_undirected(a, b);
        assert!(net.contains(a));
        assert!(!net.contains(SplitNodeId::one(NodeId::new(0))));
        assert_eq!(net.input_of(b), Value::One);
        assert_eq!(net.nodes().len(), 2);
        assert_eq!(net.f(), 1);
        assert_eq!(net.graph().node_count(), 3);
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_nodes_are_rejected() {
        let graph = generators::cycle(3);
        let mut net = DoubledNetwork::new(graph, 1);
        net.add_node(split_zero(0), Value::Zero);
        net.add_node(split_zero(0), Value::One);
    }

    #[test]
    fn directed_edges_deliver_one_way() {
        // Three 𝔾-nodes on a triangle graph: a -> b directed, a - c undirected.
        let graph = generators::complete(3);
        let mut net = DoubledNetwork::new(graph, 0);
        let a = split_zero(0);
        let b = split_zero(1);
        let c = split_zero(2);
        net.add_node(a, Value::One);
        net.add_node(b, Value::Zero);
        net.add_node(c, Value::Zero);
        net.add_directed(a, b);
        net.add_undirected(a, c);
        let outputs = net.run(|_, input| EchoOnce::new(input), 5);
        // Everyone decides its own input (EchoOnce semantics).
        assert_eq!(outputs[&a], Some(Value::One));
        assert_eq!(outputs[&b], Some(Value::Zero));
        assert_eq!(outputs[&c], Some(Value::Zero));
    }
}
