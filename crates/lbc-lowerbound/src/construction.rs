//! The Figure 2 / Figure 3 impossibility constructions.

use std::collections::BTreeMap;

use lbc_graph::{combinatorics, connectivity, cuts, Graph};
use lbc_model::{ConsensusOutcome, InputAssignment, NodeId, NodeSet, Value, Verdict};
use lbc_sim::Protocol;

use crate::split::{DoubledNetwork, SplitNodeId};

/// One of the three executions `E1`, `E2`, `E3` projected out of the doubled
/// network run.
#[derive(Debug, Clone)]
pub struct ProjectedExecution {
    /// A short label ("E1", "E2", "E3").
    pub label: String,
    /// The faulty set of this execution on the original graph.
    pub faulty: NodeSet,
    /// The judged outcome (inputs, recorded non-faulty outputs, verdict).
    pub outcome: ConsensusOutcome,
}

impl ProjectedExecution {
    /// The verdict of this execution.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        self.outcome.verdict()
    }
}

/// The result of running a protocol on the doubled network and projecting
/// the three executions.
#[derive(Debug, Clone)]
pub struct ImpossibilityReport {
    /// Human-readable description of the construction used.
    pub description: String,
    /// The projected executions, in order `E1`, `E2`, `E3`.
    pub executions: Vec<ProjectedExecution>,
}

impl ImpossibilityReport {
    /// Whether at least one projected execution violates agreement, validity,
    /// or termination — which is the point of the construction: a protocol
    /// that were correct on the deficient graph could not produce any
    /// violation, so exhibiting one shows no correct protocol exists.
    #[must_use]
    pub fn exhibits_violation(&self) -> bool {
        self.executions
            .iter()
            .any(|e| !e.outcome.verdict().is_correct())
    }

    /// The labels of the violated executions.
    #[must_use]
    pub fn violated_executions(&self) -> Vec<String> {
        self.executions
            .iter()
            .filter(|e| !e.outcome.verdict().is_correct())
            .map(|e| e.label.clone())
            .collect()
    }
}

/// Specification of how to project one execution out of the doubled network.
#[derive(Debug, Clone)]
struct ExecutionSpec {
    label: String,
    faulty: NodeSet,
    inputs: InputAssignment,
    /// For each original node, which `𝔾`-copy models it in this execution.
    sources: BTreeMap<NodeId, SplitNodeId>,
}

/// An executable impossibility construction: the doubled network plus the
/// projection recipes for `E1`, `E2`, `E3`.
#[derive(Debug, Clone)]
pub struct Construction {
    description: String,
    network: DoubledNetwork,
    executions: Vec<ExecutionSpec>,
}

impl Construction {
    /// Human-readable description of the deficiency being exploited.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The doubled network `𝔾`.
    #[must_use]
    pub fn network(&self) -> &DoubledNetwork {
        &self.network
    }

    /// Runs `make`-constructed protocol instances on the doubled network for
    /// at most `max_rounds` rounds and projects the three executions.
    pub fn demonstrate<P, F>(&self, make: F, max_rounds: usize) -> ImpossibilityReport
    where
        P: Protocol,
        F: FnMut(NodeId, Value) -> P,
    {
        let outputs = self.network.run(make, max_rounds);
        let executions = self
            .executions
            .iter()
            .map(|spec| {
                let mut outcome = ConsensusOutcome::new(spec.inputs.clone(), spec.faulty.clone());
                for (original, source) in &spec.sources {
                    if let Some(Some(value)) = outputs.get(source) {
                        outcome.record_output(*original, *value);
                    }
                }
                ProjectedExecution {
                    label: spec.label.clone(),
                    faulty: spec.faulty.clone(),
                    outcome,
                }
            })
            .collect();
        ImpossibilityReport {
            description: self.description.clone(),
            executions,
        }
    }
}

/// Builds the **Figure 2 / Lemma A.1** construction for a graph whose minimum
/// degree is below `2f`. Returns `None` when the degree condition is in fact
/// satisfied (or `f = 0`).
#[must_use]
pub fn degree_construction(graph: &Graph, f: usize) -> Option<Construction> {
    if f == 0 {
        return None;
    }
    let (z, degree) = cuts::min_degree_node(graph)?;
    if degree >= 2 * f || degree == 0 {
        return None;
    }
    let neighborhood = graph.neighbor_set(z);
    // Partition into (F1, F2) with |F1| ≤ f − 1, |F2| ≤ f, F2 non-empty.
    let f1_size = neighborhood.len().saturating_sub(1).min(f - 1);
    let sizes = [f1_size, neighborhood.len() - f1_size];
    let parts = combinatorics::split_by_sizes(&neighborhood, &sizes);
    let (f1, f2) = (parts[0].clone(), parts[1].clone());
    debug_assert!(!f2.is_empty() && f2.len() <= f);

    let not_w: NodeSet = f1.union(&f2).union(&NodeSet::singleton(z));
    let w: NodeSet = graph.nodes().filter(|v| !not_w.contains(*v)).collect();

    // Assemble 𝔾.
    let mut network = DoubledNetwork::new(graph.clone(), f);
    for v in graph.nodes() {
        if w.contains(v) {
            network.add_node(SplitNodeId::zero(v), Value::Zero);
            network.add_node(SplitNodeId::one(v), Value::One);
        } else {
            let input = if f2.contains(v) {
                Value::One
            } else {
                Value::Zero
            };
            network.add_node(SplitNodeId::zero(v), input);
        }
    }
    for (u, v) in graph.edges() {
        wire_degree_edge(&mut network, &w, &f1, &f2, u, v);
        wire_degree_edge(&mut network, &w, &f1, &f2, v, u);
    }

    // Projection recipes.
    let n = graph.node_count();
    let all = graph.node_set();
    let copy0 = |v: NodeId| SplitNodeId::zero(v);
    let copy1 = |v: NodeId, w: &NodeSet| {
        if w.contains(v) {
            SplitNodeId::one(v)
        } else {
            SplitNodeId::zero(v)
        }
    };

    // E1: faulty F2, every non-faulty node has input 0; behaviour of W is
    // modelled by W0.
    let e1 = ExecutionSpec {
        label: "E1".to_string(),
        faulty: f2.clone(),
        inputs: InputAssignment::with_ones(n, &f2),
        sources: all.iter().map(|v| (v, copy0(v))).collect(),
    };
    // E2: faulty F1; z has input 0, all other non-faulty nodes input 1;
    // behaviour of W is modelled by W1.
    let ones_e2: NodeSet = all.iter().filter(|v| *v != z).collect();
    let e2 = ExecutionSpec {
        label: "E2".to_string(),
        faulty: f1.clone(),
        inputs: InputAssignment::with_ones(n, &ones_e2),
        sources: all.iter().map(|v| (v, copy1(v, &w))).collect(),
    };
    // E3: faulty F1 ∪ {z}; all non-faulty input 1; W modelled by W1.
    let faulty_e3 = f1.union(&NodeSet::singleton(z));
    let e3 = ExecutionSpec {
        label: "E3".to_string(),
        faulty: faulty_e3,
        inputs: InputAssignment::all_one(n),
        sources: all.iter().map(|v| (v, copy1(v, &w))).collect(),
    };

    Some(Construction {
        description: format!(
            "Lemma A.1 / Figure 2: node {z} has degree {degree} < 2f = {} (F1 = {f1}, F2 = {f2})",
            2 * f
        ),
        network,
        executions: vec![e1, e2, e3],
    })
}

/// Wires the directed/undirected `𝔾`-edges induced by the original edge
/// `u → v` for the degree construction (called once per direction).
fn wire_degree_edge(
    network: &mut DoubledNetwork,
    w: &NodeSet,
    f1: &NodeSet,
    f2: &NodeSet,
    u: NodeId,
    v: NodeId,
) {
    match (w.contains(u), w.contains(v)) {
        (true, true) => {
            network.add_undirected(SplitNodeId::zero(u), SplitNodeId::zero(v));
            network.add_undirected(SplitNodeId::one(u), SplitNodeId::one(v));
        }
        (false, false) => {
            network.add_undirected(SplitNodeId::zero(u), SplitNodeId::zero(v));
        }
        (false, true) => {
            // u is outside W (F1, F2 or z); v is in W.
            if f1.contains(u) {
                network.add_undirected(SplitNodeId::zero(u), SplitNodeId::zero(v));
                network.add_directed(SplitNodeId::zero(u), SplitNodeId::one(v));
            } else if f2.contains(u) {
                network.add_directed(SplitNodeId::zero(u), SplitNodeId::zero(v));
                network.add_undirected(SplitNodeId::zero(u), SplitNodeId::one(v));
            } else {
                // u = z has no neighbors in W by construction; be permissive
                // and wire both copies undirected (cannot happen for valid
                // inputs).
                network.add_undirected(SplitNodeId::zero(u), SplitNodeId::zero(v));
                network.add_undirected(SplitNodeId::zero(u), SplitNodeId::one(v));
            }
        }
        (true, false) => {
            // Handled by the symmetric call.
        }
    }
}

/// Builds the **Figure 3 / Lemma A.2** construction for a graph whose vertex
/// connectivity is below `⌊3f/2⌋ + 1`. Returns `None` when the connectivity
/// condition is satisfied (or no usable cut exists).
#[must_use]
pub fn connectivity_construction(graph: &Graph, f: usize) -> Option<Construction> {
    if f == 0 {
        return None;
    }
    let requirement = (3 * f) / 2 + 1;
    if connectivity::is_k_connected(graph, requirement) {
        return None;
    }
    let partition = cuts::cut_partition_of_size_at_most(graph, (3 * f) / 2)?;
    let a = partition.side_a.clone();
    let b = partition.side_b.clone();
    let cut = partition.cut.clone();
    // Partition the cut into (C1, C2, C3) with |C1|, |C2| ≤ ⌊f/2⌋ and
    // |C3| ≤ ⌈f/2⌉.
    let sizes = combinatorics::greedy_sizes(cut.len(), &[f / 2, f / 2, f.div_ceil(2)])?;
    let parts = combinatorics::split_by_sizes(&cut, &sizes);
    let (c1, c2, c3) = (parts[0].clone(), parts[1].clone(), parts[2].clone());

    // Assemble 𝔾: two copies of A and B, single copies of the cut.
    let mut network = DoubledNetwork::new(graph.clone(), f);
    for v in graph.nodes() {
        if a.contains(v) || b.contains(v) {
            network.add_node(SplitNodeId::zero(v), Value::Zero);
            network.add_node(SplitNodeId::one(v), Value::One);
        } else {
            let input = if c1.contains(v) {
                Value::Zero
            } else {
                Value::One
            };
            network.add_node(SplitNodeId::zero(v), input);
        }
    }
    for (u, v) in graph.edges() {
        wire_cut_edge(&mut network, &a, &b, &c1, &c2, &c3, u, v);
        wire_cut_edge(&mut network, &a, &b, &c1, &c2, &c3, v, u);
    }

    // Projection recipes. Which copy models each side in each execution:
    // E1: A→A0, B→B0 (C1 honest);  E2: A→A0, B→B1 (C2 honest);
    // E3: A→A1, B→B1 (C3 honest).
    let n = graph.node_count();
    let all = graph.node_set();
    let pick = |v: NodeId, a_copy: bool, b_copy: bool| {
        if a.contains(v) {
            if a_copy {
                SplitNodeId::one(v)
            } else {
                SplitNodeId::zero(v)
            }
        } else if b.contains(v) {
            if b_copy {
                SplitNodeId::one(v)
            } else {
                SplitNodeId::zero(v)
            }
        } else {
            SplitNodeId::zero(v)
        }
    };

    let faulty_e1 = c2.union(&c3);
    let e1 = ExecutionSpec {
        label: "E1".to_string(),
        faulty: faulty_e1.clone(),
        inputs: InputAssignment::with_ones(n, &faulty_e1),
        sources: all.iter().map(|v| (v, pick(v, false, false))).collect(),
    };
    let faulty_e2 = c1.union(&c3);
    let ones_e2: NodeSet = all.iter().filter(|v| !a.contains(*v)).collect();
    let e2 = ExecutionSpec {
        label: "E2".to_string(),
        faulty: faulty_e2,
        inputs: InputAssignment::with_ones(n, &ones_e2),
        sources: all.iter().map(|v| (v, pick(v, false, true))).collect(),
    };
    let faulty_e3 = c1.union(&c2);
    let e3 = ExecutionSpec {
        label: "E3".to_string(),
        faulty: faulty_e3,
        inputs: InputAssignment::all_one(n),
        sources: all.iter().map(|v| (v, pick(v, true, true))).collect(),
    };

    Some(Construction {
        description: format!(
            "Lemma A.2 / Figure 3: vertex cut {cut} of size {} < ⌊3f/2⌋ + 1 = {requirement} \
             separating A = {a} from B = {b} (C1 = {c1}, C2 = {c2}, C3 = {c3})",
            cut.len()
        ),
        network,
        executions: vec![e1, e2, e3],
    })
}

/// Wires the `𝔾`-edges induced by the original edge `u → v` for the
/// connectivity construction (called once per direction).
#[allow(clippy::too_many_arguments)]
fn wire_cut_edge(
    network: &mut DoubledNetwork,
    a: &NodeSet,
    b: &NodeSet,
    c1: &NodeSet,
    c2: &NodeSet,
    c3: &NodeSet,
    u: NodeId,
    v: NodeId,
) {
    let in_sides = |x: NodeId| a.contains(x) || b.contains(x);
    match (in_sides(u), in_sides(v)) {
        (true, true) => {
            // Both in A, or both in B (there are no A–B edges).
            network.add_undirected(SplitNodeId::zero(u), SplitNodeId::zero(v));
            network.add_undirected(SplitNodeId::one(u), SplitNodeId::one(v));
        }
        (false, false) => {
            // Both in the cut.
            network.add_undirected(SplitNodeId::zero(u), SplitNodeId::zero(v));
        }
        (false, true) => {
            // u in the cut, v in A or B. The copy of v that u talks to
            // bidirectionally is the one modelling v in the execution where u
            // is honest; the other copy only listens.
            let v_side_is_a = a.contains(v);
            let honest_copy_is_one = if c1.contains(u) {
                false // E1: A0, B0
            } else if c2.contains(u) {
                !v_side_is_a // E2: A0, B1
            } else {
                debug_assert!(c3.contains(u));
                true // E3: A1, B1
            };
            let (bidir, listen_only) = if honest_copy_is_one {
                (SplitNodeId::one(v), SplitNodeId::zero(v))
            } else {
                (SplitNodeId::zero(v), SplitNodeId::one(v))
            };
            network.add_undirected(SplitNodeId::zero(u), bidir);
            network.add_directed(SplitNodeId::zero(u), listen_only);
        }
        (true, false) => {
            // Handled by the symmetric call.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_consensus::Algorithm1Node;
    use lbc_graph::generators;

    #[test]
    fn degree_construction_is_none_when_degree_suffices() {
        let g = generators::complete(5);
        assert!(degree_construction(&g, 2).is_none());
        assert!(degree_construction(&g, 0).is_none());
    }

    #[test]
    fn connectivity_construction_is_none_when_connectivity_suffices() {
        let g = generators::complete(5);
        assert!(connectivity_construction(&g, 2).is_none());
        let cycle = generators::cycle(5);
        assert!(connectivity_construction(&cycle, 1).is_none());
    }

    #[test]
    fn degree_construction_exhibits_violation_on_a_4_cycle_for_f2() {
        // The 4-cycle has minimum degree 2 < 4 = 2f.
        let g = generators::cycle(4);
        let construction = degree_construction(&g, 2).expect("degree deficient");
        assert!(construction.description().contains("Figure 2"));
        let rounds = Algorithm1Node::round_count(4, 2) + 4;
        let report = construction.demonstrate(|_id, input| Algorithm1Node::new(input), rounds);
        assert!(
            report.exhibits_violation(),
            "expected a violation: {report:?}"
        );
        assert_eq!(report.executions.len(), 3);
    }

    #[test]
    fn connectivity_construction_exhibits_violation_on_a_cycle_for_f2() {
        // The 6-cycle is 2-connected; for f = 2 it needs 4-connectivity, and
        // its minimum degree (2) is also below 2f, but the cut construction
        // only relies on the connectivity deficiency.
        let g = generators::cycle(6);
        let construction = connectivity_construction(&g, 2).expect("connectivity deficient");
        assert!(construction.description().contains("Figure 3"));
        let rounds = Algorithm1Node::round_count(6, 2) + 4;
        let report = construction.demonstrate(|_id, input| Algorithm1Node::new(input), rounds);
        assert!(
            report.exhibits_violation(),
            "expected a violation: {report:?}"
        );
        assert!(!report.violated_executions().is_empty());
    }

    #[test]
    fn deficient_connectivity_generator_feeds_the_construction() {
        let f = 2;
        let g = generators::deficient_connectivity(f, f + 1);
        let construction = connectivity_construction(&g, f).expect("deficient by design");
        assert!(construction.network().nodes().len() > g.node_count());
    }
}
