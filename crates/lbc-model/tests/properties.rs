//! Property-based tests for the model vocabulary types, including the
//! path-interning arena (round-trips, memoized membership/exclusion, and
//! structural sharing).

use proptest::prelude::*;

use lbc_model::{InputAssignment, NodeId, NodeSet, Path, PathArena, Value};

fn node_vec(max_id: usize, max_len: usize) -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec((0..max_id).prop_map(NodeId::new), 0..max_len)
}

proptest! {
    /// Flipping a value twice is the identity, and a value never equals its flip.
    #[test]
    fn value_flip_involution(b in any::<bool>()) {
        let v = Value::from(b);
        prop_assert_eq!(v.flipped().flipped(), v);
        prop_assert_ne!(v.flipped(), v);
    }

    /// The majority over a multiset is a value that occurs at least as often
    /// as its complement (ties go to zero).
    #[test]
    fn majority_is_a_plurality(values in prop::collection::vec(any::<bool>(), 1..40)) {
        let values: Vec<Value> = values.into_iter().map(Value::from).collect();
        let majority = Value::majority(values.iter().copied()).unwrap();
        let count = |x: Value| values.iter().filter(|v| **v == x).count();
        prop_assert!(count(majority) >= count(majority.flipped()));
        if count(Value::Zero) == count(Value::One) {
            prop_assert_eq!(majority, Value::Zero);
        }
    }

    /// A path excludes a set iff none of its internal nodes are in the set;
    /// endpoints never matter.
    #[test]
    fn path_exclusion_ignores_endpoints(nodes in node_vec(12, 8), excluded in node_vec(12, 6)) {
        let path = Path::from_nodes(nodes.clone());
        let exclude: NodeSet = excluded.into_iter().collect();
        let expected = path
            .internal_nodes()
            .all(|v| !exclude.contains(v));
        prop_assert_eq!(path.excludes(&exclude), expected);
    }

    /// `extended` appends exactly one node and preserves the prefix.
    #[test]
    fn path_extended_appends(nodes in node_vec(12, 8), extra in 0usize..12) {
        let path = Path::from_nodes(nodes.clone());
        let longer = path.extended(NodeId::new(extra));
        prop_assert_eq!(longer.len(), path.len() + 1);
        prop_assert_eq!(longer.last(), Some(NodeId::new(extra)));
        prop_assert_eq!(&longer.nodes()[..path.len()], path.nodes());
    }

    /// Reversing a path twice gives the original; reversal preserves length
    /// and endpoint swap.
    #[test]
    fn path_reverse_involution(nodes in node_vec(12, 8)) {
        let path = Path::from_nodes(nodes);
        prop_assert_eq!(path.reversed().reversed(), path.clone());
        prop_assert_eq!(path.reversed().len(), path.len());
        if let Some((first, last)) = path.endpoints() {
            prop_assert_eq!(path.reversed().endpoints(), Some((last, first)));
        }
    }

    /// Node-set algebra: union/intersection/difference sizes are consistent
    /// (inclusion–exclusion) and operators agree with methods.
    #[test]
    fn nodeset_algebra(a in node_vec(20, 16), b in node_vec(20, 16)) {
        let a: NodeSet = a.into_iter().collect();
        let b: NodeSet = b.into_iter().collect();
        let union = &a | &b;
        let inter = &a & &b;
        let diff = &a - &b;
        prop_assert_eq!(union.len() + inter.len(), a.len() + b.len());
        prop_assert_eq!(diff.len(), a.len() - inter.len());
        prop_assert!(inter.is_subset(&a) && inter.is_subset(&b));
        prop_assert!(a.is_subset(&union) && b.is_subset(&union));
        prop_assert!(diff.is_disjoint(&b));
    }

    /// The complement of a set within {0..n} partitions the universe.
    #[test]
    fn nodeset_complement_partitions(ids in node_vec(15, 12), n in 15usize..20) {
        let s: NodeSet = ids.into_iter().collect();
        let complement = s.complement(n);
        prop_assert!(s.is_disjoint(&complement));
        prop_assert_eq!(s.len() + complement.len(), n);
    }

    /// `InputAssignment::with_ones` and `ones()` are inverse to each other.
    #[test]
    fn input_assignment_ones_roundtrip(ids in node_vec(16, 10), n in 16usize..20) {
        let ones: NodeSet = ids.into_iter().collect();
        let assignment = InputAssignment::with_ones(n, &ones);
        prop_assert_eq!(assignment.ones(), ones.clone());
        prop_assert_eq!(assignment.zeros(), ones.complement(n));
        prop_assert_eq!(assignment.len(), n);
    }

    /// `PathId` round-trips: `intern → resolve` preserves the exact node
    /// sequence, along with length and endpoints.
    #[test]
    fn arena_intern_resolve_roundtrip(nodes in node_vec(14, 10)) {
        let mut arena = PathArena::new();
        let path = Path::from_nodes(nodes.clone());
        let id = arena.intern(&path);
        prop_assert_eq!(arena.resolve(id), path.clone());
        prop_assert_eq!(arena.nodes(id), nodes);
        prop_assert_eq!(arena.len(id), path.len());
        prop_assert_eq!(arena.first(id), path.first());
        prop_assert_eq!(arena.last(id), path.last());
        prop_assert_eq!(arena.is_simple(id), !path.has_repeated_node());
        // Interning again is a pure lookup that yields the same id.
        let before = arena.entry_count();
        prop_assert_eq!(arena.intern(&path), id);
        prop_assert_eq!(arena.entry_count(), before);
        prop_assert_eq!(arena.find(&path), Some(id));
    }

    /// The arena's memoized `contains` / `excludes` agree with the naive
    /// `Vec`-walking implementations on `Path`.
    #[test]
    fn arena_contains_excludes_agree_with_naive(
        nodes in node_vec(14, 10),
        probe in 0usize..14,
        excluded in node_vec(14, 8),
    ) {
        let mut arena = PathArena::new();
        let path = Path::from_nodes(nodes);
        let id = arena.intern(&path);
        let probe = NodeId::new(probe);
        prop_assert_eq!(arena.contains(id, probe), path.contains(probe));
        let exclude: NodeSet = excluded.into_iter().collect();
        prop_assert_eq!(
            arena.excludes(id, &exclude),
            path.excludes(&exclude),
            "path {} excluding {}", path, exclude
        );
        prop_assert_eq!(arena.members(id), &path.iter().collect::<NodeSet>());
    }

    /// `extended` matches `Path::extended`, and sibling extensions share the
    /// parent prefix (structural sharing: one new entry per new extension).
    #[test]
    fn arena_extended_matches_path_extended(nodes in node_vec(12, 8), extra in 0usize..12) {
        let mut arena = PathArena::new();
        let path = Path::from_nodes(nodes);
        let id = arena.intern(&path);
        let extra = NodeId::new(extra);
        let before = arena.entry_count();
        let longer = arena.extended(id, extra);
        prop_assert_eq!(arena.resolve(longer), path.extended(extra));
        prop_assert!(arena.entry_count() <= before + 1);
        prop_assert_eq!(arena.step(longer), Some((id, extra)));
        // Extending again allocates nothing.
        let after = arena.entry_count();
        prop_assert_eq!(arena.extended(id, extra), longer);
        prop_assert_eq!(arena.entry_count(), after);
    }

    /// The unanimity check agrees with a direct scan.
    #[test]
    fn unanimity_matches_direct_scan(bits in any::<u16>(), exclude in node_vec(16, 8)) {
        let n = 16;
        let assignment = InputAssignment::from_bits(n, u64::from(bits));
        let exclude: NodeSet = exclude.into_iter().collect();
        let remaining: Vec<Value> = assignment
            .iter()
            .filter(|(node, _)| !exclude.contains(*node))
            .map(|(_, v)| v)
            .collect();
        let expected = if remaining.is_empty() {
            None
        } else if remaining.iter().all(|v| *v == remaining[0]) {
            Some(remaining[0])
        } else {
            None
        };
        prop_assert_eq!(assignment.unanimous_excluding(&exclude), expected);
    }
}
