//! Error types shared across the workspace.

use std::fmt;

use crate::NodeId;

/// Errors produced when model-level invariants are violated.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A node identifier referenced a node outside the graph/population.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The population size it was checked against.
        n: usize,
    },
    /// The number of faulty nodes exceeds the declared fault tolerance `f`.
    TooManyFaults {
        /// Number of faulty nodes supplied.
        actual: usize,
        /// Declared tolerance `f`.
        bound: usize,
    },
    /// The number of equivocating faulty nodes exceeds the declared bound `t`.
    TooManyEquivocators {
        /// Number of equivocating nodes supplied.
        actual: usize,
        /// Declared bound `t`.
        bound: usize,
    },
    /// An input assignment's length does not match the graph's node count.
    InputLengthMismatch {
        /// Number of inputs supplied.
        inputs: usize,
        /// Number of nodes expected.
        nodes: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NodeOutOfRange { node, n } => {
                write!(
                    f,
                    "node {node} is out of range for a population of {n} nodes"
                )
            }
            ModelError::TooManyFaults { actual, bound } => {
                write!(f, "{actual} faulty nodes exceed the tolerance f = {bound}")
            }
            ModelError::TooManyEquivocators { actual, bound } => {
                write!(
                    f,
                    "{actual} equivocating nodes exceed the bound t = {bound}"
                )
            }
            ModelError::InputLengthMismatch { inputs, nodes } => {
                write!(f, "{inputs} inputs supplied for {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::NodeOutOfRange {
            node: NodeId::new(9),
            n: 5,
        };
        assert_eq!(
            e.to_string(),
            "node v9 is out of range for a population of 5 nodes"
        );

        let e = ModelError::TooManyFaults {
            actual: 3,
            bound: 2,
        };
        assert!(e.to_string().contains("f = 2"));

        let e = ModelError::TooManyEquivocators {
            actual: 2,
            bound: 1,
        };
        assert!(e.to_string().contains("t = 1"));

        let e = ModelError::InputLengthMismatch {
            inputs: 4,
            nodes: 6,
        };
        assert!(e.to_string().contains("4 inputs"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<ModelError>();
    }
}
