//! Ordered sets of node identifiers.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// An ordered set of node identifiers.
///
/// `NodeSet` is the workhorse collection for fault sets `F`, candidate fault
/// sets enumerated by Algorithm 1's phases, vertex cuts, neighborhoods, and
/// the `Z_v` / `N_v` / `A_v` / `B_v` sets of the algorithms' case analyses.
///
/// Backed by a `BTreeSet` so iteration order is deterministic — important for
/// reproducible simulation traces.
///
/// # Example
///
/// ```
/// use lbc_model::{NodeId, NodeSet};
///
/// let f: NodeSet = [NodeId::new(1), NodeId::new(3)].into_iter().collect();
/// let g: NodeSet = [NodeId::new(3), NodeId::new(4)].into_iter().collect();
/// assert_eq!((&f | &g).len(), 3);
/// assert_eq!((&f & &g).len(), 1);
/// assert_eq!((&f - &g).len(), 1);
/// assert!(f.contains(NodeId::new(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeSet {
    nodes: BTreeSet<NodeId>,
}

impl NodeSet {
    /// Creates an empty node set.
    #[must_use]
    pub fn new() -> Self {
        NodeSet::default()
    }

    /// Creates a set containing a single node.
    #[must_use]
    pub fn singleton(node: NodeId) -> Self {
        let mut set = NodeSet::new();
        set.insert(node);
        set
    }

    /// Creates the full node set `{0, 1, …, n-1}`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        (0..n).map(NodeId::new).collect()
    }

    /// Number of nodes in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` belongs to the set.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Inserts a node; returns `true` if it was not already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        self.nodes.insert(node)
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        self.nodes.remove(&node)
    }

    /// Iterates over the nodes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        self.nodes.union(&other.nodes).copied().collect()
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        self.nodes.intersection(&other.nodes).copied().collect()
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        self.nodes.difference(&other.nodes).copied().collect()
    }

    /// Whether `self` and `other` share no nodes.
    #[must_use]
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        self.nodes.is_disjoint(&other.nodes)
    }

    /// Whether every node of `self` belongs to `other`.
    #[must_use]
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.nodes.is_subset(&other.nodes)
    }

    /// Removes a node and returns it, if the set is non-empty (smallest id).
    pub fn pop_first(&mut self) -> Option<NodeId> {
        self.nodes.pop_first()
    }

    /// Returns the smallest node id in the set, if any.
    #[must_use]
    pub fn first(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// Returns the complement of this set within `{0, …, n-1}`.
    #[must_use]
    pub fn complement(&self, n: usize) -> NodeSet {
        (0..n)
            .map(NodeId::new)
            .filter(|node| !self.contains(*node))
            .collect()
    }

    /// Returns the underlying ordered set.
    #[must_use]
    pub fn as_btree(&self) -> &BTreeSet<NodeId> {
        &self.nodes
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeSet {
            nodes: iter.into_iter().collect(),
        }
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        self.nodes.extend(iter);
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter().copied()
    }
}

impl IntoIterator for NodeSet {
    type Item = NodeId;
    type IntoIter = std::collections::btree_set::IntoIter<NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.into_iter()
    }
}

impl BitOr for &NodeSet {
    type Output = NodeSet;

    fn bitor(self, rhs: &NodeSet) -> NodeSet {
        self.union(rhs)
    }
}

impl BitAnd for &NodeSet {
    type Output = NodeSet;

    fn bitand(self, rhs: &NodeSet) -> NodeSet {
        self.intersection(rhs)
    }
}

impl Sub for &NodeSet {
    type Output = NodeSet;

    fn sub(self, rhs: &NodeSet) -> NodeSet {
        self.difference(rhs)
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for node in &self.nodes {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{node}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn set(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| n(i)).collect()
    }

    #[test]
    fn basic_insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(n(3)));
        assert!(!s.insert(n(3)));
        assert!(s.contains(n(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(n(3)));
        assert!(!s.remove(n(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn full_and_complement() {
        let full = NodeSet::full(4);
        assert_eq!(full.len(), 4);
        let s = set(&[0, 2]);
        assert_eq!(s.complement(4), set(&[1, 3]));
        assert_eq!(full.complement(4), NodeSet::new());
    }

    #[test]
    fn set_algebra_operators() {
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3]);
        assert_eq!(&a | &b, set(&[0, 1, 2, 3]));
        assert_eq!(&a & &b, set(&[2]));
        assert_eq!(&a - &b, set(&[0, 1]));
        assert!(a.is_disjoint(&set(&[4, 5])));
        assert!(set(&[1]).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = set(&[5, 1, 3]);
        let ids: Vec<usize> = s.iter().map(NodeId::index).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(s.first(), Some(n(1)));
    }

    #[test]
    fn display_formats_braces() {
        assert_eq!(set(&[1, 2]).to_string(), "{v1, v2}");
        assert_eq!(NodeSet::new().to_string(), "{}");
    }

    #[test]
    fn singleton_has_one_element() {
        let s = NodeSet::singleton(n(7));
        assert_eq!(s.len(), 1);
        assert!(s.contains(n(7)));
    }

    #[test]
    fn serde_roundtrip() {
        let s = set(&[0, 4, 9]);
        let json = serde_json::to_string(&s).unwrap();
        let back: NodeSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
