//! Ordered sets of node identifiers, stored as word-level bitsets.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

use crate::NodeId;

const WORD_BITS: usize = 64;

/// An ordered set of node identifiers.
///
/// `NodeSet` is the workhorse collection for fault sets `F`, candidate fault
/// sets enumerated by Algorithm 1's phases, vertex cuts, neighborhoods, the
/// `Z_v` / `N_v` / `A_v` / `B_v` sets of the algorithms' case analyses — and,
/// since the path-interning refactor, the per-entry member sets of the
/// [`crate::PathArena`].
///
/// Backed by a `u64`-word bitset: `contains` / `insert` / `remove` are O(1),
/// the set algebra is word-parallel, and iteration is in ascending node order
/// (so simulation traces stay deterministic, as with the previous
/// `BTreeSet`-backed implementation). [`Ord`] compares element sequences
/// lexicographically, matching the ordering of the old representation.
///
/// # Example
///
/// ```
/// use lbc_model::{NodeId, NodeSet};
///
/// let f: NodeSet = [NodeId::new(1), NodeId::new(3)].into_iter().collect();
/// let g: NodeSet = [NodeId::new(3), NodeId::new(4)].into_iter().collect();
/// assert_eq!((&f | &g).len(), 3);
/// assert_eq!((&f & &g).len(), 1);
/// assert_eq!((&f - &g).len(), 1);
/// assert!(f.contains(NodeId::new(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct NodeSet {
    /// Bit `i % 64` of `words[i / 64]` is set iff node `i` is a member.
    /// Invariant: no trailing zero words (canonical form, so that derived
    /// equality and hashing are structural).
    words: Vec<u64>,
}

impl NodeSet {
    /// Creates an empty node set.
    #[must_use]
    pub fn new() -> Self {
        NodeSet::default()
    }

    /// Creates a set containing a single node.
    #[must_use]
    pub fn singleton(node: NodeId) -> Self {
        let mut set = NodeSet::new();
        set.insert(node);
        set
    }

    /// Creates the full node set `{0, 1, …, n-1}`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut words = vec![u64::MAX; n / WORD_BITS];
        let rem = n % WORD_BITS;
        if rem > 0 {
            words.push((1u64 << rem) - 1);
        }
        NodeSet { words }
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// Number of nodes in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether `node` belongs to the set.
    #[inline]
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        let index = node.index();
        match self.words.get(index / WORD_BITS) {
            Some(word) => word & (1u64 << (index % WORD_BITS)) != 0,
            None => false,
        }
    }

    /// Inserts a node; returns `true` if it was not already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let index = node.index();
        let word = index / WORD_BITS;
        let bit = 1u64 << (index % WORD_BITS);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let present = self.words[word] & bit != 0;
        self.words[word] |= bit;
        !present
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let index = node.index();
        let word = index / WORD_BITS;
        let bit = 1u64 << (index % WORD_BITS);
        match self.words.get_mut(word) {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                self.trim();
                true
            }
            _ => false,
        }
    }

    /// Iterates over the nodes in ascending order.
    #[must_use]
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let (longer, shorter) = if self.words.len() >= other.words.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut words = longer.words.clone();
        for (w, o) in words.iter_mut().zip(shorter.words.iter()) {
            *w |= o;
        }
        NodeSet { words }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let len = self.words.len().min(other.words.len());
        let words = self.words[..len]
            .iter()
            .zip(&other.words[..len])
            .map(|(a, b)| a & b)
            .collect();
        let mut set = NodeSet { words };
        set.trim();
        set
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut words = self.words.clone();
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w &= !o;
        }
        let mut set = NodeSet { words };
        set.trim();
        set
    }

    /// Whether `self` and `other` share no nodes.
    #[must_use]
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Whether every node of `self` belongs to `other`.
    #[must_use]
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        if self.words.len() > other.words.len() {
            return false;
        }
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Removes a node and returns it, if the set is non-empty (smallest id).
    pub fn pop_first(&mut self) -> Option<NodeId> {
        let first = self.first()?;
        self.remove(first);
        Some(first)
    }

    /// Returns the smallest node id in the set, if any.
    #[must_use]
    pub fn first(&self) -> Option<NodeId> {
        for (i, word) in self.words.iter().enumerate() {
            if *word != 0 {
                return Some(NodeId::new(i * WORD_BITS + word.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Returns the largest node id in the set, if any.
    #[must_use]
    pub fn last(&self) -> Option<NodeId> {
        let (i, word) = self
            .words
            .iter()
            .enumerate()
            .rev()
            .find(|(_, w)| **w != 0)?;
        Some(NodeId::new(
            i * WORD_BITS + (WORD_BITS - 1 - word.leading_zeros() as usize),
        ))
    }

    /// Returns the complement of this set within `{0, …, n-1}`.
    #[must_use]
    pub fn complement(&self, n: usize) -> NodeSet {
        let mut full = NodeSet::full(n);
        for (w, o) in full.words.iter_mut().zip(self.words.iter()) {
            *w &= !o;
        }
        full.trim();
        full
    }

    /// The underlying bitset words (bit `i % 64` of word `i / 64` is node `i`).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

/// Ascending iterator over a [`NodeSet`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.current == 0 {
            self.word_index += 1;
            self.current = *self.words.get(self.word_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(NodeId::new(self.word_index * WORD_BITS + bit))
    }
}

/// Owning ascending iterator over a [`NodeSet`].
#[derive(Debug, Clone)]
pub struct IntoIter {
    words: Vec<u64>,
    word_index: usize,
}

impl Iterator for IntoIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let word = self.words.get_mut(self.word_index)?;
            if *word == 0 {
                self.word_index += 1;
                continue;
            }
            let bit = word.trailing_zeros() as usize;
            *word &= *word - 1;
            return Some(NodeId::new(self.word_index * WORD_BITS + bit));
        }
    }
}

impl PartialOrd for NodeSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodeSet {
    /// Lexicographic comparison of the ascending element sequences — the
    /// same ordering the previous `BTreeSet`-backed representation had, so
    /// phase schedules sorted by `NodeSet` keep their historical order.
    fn cmp(&self, other: &Self) -> Ordering {
        self.iter().cmp(other.iter())
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = NodeSet::new();
        for node in iter {
            set.insert(node);
        }
        set
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for node in iter {
            self.insert(node);
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for NodeSet {
    type Item = NodeId;
    type IntoIter = IntoIter;

    fn into_iter(self) -> Self::IntoIter {
        IntoIter {
            words: self.words,
            word_index: 0,
        }
    }
}

impl BitOr for &NodeSet {
    type Output = NodeSet;

    fn bitor(self, rhs: &NodeSet) -> NodeSet {
        self.union(rhs)
    }
}

impl BitAnd for &NodeSet {
    type Output = NodeSet;

    fn bitand(self, rhs: &NodeSet) -> NodeSet {
        self.intersection(rhs)
    }
}

impl Sub for &NodeSet {
    type Output = NodeSet;

    fn sub(self, rhs: &NodeSet) -> NodeSet {
        self.difference(rhs)
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for node in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{node}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn set(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| n(i)).collect()
    }

    #[test]
    fn basic_insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(n(3)));
        assert!(!s.insert(n(3)));
        assert!(s.contains(n(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(n(3)));
        assert!(!s.remove(n(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn canonical_form_across_word_boundaries() {
        let mut s = NodeSet::new();
        s.insert(n(130));
        s.insert(n(2));
        assert_eq!(s.len(), 2);
        assert!(s.remove(n(130)));
        // Trailing words trimmed: equal to a small set built directly.
        assert_eq!(s, set(&[2]));
        assert!(!s.contains(n(130)));
    }

    #[test]
    fn full_and_complement() {
        let full = NodeSet::full(4);
        assert_eq!(full.len(), 4);
        let s = set(&[0, 2]);
        assert_eq!(s.complement(4), set(&[1, 3]));
        assert_eq!(full.complement(4), NodeSet::new());
        // Word-boundary sizes.
        assert_eq!(NodeSet::full(64).len(), 64);
        assert_eq!(NodeSet::full(65).len(), 65);
        assert_eq!(NodeSet::full(0), NodeSet::new());
    }

    #[test]
    fn set_algebra_operators() {
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3]);
        assert_eq!(&a | &b, set(&[0, 1, 2, 3]));
        assert_eq!(&a & &b, set(&[2]));
        assert_eq!(&a - &b, set(&[0, 1]));
        assert!(a.is_disjoint(&set(&[4, 5])));
        assert!(set(&[1]).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn algebra_with_mismatched_word_counts() {
        let small = set(&[1]);
        let large = set(&[1, 200]);
        assert_eq!(&small | &large, set(&[1, 200]));
        assert_eq!(&small & &large, set(&[1]));
        assert_eq!(&large - &small, set(&[200]));
        assert!(small.is_subset(&large));
        assert!(!large.is_subset(&small));
        assert!(small.is_disjoint(&set(&[200])));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = set(&[5, 1, 3]);
        let ids: Vec<usize> = s.iter().map(NodeId::index).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(s.first(), Some(n(1)));
        assert_eq!(s.last(), Some(n(5)));
        let owned: Vec<usize> = s.into_iter().map(NodeId::index).collect();
        assert_eq!(owned, vec![1, 3, 5]);
    }

    #[test]
    fn pop_first_drains_in_order() {
        let mut s = set(&[7, 2, 90]);
        assert_eq!(s.pop_first(), Some(n(2)));
        assert_eq!(s.pop_first(), Some(n(7)));
        assert_eq!(s.pop_first(), Some(n(90)));
        assert_eq!(s.pop_first(), None);
    }

    #[test]
    fn ordering_matches_element_sequences() {
        // The same ordering BTreeSet<NodeId> sets had: lexicographic by
        // ascending elements, *not* numeric by bit pattern.
        assert!(set(&[0, 5]) < set(&[1]));
        assert!(set(&[0]) < set(&[0, 5]));
        assert!(set(&[1, 2]) > set(&[0, 99]));
        assert_eq!(set(&[3, 4]).cmp(&set(&[3, 4])), Ordering::Equal);
    }

    #[test]
    fn display_formats_braces() {
        assert_eq!(set(&[1, 2]).to_string(), "{v1, v2}");
        assert_eq!(NodeSet::new().to_string(), "{}");
    }

    #[test]
    fn singleton_has_one_element() {
        let s = NodeSet::singleton(n(7));
        assert_eq!(s.len(), 1);
        assert!(s.contains(n(7)));
    }

    #[test]
    fn json_roundtrip() {
        let s = set(&[0, 4, 9]);
        let json = crate::json::ToJson::to_json(&s).to_string();
        let back: NodeSet =
            crate::json::FromJson::from_json(&crate::json::Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
